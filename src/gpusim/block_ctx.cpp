#include "gpusim/block_ctx.hpp"

#include <stdexcept>

namespace inplane::gpusim {

BlockCtx::BlockCtx(const DeviceSpec& device, GlobalMemory& gmem, std::size_t smem_bytes,
                   ExecMode mode)
    : device_(device), gmem_(gmem), smem_(smem_bytes, device.shared_banks), mode_(mode) {
  if (smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
    throw std::invalid_argument("BlockCtx: shared memory request exceeds per-SM limit");
  }
}

void BlockCtx::warp_load(std::span<const GlobalLoadLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw std::invalid_argument("warp_load: lane count must equal warp size");
  }
  if (tracing()) {
    // Reuse the coalescer's lane representation.
    LaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = LaneAccess{lanes[i].vaddr, lanes[i].bytes, lanes[i].active};
    }
    const CoalesceResult r = coalesce(std::span<const LaneAccess>(acc, lanes.size()),
                                      static_cast<std::uint32_t>(device_.coalesce_bytes));
    if (!r.any_active) return;
    stats_.load_instrs += 1;
    stats_.load_transactions += r.transactions;
    stats_.bytes_requested_ld += r.bytes_requested;
    stats_.bytes_transferred_ld += r.bytes_transferred;
  }
  if (functional()) {
    for (const GlobalLoadLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.dst != nullptr) {
        gmem_.read(lane.vaddr, lane.dst, lane.bytes);
      }
    }
  }
}

void BlockCtx::warp_store(std::span<const GlobalStoreLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw std::invalid_argument("warp_store: lane count must equal warp size");
  }
  if (tracing()) {
    LaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = LaneAccess{lanes[i].vaddr, lanes[i].bytes, lanes[i].active};
    }
    const CoalesceResult r =
        coalesce(std::span<const LaneAccess>(acc, lanes.size()),
                 static_cast<std::uint32_t>(device_.store_segment_bytes));
    if (!r.any_active) return;
    stats_.store_instrs += 1;
    stats_.store_transactions += r.transactions;
    stats_.bytes_requested_st += r.bytes_requested;
    stats_.bytes_transferred_st += r.bytes_transferred;
  }
  if (functional()) {
    for (const GlobalStoreLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.src != nullptr) {
        gmem_.write(lane.vaddr, lane.src, lane.bytes);
      }
    }
  }
}

void BlockCtx::warp_smem_read(std::span<const SmemReadLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw std::invalid_argument("warp_smem_read: lane count must equal warp size");
  }
  if (tracing()) {
    SmemLaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = SmemLaneAccess{lanes[i].offset, lanes[i].bytes, lanes[i].active};
    }
    const SmemAccessResult r =
        smem_.analyze(std::span<const SmemLaneAccess>(acc, lanes.size()));
    if (!r.any_active) return;
    stats_.smem_instrs += 1;
    stats_.smem_replays += r.replays;
  }
  if (functional()) {
    for (const SmemReadLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.dst != nullptr) {
        smem_.read(lane.offset, lane.dst, lane.bytes);
      }
    }
  }
}

void BlockCtx::warp_smem_write(std::span<const SmemWriteLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw std::invalid_argument("warp_smem_write: lane count must equal warp size");
  }
  if (tracing()) {
    SmemLaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = SmemLaneAccess{lanes[i].offset, lanes[i].bytes, lanes[i].active};
    }
    const SmemAccessResult r =
        smem_.analyze(std::span<const SmemLaneAccess>(acc, lanes.size()));
    if (!r.any_active) return;
    stats_.smem_instrs += 1;
    stats_.smem_replays += r.replays;
  }
  if (functional()) {
    for (const SmemWriteLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.src != nullptr) {
        smem_.write(lane.offset, lane.src, lane.bytes);
      }
    }
  }
}

void BlockCtx::record_compute(std::uint64_t warp_instrs, std::uint64_t flops) {
  if (tracing()) {
    stats_.compute_instrs += warp_instrs;
    stats_.flops += flops;
  }
}

void BlockCtx::sync() {
  if (tracing()) stats_.syncs += 1;
}

}  // namespace inplane::gpusim
