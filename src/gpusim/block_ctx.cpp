#include "gpusim/block_ctx.hpp"

#include <string>

#include "core/status.hpp"
#include "gpusim/abft.hpp"

namespace inplane::gpusim {

BlockCtx::BlockCtx(const DeviceSpec& device, GlobalMemory& gmem, std::size_t smem_bytes,
                   ExecMode mode)
    : device_(device), gmem_(gmem), smem_(smem_bytes, device.shared_banks), mode_(mode) {
  if (smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
    throw InvalidConfigError("BlockCtx: shared memory request exceeds per-SM limit");
  }
}

std::int64_t BlockCtx::step() {
  const std::int64_t event = static_cast<std::int64_t>(events_++);
  ++steps_;
  if (faults_ != nullptr) [[unlikely]] {
    if (const auto kind = faults_->on_step(attempt_, block_serial_, event)) {
      FaultEvent log;
      log.kind = *kind;
      log.attempt = attempt_;
      log.block = block_serial_;
      log.event = event;
      log.device = device_index_;
      faults_->record(log);
      if (*kind == FaultKind::DeviceLoss) {
        faults_->mark_device_lost(device_index_);
        throw DeviceLostError("device " + std::to_string(device_index_) +
                              " lost while block " + std::to_string(block_serial_) +
                              " was executing");
      }
      // A hung block makes no further progress; the watchdog observes
      // the missed deadline.  Without an armed budget the hang is
      // reported directly (it would otherwise spin forever).
      throw TimeoutError("watchdog: block " + std::to_string(block_serial_) +
                         " hung at warp-op " + std::to_string(event) +
                         (step_budget_ != 0
                              ? " (simulated-step budget " +
                                    std::to_string(step_budget_) + ")"
                              : ""));
    }
  }
  if (step_budget_ != 0 && steps_ > step_budget_) [[unlikely]] {
    throw TimeoutError("watchdog: block " + std::to_string(block_serial_) +
                       " exceeded its simulated-step budget of " +
                       std::to_string(step_budget_) + " warp-ops");
  }
  return event;
}

void BlockCtx::faulty_read(FaultSpace space, std::int64_t event, std::int64_t lane,
                           std::uint64_t vaddr, void* dst, std::uint32_t bytes) {
  const auto fault = faults_->on_load(space, attempt_, block_serial_, event, lane, vaddr);
  if (!fault) {
    if (space == FaultSpace::Global) {
      gmem_.read(vaddr, dst, bytes);
    } else {
      smem_.read(static_cast<std::uint32_t>(vaddr), dst, bytes);
    }
    return;
  }
  FaultEvent log;
  log.kind = fault->kind;
  log.attempt = attempt_;
  log.block = block_serial_;
  log.event = event;
  log.lane = lane;
  log.vaddr = vaddr;
  log.device = device_index_;
  switch (fault->kind) {
    case FaultKind::TransientFault:
      faults_->record(log);
      throw TransientFaultError("load at vaddr " + std::to_string(vaddr) +
                                " failed (block " + std::to_string(block_serial_) +
                                ", warp-op " + std::to_string(event) + ", lane " +
                                std::to_string(lane) + ")");
    case FaultKind::StuckLoad:
      // The load "completes" but the destination keeps whatever stale
      // bytes it held — the classic dropped-transaction symptom.
      faults_->record(log);
      return;
    case FaultKind::BitFlip: {
      if (space == FaultSpace::Global) {
        gmem_.read(vaddr, dst, bytes);
      } else {
        smem_.read(static_cast<std::uint32_t>(vaddr), dst, bytes);
      }
      const int bit = fault->bit % static_cast<int>(bytes * 8);
      log.bit = bit;
      faults_->record(log);
      auto* bytes_ptr = static_cast<unsigned char*>(dst);
      bytes_ptr[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      return;
    }
    case FaultKind::Hang:
    case FaultKind::DeviceLoss:
      break;  // not load-level kinds; unreachable via on_load
  }
}

void BlockCtx::warp_load(std::span<const GlobalLoadLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw InvalidConfigError("warp_load: lane count must equal warp size");
  }
  const std::int64_t event = step();
  if (tracing()) {
    // Reuse the coalescer's lane representation.
    LaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = LaneAccess{lanes[i].vaddr, lanes[i].bytes, lanes[i].active};
    }
    const CoalesceResult r = coalesce(std::span<const LaneAccess>(acc, lanes.size()),
                                      static_cast<std::uint32_t>(device_.coalesce_bytes));
    if (!r.any_active) return;
    stats_.load_instrs += 1;
    stats_.load_transactions += r.transactions;
    stats_.bytes_requested_ld += r.bytes_requested;
    stats_.bytes_transferred_ld += r.bytes_transferred;
  }
  if (functional()) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const GlobalLoadLane& lane = lanes[i];
      if (lane.active && lane.bytes != 0 && lane.dst != nullptr) {
        if (faults_ != nullptr) [[unlikely]] {
          faulty_read(FaultSpace::Global, event, static_cast<std::int64_t>(i),
                      lane.vaddr, lane.dst, lane.bytes);
        } else {
          gmem_.read(lane.vaddr, lane.dst, lane.bytes);
        }
      }
    }
  }
}

void BlockCtx::warp_store(std::span<const GlobalStoreLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw InvalidConfigError("warp_store: lane count must equal warp size");
  }
  step();
  if (tracing()) {
    LaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = LaneAccess{lanes[i].vaddr, lanes[i].bytes, lanes[i].active};
    }
    const CoalesceResult r =
        coalesce(std::span<const LaneAccess>(acc, lanes.size()),
                 static_cast<std::uint32_t>(device_.store_segment_bytes));
    if (!r.any_active) return;
    stats_.store_instrs += 1;
    stats_.store_transactions += r.transactions;
    stats_.bytes_requested_st += r.bytes_requested;
    stats_.bytes_transferred_st += r.bytes_transferred;
  }
  if (functional()) {
    for (const GlobalStoreLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.src != nullptr) {
        gmem_.write(lane.vaddr, lane.src, lane.bytes);
        if (abft_ != nullptr) [[unlikely]] {
          abft_->observe_store(block_serial_, lane.vaddr, lane.src, lane.bytes);
        }
      }
    }
  }
}

void BlockCtx::warp_smem_read(std::span<const SmemReadLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw InvalidConfigError("warp_smem_read: lane count must equal warp size");
  }
  const std::int64_t event = step();
  if (tracing()) {
    SmemLaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = SmemLaneAccess{lanes[i].offset, lanes[i].bytes, lanes[i].active};
    }
    const SmemAccessResult r =
        smem_.analyze(std::span<const SmemLaneAccess>(acc, lanes.size()));
    if (!r.any_active) return;
    stats_.smem_instrs += 1;
    stats_.smem_replays += r.replays;
  }
  if (functional()) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const SmemReadLane& lane = lanes[i];
      if (lane.active && lane.bytes != 0 && lane.dst != nullptr) {
        if (faults_ != nullptr) [[unlikely]] {
          faulty_read(FaultSpace::Shared, event, static_cast<std::int64_t>(i),
                      lane.offset, lane.dst, lane.bytes);
        } else {
          smem_.read(lane.offset, lane.dst, lane.bytes);
        }
      }
    }
  }
}

void BlockCtx::warp_smem_write(std::span<const SmemWriteLane> lanes) {
  if (lanes.size() != static_cast<std::size_t>(device_.warp_size)) {
    throw InvalidConfigError("warp_smem_write: lane count must equal warp size");
  }
  step();
  if (tracing()) {
    SmemLaneAccess acc[32];
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      acc[i] = SmemLaneAccess{lanes[i].offset, lanes[i].bytes, lanes[i].active};
    }
    const SmemAccessResult r =
        smem_.analyze(std::span<const SmemLaneAccess>(acc, lanes.size()));
    if (!r.any_active) return;
    stats_.smem_instrs += 1;
    stats_.smem_replays += r.replays;
  }
  if (functional()) {
    for (const SmemWriteLane& lane : lanes) {
      if (lane.active && lane.bytes != 0 && lane.src != nullptr) {
        smem_.write(lane.offset, lane.src, lane.bytes);
      }
    }
  }
}

void BlockCtx::record_compute(std::uint64_t warp_instrs, std::uint64_t flops) {
  if (tracing()) {
    stats_.compute_instrs += warp_instrs;
    stats_.flops += flops;
  }
}

void BlockCtx::sync() {
  step();
  if (tracing()) stats_.syncs += 1;
}

}  // namespace inplane::gpusim
