#pragma once

#include <cstdint>
#include <span>

#include "gpusim/coalescer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/global_memory.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/trace.hpp"

namespace inplane::gpusim {

class AbftSink;

/// How a simulated block executes.
enum class ExecMode {
  Functional,  ///< move real data, skip event counting (fast verification)
  Trace,       ///< count events only, no data movement (fast timing)
  Both,        ///< move data *and* count events (used by equivalence tests)
};

/// Execution context handed to a kernel for one thread block.
///
/// This is the "CUDA" surface the stencil kernels are written against.
/// All global/shared memory operations are *warp-wide*: the kernel
/// presents one request per lane (32 per call) and the context
/// simultaneously performs the data movement (functional modes) and the
/// micro-architectural accounting — coalescing into transactions, shared
/// bank-conflict replays, warp-level instruction counts (trace modes).
/// Writing kernels warp-by-warp is deliberate: it is exactly the
/// "warp-based assignment method for memory loads" of section III-C2.
///
/// Fault tolerance: every warp-level operation is one *step*.  An
/// optional step budget acts as a watchdog (exceeding it throws
/// TimeoutError — the simulated equivalent of a kernel-launch deadline),
/// and an optional FaultInjector is consulted per step and per load lane
/// to inject bit flips, stuck loads, transient load failures, hangs and
/// device loss at deterministic, seeded sites.  Both default to off and
/// cost one predicted branch per warp op when unused.
class BlockCtx {
 public:
  /// One lane of a warp-wide global load.
  struct GlobalLoadLane {
    std::uint64_t vaddr = 0;
    void* dst = nullptr;  ///< may be null when only tracing
    std::uint32_t bytes = 0;
    bool active = false;
  };
  /// One lane of a warp-wide global store.
  struct GlobalStoreLane {
    std::uint64_t vaddr = 0;
    const void* src = nullptr;
    std::uint32_t bytes = 0;
    bool active = false;
  };
  /// One lane of a warp-wide shared-memory read.
  struct SmemReadLane {
    std::uint32_t offset = 0;
    void* dst = nullptr;
    std::uint32_t bytes = 0;
    bool active = false;
  };
  /// One lane of a warp-wide shared-memory write.
  struct SmemWriteLane {
    std::uint32_t offset = 0;
    const void* src = nullptr;
    std::uint32_t bytes = 0;
    bool active = false;
  };

  BlockCtx(const DeviceSpec& device, GlobalMemory& gmem, std::size_t smem_bytes,
           ExecMode mode);

  [[nodiscard]] const DeviceSpec& device() const { return device_; }
  [[nodiscard]] ExecMode mode() const { return mode_; }
  [[nodiscard]] bool functional() const { return mode_ != ExecMode::Trace; }
  [[nodiscard]] bool tracing() const { return mode_ != ExecMode::Functional; }

  [[nodiscard]] GlobalMemory& gmem() { return gmem_; }
  [[nodiscard]] SharedMemory& smem() { return smem_; }

  /// Installs a fault injector for this block's execution.  @p block is
  /// the block's serial index in the launch (its site identity), @p
  /// attempt the runner's retry ordinal, @p device_index the simulated
  /// device this block runs on (for DeviceLoss).
  void install_faults(const FaultInjector* faults, std::int64_t block,
                      std::int64_t attempt = 0, std::int64_t device_index = 0) {
    faults_ = faults;
    block_serial_ = block;
    attempt_ = attempt;
    device_index_ = device_index;
  }

  /// Installs an ABFT checksum sink: every functional global store this
  /// block issues is also accumulated into the sink's running per-plane
  /// checksums (see gpusim/abft.hpp).  @p block is the block's serial
  /// index — its row in the sink's table.
  void install_abft(AbftSink* abft, std::int64_t block) {
    abft_ = abft;
    block_serial_ = block;
  }

  /// Arms the watchdog: the block may execute at most @p budget
  /// warp-level operations before TimeoutError is thrown.  0 disarms.
  void set_step_budget(std::uint64_t budget) { step_budget_ = budget; }

  /// Warp-level operations executed so far.
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

  /// Issues one warp-wide global load instruction.  Lanes must have
  /// exactly device().warp_size entries.  If no lane is active the
  /// instruction is skipped entirely (SIMT branch elision).
  void warp_load(std::span<const GlobalLoadLane> lanes);

  /// Issues one warp-wide global store instruction.
  void warp_store(std::span<const GlobalStoreLane> lanes);

  /// Issues one warp-wide shared-memory read.
  void warp_smem_read(std::span<const SmemReadLane> lanes);

  /// Issues one warp-wide shared-memory write.
  void warp_smem_write(std::span<const SmemWriteLane> lanes);

  /// Records compute work: @p warp_instrs warp-level FMA/ADD/MUL issues and
  /// @p flops per-lane floating point operations (FMA = 2 flops).  The
  /// arithmetic itself is performed by the kernel in plain C++; this call
  /// only feeds the timing model.
  void record_compute(std::uint64_t warp_instrs, std::uint64_t flops);

  /// Records a block-wide barrier (__syncthreads()).
  void sync();

  [[nodiscard]] const TraceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TraceStats{}; }

 private:
  /// Advances the watchdog/fault clock by one warp-level operation and
  /// returns this operation's per-block ordinal.
  std::int64_t step();

  /// Consults the injector for one load lane and applies StuckLoad /
  /// TransientFault / BitFlip semantics around the actual read.
  void faulty_read(FaultSpace space, std::int64_t event, std::int64_t lane,
                   std::uint64_t vaddr, void* dst, std::uint32_t bytes);

  const DeviceSpec& device_;
  GlobalMemory& gmem_;
  SharedMemory smem_;
  ExecMode mode_;
  TraceStats stats_;

  const FaultInjector* faults_ = nullptr;
  AbftSink* abft_ = nullptr;
  std::int64_t block_serial_ = 0;
  std::int64_t attempt_ = 0;
  std::int64_t device_index_ = 0;
  std::uint64_t events_ = 0;       ///< warp-op ordinal within this block
  std::uint64_t steps_ = 0;        ///< watchdog clock
  std::uint64_t step_budget_ = 0;  ///< 0 = watchdog disarmed
};

}  // namespace inplane::gpusim
