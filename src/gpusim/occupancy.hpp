#pragma once

#include <cstddef>
#include <string>

#include "gpusim/device.hpp"

namespace inplane::gpusim {

/// Per-block resource usage of a kernel, the inputs of Eqn. (7).
struct KernelResources {
  int regs_per_thread = 0;     ///< K_R / threads (estimated, see kernels/resources)
  std::size_t smem_bytes = 0;  ///< K_S: shared memory per block
  int threads = 0;             ///< TX * TY
};

/// What limited the number of resident blocks.
enum class OccupancyLimiter { Registers, SharedMem, Warps, Blocks, Invalid };

/// Result of the Eqn. (7) occupancy calculation:
///   ActBlks = min( floor(Reg / K_R), floor(Smem / K_S),
///                  floor(Warp_SM / Warp_Blk), Blk_SM ).
struct Occupancy {
  int active_blocks = 0;  ///< blocks resident per SM (0 => config invalid)
  int warps_per_block = 0;
  OccupancyLimiter limiter = OccupancyLimiter::Invalid;
  std::string invalid_reason;

  [[nodiscard]] int active_warps() const { return active_blocks * warps_per_block; }

  /// Computes occupancy, flagging configurations that cannot launch at all
  /// (over per-thread register limit, over block thread limit, over shared
  /// memory) with active_blocks == 0 — these are the zeroed points of the
  /// Fig. 8 performance surfaces.
  static Occupancy compute(const DeviceSpec& device, const KernelResources& res);
};

[[nodiscard]] std::string to_string(OccupancyLimiter limiter);

}  // namespace inplane::gpusim
