#include "gpusim/shared_memory.hpp"

#include <algorithm>
#include <cstring>
#include "core/status.hpp"

namespace inplane::gpusim {

SharedMemory::SharedMemory(std::size_t bytes, int banks)
    : data_(bytes), banks_(banks) {
  if (banks <= 0) throw InvalidConfigError("SharedMemory: banks must be positive");
}

void SharedMemory::read(std::uint32_t offset, void* dst, std::size_t n) const {
  if (offset + n > data_.size()) {
    throw WildAccessError("SharedMemory::read: out of bounds");
  }
  std::memcpy(dst, data_.data() + offset, n);
}

void SharedMemory::write(std::uint32_t offset, const void* src, std::size_t n) {
  if (offset + n > data_.size()) {
    throw WildAccessError("SharedMemory::write: out of bounds");
  }
  std::memcpy(data_.data() + offset, src, n);
}

SmemAccessResult SharedMemory::analyze(std::span<const SmemLaneAccess> lanes) const {
  SmemAccessResult result;
  // words_per_bank[b] holds the distinct 4-byte word indices touched in
  // bank b this access; the access replays max_b(count) - 1 extra times.
  constexpr int kMaxBanks = 64;
  std::uint32_t words[kMaxBanks][32];
  int counts[kMaxBanks] = {};
  const int banks = std::min(banks_, kMaxBanks);
  for (const SmemLaneAccess& lane : lanes) {
    if (!lane.active || lane.bytes == 0) continue;
    result.any_active = true;
    // A lane access may span several words (vector smem access).
    const std::uint32_t first_word = lane.offset / 4;
    const std::uint32_t last_word = (lane.offset + lane.bytes - 1) / 4;
    for (std::uint32_t w = first_word; w <= last_word; ++w) {
      const int bank = static_cast<int>(w % static_cast<std::uint32_t>(banks));
      bool seen = false;
      for (int i = 0; i < counts[bank]; ++i) {
        if (words[bank][i] == w) {
          seen = true;
          break;
        }
      }
      if (!seen && counts[bank] < 32) words[bank][counts[bank]++] = w;
    }
  }
  if (!result.any_active) return result;
  int max_count = 1;
  for (int b = 0; b < banks; ++b) max_count = std::max(max_count, counts[b]);
  result.replays = static_cast<std::uint64_t>(max_count - 1);
  return result;
}

void SharedMemory::clear() { std::fill(data_.begin(), data_.end(), std::byte{0}); }

}  // namespace inplane::gpusim
