#include "gpusim/trace.hpp"

#include "core/status.hpp"

namespace inplane::gpusim {

namespace {
std::uint64_t div_round(std::uint64_t v, std::uint64_t n) { return (v + n / 2) / n; }
}  // namespace

TraceStats TraceStats::scaled_down(std::uint64_t n) const {
  if (n == 0) throw InvalidConfigError("TraceStats::scaled_down: n must be > 0");
  TraceStats s;
  s.load_instrs = div_round(load_instrs, n);
  s.store_instrs = div_round(store_instrs, n);
  s.load_transactions = div_round(load_transactions, n);
  s.store_transactions = div_round(store_transactions, n);
  s.bytes_requested_ld = div_round(bytes_requested_ld, n);
  s.bytes_transferred_ld = div_round(bytes_transferred_ld, n);
  s.bytes_requested_st = div_round(bytes_requested_st, n);
  s.bytes_transferred_st = div_round(bytes_transferred_st, n);
  s.smem_instrs = div_round(smem_instrs, n);
  s.smem_replays = div_round(smem_replays, n);
  s.compute_instrs = div_round(compute_instrs, n);
  s.flops = div_round(flops, n);
  s.syncs = div_round(syncs, n);
  return s;
}

}  // namespace inplane::gpusim
