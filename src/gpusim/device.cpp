#include "gpusim/device.hpp"

namespace inplane::gpusim {

DeviceSpec DeviceSpec::geforce_gtx580() {
  DeviceSpec d;
  d.name = "GeForce GTX580";
  d.arch = Arch::Fermi;
  d.sm_count = 16;
  d.cores_per_sm = 32;          // 512 cores total
  d.clock_ghz = 1.544;          // shader clock -> 1581 GFlop/s SP peak
  d.peak_bw_gbs = 192.4;
  d.achieved_bw_gbs = 161.0;    // section IV-A measured
  d.coalesce_bytes = 128;       // L1-cached global loads
  d.mem_latency_cycles = 600;
  d.regs_per_sm = 32768;
  d.smem_per_sm = 48 * 1024;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_block = 1024;
  d.max_regs_per_thread = 63;
  d.ldst_units_per_sm = 16;
  d.dp_throughput_ratio = 1.0 / 8.0;   // 198 / 1581 GFlop/s
  d.latency_hiding_warps = 24.0;
  return d;
}

DeviceSpec DeviceSpec::geforce_gtx680() {
  DeviceSpec d;
  d.name = "GeForce GTX680";
  d.arch = Arch::Kepler;
  d.sm_count = 8;               // SMX units
  d.cores_per_sm = 192;         // 1536 cores total
  d.clock_ghz = 1.006;          // -> 3090 GFlop/s SP peak
  d.peak_bw_gbs = 192.3;
  d.achieved_bw_gbs = 150.0;    // section IV-A measured
  d.coalesce_bytes = 32;        // global loads bypass L1 on Kepler
  d.mem_latency_cycles = 600;   // L2-only path; higher than Fermi's L1 hits
  d.regs_per_sm = 65536;
  d.smem_per_sm = 48 * 1024;
  d.max_warps_per_sm = 64;
  d.max_blocks_per_sm = 16;
  d.max_threads_per_block = 1024;
  d.max_regs_per_thread = 63;
  d.ldst_units_per_sm = 32;
  d.dp_throughput_ratio = 1.0 / 24.0;  // 129 / 3090 GFlop/s
  d.latency_hiding_warps = 44.0;
  d.max_outstanding_loads_per_warp = 2.0;  // GK104's weak per-warp MLP
  return d;
}

DeviceSpec DeviceSpec::tesla_c2070() {
  DeviceSpec d;
  d.name = "Tesla C2070";
  d.arch = Arch::Fermi;
  d.sm_count = 14;
  d.cores_per_sm = 32;          // 448 cores total
  d.clock_ghz = 1.15;           // -> 1030 GFlop/s SP peak
  d.peak_bw_gbs = 144.0;
  d.achieved_bw_gbs = 117.5;    // section IV-A measured
  d.coalesce_bytes = 128;
  d.mem_latency_cycles = 600;
  d.regs_per_sm = 32768;
  d.smem_per_sm = 48 * 1024;
  d.max_warps_per_sm = 48;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_block = 1024;
  d.max_regs_per_thread = 63;
  d.ldst_units_per_sm = 16;
  d.dp_throughput_ratio = 0.5;  // 515 / 1030 GFlop/s
  d.latency_hiding_warps = 24.0;
  return d;
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec d = tesla_c2070();
  d.name = "Tesla C2050";
  return d;
}

std::vector<DeviceSpec> paper_devices() {
  return {DeviceSpec::geforce_gtx580(), DeviceSpec::geforce_gtx680(),
          DeviceSpec::tesla_c2070()};
}

}  // namespace inplane::gpusim
