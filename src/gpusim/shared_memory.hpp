#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace inplane::gpusim {

/// One lane's slice of a warp-wide shared-memory access.
struct SmemLaneAccess {
  std::uint32_t offset = 0;  ///< byte offset into the block's shared memory
  std::uint32_t bytes = 0;
  bool active = true;
};

/// Result of banking analysis for one warp-wide shared access.
struct SmemAccessResult {
  std::uint64_t replays = 0;  ///< extra serialised passes beyond the first
  bool any_active = false;
};

/// A block's shared memory: backing storage plus 32-bank conflict analysis.
///
/// Banks are 4 bytes wide and interleaved (Fermi/Kepler default mode).
/// Lanes that read the *same* 4-byte word in one bank broadcast without
/// conflict; distinct words in the same bank serialise.  The replay count
/// feeds the timing model's LD/ST pipe pressure.
class SharedMemory {
 public:
  explicit SharedMemory(std::size_t bytes, int banks = 32);

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::byte* raw() { return data_.data(); }
  [[nodiscard]] const std::byte* raw() const { return data_.data(); }

  /// Functional typed access helpers (bounds-checked).
  void read(std::uint32_t offset, void* dst, std::size_t n) const;
  void write(std::uint32_t offset, const void* src, std::size_t n);

  /// Banking analysis of a warp-wide access (no data movement).
  [[nodiscard]] SmemAccessResult analyze(std::span<const SmemLaneAccess> lanes) const;

  /// Clears storage to zero (fresh block launch).
  void clear();

 private:
  std::vector<std::byte> data_;
  int banks_;
};

}  // namespace inplane::gpusim
