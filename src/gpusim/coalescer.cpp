#include "gpusim/coalescer.hpp"

#include <algorithm>
#include <stdexcept>

namespace inplane::gpusim {

CoalesceResult coalesce(std::span<const LaneAccess> lanes, std::uint32_t segment_bytes) {
  if (segment_bytes == 0 || (segment_bytes & (segment_bytes - 1)) != 0) {
    throw std::invalid_argument("coalesce: segment size must be a power of two");
  }
  CoalesceResult result;
  // Worst case: 32 lanes x 16-byte vector accesses against 4-byte segments
  // (the degenerate granularity the model ablation uses) touches 5 segments
  // per lane -> 160; 256 leaves headroom.
  std::uint64_t segs[256];
  std::size_t nsegs = 0;
  for (const LaneAccess& lane : lanes) {
    if (!lane.active || lane.bytes == 0) continue;
    result.any_active = true;
    result.bytes_requested += lane.bytes;
    const std::uint64_t first = lane.addr / segment_bytes;
    const std::uint64_t last = (lane.addr + lane.bytes - 1) / segment_bytes;
    for (std::uint64_t s = first; s <= last; ++s) {
      if (nsegs == std::size(segs)) {
        throw std::invalid_argument("coalesce: access too wide for one warp instruction");
      }
      segs[nsegs++] = s;
    }
  }
  if (!result.any_active) return result;
  std::sort(segs, segs + nsegs);
  result.transactions =
      static_cast<std::uint64_t>(std::unique(segs, segs + nsegs) - segs);
  result.bytes_transferred = result.transactions * segment_bytes;
  return result;
}

}  // namespace inplane::gpusim
