#include "gpusim/coalescer.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/status.hpp"

namespace inplane::gpusim {

CoalesceResult coalesce(std::span<const LaneAccess> lanes, std::uint32_t segment_bytes) {
  if (segment_bytes == 0 || (segment_bytes & (segment_bytes - 1)) != 0) {
    throw InvalidConfigError("coalesce: segment size must be a power of two");
  }
  CoalesceResult result;
  // Common case: 32 lanes x 16-byte vector accesses against 4-byte segments
  // (the degenerate granularity the model ablation uses) touches 5 segments
  // per lane -> 160; 256 leaves headroom.  Legitimately wider warp accesses
  // (large per-lane strides against tiny segments) spill into heap storage
  // instead of aborting the trace.
  std::uint64_t stack_segs[256];
  std::size_t nstack = 0;
  std::vector<std::uint64_t> heap_segs;
  std::uint64_t prev_seg = std::numeric_limits<std::uint64_t>::max();
  bool any_seg = false;
  for (const LaneAccess& lane : lanes) {
    if (!lane.active || lane.bytes == 0) continue;
    if (lane.addr > std::numeric_limits<std::uint64_t>::max() - lane.bytes) {
      // Address arithmetic wrapping the 64-bit space is a malformed
      // request, not a wide access: keep the hard error for that.
      throw InvalidConfigError("coalesce: lane access wraps the address space");
    }
    result.any_active = true;
    result.bytes_requested += lane.bytes;
    const std::uint64_t first = lane.addr / segment_bytes;
    const std::uint64_t last = (lane.addr + lane.bytes - 1) / segment_bytes;
    for (std::uint64_t s = first; s <= last; ++s) {
      // Incremental dedup of the overwhelmingly common pattern (adjacent
      // lanes hitting the same segment) keeps the buffers small.
      if (any_seg && s == prev_seg) continue;
      prev_seg = s;
      any_seg = true;
      if (heap_segs.empty() && nstack < std::size(stack_segs)) {
        stack_segs[nstack++] = s;
      } else {
        if (heap_segs.empty()) heap_segs.assign(stack_segs, stack_segs + nstack);
        heap_segs.push_back(s);
      }
    }
  }
  if (!result.any_active) return result;
  std::uint64_t* begin = heap_segs.empty() ? stack_segs : heap_segs.data();
  std::uint64_t* end = begin + (heap_segs.empty() ? nstack : heap_segs.size());
  std::sort(begin, end);
  result.transactions = static_cast<std::uint64_t>(std::unique(begin, end) - begin);
  result.bytes_transferred = result.transactions * segment_bytes;
  return result;
}

}  // namespace inplane::gpusim
