#pragma once

// The "actual" half of the ABFT (algorithm-based fault tolerance) layer:
// a per-launch sink that accumulates running checksums over every
// xy-plane each thread block stores, as the stores happen.  Two
// invariants per (block, output plane):
//
//   s0 = sum(v)        the plane's tile sum
//   s1 = sum(q * v)    the weighted sum, q = the element's in-plane
//                      padded offset (origin_x + i) + pitch_x * (j + halo)
//
// Because the Jacobi update is linear, both can be *predicted* from the
// input grid and the stencil coefficients without re-running the stencil
// (see kernels/abft.hpp, the "predicted" half) — a mismatch localizes a
// silent corruption to one (block, plane) cell online, with no CPU
// reference pass.
//
// The sink is bound to one launch's output mapping inside the block sweep
// (the buffer's base address only exists once the grid is mapped) and
// each block accumulates into its own row of the table, so concurrent
// blocks never contend and the sums are deterministic at any thread
// count (each block's stores execute in that block's serial order).

#include <cstdint>
#include <vector>

#include "core/grid_layout.hpp"

namespace inplane::gpusim {

/// Running checksums of one (block, output-plane) cell.
struct PlaneSums {
  double s0 = 0.0;  ///< sum of stored values
  double s1 = 0.0;  ///< sum of (in-plane padded offset) * value
};

class AbftSink {
 public:
  /// (Re)binds the sink to one launch: @p layout / @p out_base describe
  /// the output grid's mapping, @p nblocks the launch's block count.
  /// Allocates and zeroes the whole table — call once per sweep attempt.
  void bind(const GridLayout* layout, std::uint64_t out_base, std::size_t nblocks) {
    layout_ = layout;
    base_ = out_base;
    elem_size_ = layout->elem_size();
    plane_stride_ = layout->plane_stride();
    halo_ = layout->halo();
    nz_ = layout->nz();
    allocated_ = layout->allocated();
    table_.assign(nblocks, std::vector<PlaneSums>(static_cast<std::size_t>(nz_)));
  }

  [[nodiscard]] bool bound() const { return layout_ != nullptr; }
  [[nodiscard]] std::size_t nblocks() const { return table_.size(); }
  [[nodiscard]] int nz() const { return nz_; }

  /// Accumulates one functional store lane into @p block's checksums.
  /// Vectorised lanes carry bytes = vec * elem_size consecutive elements.
  /// Stores that do not land in this launch's output interior (foreign
  /// buffers, halo writes) are ignored.
  void observe_store(std::int64_t block, std::uint64_t vaddr, const void* src,
                     std::uint32_t bytes);

  /// Accumulated sums for @p block's stores into interior plane @p k.
  [[nodiscard]] const PlaneSums& plane(std::size_t block, int k) const {
    return table_[block][static_cast<std::size_t>(k)];
  }

 private:
  const GridLayout* layout_ = nullptr;
  std::uint64_t base_ = 0;
  std::size_t elem_size_ = 4;
  std::size_t plane_stride_ = 0;
  std::size_t allocated_ = 0;
  int halo_ = 0;
  int nz_ = 0;
  std::vector<std::vector<PlaneSums>> table_;  ///< [block][interior plane]
};

}  // namespace inplane::gpusim
