#pragma once

#include <string>
#include <vector>

namespace inplane::gpusim {

/// GPU micro-architecture family.  Governs coalescing granularity and
/// per-SM issue resources.
enum class Arch {
  Fermi,   ///< GF100/GF110: global loads cached in L1, 128-byte lines
  Kepler,  ///< GK104: global loads bypass L1, 32-byte L2 segments
};

/// Static description of a simulated GPU.
///
/// The numbers for the three evaluation cards come from Table III of the
/// paper plus the measured-throughput figures quoted in section IV-A
/// (161 / 150 / 117.5 GB/s).  Everything the timing model consumes is
/// recorded here so a new device can be described without code changes.
struct DeviceSpec {
  std::string name;
  Arch arch = Arch::Fermi;

  // --- Geometry -----------------------------------------------------------
  int sm_count = 16;            ///< streaming multiprocessors (SM / SMX)
  int cores_per_sm = 32;        ///< CUDA cores per SM
  double clock_ghz = 1.544;     ///< shader (core) clock the cores run at

  // --- Memory system ------------------------------------------------------
  double peak_bw_gbs = 192.4;      ///< pin bandwidth (Table III)
  double achieved_bw_gbs = 161.0;  ///< measured streaming throughput (sec. IV-A)
  int coalesce_bytes = 128;        ///< load transaction segment size
  /// Store transaction segment size.  Global stores bypass L1 on both
  /// Fermi and Kepler and are written as 32-byte L2 sectors, so a store
  /// misaligned by a few elements costs one extra sector per warp, not a
  /// whole extra cache line.
  ///
  /// Together with coalesce_bytes this also fixes the address-shift
  /// modulus under which block traces are translation invariant — the
  /// keying of the runner's trace memoization (gpusim/block_class.hpp).
  int store_segment_bytes = 32;
  double mem_latency_cycles = 600; ///< global memory round-trip latency

  // --- Per-SM limits (Eqn. (7) inputs) -------------------------------------
  int regs_per_sm = 32768;        ///< 32-bit registers per SM
  int smem_per_sm = 48 * 1024;    ///< shared memory bytes per SM
  int max_warps_per_sm = 48;      ///< resident warp limit (Warp_SM)
  int max_blocks_per_sm = 8;      ///< resident block limit (Blk_SM)
  int max_threads_per_block = 1024;
  int max_regs_per_thread = 63;   ///< per-thread register file limit
  int warp_size = 32;

  // --- Issue resources ------------------------------------------------------
  int ldst_units_per_sm = 16;       ///< load/store units (warp LD/ST rate)
  int shared_banks = 32;            ///< shared-memory banks
  double dp_throughput_ratio = 0.125;  ///< DP instr rate / SP instr rate
  /// Resident warps needed for full memory-latency hiding; below this the
  /// timing model exposes a fraction of mem_latency_cycles per phase.
  double latency_hiding_warps = 24.0;
  /// Maximum global load instructions one warp keeps in flight (per-warp
  /// memory-level parallelism).  Together with resident warps and the
  /// average bytes each load instruction transfers this caps achievable
  /// bandwidth by Little's law — the mechanism section III-C2 appeals to
  /// when motivating 2-/4-wide vector loads.  GK104 (Kepler) is markedly
  /// weaker here than Fermi, which is what makes scalar halo loading so
  /// expensive on the GTX680.
  double max_outstanding_loads_per_warp = 6.0;

  // --- Derived quantities ----------------------------------------------------
  /// Peak single-precision GFlop/s (cores * 2 flops/FMA * clock).
  [[nodiscard]] double peak_sp_gflops() const {
    return static_cast<double>(sm_count) * cores_per_sm * 2.0 * clock_ghz;
  }
  /// Peak double-precision GFlop/s.
  [[nodiscard]] double peak_dp_gflops() const {
    return peak_sp_gflops() * dp_throughput_ratio;
  }
  /// Achieved global-memory bytes per core-clock cycle, per SM (BW_SM).
  [[nodiscard]] double bw_bytes_per_cycle_per_sm() const {
    return achieved_bw_gbs / sm_count / clock_ghz;
  }
  /// Warp compute-instruction throughput per cycle per SM (FMA-class).
  [[nodiscard]] double warp_instr_per_cycle() const {
    return static_cast<double>(cores_per_sm) / warp_size;
  }
  /// Warp LD/ST-instruction throughput per cycle per SM.
  [[nodiscard]] double ldst_instr_per_cycle() const {
    return static_cast<double>(ldst_units_per_sm) / warp_size;
  }

  // --- The paper's evaluation devices ---------------------------------------
  static DeviceSpec geforce_gtx580();
  static DeviceSpec geforce_gtx680();
  static DeviceSpec tesla_c2070();
  /// Same silicon as the C2070 apart from DRAM capacity (section V-B);
  /// used by Fig. 12.
  static DeviceSpec tesla_c2050();
};

/// The three devices of Table III, in paper order.
[[nodiscard]] std::vector<DeviceSpec> paper_devices();

}  // namespace inplane::gpusim
