#pragma once

#include <string>

#include "core/extent.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"

namespace inplane::gpusim {

/// Everything the timing model needs about one kernel configuration.
struct TimingInput {
  Extent3 grid;              ///< full lattice LX x LY x LZ
  int radius = 1;            ///< stencil radius r (pipeline fill depth)
  int tile_w = 0;            ///< output tile width  per block (TX * RX)
  int tile_h = 0;            ///< output tile height per block (TY * RY)
  KernelResources resources; ///< per-block K_R, K_S, threads
  TraceStats per_plane;      ///< steady-state trace of ONE block for ONE plane
  bool is_double = false;    ///< double precision (scales compute throughput)
  int ilp = 1;               ///< independent chains per thread (RX * RY)
};

/// Per-SM cycle budget for one z-plane (steady state), before staging.
struct CycleBreakdown {
  double mem = 0.0;      ///< DRAM bandwidth (after the MLP utilisation cap)
  double ldst = 0.0;     ///< LD/ST pipe: global + shared instrs + replays
  double compute = 0.0;  ///< FMA/ALU pipe
  double latency = 0.0;  ///< exposed (unhidden) memory latency
  double sync = 0.0;     ///< barrier overhead
};

/// Timing estimate for one kernel launch configuration on one device.
struct KernelTiming {
  bool valid = false;
  std::string invalid_reason;

  double seconds = 0.0;
  double mpoints_per_s = 0.0;  ///< the paper's MPoint/s metric
  double gflops = 0.0;         ///< paper-style flop counting (FMA = 2)
  double load_efficiency = 0.0;
  double bw_utilisation = 0.0; ///< fraction of achieved_bw actually sustained

  Occupancy occupancy;
  CycleBreakdown per_plane_sm; ///< cycles per plane per SM at full residency
  std::string bottleneck;      ///< "bandwidth" | "ldst" | "compute" | "latency"

  int stages = 0;              ///< Eqn. (8)
  int rem_blocks = 0;          ///< Eqn. (9)
};

/// Estimates run time for a traced kernel configuration.
///
/// The per-plane trace of a single block is expanded to the full grid with
/// the paper's own staging scheme (Eqns. (6), (8), (9)): each SM runs
/// ActBlks blocks concurrently, Stages times per plane, with a remainder
/// stage.  Within a stage the SM is limited by the slowest of three pipes
/// (DRAM bandwidth, LD/ST issue, compute issue); bandwidth is additionally
/// capped by memory-level parallelism (resident warps x per-warp
/// outstanding loads x bytes per load / latency — Little's law), and any
/// unhidden memory latency is exposed per dependent phase.
[[nodiscard]] KernelTiming estimate_timing(const DeviceSpec& device,
                                           const TimingInput& input);

}  // namespace inplane::gpusim
