#pragma once

// Block position classes for trace memoization.
//
// A thread block's TraceStats is a pure function of the warp-op stream it
// issues, and in this simulator that stream depends on the block's grid
// position (bx, by) only through a rigid byte shift of every global
// address: delta_in = elem_bytes * (bx*tile_w + by*tile_h*pitch_in) for
// loads, delta_out likewise for stores.  The coalescer counts distinct
// aligned segments touched by the active lanes, so shifting the whole
// address stream by a multiple of the segment size permutes segment ids
// without changing any transaction or byte count; shared-memory bank
// conflicts, barrier counts and compute/flop counts do not depend on
// position at all.  Two blocks whose shifts are congruent modulo
// lcm(coalesce_bytes, store_segment_bytes) therefore produce bit-identical
// TraceStats, and tracing one representative per congruence class covers
// the whole launch.
//
// The class key also folds in the block's boundary adjacency (low/high
// edge in x and y).  With halo storage physically allocated the current
// loading patterns never clamp, so today edge blocks fall into the same
// classes as congruent interior ones; the flags keep the key honest
// should a future pattern special-case the boundary.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/grid_layout.hpp"
#include "gpusim/device.hpp"

namespace inplane::gpusim {

/// Boundary-adjacency bits of a block position.
inline constexpr std::uint8_t kEdgeXLo = 1u << 0;
inline constexpr std::uint8_t kEdgeXHi = 1u << 1;
inline constexpr std::uint8_t kEdgeYLo = 1u << 2;
inline constexpr std::uint8_t kEdgeYHi = 1u << 3;

/// One equivalence class of block positions within a launch.
struct BlockClass {
  std::uint64_t phase_in = 0;   ///< input base-address shift mod the segment lcm
  std::uint64_t phase_out = 0;  ///< output base-address shift mod the segment lcm
  std::uint8_t edges = 0;       ///< boundary adjacency (kEdge* bits)

  friend bool operator==(const BlockClass&, const BlockClass&) = default;
};

/// Partition of one launch's blocks into position classes.  Blocks are
/// numbered serially (b = by * nbx + bx), matching the runner's sweep
/// order; each class's representative is its lowest-numbered member.
struct BlockClassMap {
  std::vector<std::uint32_t> class_of;      ///< class index per serial block
  std::vector<std::size_t> representative;  ///< serial block index per class
  std::vector<BlockClass> classes;          ///< the distinct classes

  [[nodiscard]] std::size_t num_classes() const { return classes.size(); }
  [[nodiscard]] std::size_t num_blocks() const { return class_of.size(); }
  [[nodiscard]] bool is_representative(std::size_t b) const {
    return representative[class_of[b]] == b;
  }
};

/// The address-shift modulus under which coalescing is translation
/// invariant: lcm of the load and store segment sizes.  Both are powers
/// of two on every modelled device, so this is simply the larger one,
/// but the lcm is computed so an exotic DeviceSpec stays correct.
[[nodiscard]] std::uint64_t phase_modulus(const DeviceSpec& device);

/// Classifies the nbx x nby blocks of one launch over grids laid out as
/// @p in / @p out, tiled tile_w x tile_h elements of @p elem_bytes each.
/// An empty launch (nbx or nby <= 0) yields an empty map.
[[nodiscard]] BlockClassMap classify_blocks(const GridLayout& in, const GridLayout& out,
                                            int tile_w, int tile_h, int nbx, int nby,
                                            std::size_t elem_bytes,
                                            std::uint64_t modulus);

}  // namespace inplane::gpusim
