#include "gpusim/global_memory.hpp"

#include <cstring>
#include <string>

#include "core/status.hpp"
#include "gpusim/fault_injector.hpp"

namespace inplane::gpusim {

namespace {
constexpr std::uint64_t kBaseAlign = 512;

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) { return ((v + a - 1) / a) * a; }
}  // namespace

BufferId GlobalMemory::register_mapping(Mapping m) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  if (buffers_.size() == kMaxBuffers) {
    throw InvalidConfigError("GlobalMemory: mapped buffer limit reached");
  }
  m.base = align_up(next_base_, kBaseAlign);
  next_base_ = m.base + m.size + kBaseAlign;
  buffers_.push_back(m);
  // Publish after the element is fully constructed so concurrent lookups
  // never observe a half-written Mapping.
  count_.store(buffers_.size(), std::memory_order_release);
  return BufferId{buffers_.size() - 1};
}

BufferId GlobalMemory::map(std::span<std::byte> host_bytes) {
  Mapping m;
  m.size = host_bytes.size();
  m.host = host_bytes.data();
  m.host_ro = host_bytes.data();
  return register_mapping(m);
}

BufferId GlobalMemory::map_readonly(std::span<const std::byte> host_bytes) {
  Mapping m;
  m.size = host_bytes.size();
  m.host = nullptr;
  m.host_ro = host_bytes.data();
  return register_mapping(m);
}

std::uint64_t GlobalMemory::base(BufferId id) const {
  if (!id.valid() || id.value >= count_.load(std::memory_order_acquire)) {
    throw WildAccessError("GlobalMemory::base: invalid buffer id");
  }
  return buffers_[id.value].base;
}

void GlobalMemory::set_fault_context(const FaultInjector* faults,
                                     std::int64_t device_index) {
  faults_ = faults;
  device_index_ = device_index;
}

void GlobalMemory::check_device_alive() const {
  if (faults_ != nullptr && faults_->is_device_lost(device_index_)) [[unlikely]] {
    throw DeviceLostError("GlobalMemory: device " + std::to_string(device_index_) +
                          " is lost; its address space is gone");
  }
}

const GlobalMemory::Mapping& GlobalMemory::locate(std::uint64_t vaddr,
                                                  std::size_t n) const {
  const std::size_t count = count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const Mapping& m = buffers_[i];
    if (vaddr >= m.base && vaddr + n <= m.base + m.size) return m;
  }
  throw WildAccessError("GlobalMemory: access to unmapped address " +
                        std::to_string(vaddr) + " (+" + std::to_string(n) + ")");
}

void GlobalMemory::read(std::uint64_t vaddr, void* dst, std::size_t n) const {
  check_device_alive();
  const Mapping& m = locate(vaddr, n);
  std::memcpy(dst, m.host_ro + (vaddr - m.base), n);
}

void GlobalMemory::write(std::uint64_t vaddr, const void* src, std::size_t n) {
  check_device_alive();
  const Mapping& m = locate(vaddr, n);
  if (m.host == nullptr) {
    throw ReadOnlyViolationError("GlobalMemory::write: buffer is mapped read-only");
  }
  std::memcpy(m.host + (vaddr - m.base), src, n);
}

}  // namespace inplane::gpusim
