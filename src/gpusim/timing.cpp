#include "gpusim/timing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace inplane::gpusim {

namespace {

constexpr double kSyncCycles = 16.0;   // barrier cost per __syncthreads()
constexpr double kLatencyPhases = 2.0; // dependent memory phases per plane
constexpr int kIlpCap = 4;             // diminishing returns of register tiling

/// Cycles one stage of @p blocks concurrent blocks takes on one SM.
double stage_cycles(const DeviceSpec& dev, const TimingInput& in, int blocks,
                    CycleBreakdown* breakdown) {
  const TraceStats& t = in.per_plane;
  const double b = static_cast<double>(blocks);
  const int warps_per_block =
      (in.resources.threads + dev.warp_size - 1) / dev.warp_size;
  const double resident_warps = b * warps_per_block;

  // --- DRAM bandwidth, capped by memory-level parallelism (Little's law).
  const double bytes = static_cast<double>(t.bytes_transferred());
  const double loads_per_warp =
      t.load_instrs == 0
          ? 0.0
          : static_cast<double>(t.load_instrs) / warps_per_block;
  const double avg_bytes_per_load =
      t.load_instrs == 0
          ? 0.0
          : static_cast<double>(t.bytes_transferred_ld) /
                static_cast<double>(t.load_instrs);
  const double in_flight_bytes =
      resident_warps * std::min(loads_per_warp, dev.max_outstanding_loads_per_warp) *
      avg_bytes_per_load;
  const double bw_demand_per_latency =
      dev.bw_bytes_per_cycle_per_sm() * dev.mem_latency_cycles;
  const double utilisation =
      bw_demand_per_latency > 0.0
          ? std::clamp(in_flight_bytes / bw_demand_per_latency, 0.05, 1.0)
          : 1.0;
  const double c_mem = b * bytes / (dev.bw_bytes_per_cycle_per_sm() * utilisation);

  // --- LD/ST pipe: global instructions plus shared accesses and replays.
  const double ldst_instrs = static_cast<double>(t.load_instrs + t.store_instrs +
                                                 t.smem_instrs + t.smem_replays);
  const double c_ldst = b * ldst_instrs / dev.ldst_instr_per_cycle();

  // --- Compute pipe (FMA-class issue; DP runs at the device's DP ratio).
  const double compute_rate =
      dev.warp_instr_per_cycle() * (in.is_double ? dev.dp_throughput_ratio : 1.0);
  const double c_comp = b * static_cast<double>(t.compute_instrs) / compute_rate;

  // --- Exposed memory latency: occupancy x register-tiling ILP must cover
  //     latency_hiding_warps for the SM to stay busy across load->use gaps.
  const double effective_warps =
      resident_warps * std::min(in.ilp, kIlpCap);
  const double hide = std::min(1.0, effective_warps / dev.latency_hiding_warps);
  const double c_lat = kLatencyPhases * dev.mem_latency_cycles * (1.0 - hide);

  // --- Barriers.
  const double c_sync = static_cast<double>(t.syncs) * kSyncCycles;

  if (breakdown != nullptr) {
    breakdown->mem = c_mem;
    breakdown->ldst = c_ldst;
    breakdown->compute = c_comp;
    breakdown->latency = c_lat;
    breakdown->sync = c_sync;
  }
  return std::max({c_mem, c_ldst, c_comp}) + c_lat + c_sync;
}

}  // namespace

KernelTiming estimate_timing(const DeviceSpec& device, const TimingInput& input) {
  KernelTiming timing;
  input.grid.validate();
  if (input.tile_w <= 0 || input.tile_h <= 0) {
    timing.invalid_reason = "non-positive tile size";
    return timing;
  }
  if (input.grid.nx % input.tile_w != 0 || input.grid.ny % input.tile_h != 0) {
    timing.invalid_reason = "tile does not divide grid";
    return timing;
  }

  timing.occupancy = Occupancy::compute(device, input.resources);
  if (timing.occupancy.active_blocks == 0) {
    timing.invalid_reason = timing.occupancy.invalid_reason;
    return timing;
  }

  // Eqn. (6): blocks needed to cover one plane.
  const long blks = static_cast<long>(input.grid.nx / input.tile_w) *
                    static_cast<long>(input.grid.ny / input.tile_h);
  const int act = timing.occupancy.active_blocks;
  const long per_round = static_cast<long>(act) * device.sm_count;
  // Eqn. (8): stages per plane.
  const long stages = (blks + per_round - 1) / per_round;
  // Eqn. (9): remaining blocks per SM in the last stage.
  const long rem_total = blks - (stages - 1) * per_round;
  const int rem_blocks =
      static_cast<int>((rem_total + device.sm_count - 1) / device.sm_count);

  const double t_full = stage_cycles(device, input, act, &timing.per_plane_sm);
  const double t_rem = stage_cycles(device, input, rem_blocks, nullptr);
  const double plane_cycles = static_cast<double>(stages - 1) * t_full + t_rem;

  // r extra sweep steps fill/drain the in-plane register pipeline.
  const double planes = static_cast<double>(input.grid.nz) + input.radius;
  const double total_cycles = plane_cycles * planes;
  const double seconds = total_cycles / (device.clock_ghz * 1e9);

  timing.valid = true;
  timing.stages = static_cast<int>(stages);
  timing.rem_blocks = rem_blocks;
  timing.seconds = seconds;
  timing.mpoints_per_s = static_cast<double>(input.grid.volume()) / seconds / 1e6;
  const double flops_per_plane_block = static_cast<double>(input.per_plane.flops);
  const double total_flops = flops_per_plane_block * static_cast<double>(blks) *
                             static_cast<double>(input.grid.nz);
  timing.gflops = total_flops / seconds / 1e9;
  timing.load_efficiency = input.per_plane.load_efficiency();

  const CycleBreakdown& c = timing.per_plane_sm;
  const double busy = std::max({c.mem, c.ldst, c.compute});
  // An all-zero trace (e.g. a degenerate kernel that issues nothing) has
  // busy == latency == sync == 0; define its utilisation as 0 rather than
  // letting 0/0 poison the field with NaN.
  const double plane_total = busy + c.latency + c.sync;
  timing.bw_utilisation = plane_total > 0.0 ? c.mem / plane_total : 0.0;
  if (c.latency > busy) {
    timing.bottleneck = "latency";
  } else if (busy == c.mem) {
    timing.bottleneck = "bandwidth";
  } else if (busy == c.ldst) {
    timing.bottleneck = "ldst";
  } else {
    timing.bottleneck = "compute";
  }
  return timing;
}

}  // namespace inplane::gpusim
