#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace inplane::gpusim {

Occupancy Occupancy::compute(const DeviceSpec& device, const KernelResources& res) {
  Occupancy occ;
  if (res.threads <= 0) {
    occ.invalid_reason = "no threads";
    return occ;
  }
  if (res.threads > device.max_threads_per_block) {
    occ.invalid_reason = "threads per block over device limit";
    return occ;
  }
  if (res.regs_per_thread > device.max_regs_per_thread) {
    occ.invalid_reason = "register usage over per-thread limit";
    return occ;
  }
  if (res.smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
    occ.invalid_reason = "shared memory over per-SM limit";
    return occ;
  }
  occ.warps_per_block = (res.threads + device.warp_size - 1) / device.warp_size;

  const long regs_per_block =
      static_cast<long>(res.regs_per_thread) * static_cast<long>(res.threads);
  const int by_regs = regs_per_block > 0
                          ? static_cast<int>(device.regs_per_sm / regs_per_block)
                          : device.max_blocks_per_sm;
  const int by_smem =
      res.smem_bytes > 0
          ? static_cast<int>(static_cast<std::size_t>(device.smem_per_sm) /
                             res.smem_bytes)
          : device.max_blocks_per_sm;
  const int by_warps = device.max_warps_per_sm / occ.warps_per_block;
  const int by_blocks = device.max_blocks_per_sm;

  occ.active_blocks = std::min({by_regs, by_smem, by_warps, by_blocks});
  if (occ.active_blocks <= 0) {
    occ.active_blocks = 0;
    occ.limiter = OccupancyLimiter::Invalid;
    occ.invalid_reason = "a single block exceeds SM resources";
    return occ;
  }
  if (occ.active_blocks == by_regs) {
    occ.limiter = OccupancyLimiter::Registers;
  } else if (occ.active_blocks == by_smem) {
    occ.limiter = OccupancyLimiter::SharedMem;
  } else if (occ.active_blocks == by_warps) {
    occ.limiter = OccupancyLimiter::Warps;
  } else {
    occ.limiter = OccupancyLimiter::Blocks;
  }
  return occ;
}

std::string to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::Registers: return "registers";
    case OccupancyLimiter::SharedMem: return "shared memory";
    case OccupancyLimiter::Warps: return "warps";
    case OccupancyLimiter::Blocks: return "blocks";
    case OccupancyLimiter::Invalid: return "invalid";
  }
  return "unknown";
}

}  // namespace inplane::gpusim
