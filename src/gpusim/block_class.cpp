#include "gpusim/block_class.hpp"

#include <map>
#include <numeric>
#include <tuple>

namespace inplane::gpusim {

std::uint64_t phase_modulus(const DeviceSpec& device) {
  const auto ld = static_cast<std::uint64_t>(device.coalesce_bytes > 0
                                                 ? device.coalesce_bytes
                                                 : 1);
  const auto st = static_cast<std::uint64_t>(device.store_segment_bytes > 0
                                                 ? device.store_segment_bytes
                                                 : 1);
  return std::lcm(ld, st);
}

BlockClassMap classify_blocks(const GridLayout& in, const GridLayout& out,
                              int tile_w, int tile_h, int nbx, int nby,
                              std::size_t elem_bytes, std::uint64_t modulus) {
  BlockClassMap map;
  if (nbx <= 0 || nby <= 0 || tile_w <= 0 || tile_h <= 0) return map;
  if (modulus == 0) modulus = 1;

  const std::size_t nblocks =
      static_cast<std::size_t>(nbx) * static_cast<std::size_t>(nby);
  map.class_of.resize(nblocks);

  // Ordered map keeps class ids deterministic; launches have at most a
  // few dozen classes, so lookup cost is irrelevant next to tracing.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>, std::uint32_t>
      index_of;
  const auto pitch_in = static_cast<std::uint64_t>(in.pitch_x());
  const auto pitch_out = static_cast<std::uint64_t>(out.pitch_x());
  const auto elem = static_cast<std::uint64_t>(elem_bytes);

  for (int by = 0; by < nby; ++by) {
    for (int bx = 0; bx < nbx; ++bx) {
      const std::size_t b = static_cast<std::size_t>(by) *
                                static_cast<std::size_t>(nbx) +
                            static_cast<std::size_t>(bx);
      const auto x0 = static_cast<std::uint64_t>(bx) *
                      static_cast<std::uint64_t>(tile_w);
      const auto y0 = static_cast<std::uint64_t>(by) *
                      static_cast<std::uint64_t>(tile_h);
      BlockClass cls;
      cls.phase_in = (elem % modulus) * ((x0 + y0 * pitch_in) % modulus) % modulus;
      cls.phase_out = (elem % modulus) * ((x0 + y0 * pitch_out) % modulus) % modulus;
      if (bx == 0) cls.edges |= kEdgeXLo;
      if (bx == nbx - 1) cls.edges |= kEdgeXHi;
      if (by == 0) cls.edges |= kEdgeYLo;
      if (by == nby - 1) cls.edges |= kEdgeYHi;

      const auto [it, inserted] = index_of.try_emplace(
          std::make_tuple(cls.phase_in, cls.phase_out, cls.edges),
          static_cast<std::uint32_t>(map.classes.size()));
      if (inserted) {
        map.classes.push_back(cls);
        map.representative.push_back(b);
      }
      map.class_of[b] = it->second;
    }
  }
  return map;
}

}  // namespace inplane::gpusim
