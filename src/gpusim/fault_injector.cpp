#include "gpusim/fault_injector.hpp"

#include <algorithm>
#include <cstdlib>

namespace inplane::gpusim {

namespace {

/// splitmix64 — the standard 64-bit finalizer; every probabilistic draw
/// is `mix(seed ^ site) < p * 2^64`, a pure function of plan and site.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) { return mix(h ^ v); }

bool draw(std::uint64_t site_hash, double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(site_hash >> 11) * (1.0 / 9007199254740992.0);
  return u < probability;
}

bool matches(std::int64_t want, std::int64_t have) { return want < 0 || want == have; }

struct Clause {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> kv;
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n\r");
  std::size_t e = s.find_last_not_of(" \t\n\r");
  return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw InvalidConfigError("FaultPlan: bad integer for '" + key + "': " + value);
  }
  return v;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || v < 0.0) {
    throw InvalidConfigError("FaultPlan: bad probability for '" + key + "': " + value);
  }
  return v;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::BitFlip: return "bitflip";
    case FaultKind::StuckLoad: return "stuck";
    case FaultKind::TransientFault: return "transient";
    case FaultKind::Hang: return "hang";
    case FaultKind::DeviceLoss: return "devicelost";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      plan.seed = static_cast<std::uint64_t>(parse_int("seed", clause.substr(5)));
      continue;
    }
    const std::size_t colon = clause.find(':');
    const std::string kind_name = trim(clause.substr(0, colon));
    FaultRule rule;
    if (kind_name == "bitflip") {
      rule.kind = FaultKind::BitFlip;
    } else if (kind_name == "stuck") {
      rule.kind = FaultKind::StuckLoad;
    } else if (kind_name == "transient") {
      rule.kind = FaultKind::TransientFault;
    } else if (kind_name == "hang") {
      rule.kind = FaultKind::Hang;
    } else if (kind_name == "devicelost") {
      rule.kind = FaultKind::DeviceLoss;
    } else {
      throw InvalidConfigError("FaultPlan: unknown fault kind '" + kind_name +
                               "' (bitflip | stuck | transient | hang | devicelost)");
    }
    if (colon != std::string::npos) {
      for (const std::string& kv_raw : split(clause.substr(colon + 1), ',')) {
        const std::string kv = trim(kv_raw);
        if (kv.empty()) continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw InvalidConfigError("FaultPlan: expected key=value, got '" + kv + "'");
        }
        const std::string key = trim(kv.substr(0, eq));
        const std::string value = trim(kv.substr(eq + 1));
        if (key == "p") {
          rule.probability = parse_double(key, value);
        } else if (key == "cp") {
          rule.candidate_probability = parse_double(key, value);
        } else if (key == "block") {
          rule.block = parse_int(key, value);
        } else if (key == "event") {
          rule.event = parse_int(key, value);
        } else if (key == "lane") {
          rule.lane = parse_int(key, value);
        } else if (key == "attempt") {
          rule.attempt = parse_int(key, value);
        } else if (key == "candidate") {
          rule.candidate = parse_int(key, value);
        } else if (key == "device") {
          rule.device = parse_int(key, value);
        } else if (key == "step") {
          rule.step = parse_int(key, value);
        } else if (key == "bit") {
          rule.bit = static_cast<int>(parse_int(key, value));
        } else if (key == "space") {
          if (value == "global") {
            rule.space = FaultSpace::Global;
          } else if (value == "shared") {
            rule.space = FaultSpace::Shared;
          } else if (value == "any") {
            rule.space = FaultSpace::Any;
          } else {
            throw InvalidConfigError("FaultPlan: bad space '" + value +
                                     "' (global | shared | any)");
          }
        } else {
          throw InvalidConfigError("FaultPlan: unknown key '" + key + "'");
        }
      }
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

bool FaultInjector::fires(const FaultRule& rule, double probability,
                          std::uint64_t site_hash) const {
  // An exact trigger (any pinned site field) fires unconditionally once
  // the match checks in the caller passed and no probability was given.
  const bool exact = rule.block >= 0 || rule.event >= 0 || rule.lane >= 0 ||
                     rule.candidate >= 0 || rule.device >= 0 || rule.step >= 0;
  if (probability > 0.0) return draw(site_hash, probability);
  return exact;
}

std::optional<FaultInjector::LoadFault> FaultInjector::on_load(
    FaultSpace space, std::int64_t attempt, std::int64_t block, std::int64_t event,
    std::int64_t lane, std::uint64_t vaddr) const {
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.kind != FaultKind::BitFlip && rule.kind != FaultKind::StuckLoad &&
        rule.kind != FaultKind::TransientFault) {
      continue;
    }
    if (rule.candidate_probability > 0.0 || rule.candidate >= 0) continue;
    if (rule.space != FaultSpace::Any && rule.space != space) continue;
    if (!matches(rule.attempt, attempt) || !matches(rule.block, block) ||
        !matches(rule.event, event) || !matches(rule.lane, lane)) {
      continue;
    }
    std::uint64_t h = combine(plan_.seed, r);
    h = combine(h, static_cast<std::uint64_t>(attempt));
    h = combine(h, static_cast<std::uint64_t>(block));
    h = combine(h, static_cast<std::uint64_t>(event));
    h = combine(h, static_cast<std::uint64_t>(lane));
    if (!fires(rule, rule.probability, h)) continue;
    LoadFault fault;
    fault.kind = rule.kind;
    fault.bit = rule.bit >= 0 ? rule.bit
                              : static_cast<int>(combine(h, vaddr) % 32);
    return fault;
  }
  return std::nullopt;
}

std::optional<FaultKind> FaultInjector::on_step(std::int64_t attempt,
                                                std::int64_t block,
                                                std::int64_t event) const {
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.kind != FaultKind::Hang && rule.kind != FaultKind::DeviceLoss) continue;
    // Device-scoped loss rules (device/step pinned) belong to the
    // multi-GPU layer, not per-block stepping.
    if (rule.device >= 0 || rule.step >= 0) continue;
    if (rule.candidate_probability > 0.0 || rule.candidate >= 0) continue;
    if (!matches(rule.attempt, attempt) || !matches(rule.block, block) ||
        !matches(rule.event, event)) {
      continue;
    }
    std::uint64_t h = combine(plan_.seed, 0x57ull + r);
    h = combine(h, static_cast<std::uint64_t>(attempt));
    h = combine(h, static_cast<std::uint64_t>(block));
    h = combine(h, static_cast<std::uint64_t>(event));
    if (fires(rule, rule.probability, h)) return rule.kind;
  }
  return std::nullopt;
}

std::optional<FaultKind> FaultInjector::on_candidate(std::int64_t candidate,
                                                     std::int64_t attempt) const {
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.candidate_probability <= 0.0 && rule.candidate < 0) continue;
    if (!matches(rule.attempt, attempt) || !matches(rule.candidate, candidate)) {
      continue;
    }
    std::uint64_t h = combine(plan_.seed, 0xca0ull + r);
    h = combine(h, static_cast<std::uint64_t>(candidate));
    h = combine(h, static_cast<std::uint64_t>(attempt));
    if (rule.candidate_probability > 0.0
            ? draw(h, rule.candidate_probability)
            : true /* exact candidate pin already matched */) {
      return rule.kind;
    }
  }
  return std::nullopt;
}

bool FaultInjector::device_lost(std::int64_t device, std::int64_t step) const {
  if (is_device_lost(device)) return true;
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.kind != FaultKind::DeviceLoss) continue;
    if (rule.device < 0 && rule.step < 0 && rule.probability <= 0.0) continue;
    if (!matches(rule.device, device)) continue;
    // A step-pinned rule means "dies at step S": lost for all step >= S.
    if (rule.step >= 0 && step < rule.step) continue;
    std::uint64_t h = combine(plan_.seed, 0xdeull + r);
    h = combine(h, static_cast<std::uint64_t>(device));
    h = combine(h, static_cast<std::uint64_t>(step));
    if (rule.probability > 0.0 ? draw(h, rule.probability) : true) return true;
  }
  return false;
}

void FaultInjector::mark_device_lost(std::int64_t device) const {
  if (device < 0 || device >= 64) return;
  lost_devices_.fetch_or(1ull << device, std::memory_order_acq_rel);
}

bool FaultInjector::is_device_lost(std::int64_t device) const {
  if (device < 0 || device >= 64) return false;
  return (lost_devices_.load(std::memory_order_acquire) >> device) & 1ull;
}

void FaultInjector::record(const FaultEvent& e) const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.push_back(e);
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> copy;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    copy = log_;
  }
  std::sort(copy.begin(), copy.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.attempt != b.attempt) return a.attempt < b.attempt;
    if (a.candidate != b.candidate) return a.candidate < b.candidate;
    if (a.block != b.block) return a.block < b.block;
    if (a.event != b.event) return a.event < b.event;
    return a.lane < b.lane;
  });
  return copy;
}

std::size_t FaultInjector::event_count() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return log_.size();
}

void FaultInjector::clear_events() const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.clear();
}

}  // namespace inplane::gpusim
