#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace inplane::gpusim {

/// Handle to a buffer registered with GlobalMemory.
struct BufferId {
  std::size_t value = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const { return value != static_cast<std::size_t>(-1); }
};

/// The simulated GPU's global address space.
///
/// Host-side buffers (the flat storage of Grid3 instances) are mapped at
/// disjoint, 512-byte-aligned virtual base addresses.  Kernels compute
/// *virtual* byte addresses (base + Grid3::byte_offset) so that the
/// coalescer sees the same alignment the real card would; functional reads
/// and writes are translated back to host pointers here.
class GlobalMemory {
 public:
  /// Maps @p bytes of host storage into the simulated address space.
  /// The span must outlive all kernel executions that use the id.
  BufferId map(std::span<std::byte> host_bytes);

  /// Read-only mapping (functional writes through this id will throw).
  BufferId map_readonly(std::span<const std::byte> host_bytes);

  /// Virtual base address of a mapped buffer.
  [[nodiscard]] std::uint64_t base(BufferId id) const;

  /// Functional read of @p n bytes at virtual address @p vaddr into @p dst.
  /// Throws std::out_of_range if the range is unmapped or crosses a buffer
  /// boundary (a wild address — in a real kernel this is the bug the CPU
  /// verification of section IV-B exists to catch).
  void read(std::uint64_t vaddr, void* dst, std::size_t n) const;

  /// Functional write of @p n bytes from @p src to virtual address @p vaddr.
  void write(std::uint64_t vaddr, const void* src, std::size_t n);

  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }

 private:
  struct Mapping {
    std::uint64_t base = 0;
    std::size_t size = 0;
    std::byte* host = nullptr;        // null for read-only mappings
    const std::byte* host_ro = nullptr;
  };

  const Mapping& locate(std::uint64_t vaddr, std::size_t n) const;

  std::vector<Mapping> buffers_;
  std::uint64_t next_base_ = 0x1000;  // never map address 0
};

}  // namespace inplane::gpusim
