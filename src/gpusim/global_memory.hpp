#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace inplane::gpusim {

class FaultInjector;

/// Handle to a buffer registered with GlobalMemory.
struct BufferId {
  std::size_t value = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const { return value != static_cast<std::size_t>(-1); }
};

/// The simulated GPU's global address space.
///
/// Host-side buffers (the flat storage of Grid3 instances) are mapped at
/// disjoint, 512-byte-aligned virtual base addresses.  Kernels compute
/// *virtual* byte addresses (base + Grid3::byte_offset) so that the
/// coalescer sees the same alignment the real card would; functional reads
/// and writes are translated back to host pointers here.
///
/// Thread safety: map()/map_readonly() may be called concurrently (they
/// serialise on an internal mutex), and base()/read()/write() are safe
/// from any number of threads concurrently with each other *and* with
/// in-progress mappings — lookups only ever see fully published mappings.
/// Concurrent write()s to overlapping byte ranges are the caller's data
/// race, exactly as on a real GPU; the parallel runner only ever hands
/// disjoint output tiles to concurrent blocks.
class GlobalMemory {
 public:
  GlobalMemory() { buffers_.reserve(kMaxBuffers); }

  /// Maps @p bytes of host storage into the simulated address space.
  /// The span must outlive all kernel executions that use the id.
  BufferId map(std::span<std::byte> host_bytes);

  /// Read-only mapping (functional writes through this id will throw).
  BufferId map_readonly(std::span<const std::byte> host_bytes);

  /// Virtual base address of a mapped buffer.
  [[nodiscard]] std::uint64_t base(BufferId id) const;

  /// Functional read of @p n bytes at virtual address @p vaddr into @p dst.
  /// Throws std::out_of_range if the range is unmapped or crosses a buffer
  /// boundary (a wild address — in a real kernel this is the bug the CPU
  /// verification of section IV-B exists to catch).
  void read(std::uint64_t vaddr, void* dst, std::size_t n) const;

  /// Functional write of @p n bytes from @p src to virtual address @p vaddr.
  void write(std::uint64_t vaddr, const void* src, std::size_t n);

  [[nodiscard]] std::size_t buffer_count() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Wires this address space to a fault injector: once @p faults marks
  /// @p device_index lost, every subsequent read/write throws
  /// DeviceLostError — the memory of a dead device is gone.  Passing
  /// nullptr (the default state) disables the check entirely.
  void set_fault_context(const FaultInjector* faults, std::int64_t device_index);

 private:
  struct Mapping {
    std::uint64_t base = 0;
    std::size_t size = 0;
    std::byte* host = nullptr;        // null for read-only mappings
    const std::byte* host_ro = nullptr;
  };

  // Capacity is reserved up front so push_back never reallocates and
  // lock-free readers can walk [0, count_) while a mapping is appended.
  static constexpr std::size_t kMaxBuffers = 1024;

  BufferId register_mapping(Mapping m);
  const Mapping& locate(std::uint64_t vaddr, std::size_t n) const;
  void check_device_alive() const;

  const FaultInjector* faults_ = nullptr;
  std::int64_t device_index_ = 0;
  std::vector<Mapping> buffers_;
  std::atomic<std::size_t> count_{0};  // published mappings (release/acquire)
  std::mutex map_mutex_;               // serialises map()/map_readonly()
  std::uint64_t next_base_ = 0x1000;   // never map address 0 (under map_mutex_)
};

}  // namespace inplane::gpusim
