#include "gpusim/abft.hpp"

#include <cstring>

namespace inplane::gpusim {

void AbftSink::observe_store(std::int64_t block, std::uint64_t vaddr,
                             const void* src, std::uint32_t bytes) {
  if (block < 0 || static_cast<std::size_t>(block) >= table_.size()) return;
  if (vaddr < base_) return;
  const std::uint64_t offset = vaddr - base_;
  if (offset % elem_size_ != 0) return;
  std::size_t idx = static_cast<std::size_t>(offset / elem_size_);
  const std::size_t n = bytes / elem_size_;
  const auto* raw = static_cast<const unsigned char*>(src);
  std::vector<PlaneSums>& row = table_[static_cast<std::size_t>(block)];
  for (std::size_t e = 0; e < n; ++e, ++idx) {
    if (idx >= allocated_) return;
    const int k = static_cast<int>(idx / plane_stride_) - halo_;
    if (k < 0 || k >= nz_) continue;
    const auto q = static_cast<double>(idx % plane_stride_);
    double v = 0.0;
    if (elem_size_ == 8) {
      double d;
      std::memcpy(&d, raw + e * 8, 8);
      v = d;
    } else {
      float f;
      std::memcpy(&f, raw + e * 4, 4);
      v = static_cast<double>(f);
    }
    row[static_cast<std::size_t>(k)].s0 += v;
    row[static_cast<std::size_t>(k)].s1 += q * v;
  }
}

}  // namespace inplane::gpusim
