#pragma once

#include <string>

#include "gpusim/device.hpp"

namespace inplane::gpusim {

/// Serialises a device description to a simple `key = value` text format,
/// so new GPUs can be modelled without recompiling (e.g., for the CLI's
/// `--device-file` flag).  Unknown keys are rejected to catch typos.
///
///   name = GeForce GTX580
///   arch = fermi            # fermi | kepler
///   sm_count = 16
///   clock_ghz = 1.544
///   ...
[[nodiscard]] std::string device_to_text(const DeviceSpec& device);

/// Parses the device_to_text format; missing keys keep DeviceSpec
/// defaults.  Throws std::runtime_error on malformed lines or unknown
/// keys.
[[nodiscard]] DeviceSpec device_from_text(const std::string& text);

/// Convenience file wrappers.
void save_device(const DeviceSpec& device, const std::string& path);
[[nodiscard]] DeviceSpec load_device(const std::string& path);

}  // namespace inplane::gpusim
