#pragma once

#include <cstdint>
#include <span>

namespace inplane::gpusim {

/// One lane's slice of a warp-wide global memory access.
struct LaneAccess {
  std::uint64_t addr = 0;  ///< starting byte address (virtual)
  std::uint32_t bytes = 0; ///< access width (elem size * vector width)
  bool active = true;      ///< false for predicated-off lanes
};

/// Result of coalescing one warp-wide access.
struct CoalesceResult {
  std::uint64_t transactions = 0;      ///< aligned segments touched
  std::uint64_t bytes_requested = 0;   ///< sum of active lanes' widths
  std::uint64_t bytes_transferred = 0; ///< transactions * segment size
  bool any_active = false;             ///< false => instruction not issued
};

/// Coalesces the active lanes of a warp access into aligned memory
/// segments of @p segment_bytes (128 for Fermi L1 lines, 32 for Kepler L2
/// segments).  A transaction is counted for every distinct segment that
/// any active lane's [addr, addr+bytes) range overlaps — the hardware rule
/// both architectures implement for naturally-aligned segments.
[[nodiscard]] CoalesceResult coalesce(std::span<const LaneAccess> lanes,
                                      std::uint32_t segment_bytes);

}  // namespace inplane::gpusim
