#include "gpusim/device_file.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/status.hpp"

namespace inplane::gpusim {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

std::string device_to_text(const DeviceSpec& d) {
  std::ostringstream o;
  o.precision(17);  // round-trip doubles exactly
  o << "name = " << d.name << "\n";
  o << "arch = " << (d.arch == Arch::Fermi ? "fermi" : "kepler") << "\n";
  o << "sm_count = " << d.sm_count << "\n";
  o << "cores_per_sm = " << d.cores_per_sm << "\n";
  o << "clock_ghz = " << d.clock_ghz << "\n";
  o << "peak_bw_gbs = " << d.peak_bw_gbs << "\n";
  o << "achieved_bw_gbs = " << d.achieved_bw_gbs << "\n";
  o << "coalesce_bytes = " << d.coalesce_bytes << "\n";
  o << "store_segment_bytes = " << d.store_segment_bytes << "\n";
  o << "mem_latency_cycles = " << d.mem_latency_cycles << "\n";
  o << "regs_per_sm = " << d.regs_per_sm << "\n";
  o << "smem_per_sm = " << d.smem_per_sm << "\n";
  o << "max_warps_per_sm = " << d.max_warps_per_sm << "\n";
  o << "max_blocks_per_sm = " << d.max_blocks_per_sm << "\n";
  o << "max_threads_per_block = " << d.max_threads_per_block << "\n";
  o << "max_regs_per_thread = " << d.max_regs_per_thread << "\n";
  o << "warp_size = " << d.warp_size << "\n";
  o << "ldst_units_per_sm = " << d.ldst_units_per_sm << "\n";
  o << "shared_banks = " << d.shared_banks << "\n";
  o << "dp_throughput_ratio = " << d.dp_throughput_ratio << "\n";
  o << "latency_hiding_warps = " << d.latency_hiding_warps << "\n";
  o << "max_outstanding_loads_per_warp = " << d.max_outstanding_loads_per_warp << "\n";
  return o.str();
}

DeviceSpec device_from_text(const std::string& text) {
  DeviceSpec d;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw IoError("device_from_text: line " + std::to_string(line_no) +
                    ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto as_int = [&] { return std::stoi(value); };
    const auto as_double = [&] { return std::stod(value); };
    if (key == "name") {
      d.name = value;
    } else if (key == "arch") {
      if (value == "fermi") {
        d.arch = Arch::Fermi;
      } else if (value == "kepler") {
        d.arch = Arch::Kepler;
      } else {
        throw IoError("device_from_text: unknown arch '" + value + "'");
      }
    } else if (key == "sm_count") {
      d.sm_count = as_int();
    } else if (key == "cores_per_sm") {
      d.cores_per_sm = as_int();
    } else if (key == "clock_ghz") {
      d.clock_ghz = as_double();
    } else if (key == "peak_bw_gbs") {
      d.peak_bw_gbs = as_double();
    } else if (key == "achieved_bw_gbs") {
      d.achieved_bw_gbs = as_double();
    } else if (key == "coalesce_bytes") {
      d.coalesce_bytes = as_int();
    } else if (key == "store_segment_bytes") {
      d.store_segment_bytes = as_int();
    } else if (key == "mem_latency_cycles") {
      d.mem_latency_cycles = as_double();
    } else if (key == "regs_per_sm") {
      d.regs_per_sm = as_int();
    } else if (key == "smem_per_sm") {
      d.smem_per_sm = as_int();
    } else if (key == "max_warps_per_sm") {
      d.max_warps_per_sm = as_int();
    } else if (key == "max_blocks_per_sm") {
      d.max_blocks_per_sm = as_int();
    } else if (key == "max_threads_per_block") {
      d.max_threads_per_block = as_int();
    } else if (key == "max_regs_per_thread") {
      d.max_regs_per_thread = as_int();
    } else if (key == "warp_size") {
      d.warp_size = as_int();
    } else if (key == "ldst_units_per_sm") {
      d.ldst_units_per_sm = as_int();
    } else if (key == "shared_banks") {
      d.shared_banks = as_int();
    } else if (key == "dp_throughput_ratio") {
      d.dp_throughput_ratio = as_double();
    } else if (key == "latency_hiding_warps") {
      d.latency_hiding_warps = as_double();
    } else if (key == "max_outstanding_loads_per_warp") {
      d.max_outstanding_loads_per_warp = as_double();
    } else {
      throw IoError("device_from_text: unknown key '" + key + "'");
    }
  }
  return d;
}

void save_device(const DeviceSpec& device, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw IoError("save_device: cannot open " + path);
  out << device_to_text(device);
}

DeviceSpec load_device(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("load_device: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return device_from_text(text.str());
}

}  // namespace inplane::gpusim
