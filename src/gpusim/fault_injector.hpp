#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace inplane::gpusim {

/// The fault kinds the simulated substrate can inject — the failure
/// modes real GPUs exhibit (ECC single-bit upsets, dropped loads,
/// runaway kernels, falling off the bus) that the recovery paths in the
/// runner, tuner and multi-GPU layers must survive.
enum class FaultKind {
  BitFlip,         ///< single-bit upset in loaded data (silent corruption)
  StuckLoad,       ///< load "completes" but leaves stale data in the target
  TransientFault,  ///< load fails loudly once; a retry is expected to succeed
  Hang,            ///< the block stops making progress (caught by the watchdog)
  DeviceLoss,      ///< the whole device disappears (sticky until reset)
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// Which memory space a load-level rule applies to.
enum class FaultSpace { Global, Shared, Any };

/// One declarative trigger.  A rule fires either *probabilistically*
/// (`probability` per eligible warp-level event, `candidate_probability`
/// per tuner candidate) or *exactly* (all non-wildcard fields match).
/// All draws are pure functions of (plan seed, site identity), so a plan
/// produces bit-identical fault sites at any host thread count.
struct FaultRule {
  FaultKind kind = FaultKind::BitFlip;
  FaultSpace space = FaultSpace::Global;

  double probability = 0.0;            ///< per warp-level load/step event
  double candidate_probability = 0.0;  ///< per auto-tuner candidate

  // Exact triggers; -1 means "any".
  std::int64_t block = -1;      ///< block serial index within the launch
  std::int64_t event = -1;      ///< per-block warp-op ordinal
  std::int64_t lane = -1;       ///< lane within the warp (load faults)
  std::int64_t attempt = -1;    ///< only on this retry attempt (0 = first run)
  std::int64_t candidate = -1;  ///< tuner candidate ordinal
  std::int64_t device = -1;     ///< multi-GPU device index (DeviceLoss)
  std::int64_t step = -1;       ///< multi-GPU sweep step (DeviceLoss)
  int bit = -1;                 ///< BitFlip: which bit; -1 = hash-derived
};

/// A seeded set of fault rules.  The text syntax (see docs/robustness.md):
///
///   seed=42; transient:cp=0.1,attempt=0; bitflip:p=1e-4,bit=30;
///   hang:block=7,event=100; devicelost:device=1,step=3
///
/// Clauses are ';'-separated; the first may set the seed; each remaining
/// clause is `kind:key=value,key=value,...` with kind one of bitflip |
/// stuck | transient | hang | devicelost and keys p, cp, block, event,
/// lane, attempt, candidate, device, step, bit, space (global|shared|any).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Parses the text syntax above.  Throws InvalidConfigError on
  /// malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
};

/// One fault that actually fired — the injector keeps a log so tests can
/// assert that fault *sites* are identical across thread counts.
struct FaultEvent {
  FaultKind kind = FaultKind::BitFlip;
  std::int64_t attempt = 0;
  std::int64_t block = -1;
  std::int64_t event = -1;
  std::int64_t lane = -1;
  std::uint64_t vaddr = 0;
  int bit = -1;
  std::int64_t candidate = -1;
  std::int64_t device = -1;
  std::int64_t step = -1;
};

/// Deterministic, seeded fault injector.
///
/// Decision methods are const and thread-safe; every probabilistic draw
/// hashes (seed, site identity) with splitmix64, so whether a given site
/// faults depends only on the plan — never on scheduling.  The injector
/// is *passive*: BlockCtx, the guarded runner, the tuner and the
/// multi-GPU layer query it at their fault points and implement the
/// fault themselves.  When no injector is installed those layers skip a
/// single null-pointer check, so the disabled path costs nothing
/// measurable (see bench_fault_overhead).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// A load-level fault decision: which kind, and for BitFlip which bit.
  struct LoadFault {
    FaultKind kind = FaultKind::BitFlip;
    int bit = 0;
  };

  /// Consulted by BlockCtx for each active lane of a warp-wide load.
  [[nodiscard]] std::optional<LoadFault> on_load(FaultSpace space, std::int64_t attempt,
                                                 std::int64_t block, std::int64_t event,
                                                 std::int64_t lane,
                                                 std::uint64_t vaddr) const;

  /// Consulted by BlockCtx once per warp-level operation ("stepping"):
  /// returns Hang or DeviceLoss when such a rule fires at this step.
  [[nodiscard]] std::optional<FaultKind> on_step(std::int64_t attempt,
                                                 std::int64_t block,
                                                 std::int64_t event) const;

  /// Consulted by the tuners before measuring candidate @p candidate
  /// (its ordinal in enumeration order).  Returns the fault kind the
  /// measurement should die of, if any.
  [[nodiscard]] std::optional<FaultKind> on_candidate(std::int64_t candidate,
                                                      std::int64_t attempt) const;

  /// Consulted by the multi-GPU layer: does device @p device die at (or
  /// before) sweep @p step?  Loss is sticky — once a (device, step) rule
  /// fires, later steps report the device lost too.
  [[nodiscard]] bool device_lost(std::int64_t device, std::int64_t step) const;

  /// Sticky device-loss state (set by whoever observes the loss first).
  void mark_device_lost(std::int64_t device) const;
  [[nodiscard]] bool is_device_lost(std::int64_t device) const;

  /// Fault-site log (appended by the layers that apply faults).
  void record(const FaultEvent& e) const;
  /// Log sorted by (attempt, candidate, block, event, lane) — a canonical
  /// order independent of host scheduling.
  [[nodiscard]] std::vector<FaultEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;
  void clear_events() const;

 private:
  [[nodiscard]] bool fires(const FaultRule& rule, double probability,
                           std::uint64_t site_hash) const;

  FaultPlan plan_;
  mutable std::atomic<std::uint64_t> lost_devices_{0};  // bitmask, device < 64
  mutable std::mutex log_mutex_;
  mutable std::vector<FaultEvent> log_;
};

}  // namespace inplane::gpusim
