#pragma once

#include <cstdint>

namespace inplane::gpusim {

/// Event counters accumulated while a simulated block executes.
///
/// All instruction counters are *warp-level*: one warp-wide load counts
/// once regardless of how many lanes are active (SIMT issue semantics).
/// Byte counters distinguish bytes *requested* by active lanes from bytes
/// *transferred* over the bus after coalescing into aligned segments —
/// their ratio is exactly the `gld_efficiency` profiler counter the paper
/// plots in Fig. 9.
struct TraceStats {
  // Global memory.
  std::uint64_t load_instrs = 0;        ///< warp-level global load instructions
  std::uint64_t store_instrs = 0;       ///< warp-level global store instructions
  std::uint64_t load_transactions = 0;  ///< coalesced memory transactions (loads)
  std::uint64_t store_transactions = 0; ///< coalesced memory transactions (stores)
  std::uint64_t bytes_requested_ld = 0;
  std::uint64_t bytes_transferred_ld = 0;
  std::uint64_t bytes_requested_st = 0;
  std::uint64_t bytes_transferred_st = 0;

  // Shared memory.
  std::uint64_t smem_instrs = 0;    ///< warp-level shared ld/st instructions
  std::uint64_t smem_replays = 0;   ///< extra cycles from bank conflicts

  // Compute.
  std::uint64_t compute_instrs = 0; ///< warp-level FMA/ADD/MUL instructions
  std::uint64_t flops = 0;          ///< per-lane flops (FMA = 2), paper-style

  // Control.
  std::uint64_t syncs = 0;          ///< __syncthreads()-equivalent barriers

  /// Counter-wise equality — the invariant the trace-memoization layer
  /// pins: a memoized launch must aggregate to *exactly* the unmemoized
  /// counters, not approximately.
  friend bool operator==(const TraceStats&, const TraceStats&) = default;

  TraceStats& operator+=(const TraceStats& o) {
    load_instrs += o.load_instrs;
    store_instrs += o.store_instrs;
    load_transactions += o.load_transactions;
    store_transactions += o.store_transactions;
    bytes_requested_ld += o.bytes_requested_ld;
    bytes_transferred_ld += o.bytes_transferred_ld;
    bytes_requested_st += o.bytes_requested_st;
    bytes_transferred_st += o.bytes_transferred_st;
    smem_instrs += o.smem_instrs;
    smem_replays += o.smem_replays;
    compute_instrs += o.compute_instrs;
    flops += o.flops;
    syncs += o.syncs;
    return *this;
  }

  [[nodiscard]] friend TraceStats operator+(TraceStats a, const TraceStats& b) {
    a += b;
    return a;
  }

  /// Total bytes moved over the bus (loads + stores, post-coalescing).
  [[nodiscard]] std::uint64_t bytes_transferred() const {
    return bytes_transferred_ld + bytes_transferred_st;
  }

  /// Global-load efficiency: requested / transferred (1.0 = perfectly
  /// coalesced).  Matches the definition used by Fig. 9.
  [[nodiscard]] double load_efficiency() const {
    return bytes_transferred_ld == 0
               ? 1.0
               : static_cast<double>(bytes_requested_ld) /
                     static_cast<double>(bytes_transferred_ld);
  }

  /// Divides every counter by @p n (for converting a multi-plane trace to
  /// per-plane averages).  Counters are rounded to nearest.
  [[nodiscard]] TraceStats scaled_down(std::uint64_t n) const;
};

}  // namespace inplane::gpusim
