#include "apps/app_kernel.hpp"

#include <stdexcept>

#include "kernels/kernel_common.hpp"

namespace inplane::apps {

using kernels::GridAccess;
using kernels::LaunchConfig;
using kernels::detail::kWarp;
using kernels::detail::load_columns_to_state;
using kernels::detail::load_rows_to_tile;
using kernels::detail::SmemTile;
using kernels::detail::smem_read_columns;
using kernels::detail::smem_write_columns;
using kernels::detail::store_columns;
using kernels::detail::ThreadState;

const char* to_string(AppMethod method) {
  return method == AppMethod::ForwardPlane ? "nvstencil" : "in-plane";
}

template <typename T>
struct AppKernel<T>::Work {
  ThreadState<T> state;
  std::vector<T> cur;   ///< [grid][tid * cols + col] centre values
  std::vector<T> part;  ///< [out][tid * cols + col] partials
  std::vector<T> emit;  ///< [out][tid * cols + col] completed outputs
  std::vector<T> nval;  ///< per-term neighbour scratch

  Work(int threads, int cols, int slots, int n_in, int n_out)
      : state(threads, cols, std::max(slots, 1)),
        cur(static_cast<std::size_t>(n_in) * static_cast<std::size_t>(threads) *
            static_cast<std::size_t>(cols)),
        part(static_cast<std::size_t>(n_out) * static_cast<std::size_t>(threads) *
             static_cast<std::size_t>(cols)),
        emit(part.size()),
        nval(static_cast<std::size_t>(threads) * static_cast<std::size_t>(cols)) {}
};

namespace {

/// Index of (tid, col) in a per-point scratch array.
std::size_t pidx(const LaunchConfig& cfg, int tid, int col) {
  return static_cast<std::size_t>(tid) *
             static_cast<std::size_t>(cfg.columns_per_thread()) +
         static_cast<std::size_t>(col);
}

/// Index into a [grid-or-output][point] scratch array.
std::size_t gidx(const LaunchConfig& cfg, int g, int tid, int col) {
  const auto n = static_cast<std::size_t>(cfg.threads()) *
                 static_cast<std::size_t>(cfg.columns_per_thread());
  return static_cast<std::size_t>(g) * n + pidx(cfg, tid, col);
}

}  // namespace

template <typename T>
AppKernel<T>::AppKernel(AppFormula formula, AppMethod method, LaunchConfig config)
    : formula_(std::move(formula)), method_(method), cfg_(config) {
  formula_.validate();
  if (cfg_.tx <= 0 || cfg_.ty <= 0 || cfg_.rx <= 0 || cfg_.ry <= 0) {
    throw std::invalid_argument("AppKernel: blocking factors must be positive");
  }
  if (cfg_.vec != 1 && cfg_.vec != 2 && cfg_.vec != 4) {
    throw std::invalid_argument("AppKernel: vec must be 1, 2 or 4");
  }
  if (static_cast<std::size_t>(cfg_.vec) * sizeof(T) > 16) {
    throw std::invalid_argument("AppKernel: vector load wider than 16 bytes");
  }
  zr_ = formula_.z_radius();
  qd_ = formula_.queue_depth();

  grids_.resize(static_cast<std::size_t>(formula_.n_inputs()));
  int slot = 0;
  std::uint32_t tile_base = 0;
  for (int g = 0; g < formula_.n_inputs(); ++g) {
    GridInfo& info = grids_[static_cast<std::size_t>(g)];
    info.rxy = formula_.xy_radius(g);
    info.staged = info.rxy > 0;
    info.centre = formula_.centre_read(g);
    info.back = formula_.back_depth(g);
    for (const Term& t : formula_.terms()) {
      if (t.grid == g && t.dk != 0) info.pipelined = true;
    }
    if (info.staged) {
      info.tile_base = tile_base;
      const SmemTile tile{cfg_.tile_w(), cfg_.tile_h(), info.rxy, sizeof(T), 0};
      tile_base += static_cast<std::uint32_t>(tile.bytes());
    }
    info.slot = slot;
    if (method_ == AppMethod::ForwardPlane) {
      if (info.pipelined) slot += 2 * zr_ + 1;
    } else {
      slot += info.back;
    }
  }
  smem_bytes_ = tile_base;
  queue_slot_ = slot;
  if (method_ == AppMethod::InPlaneFullSlice) slot += qd_ * formula_.n_outputs();
  state_slots_ = slot;
}

template <typename T>
int AppKernel<T>::input_align_offset(int g) const {
  const GridInfo& info = grids_[static_cast<std::size_t>(g)];
  return method_ == AppMethod::InPlaneFullSlice && info.staged ? info.rxy : 0;
}

template <typename T>
int AppKernel<T>::output_align_offset() const {
  for (int g = 0; g < formula_.n_inputs(); ++g) {
    const int off = input_align_offset(g);
    if (off > 0) return off;
  }
  return 0;
}

template <typename T>
gpusim::KernelResources AppKernel<T>::resources() const {
  gpusim::KernelResources res;
  res.threads = cfg_.threads();
  res.smem_bytes = smem_bytes_;
  const int regs_per_value = sizeof(T) == 8 ? 2 : 1;
  constexpr int kBaseRegs = 12;
  constexpr int kScratchValues = 4;
  res.regs_per_thread =
      kBaseRegs + regs_per_value * (state_slots_ * cfg_.columns_per_thread() +
                                    formula_.n_inputs() + kScratchValues);
  return res;
}

template <typename T>
std::optional<std::string> AppKernel<T>::validate(const gpusim::DeviceSpec& device,
                                                  const Extent3& extent) const {
  extent.validate();
  if (cfg_.threads() > device.max_threads_per_block) {
    return "threads per block over device limit";
  }
  if (smem_bytes_ > static_cast<std::size_t>(device.smem_per_sm)) {
    return "staged tiles over per-SM shared memory";
  }
  if (extent.nx % cfg_.tile_w() != 0) return "TX*RX does not divide grid x extent";
  if (extent.ny % cfg_.tile_h() != 0) return "TY*RY does not divide grid y extent";
  return std::nullopt;
}

template <typename T>
void AppKernel<T>::prime(gpusim::BlockCtx& ctx,
                         std::span<const GridAccess> inputs, int bx, int by,
                         Work& work) const {
  const int x0 = bx * cfg_.tile_w();
  const int y0 = by * cfg_.tile_h();
  work.state.reset();
  for (int g = 0; g < formula_.n_inputs(); ++g) {
    const GridInfo& info = grids_[static_cast<std::size_t>(g)];
    const GridAccess& in = inputs[static_cast<std::size_t>(g)];
    if (method_ == AppMethod::ForwardPlane && info.pipelined) {
      // Slots 1..2zr preloaded with planes -zr .. zr-1 (first sweep step's
      // shift-and-load completes the pipeline).
      for (int i = 1; i <= 2 * zr_; ++i) {
        const int z = -zr_ + (i - 1);
        load_columns_to_state<T>(ctx, in, cfg_, x0, y0, z,
                                 [&](int tid, int col) -> T& {
                                   return work.state.at(tid, col, info.slot + i);
                                 });
      }
    } else if (method_ == AppMethod::InPlaneFullSlice && info.back > 0) {
      for (int m = 1; m <= info.back; ++m) {
        load_columns_to_state<T>(ctx, in, cfg_, x0, y0, -m,
                                 [&](int tid, int col) -> T& {
                                   return work.state.at(tid, col, info.slot + m - 1);
                                 });
      }
    }
  }
}

template <typename T>
void AppKernel<T>::plane(gpusim::BlockCtx& ctx, std::span<const GridAccess> inputs,
                         std::span<GridAccess> outputs, int bx, int by, int k,
                         Work& work) const {
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const int x0 = bx * w;
  const int y0 = by * h;
  const int threads = cfg_.threads();
  const int cols = cfg_.columns_per_thread();
  const bool fn = ctx.functional();
  const bool inplane = method_ == AppMethod::InPlaneFullSlice;

  auto tile_of = [&](const GridInfo& info) {
    return SmemTile{w, h, info.rxy, sizeof(T), info.tile_base};
  };

  // ---- Load phase ---------------------------------------------------------
  for (int g = 0; g < formula_.n_inputs(); ++g) {
    const GridInfo& info = grids_[static_cast<std::size_t>(g)];
    const GridAccess& in = inputs[static_cast<std::size_t>(g)];
    if (inplane) {
      if (info.staged) {
        const SmemTile t = tile_of(info);
        const int r = info.rxy;
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0 + w + r, y0 - r,
                             y0 + h + r, k, cfg_.vec);
      } else if (info.centre) {
        load_columns_to_state<T>(ctx, in, cfg_, x0, y0, k, [&](int tid, int col) -> T& {
          return work.cur[gidx(cfg_, g, tid, col)];
        });
      }
    } else {
      if (info.pipelined) {
        // Advance the pipeline and stream in plane k + zr.
        if (fn) {
          for (int tid = 0; tid < threads; ++tid) {
            for (int col = 0; col < cols; ++col) {
              for (int i = 0; i < 2 * zr_; ++i) {
                work.state.at(tid, col, info.slot + i) =
                    work.state.at(tid, col, info.slot + i + 1);
              }
            }
          }
        }
        load_columns_to_state<T>(ctx, in, cfg_, x0, y0, k + zr_,
                                 [&](int tid, int col) -> T& {
                                   return work.state.at(tid, col,
                                                        info.slot + 2 * zr_);
                                 });
      }
      if (info.staged) {
        const SmemTile t = tile_of(info);
        const int r = info.rxy;
        if (info.pipelined) {
          // Interior from the pipeline's centre register (nvstencil style).
          smem_write_columns<T>(ctx, t, cfg_, [&](int tid, int col) {
            return work.state.at(tid, col, info.slot + zr_);
          });
        } else {
          load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0, y0 + h, k, 1);
        }
        // Halo strips and corners re-loaded from global plane k (Fig. 4).
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 + h, y0 + h + r, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0, y0 + h, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0, y0 + h, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 + h, y0 + h + r, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 + h,
                             y0 + h + r, k, 1);
      } else if (info.centre && !info.pipelined) {
        load_columns_to_state<T>(ctx, in, cfg_, x0, y0, k, [&](int tid, int col) -> T& {
          return work.cur[gidx(cfg_, g, tid, col)];
        });
      }
    }
  }
  ctx.sync();

  // ---- Centre values -------------------------------------------------------
  // Staged grids read their centre once from the tile; forward-method
  // pipelined grids (staged or not) take it from the pipeline register;
  // plain centre-only grids were already loaded in the load phase.
  for (int g = 0; g < formula_.n_inputs(); ++g) {
    const GridInfo& info = grids_[static_cast<std::size_t>(g)];
    if (!info.centre) continue;
    if (!inplane && info.pipelined) {
      if (fn) {
        for (int tid = 0; tid < threads; ++tid) {
          for (int col = 0; col < cols; ++col) {
            work.cur[gidx(cfg_, g, tid, col)] =
                work.state.at(tid, col, info.slot + zr_);
          }
        }
      }
      continue;
    }
    if (!info.staged) continue;
    const SmemTile t = tile_of(info);
    smem_read_columns<T>(ctx, t, cfg_, 0, 0, [&](int tid, int col, T v) {
      work.cur[gidx(cfg_, g, tid, col)] = v;
    });
  }

  // ---- Per-term accumulation ----------------------------------------------
  if (fn) std::fill(work.part.begin(), work.part.end(), T{});
  auto centre_of = [&](int g, int tid, int col) -> T {
    return work.cur[gidx(cfg_, g, tid, col)];
  };
  for (const Term& t : formula_.terms()) {
    const GridInfo& info = grids_[static_cast<std::size_t>(t.grid)];
    const T coeff = static_cast<T>(t.coeff);
    if (t.dk == 0 && (t.di != 0 || t.dj != 0)) {
      const SmemTile tile = tile_of(info);
      smem_read_columns<T>(ctx, tile, cfg_, t.di, t.dj, [&](int tid, int col, T v) {
        work.nval[pidx(cfg_, tid, col)] = v;
      });
      if (fn) {
        for (int tid = 0; tid < threads; ++tid) {
          for (int col = 0; col < cols; ++col) {
            T v = coeff * work.nval[pidx(cfg_, tid, col)];
            if (t.coeff_grid >= 0) v *= centre_of(t.coeff_grid, tid, col);
            work.part[gidx(cfg_, t.out, tid, col)] += v;
          }
        }
      }
    } else if (t.dk == 0) {
      if (fn) {
        for (int tid = 0; tid < threads; ++tid) {
          for (int col = 0; col < cols; ++col) {
            T v = coeff * centre_of(t.grid, tid, col);
            if (t.coeff_grid >= 0) v *= centre_of(t.coeff_grid, tid, col);
            work.part[gidx(cfg_, t.out, tid, col)] += v;
          }
        }
      }
    } else if (t.dk < 0) {
      if (fn) {
        for (int tid = 0; tid < threads; ++tid) {
          for (int col = 0; col < cols; ++col) {
            const T back =
                inplane ? work.state.at(tid, col, info.slot + (-t.dk) - 1)
                        : work.state.at(tid, col, info.slot + zr_ + t.dk);
            T v = coeff * back;
            if (t.coeff_grid >= 0) v *= centre_of(t.coeff_grid, tid, col);
            work.part[gidx(cfg_, t.out, tid, col)] += v;
          }
        }
      }
    } else {
      // dk > 0: forward method reads the pipeline; in-plane defers to the
      // queue update below.
      if (!inplane && fn) {
        for (int tid = 0; tid < threads; ++tid) {
          for (int col = 0; col < cols; ++col) {
            work.part[gidx(cfg_, t.out, tid, col)] +=
                coeff * work.state.at(tid, col, info.slot + zr_ + t.dk);
          }
        }
      }
    }
  }

  // ---- In-plane queue updates, emission and shifts (Eqns. (3)-(5)) --------
  if (inplane && fn) {
    for (int tid = 0; tid < threads; ++tid) {
      for (int col = 0; col < cols; ++col) {
        // Queue updates: each forward term feeds the output plane k - dk.
        for (const Term& t : formula_.terms()) {
          if (t.dk <= 0) continue;
          work.state.at(tid, col, queue_slot_ + t.out * qd_ + (t.dk - 1)) +=
              static_cast<T>(t.coeff) * centre_of(t.grid, tid, col);
        }
        for (int o = 0; o < formula_.n_outputs(); ++o) {
          const std::size_t e = gidx(cfg_, o, tid, col);
          if (qd_ == 0) {
            work.emit[e] = work.part[e];
            continue;
          }
          const int base = queue_slot_ + o * qd_;
          work.emit[e] = work.state.at(tid, col, base + qd_ - 1);
          for (int d = qd_ - 1; d >= 1; --d) {
            work.state.at(tid, col, base + d) = work.state.at(tid, col, base + d - 1);
          }
          work.state.at(tid, col, base) = work.part[e];
        }
        // Back-history shifts.
        for (int g = 0; g < formula_.n_inputs(); ++g) {
          const GridInfo& info = grids_[static_cast<std::size_t>(g)];
          if (info.back == 0) continue;
          for (int m = info.back - 1; m >= 1; --m) {
            work.state.at(tid, col, info.slot + m) =
                work.state.at(tid, col, info.slot + m - 1);
          }
          work.state.at(tid, col, info.slot) = centre_of(g, tid, col);
        }
      }
    }
  } else if (!inplane && fn) {
    for (std::size_t i = 0; i < work.part.size(); ++i) work.emit[i] = work.part[i];
  }

  // ---- Store ---------------------------------------------------------------
  const int store_k = inplane ? k - qd_ : k;
  if (store_k >= 0 && store_k < inputs[0].layout->nz()) {
    for (int o = 0; o < formula_.n_outputs(); ++o) {
      store_columns<T>(ctx, outputs[static_cast<std::size_t>(o)], cfg_, x0, y0,
                       store_k, [&](int tid, int col) {
                         return work.emit[gidx(cfg_, o, tid, col)];
                       });
    }
  }
  ctx.sync();

  // ---- Compute accounting ---------------------------------------------------
  std::uint64_t instrs_pp = 0;
  for (const Term& t : formula_.terms()) instrs_pp += t.coeff_grid >= 0 ? 2u : 1u;
  const auto warps = static_cast<std::uint64_t>(cfg_.warps(ctx.device()));
  const auto colsu = static_cast<std::uint64_t>(cols);
  const auto threadsu = static_cast<std::uint64_t>(threads);
  ctx.record_compute(warps * colsu * instrs_pp,
                     threadsu * colsu *
                         static_cast<std::uint64_t>(formula_.flops_per_point()));
}

template <typename T>
void AppKernel<T>::run_block(gpusim::BlockCtx& ctx,
                             std::span<const GridAccess> inputs,
                             std::span<GridAccess> outputs, int bx, int by) const {
  if (static_cast<int>(inputs.size()) != formula_.n_inputs() ||
      static_cast<int>(outputs.size()) != formula_.n_outputs()) {
    throw std::invalid_argument("AppKernel::run_block: grid count mismatch");
  }
  Work work(cfg_.threads(), cfg_.columns_per_thread(), state_slots_,
            formula_.n_inputs(), formula_.n_outputs());
  prime(ctx, inputs, bx, by, work);
  const int nz = inputs[0].layout->nz();
  const int sweep = method_ == AppMethod::InPlaneFullSlice ? nz + qd_ : nz;
  for (int k = 0; k < sweep; ++k) {
    plane(ctx, inputs, outputs, bx, by, k, work);
  }
}

template <typename T>
gpusim::TraceStats AppKernel<T>::trace_plane(const gpusim::DeviceSpec& device,
                                             const Extent3& extent) const {
  // Two layouts: one aligned for the staged/vectorised grids, one with
  // interior alignment for centre-only grids.
  const GridLayout aligned(extent, formula_.radius(), sizeof(T), 32,
                           output_align_offset());
  const GridLayout plain(extent, formula_.radius(), sizeof(T), 32, 0);
  gpusim::GlobalMemory gmem;  // never dereferenced in trace mode
  gpusim::BlockCtx ctx(device, gmem, smem_bytes_, gpusim::ExecMode::Trace);
  std::vector<GridAccess> inputs;
  std::vector<GridAccess> outputs;
  std::uint64_t base = 0x10000;
  const std::uint64_t stride = round_up(aligned.allocated_bytes(), 512) + 512;
  for (int g = 0; g < formula_.n_inputs(); ++g, base += stride) {
    inputs.push_back({input_align_offset(g) > 0 ? &aligned : &plain, base});
  }
  for (int o = 0; o < formula_.n_outputs(); ++o, base += stride) {
    outputs.push_back({&aligned, base});
  }
  Work work(cfg_.threads(), cfg_.columns_per_thread(), state_slots_,
            formula_.n_inputs(), formula_.n_outputs());
  const int k = std::min(extent.nz - 1, qd_ + 1);
  plane(ctx, inputs, outputs, 0, 0, k, work);
  return ctx.stats();
}

template <typename T>
std::vector<Grid3<T>> make_input_grids_for(const AppKernel<T>& kernel, Extent3 extent) {
  std::vector<Grid3<T>> grids;
  const int n = kernel.formula().n_inputs();
  grids.reserve(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) {
    grids.emplace_back(extent, kernel.formula().radius(), 32,
                       kernel.input_align_offset(g));
  }
  return grids;
}

template <typename T>
std::vector<Grid3<T>> make_output_grids_for(const AppKernel<T>& kernel,
                                            Extent3 extent) {
  std::vector<Grid3<T>> grids;
  const int n = kernel.formula().n_outputs();
  grids.reserve(static_cast<std::size_t>(n));
  for (int o = 0; o < n; ++o) {
    grids.emplace_back(extent, kernel.formula().radius(), 32,
                       kernel.output_align_offset());
  }
  return grids;
}

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

}  // namespace

template <typename T>
gpusim::TraceStats run_app_kernel(const AppKernel<T>& kernel,
                                  std::span<const Grid3<T>* const> inputs,
                                  std::span<Grid3<T>* const> outputs,
                                  const gpusim::DeviceSpec& device,
                                  gpusim::ExecMode mode) {
  if (static_cast<int>(inputs.size()) != kernel.formula().n_inputs() ||
      static_cast<int>(outputs.size()) != kernel.formula().n_outputs()) {
    throw std::invalid_argument("run_app_kernel: grid count mismatch");
  }
  const Extent3 extent = inputs[0]->extent();
  if (auto err = kernel.validate(device, extent)) {
    throw std::invalid_argument("run_app_kernel: invalid configuration: " + *err);
  }
  for (const auto* g : inputs) {
    if (g->extent() != extent || g->halo() < kernel.formula().radius()) {
      throw std::invalid_argument("run_app_kernel: incompatible input grid");
    }
  }
  gpusim::GlobalMemory gmem;
  std::vector<GridAccess> in_access;
  std::vector<GridAccess> out_access;
  for (const auto* g : inputs) {
    in_access.push_back({&g->layout(), gmem.base(gmem.map_readonly(const_bytes(*g)))});
  }
  for (auto* g : outputs) {
    out_access.push_back({&g->layout(), gmem.base(gmem.map(g->bytes()))});
  }
  const LaunchConfig& cfg = kernel.config();
  const int nbx = extent.nx / cfg.tile_w();
  const int nby = extent.ny / cfg.tile_h();
  gpusim::TraceStats total;
  for (int by = 0; by < nby; ++by) {
    for (int bx = 0; bx < nbx; ++bx) {
      gpusim::BlockCtx ctx(device, gmem, kernel.resources().smem_bytes, mode);
      kernel.run_block(ctx, in_access, out_access, bx, by);
      total += ctx.stats();
    }
  }
  return total;
}

template <typename T>
gpusim::KernelTiming time_app_kernel(const AppKernel<T>& kernel,
                                     const gpusim::DeviceSpec& device,
                                     const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = kernel.formula().z_radius();
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  return gpusim::estimate_timing(device, input);
}

template class AppKernel<float>;
template class AppKernel<double>;
template std::vector<Grid3<float>> make_input_grids_for<float>(const AppKernel<float>&,
                                                                Extent3);
template std::vector<Grid3<double>> make_input_grids_for<double>(
    const AppKernel<double>&, Extent3);
template std::vector<Grid3<float>> make_output_grids_for<float>(
    const AppKernel<float>&, Extent3);
template std::vector<Grid3<double>> make_output_grids_for<double>(
    const AppKernel<double>&, Extent3);
template gpusim::TraceStats run_app_kernel<float>(const AppKernel<float>&,
                                                  std::span<const Grid3<float>* const>,
                                                  std::span<Grid3<float>* const>,
                                                  const gpusim::DeviceSpec&,
                                                  gpusim::ExecMode);
template gpusim::TraceStats run_app_kernel<double>(
    const AppKernel<double>&, std::span<const Grid3<double>* const>,
    std::span<Grid3<double>* const>, const gpusim::DeviceSpec&, gpusim::ExecMode);
template gpusim::KernelTiming time_app_kernel<float>(const AppKernel<float>&,
                                                     const gpusim::DeviceSpec&,
                                                     const Extent3&);
template gpusim::KernelTiming time_app_kernel<double>(const AppKernel<double>&,
                                                      const gpusim::DeviceSpec&,
                                                      const Extent3&);

}  // namespace inplane::apps
