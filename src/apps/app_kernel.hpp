#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "apps/formula.hpp"
#include "gpusim/block_ctx.hpp"
#include "gpusim/timing.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::apps {

/// Loading method for an application kernel: the nvstencil-style
/// forward-plane baseline or the paper's in-plane full-slice method — the
/// two bars of Fig. 11.
enum class AppMethod { ForwardPlane, InPlaneFullSlice };

[[nodiscard]] const char* to_string(AppMethod method);

/// A simulated multi-grid application stencil kernel (section V).
///
/// The kernel generalises the scalar stencil machinery to any AppFormula:
/// input grids touched at xy offsets are staged plane-by-plane in shared
/// memory (one stacked tile per grid), centre-only grids are read with one
/// coalesced load per point, z offsets run through the forward method's
/// register pipeline or the in-plane method's partial-output queue
/// (Eqns. (3)-(5) applied per term), and spatially varying coefficients
/// are read at the output point.
template <typename T>
class AppKernel {
 public:
  AppKernel(AppFormula formula, AppMethod method, kernels::LaunchConfig config);

  [[nodiscard]] const AppFormula& formula() const { return formula_; }
  [[nodiscard]] AppMethod method() const { return method_; }
  [[nodiscard]] const kernels::LaunchConfig& config() const { return cfg_; }

  /// Grid align_offset the loading pattern wants for input grid @p g: the
  /// in-plane full-slice method vectorises rows starting at x = -rxy for
  /// grids staged in shared memory; centre-only grids (coefficients) keep
  /// interior alignment so their coalesced column loads stay on one line.
  [[nodiscard]] int input_align_offset(int g) const;

  /// Align offset for output grids: outputs ping-pong with the staged
  /// input field under Jacobi iteration, so they share its alignment.
  [[nodiscard]] int output_align_offset() const;

  /// Estimated per-block resources: K_S sums one tile per staged grid.
  [[nodiscard]] gpusim::KernelResources resources() const;

  [[nodiscard]] std::optional<std::string> validate(const gpusim::DeviceSpec& device,
                                                    const Extent3& extent) const;

  /// Executes one block's full z sweep over all input/output grids.
  void run_block(gpusim::BlockCtx& ctx, std::span<const kernels::GridAccess> inputs,
                 std::span<kernels::GridAccess> outputs, int bx, int by) const;

  /// Steady-state one-plane trace of one block (timing-model input).
  [[nodiscard]] gpusim::TraceStats trace_plane(const gpusim::DeviceSpec& device,
                                               const Extent3& extent) const;

 private:
  struct Work;
  void prime(gpusim::BlockCtx& ctx, std::span<const kernels::GridAccess> inputs,
             int bx, int by, Work& work) const;
  void plane(gpusim::BlockCtx& ctx, std::span<const kernels::GridAccess> inputs,
             std::span<kernels::GridAccess> outputs, int bx, int by, int k,
             Work& work) const;

  AppFormula formula_;
  AppMethod method_;
  kernels::LaunchConfig cfg_;

  // Precomputed per-grid layout.
  struct GridInfo {
    bool staged = false;   ///< plane staged in shared memory
    int rxy = 0;           ///< xy halo of the staged tile
    bool centre = false;   ///< centre column value needed in registers
    bool pipelined = false;///< forward method: z register pipeline
    int back = 0;          ///< in-plane method: back-history depth
    std::uint32_t tile_base = 0;  ///< byte offset of this grid's tile
    int slot = 0;          ///< first ThreadState slot (pipeline / back)
  };
  std::vector<GridInfo> grids_;
  std::size_t smem_bytes_ = 0;
  int state_slots_ = 0;  ///< ThreadState slots per (tid, column)
  int queue_slot_ = 0;   ///< first slot of the output queues (in-plane)
  int qd_ = 0;           ///< in-plane queue depth (max forward z offset)
  int zr_ = 0;           ///< forward pipeline half-depth (max |dk|)
};

/// Builds the kernel's input grids (halo = formula radius, per-grid
/// alignment per input_align_offset).
template <typename T>
[[nodiscard]] std::vector<Grid3<T>> make_input_grids_for(const AppKernel<T>& kernel,
                                                         Extent3 extent);

/// Builds the kernel's output grids.
template <typename T>
[[nodiscard]] std::vector<Grid3<T>> make_output_grids_for(const AppKernel<T>& kernel,
                                                          Extent3 extent);

/// Functionally executes the kernel over whole grids; returns the trace.
template <typename T>
gpusim::TraceStats run_app_kernel(const AppKernel<T>& kernel,
                                  std::span<const Grid3<T>* const> inputs,
                                  std::span<Grid3<T>* const> outputs,
                                  const gpusim::DeviceSpec& device,
                                  gpusim::ExecMode mode = gpusim::ExecMode::Functional);

/// Timing estimate via the shared staging/occupancy/bandwidth model.
template <typename T>
[[nodiscard]] gpusim::KernelTiming time_app_kernel(const AppKernel<T>& kernel,
                                                   const gpusim::DeviceSpec& device,
                                                   const Extent3& extent);

extern template class AppKernel<float>;
extern template class AppKernel<double>;
extern template std::vector<Grid3<float>> make_input_grids_for<float>(
    const AppKernel<float>&, Extent3);
extern template std::vector<Grid3<double>> make_input_grids_for<double>(
    const AppKernel<double>&, Extent3);
extern template std::vector<Grid3<float>> make_output_grids_for<float>(
    const AppKernel<float>&, Extent3);
extern template std::vector<Grid3<double>> make_output_grids_for<double>(
    const AppKernel<double>&, Extent3);
extern template gpusim::TraceStats run_app_kernel<float>(
    const AppKernel<float>&, std::span<const Grid3<float>* const>,
    std::span<Grid3<float>* const>, const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::TraceStats run_app_kernel<double>(
    const AppKernel<double>&, std::span<const Grid3<double>* const>,
    std::span<Grid3<double>* const>, const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::KernelTiming time_app_kernel<float>(const AppKernel<float>&,
                                                            const gpusim::DeviceSpec&,
                                                            const Extent3&);
extern template gpusim::KernelTiming time_app_kernel<double>(const AppKernel<double>&,
                                                             const gpusim::DeviceSpec&,
                                                             const Extent3&);

}  // namespace inplane::apps
