#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/grid3.hpp"

namespace inplane::apps {

/// One additive term of a multi-grid linear stencil:
///
///   outputs[out] += coeff * inputs[grid](i+di, j+dj, k+dk)
///                         * (coeff_grid >= 0 ? inputs[coeff_grid](i, j, k) : 1)
///
/// Restrictions (validated by AppFormula::validate):
///  * dk != 0 implies di == dj == 0 — z-offset accesses must sit on the
///    centre column, so both the forward-plane register pipeline and the
///    in-plane queue (Eqns. (3)-(5)) apply;
///  * coeff_grid >= 0 implies dk <= 0 — a spatially varying coefficient is
///    read at the output point, which the in-plane method visits when the
///    partial is created, so it never needs to be retained in the queue.
struct Term {
  int out = 0;         ///< output grid index
  int grid = 0;        ///< input grid index the stencil value is read from
  int di = 0;          ///< x offset
  int dj = 0;          ///< y offset
  int dk = 0;          ///< z offset
  double coeff = 1.0;  ///< constant coefficient
  int coeff_grid = -1; ///< optional input grid whose centre value multiplies
};

/// A named application stencil: how many input and output grids it uses
/// (the In/Out rows of Table V) and its list of linear terms.
class AppFormula {
 public:
  AppFormula(std::string name, int n_inputs, int n_outputs, std::vector<Term> terms);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int n_inputs() const { return n_inputs_; }
  [[nodiscard]] int n_outputs() const { return n_outputs_; }
  [[nodiscard]] std::span<const Term> terms() const { return terms_; }

  /// Halo width the grids need: max over |di|, |dj|, |dk|.
  [[nodiscard]] int radius() const;
  /// Max |dk| over terms (register pipeline depth for the forward method).
  [[nodiscard]] int z_radius() const;
  /// Max positive dk (in-plane output queue depth; 0 if no forward terms).
  [[nodiscard]] int queue_depth() const;
  /// Max -dk over terms reading @p grid (in-plane back-history depth).
  [[nodiscard]] int back_depth(int grid) const;
  /// Max xy offset used on @p grid — > 0 means the grid's plane must be
  /// staged in shared memory.
  [[nodiscard]] int xy_radius(int grid) const;
  /// True if any term reads @p grid at its centre column (directly, via a
  /// z offset, or as a spatially varying coefficient).
  [[nodiscard]] bool centre_read(int grid) const;

  /// Distinct memory references per output point (loads + one store per
  /// output grid) — the apps' analogue of Table I's "Memory Accesses".
  [[nodiscard]] int memory_refs_per_point() const;
  /// Flops per point (each term costs a multiply-add; a varying
  /// coefficient adds one more multiply).
  [[nodiscard]] int flops_per_point() const;

  /// Throws std::invalid_argument on violated Term restrictions or
  /// out-of-range grid indices.
  void validate() const;

 private:
  std::string name_;
  int n_inputs_;
  int n_outputs_;
  std::vector<Term> terms_;
};

/// --- The six application stencils of Table V -----------------------------
/// Hyperthermia's exact PDE coefficients are not public; the factory below
/// builds the structural equivalent described in [17]: a 3-D temperature
/// stencil with 9 spatially varying coefficient grids (10 inputs, 1
/// output), which reproduces the property Fig. 11 turns on — coefficient
/// traffic dwarfing the halo savings.  Upstream is modelled as a
/// second-order one-sided upwind advection operator (1 input, 1 output,
/// radius 2), matching the weather-code stencil's shape in [17].

/// Div: 3-D discrete divergence, (u, v, w) vector field -> scalar.
[[nodiscard]] AppFormula divergence(double h = 1.0);
/// Grad: 3-D discrete gradient, scalar -> (gx, gy, gz).
[[nodiscard]] AppFormula gradient(double h = 1.0);
/// Hyperthermia: temperature update with 9 varying-coefficient grids.
[[nodiscard]] AppFormula hyperthermia();
/// Upstream: second-order upwind advection (weather-code stencil).
[[nodiscard]] AppFormula upstream(double vx = 0.5, double vy = 0.25, double vz = 0.125);
/// Laplacian: 3-D discrete 7-point Laplacian.
[[nodiscard]] AppFormula laplacian(double h = 1.0);
/// Poisson: one weighted-Jacobi sweep of the 3-D Poisson equation (u, f).
[[nodiscard]] AppFormula poisson(double h = 1.0);

/// All six, in Table V order.
[[nodiscard]] std::vector<AppFormula> paper_apps();

/// --- Additional application stencils (beyond Table V) ----------------------

/// Second-order acoustic wave equation with the leapfrog scheme:
///   u_next = 2 u - u_prev + (c dt/h)^2 lap(u).
/// Two input grids (u, u_prev), one output — the time-stepping pattern of
/// seismic and electromagnetic solvers.
[[nodiscard]] AppFormula wave(double courant = 0.4);

/// High-order seismic reverse-time-migration kernel: an 8th-order (radius
/// 4) star Laplacian with a spatially varying squared-velocity grid,
///   out = 2 u - u_prev + v2(p) * lap8(u).
/// Three input grids (u, u_prev, v2), one output — the stencil shape of
/// the RTM codes in [7].
[[nodiscard]] AppFormula seismic_rtm();

/// CPU gold reference: evaluates the formula at every interior point.
/// Output interiors are overwritten; inputs need halo >= formula.radius().
template <typename T>
void apply_formula(const AppFormula& formula,
                   std::span<const Grid3<T>* const> inputs,
                   std::span<Grid3<T>* const> outputs);

extern template void apply_formula<float>(const AppFormula&,
                                          std::span<const Grid3<float>* const>,
                                          std::span<Grid3<float>* const>);
extern template void apply_formula<double>(const AppFormula&,
                                           std::span<const Grid3<double>* const>,
                                           std::span<Grid3<double>* const>);

}  // namespace inplane::apps
