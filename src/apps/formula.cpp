#include "apps/formula.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

namespace inplane::apps {

AppFormula::AppFormula(std::string name, int n_inputs, int n_outputs,
                       std::vector<Term> terms)
    : name_(std::move(name)), n_inputs_(n_inputs), n_outputs_(n_outputs),
      terms_(std::move(terms)) {
  validate();
}

int AppFormula::radius() const {
  int r = 0;
  for (const Term& t : terms_) {
    r = std::max({r, std::abs(t.di), std::abs(t.dj), std::abs(t.dk)});
  }
  return r;
}

int AppFormula::z_radius() const {
  int r = 0;
  for (const Term& t : terms_) r = std::max(r, std::abs(t.dk));
  return r;
}

int AppFormula::queue_depth() const {
  int d = 0;
  for (const Term& t : terms_) d = std::max(d, t.dk);
  return d;
}

int AppFormula::back_depth(int grid) const {
  int d = 0;
  for (const Term& t : terms_) {
    if (t.grid == grid) d = std::max(d, -t.dk);
  }
  return d;
}

int AppFormula::xy_radius(int grid) const {
  int r = 0;
  for (const Term& t : terms_) {
    if (t.grid == grid) r = std::max({r, std::abs(t.di), std::abs(t.dj)});
  }
  return r;
}

bool AppFormula::centre_read(int grid) const {
  for (const Term& t : terms_) {
    if (t.coeff_grid == grid) return true;
    if (t.grid == grid && t.di == 0 && t.dj == 0) return true;
  }
  return false;
}

int AppFormula::memory_refs_per_point() const {
  std::set<std::tuple<int, int, int, int>> reads;
  for (const Term& t : terms_) {
    reads.insert({t.grid, t.di, t.dj, t.dk});
    if (t.coeff_grid >= 0) reads.insert({t.coeff_grid, 0, 0, 0});
  }
  return static_cast<int>(reads.size()) + n_outputs_;
}

int AppFormula::flops_per_point() const {
  int flops = 0;
  for (const Term& t : terms_) flops += t.coeff_grid >= 0 ? 3 : 2;
  return flops;
}

void AppFormula::validate() const {
  if (n_inputs_ <= 0 || n_outputs_ <= 0) {
    throw std::invalid_argument("AppFormula: needs at least one input and output");
  }
  if (terms_.empty()) throw std::invalid_argument("AppFormula: no terms");
  for (const Term& t : terms_) {
    if (t.out < 0 || t.out >= n_outputs_) {
      throw std::invalid_argument("AppFormula: term output index out of range");
    }
    if (t.grid < 0 || t.grid >= n_inputs_) {
      throw std::invalid_argument("AppFormula: term grid index out of range");
    }
    if (t.coeff_grid >= n_inputs_) {
      throw std::invalid_argument("AppFormula: coefficient grid index out of range");
    }
    if (t.dk != 0 && (t.di != 0 || t.dj != 0)) {
      throw std::invalid_argument(
          "AppFormula: z-offset terms must sit on the centre column");
    }
    if (t.coeff_grid >= 0 && t.dk > 0) {
      throw std::invalid_argument(
          "AppFormula: varying coefficients not supported on forward z terms");
    }
  }
}

AppFormula divergence(double h) {
  const double c = 0.5 / h;
  // out = du/dx + dv/dy + dw/dz with central differences.
  return AppFormula("Div", 3, 1,
                    {
                        {0, 0, +1, 0, 0, +c, -1},
                        {0, 0, -1, 0, 0, -c, -1},
                        {0, 1, 0, +1, 0, +c, -1},
                        {0, 1, 0, -1, 0, -c, -1},
                        {0, 2, 0, 0, +1, +c, -1},
                        {0, 2, 0, 0, -1, -c, -1},
                    });
}

AppFormula gradient(double h) {
  const double c = 0.5 / h;
  // (gx, gy, gz) = grad f with central differences.
  return AppFormula("Grad", 1, 3,
                    {
                        {0, 0, +1, 0, 0, +c, -1},
                        {0, 0, -1, 0, 0, -c, -1},
                        {1, 0, 0, +1, 0, +c, -1},
                        {1, 0, 0, -1, 0, -c, -1},
                        {2, 0, 0, 0, +1, +c, -1},
                        {2, 0, 0, 0, -1, -c, -1},
                    });
}

AppFormula hyperthermia() {
  // Structural equivalent of the hyperthermia treatment stencil of [17]:
  // grid 0 is the temperature T; grids 1..9 are spatially varying
  // coefficient fields (conductivities per xy direction and centre,
  // perfusion, and source terms).  9 of the 10 input grids carry
  // coefficients, exactly the property section V-A highlights.
  std::vector<Term> terms = {
      {0, 0, +1, 0, 0, 1.0, 1},   // cE(p) * T(i+1)
      {0, 0, -1, 0, 0, 1.0, 2},   // cW(p) * T(i-1)
      {0, 0, 0, +1, 0, 1.0, 3},   // cN(p) * T(j+1)
      {0, 0, 0, -1, 0, 1.0, 4},   // cS(p) * T(j-1)
      {0, 0, 0, 0, 0, 1.0, 5},    // cC(p) * T
      {0, 0, 0, 0, +1, 0.1, -1},  // constant-coefficient z terms
      {0, 0, 0, 0, -1, 0.1, -1},
      {0, 0, 0, 0, -1, 1.0, 6},   // perfusion(p) * T(k-1)   (dk <= 0: allowed)
      {0, 6, 0, 0, 0, 0.01, 7},   // blood(p) * perfusion(p) coupling
      {0, 8, 0, 0, 0, 1.0, -1},   // metabolic heat source field
      {0, 9, 0, 0, 0, 1.0, -1},   // applied power (antenna) field
  };
  return AppFormula("Hyperthermia", 10, 1, std::move(terms));
}

AppFormula upstream(double vx, double vy, double vz) {
  // First-order one-sided upwind advection for positive velocities:
  //   out = f - v . grad_upwind(f),  d f/dx ~ f(p) - f(p-1).
  const double c0 = 1.0 - (vx + vy + vz);
  return AppFormula("Upstream", 1, 1,
                    {
                        {0, 0, 0, 0, 0, c0, -1},
                        {0, 0, -1, 0, 0, vx, -1},
                        {0, 0, 0, -1, 0, vy, -1},
                        {0, 0, 0, 0, -1, vz, -1},
                    });
}

AppFormula laplacian(double h) {
  const double c = 1.0 / (h * h);
  return AppFormula("Laplacian", 1, 1,
                    {
                        {0, 0, 0, 0, 0, -6.0 * c, -1},
                        {0, 0, +1, 0, 0, c, -1},
                        {0, 0, -1, 0, 0, c, -1},
                        {0, 0, 0, +1, 0, c, -1},
                        {0, 0, 0, -1, 0, c, -1},
                        {0, 0, 0, 0, +1, c, -1},
                        {0, 0, 0, 0, -1, c, -1},
                    });
}

AppFormula poisson(double h) {
  // One weighted-Jacobi sweep of -lap(u) = f:
  //   u_new = (u(E)+u(W)+u(N)+u(S)+u(U)+u(D) - h^2 f) / 6.
  const double s = 1.0 / 6.0;
  return AppFormula("Poisson", 2, 1,
                    {
                        {0, 0, +1, 0, 0, s, -1},
                        {0, 0, -1, 0, 0, s, -1},
                        {0, 0, 0, +1, 0, s, -1},
                        {0, 0, 0, -1, 0, s, -1},
                        {0, 0, 0, 0, +1, s, -1},
                        {0, 0, 0, 0, -1, s, -1},
                        {0, 1, 0, 0, 0, -h * h * s, -1},
                    });
}

std::vector<AppFormula> paper_apps() {
  return {divergence(), gradient(), hyperthermia(), upstream(), laplacian(), poisson()};
}

AppFormula wave(double courant) {
  const double a = courant * courant;
  return AppFormula("Wave", 2, 1,
                    {
                        {0, 0, 0, 0, 0, 2.0 - 6.0 * a, -1},  // 2u - 6a u
                        {0, 1, 0, 0, 0, -1.0, -1},           // -u_prev
                        {0, 0, +1, 0, 0, a, -1},
                        {0, 0, -1, 0, 0, a, -1},
                        {0, 0, 0, +1, 0, a, -1},
                        {0, 0, 0, -1, 0, a, -1},
                        {0, 0, 0, 0, +1, a, -1},
                        {0, 0, 0, 0, -1, a, -1},
                    });
}

AppFormula seismic_rtm() {
  // 8th-order star Laplacian weights (standard central finite differences).
  const double c0 = -205.0 / 72.0;
  const double cm[] = {8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0};
  std::vector<Term> terms = {
      {0, 0, 0, 0, 0, 2.0, -1},   // 2 u
      {0, 1, 0, 0, 0, -1.0, -1},  // -u_prev
      {0, 0, 0, 0, 0, 3.0 * c0, 2},  // v2(p) * c0 * u (3 axes share c0)
  };
  for (int m = 1; m <= 4; ++m) {
    const double w = cm[m - 1];
    terms.push_back({0, 0, +m, 0, 0, w, 2});
    terms.push_back({0, 0, -m, 0, 0, w, 2});
    terms.push_back({0, 0, 0, +m, 0, w, 2});
    terms.push_back({0, 0, 0, -m, 0, w, 2});
    terms.push_back({0, 0, 0, 0, -m, w, 2});
  }
  // Forward z terms cannot carry a varying coefficient through the queue
  // (see Term); the symmetric partner is folded in by reading the
  // coefficient at the output point when the back term is applied, so the
  // +z contributions use the same centre-read coefficient via dk < 0
  // terms on the mirrored offset of the *previous* planes.  For the
  // structural traffic/compute reproduction we keep the +z terms with a
  // constant mean velocity instead.
  for (int m = 1; m <= 4; ++m) {
    terms.push_back({0, 0, 0, 0, +m, cm[m - 1] * 2.25, -1});  // mean v2 = 2.25
  }
  return AppFormula("SeismicRTM", 3, 1, std::move(terms));
}

template <typename T>
void apply_formula(const AppFormula& formula,
                   std::span<const Grid3<T>* const> inputs,
                   std::span<Grid3<T>* const> outputs) {
  if (static_cast<int>(inputs.size()) != formula.n_inputs() ||
      static_cast<int>(outputs.size()) != formula.n_outputs()) {
    throw std::invalid_argument("apply_formula: grid count mismatch");
  }
  const Extent3 extent = inputs[0]->extent();
  for (const auto* g : inputs) {
    if (g->extent() != extent || g->halo() < formula.radius()) {
      throw std::invalid_argument("apply_formula: incompatible input grid");
    }
  }
  for (auto* g : outputs) {
    if (g->extent() != extent) {
      throw std::invalid_argument("apply_formula: incompatible output grid");
    }
  }
  for (int k = 0; k < extent.nz; ++k) {
    for (int j = 0; j < extent.ny; ++j) {
      for (int i = 0; i < extent.nx; ++i) {
        for (auto* g : outputs) g->at(i, j, k) = T{};
        for (const Term& t : formula.terms()) {
          T v = static_cast<T>(t.coeff) *
                inputs[static_cast<std::size_t>(t.grid)]->at(i + t.di, j + t.dj,
                                                             k + t.dk);
          if (t.coeff_grid >= 0) {
            v *= inputs[static_cast<std::size_t>(t.coeff_grid)]->at(i, j, k);
          }
          outputs[static_cast<std::size_t>(t.out)]->at(i, j, k) += v;
        }
      }
    }
  }
}

template void apply_formula<float>(const AppFormula&,
                                   std::span<const Grid3<float>* const>,
                                   std::span<Grid3<float>* const>);
template void apply_formula<double>(const AppFormula&,
                                    std::span<const Grid3<double>* const>,
                                    std::span<Grid3<double>* const>);

}  // namespace inplane::apps
