#include "codegen/cuda_codegen.hpp"

#include <sstream>
#include <stdexcept>

namespace inplane::codegen {

namespace {

/// Tiny indentation-aware line emitter.
class Code {
 public:
  Code& line(const std::string& text = "") {
    if (!text.empty()) out_ += std::string(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += text;
    out_ += "\n";
    return *this;
  }
  Code& open(const std::string& text) {
    line(text + " {");
    ++indent_;
    return *this;
  }
  Code& close(const std::string& suffix = "") {
    --indent_;
    line("}" + suffix);
    return *this;
  }
  [[nodiscard]] std::string str() const { return out_; }

 private:
  std::string out_;
  int indent_ = 0;
};

std::string itos(long v) { return std::to_string(v); }

/// Emits a cooperative load of the region x in [xa, xb), y in [ya, yb) of
/// plane `k` (grid coordinates relative to the tile origin x0/y0) into the
/// shared array @p dst (row stride @p row_c, halo offset @p halo_c),
/// flattened over all block threads, vectorised by `vec` where a full
/// vector fits the row and falling back to scalars at the row tail.
/// Mirrors kernels::detail::load_rows_to_tile.
void emit_region_load(Code& c, const CudaKernelSpec& spec, const std::string& tag,
                      const std::string& xa, const std::string& xb,
                      const std::string& ya, const std::string& yb, int vec,
                      const std::string& dst = "tile",
                      const std::string& row_c = "kTileRow",
                      const std::string& halo_c = "R") {
  const std::string s = spec.scalar();
  const std::string vt = spec.vector_type();
  c.line("// " + tag);
  c.open("");
  c.line("const int rxa = " + xa + ", rxb = " + xb + ", rya = " + ya +
         ", ryb = " + yb + ";");
  c.line("const int row_w = rxb - rxa;");
  c.line("const int vecs_per_row = (row_w + " + itos(vec) + " - 1) / " + itos(vec) +
         ";");
  c.open("for (int e = tid; e < (ryb - rya) * vecs_per_row; e += kThreads)");
  c.line("const int row = e / vecs_per_row;");
  c.line("const int col = (e % vecs_per_row) * " + itos(vec) + ";");
  c.line("const int gx = x0 + rxa + col;");
  c.line("const int gy = y0 + rya + row;");
  c.line("const long src = idx3(gx, gy, k);");
  c.line("const int toff = (rya + row + " + halo_c + ") * " + row_c + " + (rxa + col + " +
         halo_c + ");");
  if (vec > 1) {
    c.open("if (col + " + itos(vec) + " <= row_w)");
    c.line("*reinterpret_cast<" + vt + "*>(&" + dst + "[toff]) =");
    c.line("    *reinterpret_cast<const " + vt + "*>(&in[src]);");
    c.close();
    c.open("else");
    c.line("for (int t = col; t < row_w; ++t) " + dst +
           "[toff + t - col] = in[src + t - col];");
    c.close();
  } else {
    c.line("if (col < row_w) " + dst + "[toff] = in[src];");
    (void)s;
  }
  c.close();  // for
  c.close();  // scope
}

/// Emits the column-major side-strip load the vertical pattern uses (one
/// global element per (column, row) pair, lanes walking y — mirrors
/// kernels::detail::load_columns_to_tile).
void emit_column_load(Code& c, const std::string& tag, const std::string& xa,
                      const std::string& xb, const std::string& ya,
                      const std::string& yb) {
  c.line("// " + tag + " (column-major, poorly coalesced by construction)");
  c.open("");
  c.line("const int cxa = " + xa + ", cxb = " + xb + ", cya = " + ya +
         ", cyb = " + yb + ";");
  c.line("const int rows = cyb - cya;");
  c.open("for (int e = tid; e < (cxb - cxa) * rows; e += kThreads)");
  c.line("const int x = cxa + e / rows;");
  c.line("const int y = cya + e % rows;");
  c.line("tile[(y + R) * kTileRow + (x + R)] = in[idx3(x0 + x, y0 + y, k)];");
  c.close();
  c.close();
}

/// Emits the Fig. 6 loading pattern for the spec's method.
void emit_load_pattern(Code& c, const CudaKernelSpec& spec) {
  const int vec = spec.config.vec;
  switch (spec.method) {
    case kernels::Method::InPlaneClassical:
      emit_region_load(c, spec, "interior", "0", "kTileW", "0", "kTileH", 1);
      emit_region_load(c, spec, "top strip", "0", "kTileW", "-R", "0", 1);
      emit_region_load(c, spec, "bottom strip", "0", "kTileW", "kTileH",
                       "kTileH + R", 1);
      emit_region_load(c, spec, "left strip", "-R", "0", "0", "kTileH", 1);
      emit_region_load(c, spec, "right strip", "kTileW", "kTileW + R", "0", "kTileH",
                       1);
      emit_region_load(c, spec, "corners", "-R", "0", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "kTileW", "kTileW + R", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "-R", "0", "kTileH", "kTileH + R", 1);
      emit_region_load(c, spec, "corners", "kTileW", "kTileW + R", "kTileH",
                       "kTileH + R", 1);
      break;
    case kernels::Method::InPlaneVertical:
      emit_region_load(c, spec, "merged top/bottom + interior", "0", "kTileW", "-R",
                       "kTileH + R", vec);
      emit_column_load(c, "left halo", "-R", "0", "0", "kTileH");
      emit_column_load(c, "right halo", "kTileW", "kTileW + R", "0", "kTileH");
      break;
    case kernels::Method::InPlaneHorizontal:
      emit_region_load(c, spec, "merged left/right + interior", "-R", "kTileW + R",
                       "0", "kTileH", vec);
      emit_region_load(c, spec, "top strip", "0", "kTileW", "-R", "0", vec);
      emit_region_load(c, spec, "bottom strip", "0", "kTileW", "kTileH", "kTileH + R",
                       vec);
      break;
    case kernels::Method::InPlaneFullSlice:
      emit_region_load(c, spec, "full slice", "-R", "kTileW + R", "-R", "kTileH + R",
                       vec);
      break;
    case kernels::Method::ForwardPlane:
      // Interior comes from the register pipeline; only the halo strips
      // and corners are (re)loaded from global memory (Fig. 4).
      emit_region_load(c, spec, "top strip", "0", "kTileW", "-R", "0", 1);
      emit_region_load(c, spec, "bottom strip", "0", "kTileW", "kTileH", "kTileH + R",
                       1);
      emit_region_load(c, spec, "left strip", "-R", "0", "0", "kTileH", 1);
      emit_region_load(c, spec, "right strip", "kTileW", "kTileW + R", "0", "kTileH",
                       1);
      emit_region_load(c, spec, "corners", "-R", "0", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "kTileW", "kTileW + R", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "-R", "0", "kTileH", "kTileH + R", 1);
      emit_region_load(c, spec, "corners", "kTileW", "kTileW + R", "kTileH",
                       "kTileH + R", 1);
      break;
  }
}

void emit_prelude(Code& c, const CudaKernelSpec& spec) {
  const kernels::LaunchConfig& cfg = spec.config;
  c.line("constexpr int R = " + itos(spec.radius) + ";");
  c.line("constexpr int kTx = " + itos(cfg.tx) + ", kTy = " + itos(cfg.ty) + ";");
  c.line("constexpr int kRx = " + itos(cfg.rx) + ", kRy = " + itos(cfg.ry) + ";");
  c.line("constexpr int kTileW = kTx * kRx, kTileH = kTy * kRy;");
  c.line("constexpr int kThreads = kTx * kTy;");
  c.line("constexpr int kTileRow = kTileW + 2 * R;");
  c.line("constexpr int kCols = kRx * kRy;");
  c.line("__shared__ " + spec.scalar() + " tile[(kTileH + 2 * R) * kTileRow];");
  c.line("const int tx = static_cast<int>(threadIdx.x);");
  c.line("const int ty = static_cast<int>(threadIdx.y);");
  c.line("const int tid = ty * kTx + tx;");
  c.line("const int x0 = static_cast<int>(blockIdx.x) * kTileW;");
  c.line("const int y0 = static_cast<int>(blockIdx.y) * kTileH;");
  c.line("const auto idx3 = [&](int x, int y, int z) -> long {");
  c.line("  return static_cast<long>(x) + static_cast<long>(y) * pitch +");
  c.line("         static_cast<long>(z) * plane;");
  c.line("};");
}

void emit_inplane_body(Code& c, const CudaKernelSpec& spec) {
  const std::string s = spec.scalar();
  c.line(s + " back[kCols][R];");
  c.line(s + " q[kCols][R];");
  c.line("// Prime the back history with the z < 0 halo planes (Eqn. 3 needs");
  c.line("// in[i, j, k-m] from the first sweep step onward).");
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int col = u * kRx + sx;");
  c.line("const int x = x0 + tx + sx * kTx;");
  c.line("const int y = y0 + ty + u * kTy;");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("back[col][m - 1] = in[idx3(x, y, -m)];");
  c.line("q[col][m - 1] = " + s + "(0);");
  c.close();
  c.close();
  c.close();
  c.line();
  c.open("for (int k = 0; k < nz + R; ++k)");
  emit_load_pattern(c, spec);
  c.line("__syncthreads();");
  c.line();
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int col = u * kRx + sx;");
  c.line("const int lx = tx + sx * kTx + R;");
  c.line("const int ly = ty + u * kTy + R;");
  c.line("const " + s + " cur = tile[ly * kTileRow + lx];");
  c.line("// Eqn. (3): partial output from the in-plane neighbours and the");
  c.line("// back history.");
  c.line(s + " part = c[0] * cur;");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("part += c[m] * (tile[ly * kTileRow + lx - m] + tile[ly * kTileRow + lx + m] +");
  c.line("                tile[(ly - m) * kTileRow + lx] + tile[(ly + m) * kTileRow + lx] +");
  c.line("                back[col][m - 1]);");
  c.close();
  c.line("// Eqn. (5): update the r queued partials with the current plane.");
  c.line("#pragma unroll");
  c.line("for (int d = 0; d < R; ++d) q[col][d] += c[d + 1] * cur;");
  c.line("const " + s + " emit = q[col][R - 1];");
  c.line("#pragma unroll");
  c.line("for (int d = R - 1; d >= 1; --d) q[col][d] = q[col][d - 1];");
  c.line("q[col][0] = part;");
  c.line("#pragma unroll");
  c.line("for (int m = R - 1; m >= 1; --m) back[col][m] = back[col][m - 1];");
  c.line("back[col][0] = cur;");
  c.line("// The output for plane k - R is complete exactly now (sec. III-C).");
  c.open("if (k >= R)");
  c.line("const int x = x0 + tx + sx * kTx;");
  c.line("const int y = y0 + ty + u * kTy;");
  c.line("out[idx3(x, y, k - R)] = emit;");
  c.close();
  c.close();
  c.close();
  c.line("__syncthreads();");
  c.close();  // k loop
}

/// Degree-N temporal blocking (full-slice only): the generated kernel
/// mirrors temporal::TemporalInPlaneKernel stage for stage.  Stage 1 runs
/// the in-plane queue update (Eqns. 3-5) over the ghost-extended region
/// (W + 2(N-1)r)(H + 2(N-1)r) of the t=0 slice, stages 2..N-1 run
/// forward-plane updates between (2R+1)-deep shared rings, and the final
/// stage applies the full 3D stencil over the last ring and stores the
/// t=N plane.  Ghost points outside the global domain freeze at their
/// t=0 value, matching N applications of the CPU reference with a frozen
/// halo.
void emit_temporal_prelude(Code& c, const CudaKernelSpec& spec) {
  const kernels::LaunchConfig& cfg = spec.config;
  const std::string s = spec.scalar();
  const int tb = cfg.tb;
  c.line("constexpr int R = " + itos(spec.radius) + ";");
  c.line("constexpr int TB = " + itos(tb) + ";  // temporal degree");
  c.line("constexpr int kTx = " + itos(cfg.tx) + ", kTy = " + itos(cfg.ty) + ";");
  c.line("constexpr int kRx = " + itos(cfg.rx) + ", kRy = " + itos(cfg.ry) + ";");
  c.line("constexpr int kTileW = kTx * kRx, kTileH = kTy * kRy;");
  c.line("constexpr int kThreads = kTx * kTy;");
  c.line("constexpr int kH = TB * R;        // ghost-zone halo depth");
  c.line("constexpr int kE1 = (TB - 1) * R; // stage-1 region extension");
  c.line("constexpr int kExtW = kTileW + 2 * kE1, kExtH = kTileH + 2 * kE1;");
  c.line("constexpr int kExtN = kExtW * kExtH;");
  c.line("constexpr int kPpt = (kExtN + kThreads - 1) / kThreads;");
  c.line("constexpr int kSliceRow = kTileW + 2 * kH;");
  c.line("constexpr int kSliceH = kTileH + 2 * kH;");
  c.line("constexpr int kDepth = 2 * R + 1;  // ring planes");
  c.line("__shared__ " + s + " slice[kSliceH * kSliceRow];");
  for (int st = 1; st < tb; ++st) {
    const std::string n = itos(st);
    c.line("constexpr int kRing" + n + "E = (TB - " + n + ") * R;");
    c.line("constexpr int kRing" + n + "W = kTileW + 2 * kRing" + n + "E;");
    c.line("constexpr int kRing" + n + "H = kTileH + 2 * kRing" + n + "E;");
    c.line("__shared__ " + s + " ring" + n + "[kDepth * kRing" + n + "H * kRing" + n +
           "W];");
  }
  c.line("const int tx = static_cast<int>(threadIdx.x);");
  c.line("const int ty = static_cast<int>(threadIdx.y);");
  c.line("const int tid = ty * kTx + tx;");
  c.line("const int x0 = static_cast<int>(blockIdx.x) * kTileW;");
  c.line("const int y0 = static_cast<int>(blockIdx.y) * kTileH;");
  c.line("const auto idx3 = [&](int x, int y, int z) -> long {");
  c.line("  return static_cast<long>(x) + static_cast<long>(y) * pitch +");
  c.line("         static_cast<long>(z) * plane;");
  c.line("};");
  c.line("const auto slice_at = [&](int gx, int gy) -> " + s + "& {");
  c.line("  return slice[(gy + kH) * kSliceRow + (gx + kH)];");
  c.line("};");
  for (int st = 1; st < tb; ++st) {
    const std::string n = itos(st);
    c.line("const auto ring" + n + "_at = [&](int gx, int gy, int z) -> " + s + "& {");
    c.line("  const int slot = ((z % kDepth) + kDepth) % kDepth;");
    c.line("  return ring" + n + "[(slot * kRing" + n + "H + (gy + kRing" + n +
           "E)) * kRing" + n + "W + (gx + kRing" + n + "E)];");
    c.line("};");
  }
  c.line("const auto interior = [&](int gx, int gy, int z) {");
  c.line("  return gx >= 0 && gx < nx && gy >= 0 && gy < ny && z >= 0 && z < nz;");
  c.line("};");
}

void emit_temporal_body(Code& c, const CudaKernelSpec& spec) {
  const std::string s = spec.scalar();
  const int tb = spec.config.tb;
  const std::string last = itos(tb - 1);
  c.line("// Stage-1 per-point state: thread tid owns extended points tid,");
  c.line("// tid + kThreads, ... (index i); back holds the t=0 planes");
  c.line("// k-1..k-R, q the R queued partial sums (Eqns. 3-5).");
  c.line(s + " back[kPpt][R];");
  c.line(s + " q[kPpt][R];");
  c.open("for (int i = 0; i < kPpt; ++i)");
  c.line("const int p = tid + i * kThreads;");
  c.line("if (p >= kExtN) break;");
  c.line("const int ex = p % kExtW - kE1;");
  c.line("const int ey = p / kExtW - kE1;");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("back[i][m - 1] = in[idx3(x0 + ex, y0 + ey, -m)];");
  c.line("q[i][m - 1] = " + s + "(0);");
  c.close();
  c.close();
  c.line("// Preseed every ring's z in [-R, -1] planes with the frozen t=0");
  c.line("// halo so each stage only ever emits planes >= 0.");
  c.open("for (int z = -R; z < 0; ++z)");
  for (int st = 1; st < tb; ++st) {
    const std::string n = itos(st);
    c.open("for (int e = tid; e < kRing" + n + "H * kRing" + n + "W; e += kThreads)");
    c.line("const int gx = e % kRing" + n + "W - kRing" + n + "E;");
    c.line("const int gy = e / kRing" + n + "W - kRing" + n + "E;");
    c.line("ring" + n + "_at(gx, gy, z) = in[idx3(x0 + gx, y0 + gy, z)];");
    c.close();
  }
  c.close();
  c.line("__syncthreads();");
  c.line();
  c.open("for (int k = 0; k < nz + TB * R; ++k)");
  emit_region_load(c, spec, "t=0 slice, full ghost zone", "-kH", "kTileW + kH", "-kH",
                   "kTileH + kH", spec.config.vec, "slice", "kSliceRow", "kH");
  c.line("__syncthreads();");
  c.line();
  c.line("// ---- Stage 1: in-plane queue over the extended region -> ring1 ----");
  c.open("");
  c.line("const int j1 = k - R;");
  c.open("for (int i = 0; i < kPpt; ++i)");
  c.line("const int p = tid + i * kThreads;");
  c.line("if (p >= kExtN) break;");
  c.line("const int ex = p % kExtW - kE1;");
  c.line("const int ey = p / kExtW - kE1;");
  c.line("const " + s + " cur = slice_at(ex, ey);");
  c.line(s + " part = c[0] * cur;");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("part += c[m] * (slice_at(ex - m, ey) + slice_at(ex + m, ey) +");
  c.line("                slice_at(ex, ey - m) + slice_at(ex, ey + m) +");
  c.line("                back[i][m - 1]);");
  c.close();
  c.line("#pragma unroll");
  c.line("for (int d = 0; d < R; ++d) q[i][d] += c[d + 1] * cur;");
  c.line("// Ghost points outside the global domain freeze at their t=0");
  c.line("// value (back[R-1] holds the t=0 plane j1).");
  c.line("const " + s +
         " emit = interior(x0 + ex, y0 + ey, j1) ? q[i][R - 1] : back[i][R - 1];");
  c.line("#pragma unroll");
  c.line("for (int d = R - 1; d >= 1; --d) q[i][d] = q[i][d - 1];");
  c.line("q[i][0] = part;");
  c.line("#pragma unroll");
  c.line("for (int m = R - 1; m >= 1; --m) back[i][m] = back[i][m - 1];");
  c.line("back[i][0] = cur;");
  c.line("if (j1 >= 0) ring1_at(ex, ey, j1) = emit;");
  c.close();
  c.close();
  c.line("__syncthreads();");
  for (int st = 2; st < tb; ++st) {
    const std::string n = itos(st);
    const std::string pr = itos(st - 1);
    c.line();
    c.line("// ---- Stage " + n + ": forward-plane update ring" + pr + " -> ring" + n +
           " ----");
    c.open("");
    c.line("const int js = k - " + n + " * R;");
    c.open("if (js >= 0)");
    c.open("for (int e = tid; e < kRing" + n + "H * kRing" + n + "W; e += kThreads)");
    c.line("const int gx = e % kRing" + n + "W - kRing" + n + "E;");
    c.line("const int gy = e / kRing" + n + "W - kRing" + n + "E;");
    c.line("const " + s + " cur = ring" + pr + "_at(gx, gy, js);");
    c.line(s + " acc = c[0] * cur;");
    c.line("#pragma unroll");
    c.open("for (int m = 1; m <= R; ++m)");
    c.line("acc += c[m] * (ring" + pr + "_at(gx - m, gy, js) + ring" + pr +
           "_at(gx + m, gy, js) +");
    c.line("               ring" + pr + "_at(gx, gy - m, js) + ring" + pr +
           "_at(gx, gy + m, js) +");
    c.line("               ring" + pr + "_at(gx, gy, js - m) + ring" + pr +
           "_at(gx, gy, js + m));");
    c.close();
    c.line("ring" + n + "_at(gx, gy, js) = interior(x0 + gx, y0 + gy, js) ? acc : cur;");
    c.close();
    c.close();
    c.close();
    c.line("__syncthreads();");
  }
  c.line();
  c.line("// ---- Final stage: full 3D stencil over ring" + last +
         ", store the t=TB plane ----");
  c.open("");
  c.line("const int j = k - TB * R;");
  c.open("if (j >= 0)");
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int cx = tx + sx * kTx;");
  c.line("const int cy = ty + u * kTy;");
  c.line(s + " acc = c[0] * ring" + last + "_at(cx, cy, j);");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("acc += c[m] * (ring" + last + "_at(cx - m, cy, j) + ring" + last +
         "_at(cx + m, cy, j) +");
  c.line("               ring" + last + "_at(cx, cy - m, j) + ring" + last +
         "_at(cx, cy + m, j) +");
  c.line("               ring" + last + "_at(cx, cy, j - m) + ring" + last +
         "_at(cx, cy, j + m));");
  c.close();
  c.line("out[idx3(x0 + cx, y0 + cy, j)] = acc;");
  c.close();
  c.close();
  c.close();
  c.close();
  c.line("__syncthreads();");
  c.close();  // k loop
}

void emit_forward_body(Code& c, const CudaKernelSpec& spec) {
  const std::string s = spec.scalar();
  c.line(s + " pipe[kCols][2 * R + 1];");
  c.line("// Prime pipeline slots 1..2R with planes -R .. R-1; the first sweep");
  c.line("// step's shift-and-load completes it (FDTD3d structure).");
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int col = u * kRx + sx;");
  c.line("const int x = x0 + tx + sx * kTx;");
  c.line("const int y = y0 + ty + u * kTy;");
  c.line("#pragma unroll");
  c.line("for (int i = 1; i <= 2 * R; ++i) pipe[col][i] = in[idx3(x, y, -R + i - 1)];");
  c.close();
  c.close();
  c.line();
  c.open("for (int k = 0; k < nz; ++k)");
  c.line("// Advance the register pipeline and stream in plane k + R (Fig. 5a),");
  c.line("// then stage plane k's interior from registers.");
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int col = u * kRx + sx;");
  c.line("const int x = x0 + tx + sx * kTx;");
  c.line("const int y = y0 + ty + u * kTy;");
  c.line("#pragma unroll");
  c.line("for (int i = 0; i < 2 * R; ++i) pipe[col][i] = pipe[col][i + 1];");
  c.line("pipe[col][2 * R] = in[idx3(x, y, k + R)];");
  c.line("tile[(ty + u * kTy + R) * kTileRow + (tx + sx * kTx + R)] = pipe[col][R];");
  c.close();
  c.close();
  emit_load_pattern(c, spec);
  c.line("__syncthreads();");
  c.line();
  c.open("for (int u = 0; u < kRy; ++u)");
  c.open("for (int sx = 0; sx < kRx; ++sx)");
  c.line("const int col = u * kRx + sx;");
  c.line("const int lx = tx + sx * kTx + R;");
  c.line("const int ly = ty + u * kTy + R;");
  c.line("// Eqn. (2): the full stencil at once.");
  c.line(s + " acc = c[0] * pipe[col][R];");
  c.line("#pragma unroll");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("acc += c[m] * (tile[ly * kTileRow + lx - m] + tile[ly * kTileRow + lx + m] +");
  c.line("               tile[(ly - m) * kTileRow + lx] + tile[(ly + m) * kTileRow + lx] +");
  c.line("               pipe[col][R - m] + pipe[col][R + m]);");
  c.close();
  c.line("const int x = x0 + tx + sx * kTx;");
  c.line("const int y = y0 + ty + u * kTy;");
  c.line("out[idx3(x, y, k)] = acc;");
  c.close();
  c.close();
  c.line("__syncthreads();");
  c.close();  // k loop
}

}  // namespace

std::string CudaKernelSpec::name() const {
  if (!kernel_name.empty()) return kernel_name;
  std::string m;
  switch (method) {
    case kernels::Method::ForwardPlane: m = "nvstencil"; break;
    case kernels::Method::InPlaneClassical: m = "inplane_classical"; break;
    case kernels::Method::InPlaneVertical: m = "inplane_vertical"; break;
    case kernels::Method::InPlaneHorizontal: m = "inplane_horizontal"; break;
    case kernels::Method::InPlaneFullSlice: m = "inplane_fullslice"; break;
  }
  return m + "_r" + itos(radius) + "_t" + itos(config.tx) + "x" + itos(config.ty) +
         "_r" + itos(config.rx) + "x" + itos(config.ry) + "_v" + itos(config.vec) +
         (is_double ? "_dp" : "_sp") +
         (config.tb > 1 ? "_tb" + itos(config.tb) : "");
}

std::string CudaKernelSpec::vector_type() const {
  if (config.vec == 1) return scalar();
  return scalar() + itos(config.vec);
}

void CudaKernelSpec::validate() const {
  if (radius < 1) throw std::invalid_argument("CudaKernelSpec: radius must be >= 1");
  if (config.tx <= 0 || config.ty <= 0 || config.rx <= 0 || config.ry <= 0) {
    throw std::invalid_argument("CudaKernelSpec: blocking factors must be positive");
  }
  if (config.vec != 1 && config.vec != 2 && config.vec != 4) {
    throw std::invalid_argument("CudaKernelSpec: vec must be 1, 2 or 4");
  }
  const std::size_t elem = is_double ? 8 : 4;
  if (static_cast<std::size_t>(config.vec) * elem > 16) {
    throw std::invalid_argument("CudaKernelSpec: vector load wider than 16 bytes");
  }
  if (config.tb < 1) {
    throw std::invalid_argument("CudaKernelSpec: temporal degree (tb) must be >= 1");
  }
  if (config.tb > 1 && method != kernels::Method::InPlaneFullSlice) {
    throw std::invalid_argument(
        "CudaKernelSpec: temporal blocking requires the full-slice method");
  }
}

std::string generate_kernel(const CudaKernelSpec& spec) {
  spec.validate();
  const std::string s = spec.scalar();
  Code c;
  const bool temporal = spec.config.tb > 1;
  c.line("// Auto-generated " + std::string(kernels::to_string(spec.method)) +
         " stencil kernel, radius " + itos(spec.radius) + ", config " +
         spec.config.to_string() + ", " + (spec.is_double ? "DP" : "SP") +
         (temporal ? ", temporal degree " + itos(spec.config.tb) : "") + ".");
  c.line("// `in`/`out` point at the interior origin of grids padded with a");
  c.line("// halo of at least `" + std::string(temporal ? "TB * R" : "R") +
         "` cells on every face; `pitch` and `plane` are");
  c.line("// the row and plane strides in elements.");
  c.line("extern \"C\" __global__ void " + spec.name() + "(");
  c.line("    const " + s + "* __restrict__ in, " + s + "* __restrict__ out,");
  if (temporal) {
    c.open("    const " + s +
           "* __restrict__ c, int nz, long pitch, long plane, int nx, int ny)");
    emit_temporal_prelude(c, spec);
    c.line();
    emit_temporal_body(c, spec);
  } else {
    c.open("    const " + s + "* __restrict__ c, int nz, long pitch, long plane)");
    emit_prelude(c, spec);
    c.line();
    if (spec.method == kernels::Method::ForwardPlane) {
      emit_forward_body(c, spec);
    } else {
      emit_inplane_body(c, spec);
    }
  }
  c.close();
  return c.str();
}

std::string generate_host_harness(const CudaKernelSpec& spec, const Extent3& extent) {
  spec.validate();
  extent.validate();
  const std::string s = spec.scalar();
  std::ostringstream o;
  o << R"(// Host harness: allocates halo-padded grids, runs the generated kernel,
// verifies against a CPU reference (the section IV-B methodology), and
// reports MPoint/s from CUDA-event timing.
#include <cmath>
#include <cstdio>
#include <cuda_runtime.h>
#include <vector>

#define CUDA_CHECK(x)                                                     \
  do {                                                                    \
    cudaError_t err__ = (x);                                              \
    if (err__ != cudaSuccess) {                                           \
      std::fprintf(stderr, "%s:%d: %s\n", __FILE__, __LINE__,             \
                   cudaGetErrorString(err__));                            \
      std::exit(1);                                                       \
    }                                                                     \
  } while (0)

)";
  const bool temporal = spec.config.tb > 1;
  o << "int run_" << spec.name() << "() {\n";
  o << "  using scalar_t = " << s << ";\n";
  o << "  constexpr int R = " << spec.radius << ";\n";
  o << "  constexpr int TB = " << (temporal ? spec.config.tb : 1)
    << ";  // temporal degree\n";
  o << "  constexpr int H = TB * R;  // halo depth\n";
  o << "  constexpr int NX = " << extent.nx << ", NY = " << extent.ny
    << ", NZ = " << extent.nz << ";\n";
  o << R"(  // Halo-padded, 128-byte-aligned layout (array padding, ref. [11]).
  const long pitch = ((NX + 2 * H + 31) / 32) * 32;
  const long plane = pitch * (NY + 2 * H);
  const long total = plane * (NZ + 2 * H);
  std::vector<scalar_t> h_in(static_cast<size_t>(total));
  for (long i = 0; i < total; ++i) {
    h_in[static_cast<size_t>(i)] = static_cast<scalar_t>(std::sin(0.001 * i));
  }
  std::vector<scalar_t> coeff(R + 1);
  coeff[0] = scalar_t(0.5);
  for (int m = 1; m <= R; ++m) coeff[static_cast<size_t>(m)] = scalar_t(0.5 / (6.0 * m * R));

  scalar_t *d_in = nullptr, *d_out = nullptr, *d_c = nullptr;
  CUDA_CHECK(cudaMalloc(&d_in, total * sizeof(scalar_t)));
  CUDA_CHECK(cudaMalloc(&d_out, total * sizeof(scalar_t)));
  CUDA_CHECK(cudaMalloc(&d_c, (R + 1) * sizeof(scalar_t)));
  CUDA_CHECK(cudaMemcpy(d_in, h_in.data(), total * sizeof(scalar_t),
                        cudaMemcpyHostToDevice));
  CUDA_CHECK(cudaMemcpy(d_c, coeff.data(), (R + 1) * sizeof(scalar_t),
                        cudaMemcpyHostToDevice));

  // Interior-origin views: (0, 0, 0) is the first non-halo element.
  const long origin = H + H * pitch + H * plane;
)";
  o << "  const dim3 block(" << spec.config.tx << ", " << spec.config.ty << ");\n";
  o << "  const dim3 grid(NX / " << spec.config.tile_w() << ", NY / "
    << spec.config.tile_h() << ");\n";
  o << R"(
  cudaEvent_t t0, t1;
  CUDA_CHECK(cudaEventCreate(&t0));
  CUDA_CHECK(cudaEventCreate(&t1));
  CUDA_CHECK(cudaEventRecord(t0));
)";
  o << "  " << spec.name() << "<<<grid, block>>>(d_in + origin, d_out + origin, d_c, "
    << (temporal ? "NZ, pitch, plane, NX, NY" : "NZ, pitch, plane") << ");\n";
  o << R"(  CUDA_CHECK(cudaEventRecord(t1));
  CUDA_CHECK(cudaEventSynchronize(t1));
  float ms = 0.0f;
  CUDA_CHECK(cudaEventElapsedTime(&ms, t0, t1));

  // CPU verification (section IV-B).
  std::vector<scalar_t> h_out(static_cast<size_t>(total));
  CUDA_CHECK(cudaMemcpy(h_out.data(), d_out, total * sizeof(scalar_t),
                        cudaMemcpyDeviceToHost));
  auto at = [&](const std::vector<scalar_t>& g, int x, int y, int z) {
    return g[static_cast<size_t>(origin + x + y * pitch + z * plane)];
  };
  double max_err = 0.0;
)";
  if (temporal) {
    o << R"(  // TB chained reference steps with a frozen t=0 halo: non-interior
  // points keep their initial value, matching the kernel's ghost-zone
  // freeze.
  std::vector<scalar_t> ref(h_in), nxt(h_in);
  for (int step = 0; step < TB; ++step) {
    for (int z = 0; z < NZ; ++z) {
      for (int y = 0; y < NY; ++y) {
        for (int x = 0; x < NX; ++x) {
          double acc = coeff[0] * at(ref, x, y, z);
          for (int m = 1; m <= R; ++m) {
            acc += coeff[static_cast<size_t>(m)] *
                   (at(ref, x - m, y, z) + at(ref, x + m, y, z) +
                    at(ref, x, y - m, z) + at(ref, x, y + m, z) +
                    at(ref, x, y, z - m) + at(ref, x, y, z + m));
          }
          nxt[static_cast<size_t>(origin + x + y * pitch + z * plane)] =
              static_cast<scalar_t>(acc);
        }
      }
    }
    ref.swap(nxt);
  }
  for (int z = 0; z < NZ; ++z) {
    for (int y = 0; y < NY; ++y) {
      for (int x = 0; x < NX; ++x) {
        const double err = std::abs(static_cast<double>(at(ref, x, y, z)) -
                                    static_cast<double>(at(h_out, x, y, z)));
        if (err > max_err) max_err = err;
      }
    }
  }
)";
  } else {
    o << R"(  for (int z = 0; z < NZ; ++z) {
    for (int y = 0; y < NY; ++y) {
      for (int x = 0; x < NX; ++x) {
        double ref = coeff[0] * at(h_in, x, y, z);
        for (int m = 1; m <= R; ++m) {
          ref += coeff[static_cast<size_t>(m)] *
                 (at(h_in, x - m, y, z) + at(h_in, x + m, y, z) +
                  at(h_in, x, y - m, z) + at(h_in, x, y + m, z) +
                  at(h_in, x, y, z - m) + at(h_in, x, y, z + m));
        }
        const double err = std::abs(ref - static_cast<double>(at(h_out, x, y, z)));
        if (err > max_err) max_err = err;
      }
    }
  }
)";
  }
  o << R"(  // TB point updates per swept point (degree-1: one).
  const double mpoints = double(NX) * NY * NZ * TB / (ms * 1e-3) / 1e6;
  std::printf("%-48s %8.1f MPoint/s  max_err %.3g\n", ")"
    << spec.name() << R"(", mpoints, max_err);
  CUDA_CHECK(cudaFree(d_in));
  CUDA_CHECK(cudaFree(d_out));
  CUDA_CHECK(cudaFree(d_c));
  return max_err < 1e-2 ? 0 : 1;
}
)";
  return o.str();
}

std::string generate_file(const CudaKernelSpec& spec, const Extent3& extent) {
  std::string out = generate_kernel(spec);
  out += "\n";
  out += generate_host_harness(spec, extent);
  out += "\nint main() { return run_" + spec.name() + "(); }\n";
  return out;
}

}  // namespace inplane::codegen
