#pragma once

#include "codegen/cuda_codegen.hpp"

namespace inplane::codegen {

/// OpenCL C backend for the same kernel specifications (the paper names
/// both programming models in its introduction [1], [2]).  The generated
/// __kernel mirrors the CUDA output: same shared ("__local") tile shapes,
/// same Fig. 6 loading patterns, same Eqn. (3)-(5) register queue, with
/// vloadN/vstoreN for the vectorised merged-row loads.
[[nodiscard]] std::string generate_opencl_kernel(const CudaKernelSpec& spec);

}  // namespace inplane::codegen
