#include "codegen/opencl_codegen.hpp"

#include <sstream>
#include <stdexcept>

namespace inplane::codegen {

namespace {

/// Line emitter (kept local to each backend; the emitted dialects differ
/// enough that sharing statement builders would obscure both).
class Code {
 public:
  Code& line(const std::string& text = "") {
    if (!text.empty()) out_ += std::string(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += text;
    out_ += "\n";
    return *this;
  }
  Code& open(const std::string& text) {
    line(text + " {");
    ++indent_;
    return *this;
  }
  Code& close() {
    --indent_;
    line("}");
    return *this;
  }
  [[nodiscard]] std::string str() const { return out_; }

 private:
  std::string out_;
  int indent_ = 0;
};

std::string itos(long v) { return std::to_string(v); }

/// Cooperative region load in OpenCL C: vloadN from __global, vstoreN into
/// the __local tile (OpenCL vector loads are alignment-tolerant, so no
/// scalar tail split is needed — vloadN requires only element alignment).
void emit_region_load(Code& c, const CudaKernelSpec& spec, const std::string& tag,
                      const std::string& xa, const std::string& xb,
                      const std::string& ya, const std::string& yb, int vec,
                      const std::string& dst = "tile",
                      const std::string& row_c = "K_TILE_ROW",
                      const std::string& halo_c = "R") {
  const std::string s = spec.scalar();
  c.line("// " + tag);
  c.open("");
  c.line("const int rxa = " + xa + ", rxb = " + xb + ", rya = " + ya +
         ", ryb = " + yb + ";");
  c.line("const int row_w = rxb - rxa;");
  c.line("const int vecs_per_row = (row_w + " + itos(vec) + " - 1) / " + itos(vec) +
         ";");
  c.open("for (int e = tid; e < (ryb - rya) * vecs_per_row; e += K_THREADS)");
  c.line("const int row = e / vecs_per_row;");
  c.line("const int col = (e % vecs_per_row) * " + itos(vec) + ";");
  c.line("const long src = idx3(x0 + rxa + col, y0 + rya + row, k);");
  c.line("const int toff = (rya + row + " + halo_c + ") * " + row_c + " + (rxa + col + " +
         halo_c + ");");
  if (vec > 1) {
    c.open("if (col + " + itos(vec) + " <= row_w)");
    c.line("vstore" + itos(vec) + "(vload" + itos(vec) + "(0, in + src), 0, " + dst +
           " + toff);");
    c.close();
    c.open("else");
    c.line("for (int t = col; t < row_w; ++t) " + dst +
           "[toff + t - col] = in[src + t - col];");
    c.close();
  } else {
    c.line("if (col < row_w) " + dst + "[toff] = in[src];");
    (void)s;
  }
  c.close();
  c.close();
}

void emit_column_load(Code& c, const std::string& tag, const std::string& xa,
                      const std::string& xb, const std::string& ya,
                      const std::string& yb) {
  c.line("// " + tag + " (column-major, poorly coalesced by construction)");
  c.open("");
  c.line("const int cxa = " + xa + ", cxb = " + xb + ", cya = " + ya +
         ", cyb = " + yb + ";");
  c.line("const int rows = cyb - cya;");
  c.open("for (int e = tid; e < (cxb - cxa) * rows; e += K_THREADS)");
  c.line("const int x = cxa + e / rows;");
  c.line("const int y = cya + e % rows;");
  c.line("tile[(y + R) * K_TILE_ROW + (x + R)] = in[idx3(x0 + x, y0 + y, k)];");
  c.close();
  c.close();
}

void emit_load_pattern(Code& c, const CudaKernelSpec& spec) {
  const int vec = spec.config.vec;
  using kernels::Method;
  switch (spec.method) {
    case Method::InPlaneClassical:
    case Method::ForwardPlane:
      if (spec.method == Method::InPlaneClassical) {
        emit_region_load(c, spec, "interior", "0", "K_TILE_W", "0", "K_TILE_H", 1);
      }
      emit_region_load(c, spec, "top strip", "0", "K_TILE_W", "-R", "0", 1);
      emit_region_load(c, spec, "bottom strip", "0", "K_TILE_W", "K_TILE_H",
                       "K_TILE_H + R", 1);
      emit_region_load(c, spec, "left strip", "-R", "0", "0", "K_TILE_H", 1);
      emit_region_load(c, spec, "right strip", "K_TILE_W", "K_TILE_W + R", "0",
                       "K_TILE_H", 1);
      emit_region_load(c, spec, "corners", "-R", "0", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "K_TILE_W", "K_TILE_W + R", "-R", "0", 1);
      emit_region_load(c, spec, "corners", "-R", "0", "K_TILE_H", "K_TILE_H + R", 1);
      emit_region_load(c, spec, "corners", "K_TILE_W", "K_TILE_W + R", "K_TILE_H",
                       "K_TILE_H + R", 1);
      break;
    case Method::InPlaneVertical:
      emit_region_load(c, spec, "merged top/bottom + interior", "0", "K_TILE_W", "-R",
                       "K_TILE_H + R", vec);
      emit_column_load(c, "left halo", "-R", "0", "0", "K_TILE_H");
      emit_column_load(c, "right halo", "K_TILE_W", "K_TILE_W + R", "0", "K_TILE_H");
      break;
    case Method::InPlaneHorizontal:
      emit_region_load(c, spec, "merged left/right + interior", "-R", "K_TILE_W + R",
                       "0", "K_TILE_H", vec);
      emit_region_load(c, spec, "top strip", "0", "K_TILE_W", "-R", "0", vec);
      emit_region_load(c, spec, "bottom strip", "0", "K_TILE_W", "K_TILE_H",
                       "K_TILE_H + R", vec);
      break;
    case Method::InPlaneFullSlice:
      emit_region_load(c, spec, "full slice", "-R", "K_TILE_W + R", "-R",
                       "K_TILE_H + R", vec);
      break;
  }
}

/// Degree-N temporal staging (full-slice only), mirroring the CUDA
/// backend: stage 1 runs the in-plane queue over the ghost-extended
/// region of the t=0 __local slice, stages 2..N-1 run forward-plane
/// updates between (2R+1)-deep __local rings, the final stage stores the
/// t=N plane.  Ghost points outside the global domain freeze at t=0.
void emit_temporal_body(Code& c, const CudaKernelSpec& spec) {
  const std::string s = spec.scalar();
  const int tb = spec.config.tb;
  const std::string last = itos(tb - 1);
  c.line(s + " back[K_PPT][R];");
  c.line(s + " q[K_PPT][R];");
  c.open("for (int i = 0; i < K_PPT; ++i)");
  c.line("const int p = tid + i * K_THREADS;");
  c.line("if (p >= K_EXT_N) break;");
  c.line("const int ex = p % K_EXT_W - K_E1;");
  c.line("const int ey = p / K_EXT_W - K_E1;");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("back[i][m - 1] = in[idx3(x0 + ex, y0 + ey, -m)];");
  c.line("q[i][m - 1] = (" + s + ")(0);");
  c.close();
  c.close();
  c.line("// Preseed every ring's z in [-R, -1] planes with the frozen t=0 halo.");
  c.open("for (int z = -R; z < 0; ++z)");
  for (int st = 1; st < tb; ++st) {
    const std::string n = itos(st);
    c.open("for (int e = tid; e < K_RING" + n + "_H * K_RING" + n +
           "_W; e += K_THREADS)");
    c.line("const int gx = e % K_RING" + n + "_W - K_RING" + n + "_E;");
    c.line("const int gy = e / K_RING" + n + "_W - K_RING" + n + "_E;");
    c.line("RING" + n + "_AT(gx, gy, z) = in[idx3(x0 + gx, y0 + gy, z)];");
    c.close();
  }
  c.close();
  c.line("barrier(CLK_LOCAL_MEM_FENCE);");
  c.open("for (int k = 0; k < nz + TB * R; ++k)");
  emit_region_load(c, spec, "t=0 slice, full ghost zone", "-K_H", "K_TILE_W + K_H",
                   "-K_H", "K_TILE_H + K_H", spec.config.vec, "slice", "K_SLICE_ROW",
                   "K_H");
  c.line("barrier(CLK_LOCAL_MEM_FENCE);");
  c.line("// ---- Stage 1: in-plane queue over the extended region -> ring1 ----");
  c.open("");
  c.line("const int j1 = k - R;");
  c.open("for (int i = 0; i < K_PPT; ++i)");
  c.line("const int p = tid + i * K_THREADS;");
  c.line("if (p >= K_EXT_N) break;");
  c.line("const int ex = p % K_EXT_W - K_E1;");
  c.line("const int ey = p / K_EXT_W - K_E1;");
  c.line("const " + s + " cur = SLICE_AT(ex, ey);");
  c.line(s + " part = c_w[0] * cur;");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("part += c_w[m] * (SLICE_AT(ex - m, ey) + SLICE_AT(ex + m, ey) +");
  c.line("                  SLICE_AT(ex, ey - m) + SLICE_AT(ex, ey + m) +");
  c.line("                  back[i][m - 1]);");
  c.close();
  c.line("for (int d = 0; d < R; ++d) q[i][d] += c_w[d + 1] * cur;");
  c.line("const " + s +
         " emit = INTERIOR(x0 + ex, y0 + ey, j1) ? q[i][R - 1] : back[i][R - 1];");
  c.line("for (int d = R - 1; d >= 1; --d) q[i][d] = q[i][d - 1];");
  c.line("q[i][0] = part;");
  c.line("for (int m = R - 1; m >= 1; --m) back[i][m] = back[i][m - 1];");
  c.line("back[i][0] = cur;");
  c.line("if (j1 >= 0) RING1_AT(ex, ey, j1) = emit;");
  c.close();
  c.close();
  c.line("barrier(CLK_LOCAL_MEM_FENCE);");
  for (int st = 2; st < tb; ++st) {
    const std::string n = itos(st);
    const std::string pr = itos(st - 1);
    c.line("// ---- Stage " + n + ": forward-plane update ring" + pr + " -> ring" + n +
           " ----");
    c.open("");
    c.line("const int js = k - " + n + " * R;");
    c.open("if (js >= 0)");
    c.open("for (int e = tid; e < K_RING" + n + "_H * K_RING" + n +
           "_W; e += K_THREADS)");
    c.line("const int gx = e % K_RING" + n + "_W - K_RING" + n + "_E;");
    c.line("const int gy = e / K_RING" + n + "_W - K_RING" + n + "_E;");
    c.line("const " + s + " cur = RING" + pr + "_AT(gx, gy, js);");
    c.line(s + " acc = c_w[0] * cur;");
    c.open("for (int m = 1; m <= R; ++m)");
    c.line("acc += c_w[m] * (RING" + pr + "_AT(gx - m, gy, js) + RING" + pr +
           "_AT(gx + m, gy, js) +");
    c.line("                 RING" + pr + "_AT(gx, gy - m, js) + RING" + pr +
           "_AT(gx, gy + m, js) +");
    c.line("                 RING" + pr + "_AT(gx, gy, js - m) + RING" + pr +
           "_AT(gx, gy, js + m));");
    c.close();
    c.line("RING" + n + "_AT(gx, gy, js) = INTERIOR(x0 + gx, y0 + gy, js) ? acc : cur;");
    c.close();
    c.close();
    c.close();
    c.line("barrier(CLK_LOCAL_MEM_FENCE);");
  }
  c.line("// ---- Final stage: full 3D stencil over ring" + last +
         ", store the t=TB plane ----");
  c.open("");
  c.line("const int j = k - TB * R;");
  c.open("if (j >= 0)");
  c.open("for (int u = 0; u < K_RY; ++u)");
  c.open("for (int sx = 0; sx < K_RX; ++sx)");
  c.line("const int cx = tx + sx * K_TX;");
  c.line("const int cy = ty + u * K_TY;");
  c.line(s + " acc = c_w[0] * RING" + last + "_AT(cx, cy, j);");
  c.open("for (int m = 1; m <= R; ++m)");
  c.line("acc += c_w[m] * (RING" + last + "_AT(cx - m, cy, j) + RING" + last +
         "_AT(cx + m, cy, j) +");
  c.line("                 RING" + last + "_AT(cx, cy - m, j) + RING" + last +
         "_AT(cx, cy + m, j) +");
  c.line("                 RING" + last + "_AT(cx, cy, j - m) + RING" + last +
         "_AT(cx, cy, j + m));");
  c.close();
  c.line("out[idx3(x0 + cx, y0 + cy, j)] = acc;");
  c.close();
  c.close();
  c.close();
  c.close();
  c.line("barrier(CLK_LOCAL_MEM_FENCE);");
  c.close();  // k loop
}

}  // namespace

std::string generate_opencl_kernel(const CudaKernelSpec& spec) {
  spec.validate();
  const std::string s = spec.scalar();
  const kernels::LaunchConfig& cfg = spec.config;
  const bool temporal = cfg.tb > 1;
  Code c;
  c.line("// Auto-generated OpenCL " + std::string(kernels::to_string(spec.method)) +
         " stencil kernel, radius " + itos(spec.radius) + ", config " +
         cfg.to_string() + ", " + (spec.is_double ? "DP" : "SP") +
         (temporal ? ", temporal degree " + itos(cfg.tb) : "") + ".");
  if (spec.is_double) c.line("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
  c.line("#define R " + itos(spec.radius));
  c.line("#define K_TX " + itos(cfg.tx));
  c.line("#define K_TY " + itos(cfg.ty));
  c.line("#define K_RX " + itos(cfg.rx));
  c.line("#define K_RY " + itos(cfg.ry));
  c.line("#define K_TILE_W (K_TX * K_RX)");
  c.line("#define K_TILE_H (K_TY * K_RY)");
  c.line("#define K_THREADS (K_TX * K_TY)");
  c.line("#define K_TILE_ROW (K_TILE_W + 2 * R)");
  c.line("#define K_COLS (K_RX * K_RY)");
  if (temporal) {
    c.line("#define TB " + itos(cfg.tb) + "  /* temporal degree */");
    c.line("#define K_H (TB * R)         /* ghost-zone halo depth */");
    c.line("#define K_E1 ((TB - 1) * R)  /* stage-1 region extension */");
    c.line("#define K_EXT_W (K_TILE_W + 2 * K_E1)");
    c.line("#define K_EXT_H (K_TILE_H + 2 * K_E1)");
    c.line("#define K_EXT_N (K_EXT_W * K_EXT_H)");
    c.line("#define K_PPT ((K_EXT_N + K_THREADS - 1) / K_THREADS)");
    c.line("#define K_SLICE_ROW (K_TILE_W + 2 * K_H)");
    c.line("#define K_SLICE_H (K_TILE_H + 2 * K_H)");
    c.line("#define K_DEPTH (2 * R + 1)  /* ring planes */");
    for (int st = 1; st < cfg.tb; ++st) {
      const std::string n = itos(st);
      c.line("#define K_RING" + n + "_E ((TB - " + n + ") * R)");
      c.line("#define K_RING" + n + "_W (K_TILE_W + 2 * K_RING" + n + "_E)");
      c.line("#define K_RING" + n + "_H (K_TILE_H + 2 * K_RING" + n + "_E)");
    }
    c.line("#define SLOT(z) ((((z) % K_DEPTH) + K_DEPTH) % K_DEPTH)");
    c.line("#define SLICE_AT(gx, gy) slice[((gy) + K_H) * K_SLICE_ROW + ((gx) + K_H)]");
    for (int st = 1; st < cfg.tb; ++st) {
      const std::string n = itos(st);
      c.line("#define RING" + n + "_AT(gx, gy, z) \\");
      c.line("  ring" + n + "[(SLOT(z) * K_RING" + n + "_H + ((gy) + K_RING" + n +
             "_E)) * K_RING" + n + "_W + ((gx) + K_RING" + n + "_E)]");
    }
    c.line("#define INTERIOR(gx, gy, z) \\");
    c.line(
        "  ((gx) >= 0 && (gx) < nx && (gy) >= 0 && (gy) < ny && (z) >= 0 && (z) < nz)");
  }
  c.line();
  c.line("__kernel __attribute__((reqd_work_group_size(K_TX, K_TY, 1)))");
  c.line("void " + spec.name() + "(__global const " + s + "* restrict in,");
  c.line("                         __global " + s + "* restrict out,");
  c.line("                         __constant " + s + "* c_w,");
  if (temporal) {
    c.open("                         int nz, long pitch, long plane, int nx, int ny)");
  } else {
    c.open("                         int nz, long pitch, long plane)");
  }
  if (temporal) {
    c.line("__local " + s + " slice[K_SLICE_H * K_SLICE_ROW];");
    for (int st = 1; st < cfg.tb; ++st) {
      const std::string n = itos(st);
      c.line("__local " + s + " ring" + n + "[K_DEPTH * K_RING" + n + "_H * K_RING" +
             n + "_W];");
    }
  } else {
    c.line("__local " + s + " tile[(K_TILE_H + 2 * R) * K_TILE_ROW];");
  }
  c.line("const int tx = (int)get_local_id(0);");
  c.line("const int ty = (int)get_local_id(1);");
  c.line("const int tid = ty * K_TX + tx;");
  c.line("const int x0 = (int)get_group_id(0) * K_TILE_W;");
  c.line("const int y0 = (int)get_group_id(1) * K_TILE_H;");
  c.line("#define idx3(x, y, z) ((long)(x) + (long)(y) * pitch + (long)(z) * plane)");
  c.line();
  if (temporal) {
    emit_temporal_body(c, spec);
  } else if (spec.method == kernels::Method::ForwardPlane) {
    c.line(s + " pipe[K_COLS][2 * R + 1];");
    c.open("for (int u = 0; u < K_RY; ++u)");
    c.open("for (int sx = 0; sx < K_RX; ++sx)");
    c.line("const int col = u * K_RX + sx;");
    c.line("const int x = x0 + tx + sx * K_TX;");
    c.line("const int y = y0 + ty + u * K_TY;");
    c.line("for (int i = 1; i <= 2 * R; ++i) pipe[col][i] = in[idx3(x, y, -R + i - 1)];");
    c.close();
    c.close();
    c.open("for (int k = 0; k < nz; ++k)");
    c.open("for (int u = 0; u < K_RY; ++u)");
    c.open("for (int sx = 0; sx < K_RX; ++sx)");
    c.line("const int col = u * K_RX + sx;");
    c.line("const int x = x0 + tx + sx * K_TX;");
    c.line("const int y = y0 + ty + u * K_TY;");
    c.line("for (int i = 0; i < 2 * R; ++i) pipe[col][i] = pipe[col][i + 1];");
    c.line("pipe[col][2 * R] = in[idx3(x, y, k + R)];");
    c.line("tile[(ty + u * K_TY + R) * K_TILE_ROW + (tx + sx * K_TX + R)] = pipe[col][R];");
    c.close();
    c.close();
    emit_load_pattern(c, spec);
    c.line("barrier(CLK_LOCAL_MEM_FENCE);");
    c.open("for (int u = 0; u < K_RY; ++u)");
    c.open("for (int sx = 0; sx < K_RX; ++sx)");
    c.line("const int col = u * K_RX + sx;");
    c.line("const int lx = tx + sx * K_TX + R;");
    c.line("const int ly = ty + u * K_TY + R;");
    c.line(s + " acc = c_w[0] * pipe[col][R];");
    c.open("for (int m = 1; m <= R; ++m)");
    c.line("acc += c_w[m] * (tile[ly * K_TILE_ROW + lx - m] + tile[ly * K_TILE_ROW + lx + m] +");
    c.line("                 tile[(ly - m) * K_TILE_ROW + lx] + tile[(ly + m) * K_TILE_ROW + lx] +");
    c.line("                 pipe[col][R - m] + pipe[col][R + m]);");
    c.close();
    c.line("out[idx3(x0 + tx + sx * K_TX, y0 + ty + u * K_TY, k)] = acc;");
    c.close();
    c.close();
    c.line("barrier(CLK_LOCAL_MEM_FENCE);");
    c.close();
  } else {
    c.line(s + " back[K_COLS][R];");
    c.line(s + " q[K_COLS][R];");
    c.open("for (int u = 0; u < K_RY; ++u)");
    c.open("for (int sx = 0; sx < K_RX; ++sx)");
    c.line("const int col = u * K_RX + sx;");
    c.line("const int x = x0 + tx + sx * K_TX;");
    c.line("const int y = y0 + ty + u * K_TY;");
    c.open("for (int m = 1; m <= R; ++m)");
    c.line("back[col][m - 1] = in[idx3(x, y, -m)];");
    c.line("q[col][m - 1] = (" + s + ")(0);");
    c.close();
    c.close();
    c.close();
    c.open("for (int k = 0; k < nz + R; ++k)");
    emit_load_pattern(c, spec);
    c.line("barrier(CLK_LOCAL_MEM_FENCE);");
    c.open("for (int u = 0; u < K_RY; ++u)");
    c.open("for (int sx = 0; sx < K_RX; ++sx)");
    c.line("const int col = u * K_RX + sx;");
    c.line("const int lx = tx + sx * K_TX + R;");
    c.line("const int ly = ty + u * K_TY + R;");
    c.line("const " + s + " cur = tile[ly * K_TILE_ROW + lx];");
    c.line(s + " part = c_w[0] * cur;");
    c.open("for (int m = 1; m <= R; ++m)");
    c.line("part += c_w[m] * (tile[ly * K_TILE_ROW + lx - m] + tile[ly * K_TILE_ROW + lx + m] +");
    c.line("                  tile[(ly - m) * K_TILE_ROW + lx] + tile[(ly + m) * K_TILE_ROW + lx] +");
    c.line("                  back[col][m - 1]);");
    c.close();
    c.line("for (int d = 0; d < R; ++d) q[col][d] += c_w[d + 1] * cur;");
    c.line("const " + s + " emit = q[col][R - 1];");
    c.line("for (int d = R - 1; d >= 1; --d) q[col][d] = q[col][d - 1];");
    c.line("q[col][0] = part;");
    c.line("for (int m = R - 1; m >= 1; --m) back[col][m] = back[col][m - 1];");
    c.line("back[col][0] = cur;");
    c.open("if (k >= R)");
    c.line("out[idx3(x0 + tx + sx * K_TX, y0 + ty + u * K_TY, k - R)] = emit;");
    c.close();
    c.close();
    c.close();
    c.line("barrier(CLK_LOCAL_MEM_FENCE);");
    c.close();
  }
  c.close();
  return c.str();
}

}  // namespace inplane::codegen
