#pragma once

#include <string>

#include "core/extent.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/resources.hpp"

namespace inplane::codegen {

/// What to generate CUDA source for: one loading method, one stencil
/// radius, one launch configuration, one precision.
///
/// The generated kernels mirror the simulated kernels statement for
/// statement — same shared-tile shapes, same merged-row / strip / column
/// loading patterns (Fig. 6), same register queue recurrence (Eqns. 3-5),
/// same strided register tiling (section III-C3) — so a configuration
/// tuned on the simulator can be carried to real hardware unchanged.
///
/// config.tb > 1 selects degree-N temporal blocking (full-slice only):
/// the emitted kernel advances N time steps per sweep through the staged
/// ghost-zone/ring structure of temporal::TemporalInPlaneKernel, takes
/// extra `int nx, int ny` parameters for the frozen-boundary test, and
/// expects grids padded with a halo of TB * R cells per face.
struct CudaKernelSpec {
  kernels::Method method = kernels::Method::InPlaneFullSlice;
  int radius = 1;
  kernels::LaunchConfig config;
  bool is_double = false;
  std::string kernel_name;  ///< empty: derived from method/radius/config

  /// "inplane_fullslice_r2_t64x4_r2x2_v4_sp"-style derived name.
  [[nodiscard]] std::string name() const;
  /// C scalar type ("float" / "double").
  [[nodiscard]] std::string scalar() const { return is_double ? "double" : "float"; }
  /// CUDA vector type for the configured load width ("float4", "double2",
  /// or the scalar itself for vec == 1).
  [[nodiscard]] std::string vector_type() const;

  /// Throws std::invalid_argument for unsupported parameter combinations
  /// (radius < 1, vec * sizeof(scalar) > 16, non-positive blocking).
  void validate() const;
};

/// Generates the __global__ kernel definition (plus the device-side
/// constants it needs).  The coefficient array is passed as a kernel
/// argument c[radius + 1] with c[0] the centre weight.
[[nodiscard]] std::string generate_kernel(const CudaKernelSpec& spec);

/// Generates a self-contained host harness: allocation, initialisation,
/// kernel launch over a grid of @p extent, CPU verification of the result,
/// and MPoint/s timing with CUDA events — the section IV-B methodology.
[[nodiscard]] std::string generate_host_harness(const CudaKernelSpec& spec,
                                                const Extent3& extent);

/// A complete compilable .cu translation unit (kernel + harness + main).
[[nodiscard]] std::string generate_file(const CudaKernelSpec& spec,
                                        const Extent3& extent);

}  // namespace inplane::codegen
