#pragma once

#include <optional>
#include <string>

#include "core/coefficients.hpp"
#include "core/grid3.hpp"
#include "gpusim/block_ctx.hpp"
#include "gpusim/timing.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::temporal {

/// Two-timestep temporal blocking on top of the in-plane method — the
/// "3.5-D" extension the paper's related-work section points at (Nguyen et
/// al. [14], Meng & Skadron [16]).
///
/// One sweep down z advances the whole tile by TWO Jacobi steps while
/// loading every input element once and storing every output element once:
///
///  * stage 1 applies the stencil to the streamed t=0 planes with the
///    in-plane full-slice machinery (merged vectorised loads, r-deep
///    partial queue, Eqns. 3-5) — but over the *extended* tile
///    (W+2r) x (H+2r), because stage 2 needs a ghost zone of t=1 values;
///  * completed t=1 planes go to a (2r+1)-deep shared-memory ring instead
///    of global memory;
///  * stage 2 applies the stencil to the ring (pure shared-memory reads,
///    forward-plane style) and stores the t=2 plane k-2r.
///
/// Boundary semantics match two applications of the CPU reference with a
/// frozen halo: t=1 values at non-interior points are the t=0 values.
///
/// The trade-off this extension explores (and bench_temporal_extension
/// measures): global traffic per point per timestep drops towards half,
/// in exchange for (1+2r/W)(1+2r/H) redundant stage-1 compute and a
/// (2r+1)-plane shared-memory ring that crushes occupancy for large tiles
/// or high orders.
template <typename T>
class TemporalInPlaneKernel {
 public:
  TemporalInPlaneKernel(StencilCoeffs coeffs, kernels::LaunchConfig config);

  [[nodiscard]] const StencilCoeffs& coeffs() const { return cs_; }
  [[nodiscard]] const kernels::LaunchConfig& config() const { return cfg_; }
  [[nodiscard]] int radius() const { return r_; }
  /// Timesteps advanced per sweep (fixed at 2 for this kernel).
  [[nodiscard]] static constexpr int time_steps() { return 2; }

  [[nodiscard]] int preferred_align_offset() const { return 2 * r_; }
  [[nodiscard]] gpusim::KernelResources resources() const;
  [[nodiscard]] std::optional<std::string> validate(const gpusim::DeviceSpec& device,
                                                    const Extent3& extent) const;

  /// One block's full double-timestep z sweep.  Grids need halo >= 2r.
  void run_block(gpusim::BlockCtx& ctx, const kernels::GridAccess& in,
                 kernels::GridAccess& out, int bx, int by) const;

  /// Steady-state one-plane trace (timing-model input).
  [[nodiscard]] gpusim::TraceStats trace_plane(const gpusim::DeviceSpec& device,
                                               const Extent3& extent) const;

 private:
  struct Work;
  void plane(gpusim::BlockCtx& ctx, const kernels::GridAccess& in,
             kernels::GridAccess& out, int bx, int by, int k, Work& work) const;

  StencilCoeffs cs_;
  kernels::LaunchConfig cfg_;
  int r_;
  std::vector<T> c_;
};

/// Functional execution over whole grids (halo >= 2 * radius required).
/// The result equals TWO applications of the reference stencil with the
/// halo frozen between steps.
template <typename T>
gpusim::TraceStats run_temporal_kernel(
    const TemporalInPlaneKernel<T>& kernel, const Grid3<T>& in, Grid3<T>& out,
    const gpusim::DeviceSpec& device,
    gpusim::ExecMode mode = gpusim::ExecMode::Functional);

/// Timing estimate.  Note: mpoints_per_s counts *grid points per sweep*;
/// multiply by time_steps() for point-updates per second when comparing
/// against single-step kernels.
template <typename T>
[[nodiscard]] gpusim::KernelTiming time_temporal_kernel(
    const TemporalInPlaneKernel<T>& kernel, const gpusim::DeviceSpec& device,
    const Extent3& extent);

extern template class TemporalInPlaneKernel<float>;
extern template class TemporalInPlaneKernel<double>;
extern template gpusim::TraceStats run_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const Grid3<float>&, Grid3<float>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::TraceStats run_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const Grid3<double>&, Grid3<double>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::KernelTiming time_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const gpusim::DeviceSpec&, const Extent3&);
extern template gpusim::KernelTiming time_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const gpusim::DeviceSpec&, const Extent3&);

}  // namespace inplane::temporal
