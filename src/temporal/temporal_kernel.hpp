#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/coefficients.hpp"
#include "core/grid3.hpp"
#include "gpusim/block_ctx.hpp"
#include "gpusim/timing.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::temporal {

/// Degree-N temporal blocking on top of the in-plane method — the "3.5-D"
/// extension the paper's related-work section points at (Nguyen et al.
/// [14], Meng & Skadron [16]), generalized to a runtime degree N =
/// config().tb in the spirit of AN5D's deep temporal blocking.
///
/// One sweep down z advances the whole tile by N Jacobi steps while
/// loading every input element once and storing every output element once:
///
///  * stage 1 applies the stencil to the streamed t=0 planes with the
///    in-plane full-slice machinery (merged vectorised loads, r-deep
///    partial queue, Eqns. 3-5) — over the *extended* tile
///    (W+2(N-1)r) x (H+2(N-1)r), because every later stage consumes a
///    ghost zone that shrinks by r per timestep;
///  * each intermediate timestep s in [1, N) lives in its own
///    (2r+1)-plane shared-memory ring of (W+2(N-s)r) x (H+2(N-s)r)
///    planes; stage s+1 applies the stencil to ring s (pure shared reads,
///    forward-plane style) and feeds ring s+1;
///  * stage N stores the t=N plane k - N*r to global memory.
///
/// At iteration k of the z walk, stage s emits the t=s plane k - s*r; the
/// rings are preseeded with the z in [-r, -1] halo planes before the walk
/// so every stage only ever emits planes >= 0.  Boundary semantics match
/// N applications of the CPU reference with a frozen halo: by induction,
/// t=s values at non-interior points are the t=0 values (stage 1 freezes
/// via its back history, later stages via the previous ring's centre).
///
/// N = 1 degenerates to the plain single-step in-plane full-slice sweep
/// (no rings, the queue emission stores straight to global memory).
///
/// The trade-off this extension explores (and bench_temporal_extension
/// measures): global traffic per point per timestep drops towards 1/N, in
/// exchange for prod_s (1+2(N-s)r/W)(1+2(N-s)r/H) redundant ghost-zone
/// compute and a ring hierarchy that crushes occupancy for large tiles,
/// high orders or deep degrees — which is exactly why the degree is a
/// tuner dimension rather than a constant.
template <typename T>
class TemporalInPlaneKernel final : public kernels::IStencilKernel<T> {
 public:
  TemporalInPlaneKernel(StencilCoeffs coeffs, kernels::LaunchConfig config);

  [[nodiscard]] kernels::Method method() const override {
    return kernels::Method::InPlaneFullSlice;
  }
  [[nodiscard]] const StencilCoeffs& coeffs() const override { return cs_; }
  [[nodiscard]] const kernels::LaunchConfig& config() const override { return cfg_; }
  [[nodiscard]] int radius() const override { return r_; }
  /// Timesteps advanced per sweep — the runtime degree N = config().tb.
  [[nodiscard]] int time_steps() const override { return tb_; }
  /// The pipeline streams N*r planes into the z halo.
  [[nodiscard]] int required_halo() const override { return tb_ * r_; }

  [[nodiscard]] int preferred_align_offset() const override { return tb_ * r_; }
  [[nodiscard]] gpusim::KernelResources resources() const override;

  /// Ordered first-violation report with exact numbers: thread count,
  /// shared memory (slice + rings), per-thread registers (the 255-register
  /// encoding limit), tile divisibility, then pipeline depth vs nz.
  [[nodiscard]] std::optional<std::string> validate(
      const gpusim::DeviceSpec& device, const Extent3& extent) const override;

  /// One block's full N-timestep z sweep.  Grids need halo >= N*r.
  void run_block(gpusim::BlockCtx& ctx, const kernels::GridAccess& in,
                 kernels::GridAccess& out, int bx, int by) const override;

  /// Steady-state one-plane trace (timing-model input): one iteration of
  /// the z walk with every stage active.
  [[nodiscard]] gpusim::TraceStats trace_plane(
      const gpusim::DeviceSpec& device, const Extent3& extent) const override;

 private:
  struct Work;
  void plane(gpusim::BlockCtx& ctx, const kernels::GridAccess& in,
             kernels::GridAccess& out, int bx, int by, int k, Work& work) const;

  /// Ghost-zone extension of the t=s region: (N-s)*r.
  [[nodiscard]] int ext_of(int s) const { return (tb_ - s) * r_; }
  /// Byte offset of ring s (s in [1, N)) within the block's shared memory
  /// (the t=0 slice sits at offset 0).
  [[nodiscard]] std::uint32_t ring_base(int s) const;
  /// Byte offset of element (gx, gy) of plane z's slot in ring s, with
  /// gx in [-ext_of(s), W + ext_of(s)) and likewise gy.
  [[nodiscard]] std::uint32_t ring_off(int s, int z, int gx, int gy) const;

  StencilCoeffs cs_;
  kernels::LaunchConfig cfg_;
  int r_;
  int tb_;  ///< the temporal degree N (= cfg_.tb)
  std::vector<T> c_;
};

/// Functional execution over whole grids (halo >= N * radius required).
/// The result equals N applications of the reference stencil with the
/// halo frozen between steps.
template <typename T>
gpusim::TraceStats run_temporal_kernel(
    const TemporalInPlaneKernel<T>& kernel, const Grid3<T>& in, Grid3<T>& out,
    const gpusim::DeviceSpec& device,
    gpusim::ExecMode mode = gpusim::ExecMode::Functional);

/// Timing estimate via the shared kernels::time_kernel path.  Note:
/// mpoints_per_s counts point-UPDATES per second (grid points x N), so it
/// compares directly against single-step kernels in the tuner ranking.
template <typename T>
[[nodiscard]] gpusim::KernelTiming time_temporal_kernel(
    const TemporalInPlaneKernel<T>& kernel, const gpusim::DeviceSpec& device,
    const Extent3& extent);

extern template class TemporalInPlaneKernel<float>;
extern template class TemporalInPlaneKernel<double>;
extern template gpusim::TraceStats run_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const Grid3<float>&, Grid3<float>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::TraceStats run_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const Grid3<double>&, Grid3<double>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
extern template gpusim::KernelTiming time_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const gpusim::DeviceSpec&, const Extent3&);
extern template gpusim::KernelTiming time_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const gpusim::DeviceSpec&, const Extent3&);

}  // namespace inplane::temporal
