#include "temporal/temporal_kernel.hpp"

#include <stdexcept>

#include "core/simd.hpp"
#include "kernels/kernel_common.hpp"

namespace inplane::temporal {

using kernels::GridAccess;
using kernels::LaunchConfig;
using kernels::detail::kWarp;
using kernels::detail::load_rows_to_tile;
using kernels::detail::SmemTile;
using kernels::detail::store_columns;
using kernels::detail::thread_pos;
using kernels::detail::ThreadPos;

namespace {

/// Cooperative warp-wide shared read over @p n flat points: chunk c's lane
/// l handles point c*32+l.  @p off(p) gives the byte offset, @p out(p, v)
/// receives the value in functional modes.
template <typename T, typename OffFn, typename OutFn>
void smem_read_points(gpusim::BlockCtx& ctx, int n, OffFn&& off, OutFn&& out) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::SmemReadLane rd[kWarp];
    T vals[kWarp] = {};
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      rd[lane] = {active ? off(p) : 0,
                  active && ctx.functional() ? &vals[lane] : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_smem_read({rd, kWarp});
    if (ctx.functional()) {
      for (int lane = 0; lane < kWarp && base + lane < n; ++lane) {
        out(base + lane, vals[lane]);
      }
    }
  }
}

/// Cooperative warp-wide shared write over @p n flat points.
template <typename T, typename OffFn, typename SrcFn>
void smem_write_points(gpusim::BlockCtx& ctx, int n, OffFn&& off, SrcFn&& src) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::SmemWriteLane wr[kWarp];
    T vals[kWarp] = {};
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      if (active && ctx.functional()) vals[lane] = src(p);
      wr[lane] = {active ? off(p) : 0, active ? &vals[lane] : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_smem_write({wr, kWarp});
  }
}

/// Cooperative warp-wide global load over @p n flat points.
template <typename T, typename AddrFn, typename DstFn>
void load_points(gpusim::BlockCtx& ctx, int n, AddrFn&& addr, DstFn&& dst) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::GlobalLoadLane ld[kWarp];
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      ld[lane] = {active ? addr(p) : 0,
                  active && ctx.functional() ? static_cast<void*>(&dst(p)) : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_load({ld, kWarp});
  }
}

}  // namespace

template <typename T>
struct TemporalInPlaneKernel<T>::Work {
  // Per extended-point stage-1 register state: back[0..r-1] then q[0..r-1].
  std::vector<T> state;
  std::vector<T> cur;
  std::vector<T> nsum;
  std::vector<T> part;

  Work(int n_points, int r)
      : state(static_cast<std::size_t>(n_points) * 2 * static_cast<std::size_t>(r)),
        cur(static_cast<std::size_t>(n_points)),
        nsum(static_cast<std::size_t>(n_points)),
        part(static_cast<std::size_t>(n_points)) {}

  [[nodiscard]] T& back(int p, int m, int r) {  // m in [1, r]
    return state[static_cast<std::size_t>(p) * 2 * static_cast<std::size_t>(r) +
                 static_cast<std::size_t>(m - 1)];
  }
  [[nodiscard]] T& q(int p, int d, int r) {  // d in [0, r)
    return state[static_cast<std::size_t>(p) * 2 * static_cast<std::size_t>(r) +
                 static_cast<std::size_t>(r + d)];
  }
};

template <typename T>
TemporalInPlaneKernel<T>::TemporalInPlaneKernel(StencilCoeffs coeffs,
                                                LaunchConfig config)
    : cs_(std::move(coeffs)), cfg_(config), r_(cs_.radius()) {
  if (r_ < 1) throw std::invalid_argument("TemporalInPlaneKernel: radius must be >= 1");
  if (cfg_.tx <= 0 || cfg_.ty <= 0 || cfg_.rx <= 0 || cfg_.ry <= 0) {
    throw std::invalid_argument(
        "TemporalInPlaneKernel: blocking factors must be positive");
  }
  if (cfg_.vec != 1 && cfg_.vec != 2 && cfg_.vec != 4) {
    throw std::invalid_argument("TemporalInPlaneKernel: vec must be 1, 2 or 4");
  }
  if (static_cast<std::size_t>(cfg_.vec) * sizeof(T) > 16) {
    throw std::invalid_argument(
        "TemporalInPlaneKernel: vector load wider than 16 bytes");
  }
  c_.resize(static_cast<std::size_t>(r_) + 1);
  c_[0] = static_cast<T>(cs_.c0());
  for (int m = 1; m <= r_; ++m) c_[static_cast<std::size_t>(m)] = static_cast<T>(cs_.c(m));
}

template <typename T>
gpusim::KernelResources TemporalInPlaneKernel<T>::resources() const {
  const int r = r_;
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const std::size_t slice =
      static_cast<std::size_t>(w + 4 * r) * static_cast<std::size_t>(h + 4 * r);
  const std::size_t ring = static_cast<std::size_t>(2 * r + 1) *
                           static_cast<std::size_t>(w + 2 * r) *
                           static_cast<std::size_t>(h + 2 * r);
  gpusim::KernelResources res;
  res.threads = cfg_.threads();
  res.smem_bytes = (slice + ring) * sizeof(T);
  const int n_points = (w + 2 * r) * (h + 2 * r);
  const int per_thread = (n_points + cfg_.threads() - 1) / cfg_.threads();
  const int regs_per_value = sizeof(T) == 8 ? 2 : 1;
  res.regs_per_thread = 12 + regs_per_value * (2 * r * per_thread + 4);
  return res;
}

template <typename T>
std::optional<std::string> TemporalInPlaneKernel<T>::validate(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  extent.validate();
  if (cfg_.threads() > device.max_threads_per_block) {
    return "threads per block over device limit";
  }
  if (resources().smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
    return "slice + t1 ring over per-SM shared memory";
  }
  if (extent.nx % cfg_.tile_w() != 0) return "TX*RX does not divide grid x extent";
  if (extent.ny % cfg_.tile_h() != 0) return "TY*RY does not divide grid y extent";
  if (extent.nz <= 2 * r_) return "grid too shallow for the double-step pipeline";
  return std::nullopt;
}

template <typename T>
void TemporalInPlaneKernel<T>::plane(gpusim::BlockCtx& ctx, const GridAccess& in,
                                     GridAccess& out, int bx, int by, int k,
                                     Work& work) const {
  const int r = r_;
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const int x0 = bx * w;
  const int y0 = by * h;
  const int ew = w + 2 * r;   // extended (stage-1) tile width
  const int eh = h + 2 * r;
  const int n = ew * eh;      // extended points, flattened p = (ey+r)*ew + (ex+r)
  const bool fn = ctx.functional();
  const auto elem = static_cast<std::uint32_t>(sizeof(T));

  // Shared layout: t=0 slice (w+4r) x (h+4r), then the (2r+1)-plane t=1 ring.
  const int slice_row = w + 4 * r;
  const std::uint32_t ring_base =
      static_cast<std::uint32_t>(slice_row) * static_cast<std::uint32_t>(h + 4 * r) *
      elem;
  const auto slice_off = [&](int gx, int gy) {  // gx in [-2r, w+2r)
    return static_cast<std::uint32_t>((gy + 2 * r) * slice_row + (gx + 2 * r)) * elem;
  };
  const auto ring_off = [&](int z, int gx, int gy) {  // gx in [-r, w+r)
    const int slot = ((z % (2 * r + 1)) + (2 * r + 1)) % (2 * r + 1);
    return ring_base +
           static_cast<std::uint32_t>((slot * eh + gy + r) * ew + (gx + r)) * elem;
  };
  const auto ex_of = [&](int p) { return p % ew - r; };
  const auto ey_of = [&](int p) { return p / ew - r; };

  // ---- Stage 1 load: stream the t=0 plane k into the slice --------------
  // (merged full-slice rows; the tile "origin" for the loader is the
  // extended region's origin, so its own halo of width r covers 2r total).
  {
    const SmemTile slice{ew, eh, r, sizeof(T), 0};
    load_rows_to_tile<T>(ctx, in, slice, x0 - r, y0 - r, x0 - 2 * r, x0 + w + 2 * r,
                         y0 - 2 * r, y0 + h + 2 * r, k, cfg_.vec);
  }
  ctx.sync();

  // ---- Stage 1 compute: in-plane partials over the extended tile ---------
  smem_read_points<T>(
      ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p)); },
      [&](int p, T v) { work.cur[static_cast<std::size_t>(p)] = v; });
  if (fn) {
    const T c0 = c_[0];
    INPLANE_SIMD_LOOP
    for (int p = 0; p < n; ++p) {
      work.part[static_cast<std::size_t>(p)] =
          c0 * work.cur[static_cast<std::size_t>(p)];
    }
  }
  for (int m = 1; m <= r; ++m) {
    if (fn) std::fill(work.nsum.begin(), work.nsum.end(), T{});
    auto add = [&](int p, T v) { work.nsum[static_cast<std::size_t>(p)] += v; };
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p) - m, ey_of(p)); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p) + m, ey_of(p)); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p) - m); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p) + m); },
                        add);
    if (fn) {
      const T cm = c_[static_cast<std::size_t>(m)];
      INPLANE_SIMD_LOOP
      for (int p = 0; p < n; ++p) {
        work.part[static_cast<std::size_t>(p)] +=
            cm * (work.nsum[static_cast<std::size_t>(p)] + work.back(p, m, r));
      }
    }
  }
  // Queue updates (Eqn. 5), emission of the t=1 plane k-r into the ring,
  // and the register shifts.  Non-interior points freeze at their t=0
  // value (back[r] holds t0(k-r)) so boundaries match the CPU reference.
  if (fn) {
    // Extended points are independent; only the slot walk within one
    // point's register state is sequential (core/simd.hpp contract).
    INPLANE_SIMD_LOOP
    for (int p = 0; p < n; ++p) {
      const T cur = work.cur[static_cast<std::size_t>(p)];
      for (int d = 0; d < r; ++d) {
        work.q(p, d, r) += c_[static_cast<std::size_t>(d + 1)] * cur;
      }
      const bool interior = in.layout->is_interior(x0 + ex_of(p), y0 + ey_of(p), k - r);
      const T emit = interior ? work.q(p, r - 1, r) : work.back(p, r, r);
      for (int d = r - 1; d >= 1; --d) work.q(p, d, r) = work.q(p, d - 1, r);
      work.q(p, 0, r) = work.part[static_cast<std::size_t>(p)];
      for (int m = r; m >= 2; --m) work.back(p, m, r) = work.back(p, m - 1, r);
      work.back(p, 1, r) = cur;
      work.part[static_cast<std::size_t>(p)] = emit;  // reuse as emit buffer
    }
  }
  smem_write_points<T>(
      ctx, n, [&](int p) { return ring_off(k - r, ex_of(p), ey_of(p)); },
      [&](int p) { return work.part[static_cast<std::size_t>(p)]; });
  ctx.sync();

  // ---- Stage 2: stencil over the t=1 ring, store the t=2 plane k-2r ------
  const int j = k - 2 * r;
  if (j >= 0) {
    const int threads = cfg_.threads();
    const int cols = cfg_.columns_per_thread();
    std::vector<T> acc(static_cast<std::size_t>(threads) *
                       static_cast<std::size_t>(cols));
    auto column_site = [&](int dx, int dy, int dz, auto&& consume) {
      for (int warp0 = 0; warp0 < threads; warp0 += kWarp) {
        for (int col = 0; col < cols; ++col) {
          const int s = col % cfg_.rx;
          const int u = col / cfg_.rx;
          gpusim::BlockCtx::SmemReadLane rd[kWarp];
          T vals[kWarp] = {};
          for (int lane = 0; lane < kWarp; ++lane) {
            const int tid = warp0 + lane;
            const bool active = tid < threads;
            if (active) {
              const ThreadPos pos = thread_pos(cfg_, tid);
              const int cx = pos.t_x + s * cfg_.tx + dx;
              const int cy = pos.t_y + u * cfg_.ty + dy;
              rd[lane] = {ring_off(j + dz, cx, cy), fn ? &vals[lane] : nullptr, elem,
                          true};
            } else {
              rd[lane] = {};
            }
          }
          ctx.warp_smem_read({rd, kWarp});
          if (fn) {
            for (int lane = 0; lane < kWarp && warp0 + lane < threads; ++lane) {
              consume(warp0 + lane, col, vals[lane]);
            }
          }
        }
      }
    };
    const auto aidx = [&](int tid, int col) {
      return static_cast<std::size_t>(tid) * static_cast<std::size_t>(cols) +
             static_cast<std::size_t>(col);
    };
    column_site(0, 0, 0, [&](int tid, int col, T v) { acc[aidx(tid, col)] = c_[0] * v; });
    for (int m = 1; m <= r; ++m) {
      const T cm = c_[static_cast<std::size_t>(m)];
      auto add = [&](int tid, int col, T v) { acc[aidx(tid, col)] += cm * v; };
      column_site(-m, 0, 0, add);
      column_site(m, 0, 0, add);
      column_site(0, -m, 0, add);
      column_site(0, m, 0, add);
      column_site(0, 0, -m, add);
      column_site(0, 0, m, add);
    }
    store_columns<T>(ctx, out, cfg_, x0, y0, j,
                     [&](int tid, int col) { return acc[aidx(tid, col)]; });
  }
  ctx.sync();

  // Compute accounting: stage 1 does (6r+1) FMA-class ops per extended
  // point (in-plane counting, Table II); stage 2 does (6r+1) per output
  // point (forward counting over the ring).
  const auto warps = static_cast<std::uint64_t>(cfg_.warps(ctx.device()));
  const auto ru = static_cast<std::uint64_t>(r);
  const auto ext_chunks = static_cast<std::uint64_t>((n + kWarp - 1) / kWarp);
  const auto colsu = static_cast<std::uint64_t>(cfg_.columns_per_thread());
  const auto threadsu = static_cast<std::uint64_t>(cfg_.threads());
  ctx.record_compute(
      ext_chunks * (6 * ru + 1) + warps * colsu * (6 * ru + 1),
      static_cast<std::uint64_t>(n) * (8 * ru + 1) +
          threadsu * colsu * (7 * ru + 1));
}

template <typename T>
void TemporalInPlaneKernel<T>::run_block(gpusim::BlockCtx& ctx, const GridAccess& in,
                                         GridAccess& out, int bx, int by) const {
  const int r = r_;
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const int ew = w + 2 * r;
  const int eh = h + 2 * r;
  const int n = ew * eh;
  Work work(n, r);
  // Prime the stage-1 back history from the z < 0 halo planes.
  const int x0 = bx * w;
  const int y0 = by * h;
  for (int m = 1; m <= r; ++m) {
    load_points<T>(
        ctx, n,
        [&](int p) {
          return in.vaddr(x0 + p % ew - r, y0 + p / ew - r, -m);
        },
        [&](int p) -> T& { return work.back(p, m, r); });
  }
  const int nz = in.layout->nz();
  for (int k = 0; k < nz + 2 * r; ++k) {
    plane(ctx, in, out, bx, by, k, work);
  }
}

template <typename T>
gpusim::TraceStats TemporalInPlaneKernel<T>::trace_plane(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  const GridLayout layout(extent, 2 * r_, sizeof(T), 32, preferred_align_offset());
  gpusim::GlobalMemory gmem;
  gpusim::BlockCtx ctx(device, gmem, resources().smem_bytes, gpusim::ExecMode::Trace);
  GridAccess in{&layout, 0x10000};
  GridAccess out{&layout, 0x10000 + round_up(layout.allocated_bytes(), 512) + 512};
  const int ew = cfg_.tile_w() + 2 * r_;
  const int eh = cfg_.tile_h() + 2 * r_;
  Work work(ew * eh, r_);
  const int k = std::min(extent.nz - 1, 2 * r_ + 1);
  plane(ctx, in, out, 0, 0, k, work);
  return ctx.stats();
}

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

}  // namespace

template <typename T>
gpusim::TraceStats run_temporal_kernel(const TemporalInPlaneKernel<T>& kernel,
                                       const Grid3<T>& in, Grid3<T>& out,
                                       const gpusim::DeviceSpec& device,
                                       gpusim::ExecMode mode) {
  if (in.extent() != out.extent()) {
    throw std::invalid_argument("run_temporal_kernel: grids must share extent");
  }
  if (in.halo() < 2 * kernel.radius() || out.halo() < 2 * kernel.radius()) {
    throw std::invalid_argument("run_temporal_kernel: halo narrower than 2r");
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw std::invalid_argument("run_temporal_kernel: invalid configuration: " + *err);
  }
  gpusim::GlobalMemory gmem;
  const auto in_id = gmem.map_readonly(const_bytes(in));
  const auto out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};
  const LaunchConfig& cfg = kernel.config();
  gpusim::TraceStats total;
  for (int by = 0; by < in.ny() / cfg.tile_h(); ++by) {
    for (int bx = 0; bx < in.nx() / cfg.tile_w(); ++bx) {
      gpusim::BlockCtx ctx(device, gmem, kernel.resources().smem_bytes, mode);
      kernel.run_block(ctx, in_access, out_access, bx, by);
      total += ctx.stats();
    }
  }
  return total;
}

template <typename T>
gpusim::KernelTiming time_temporal_kernel(const TemporalInPlaneKernel<T>& kernel,
                                          const gpusim::DeviceSpec& device,
                                          const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = 2 * kernel.radius();  // double-deep pipeline fill
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  return gpusim::estimate_timing(device, input);
}

template class TemporalInPlaneKernel<float>;
template class TemporalInPlaneKernel<double>;
template gpusim::TraceStats run_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const Grid3<float>&, Grid3<float>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
template gpusim::TraceStats run_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const Grid3<double>&, Grid3<double>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
template gpusim::KernelTiming time_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const gpusim::DeviceSpec&, const Extent3&);
template gpusim::KernelTiming time_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const gpusim::DeviceSpec&, const Extent3&);

}  // namespace inplane::temporal
