#include "temporal/temporal_kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/simd.hpp"
#include "core/status.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/runner.hpp"

namespace inplane::temporal {

using kernels::GridAccess;
using kernels::LaunchConfig;
using kernels::detail::kWarp;
using kernels::detail::load_rows_to_tile;
using kernels::detail::SmemTile;
using kernels::detail::store_columns;
using kernels::detail::thread_pos;
using kernels::detail::ThreadPos;

namespace {

/// Cooperative warp-wide shared read over @p n flat points: chunk c's lane
/// l handles point c*32+l.  @p off(p) gives the byte offset, @p out(p, v)
/// receives the value in functional modes.
template <typename T, typename OffFn, typename OutFn>
void smem_read_points(gpusim::BlockCtx& ctx, int n, OffFn&& off, OutFn&& out) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::SmemReadLane rd[kWarp];
    T vals[kWarp] = {};
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      rd[lane] = {active ? off(p) : 0,
                  active && ctx.functional() ? &vals[lane] : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_smem_read({rd, kWarp});
    if (ctx.functional()) {
      for (int lane = 0; lane < kWarp && base + lane < n; ++lane) {
        out(base + lane, vals[lane]);
      }
    }
  }
}

/// Cooperative warp-wide shared write over @p n flat points.
template <typename T, typename OffFn, typename SrcFn>
void smem_write_points(gpusim::BlockCtx& ctx, int n, OffFn&& off, SrcFn&& src) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::SmemWriteLane wr[kWarp];
    T vals[kWarp] = {};
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      if (active && ctx.functional()) vals[lane] = src(p);
      wr[lane] = {active ? off(p) : 0, active ? &vals[lane] : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_smem_write({wr, kWarp});
  }
}

/// Cooperative warp-wide global load over @p n flat points.
template <typename T, typename AddrFn, typename DstFn>
void load_points(gpusim::BlockCtx& ctx, int n, AddrFn&& addr, DstFn&& dst) {
  for (int base = 0; base < n; base += kWarp) {
    gpusim::BlockCtx::GlobalLoadLane ld[kWarp];
    for (int lane = 0; lane < kWarp; ++lane) {
      const int p = base + lane;
      const bool active = p < n;
      ld[lane] = {active ? addr(p) : 0,
                  active && ctx.functional() ? static_cast<void*>(&dst(p)) : nullptr,
                  active ? static_cast<std::uint32_t>(sizeof(T)) : 0, active};
    }
    ctx.warp_load({ld, kWarp});
  }
}

/// Ring slot of plane @p z: the rings are (2r+1) deep, indexed mod depth
/// (C++ % is toward-zero, so negative planes need the wrap-around).
[[nodiscard]] int ring_slot(int z, int r) {
  const int depth = 2 * r + 1;
  return ((z % depth) + depth) % depth;
}

}  // namespace

template <typename T>
struct TemporalInPlaneKernel<T>::Work {
  // Per extended-point stage-1 register state: back[0..r-1] then q[0..r-1].
  std::vector<T> state;
  std::vector<T> cur;
  std::vector<T> nsum;
  std::vector<T> part;

  Work(int n_points, int r)
      : state(static_cast<std::size_t>(n_points) * 2 * static_cast<std::size_t>(r)),
        cur(static_cast<std::size_t>(n_points)),
        nsum(static_cast<std::size_t>(n_points)),
        part(static_cast<std::size_t>(n_points)) {}

  [[nodiscard]] T& back(int p, int m, int r) {  // m in [1, r]
    return state[static_cast<std::size_t>(p) * 2 * static_cast<std::size_t>(r) +
                 static_cast<std::size_t>(m - 1)];
  }
  [[nodiscard]] T& q(int p, int d, int r) {  // d in [0, r)
    return state[static_cast<std::size_t>(p) * 2 * static_cast<std::size_t>(r) +
                 static_cast<std::size_t>(r + d)];
  }
};

template <typename T>
TemporalInPlaneKernel<T>::TemporalInPlaneKernel(StencilCoeffs coeffs,
                                                LaunchConfig config)
    : cs_(std::move(coeffs)), cfg_(config), r_(cs_.radius()), tb_(config.tb) {
  if (r_ < 1) throw InvalidConfigError("TemporalInPlaneKernel: radius must be >= 1");
  if (cfg_.tx <= 0 || cfg_.ty <= 0 || cfg_.rx <= 0 || cfg_.ry <= 0) {
    throw InvalidConfigError(
        "TemporalInPlaneKernel: blocking factors must be positive");
  }
  if (cfg_.vec != 1 && cfg_.vec != 2 && cfg_.vec != 4) {
    throw InvalidConfigError("TemporalInPlaneKernel: vec must be 1, 2 or 4");
  }
  if (static_cast<std::size_t>(cfg_.vec) * sizeof(T) > 16) {
    throw InvalidConfigError(
        "TemporalInPlaneKernel: vector load wider than 16 bytes");
  }
  if (tb_ < 1) {
    throw InvalidConfigError(
        "TemporalInPlaneKernel: temporal degree (tb) must be >= 1");
  }
  c_.resize(static_cast<std::size_t>(r_) + 1);
  c_[0] = static_cast<T>(cs_.c0());
  for (int m = 1; m <= r_; ++m) c_[static_cast<std::size_t>(m)] = static_cast<T>(cs_.c(m));
}

template <typename T>
gpusim::KernelResources TemporalInPlaneKernel<T>::resources() const {
  return kernels::estimate_resources(method(), cfg_, r_, sizeof(T));
}

template <typename T>
std::uint32_t TemporalInPlaneKernel<T>::ring_base(int s) const {
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  // The t=0 slice spans the stage-1 region plus its own r halo.
  std::size_t elems = static_cast<std::size_t>(w + 2 * tb_ * r_) *
                      static_cast<std::size_t>(h + 2 * tb_ * r_);
  for (int t = 1; t < s; ++t) {
    elems += static_cast<std::size_t>(2 * r_ + 1) *
             static_cast<std::size_t>(w + 2 * ext_of(t)) *
             static_cast<std::size_t>(h + 2 * ext_of(t));
  }
  return static_cast<std::uint32_t>(elems * sizeof(T));
}

template <typename T>
std::uint32_t TemporalInPlaneKernel<T>::ring_off(int s, int z, int gx, int gy) const {
  const int es = ext_of(s);
  const int rw = cfg_.tile_w() + 2 * es;
  const int rh = cfg_.tile_h() + 2 * es;
  const int slot = ring_slot(z, r_);
  return ring_base(s) +
         static_cast<std::uint32_t>(((slot * rh) + (gy + es)) * rw + (gx + es)) *
             static_cast<std::uint32_t>(sizeof(T));
}

template <typename T>
std::optional<std::string> TemporalInPlaneKernel<T>::validate(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  extent.validate();
  // Ordered so the FIRST violated resource is the one reported, with the
  // exact numbers: threads, shared memory, registers, tiling, halo depth.
  if (cfg_.threads() > device.max_threads_per_block) {
    return "threads per block (" + std::to_string(cfg_.threads()) +
           ") over device limit (" + std::to_string(device.max_threads_per_block) +
           ")";
  }
  const gpusim::KernelResources res = resources();
  if (res.smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
    const std::size_t slice_bytes =
        static_cast<std::size_t>(cfg_.tile_w() + 2 * tb_ * r_) *
        static_cast<std::size_t>(cfg_.tile_h() + 2 * tb_ * r_) * sizeof(T);
    return "shared memory: t0 slice " + std::to_string(slice_bytes) + " B + ring(s) " +
           std::to_string(res.smem_bytes - slice_bytes) + " B = " +
           std::to_string(res.smem_bytes) + " B over the per-SM shared memory (" +
           std::to_string(device.smem_per_sm) + " B) at degree " +
           std::to_string(tb_);
  }
  // Spilling degrades single-step kernels gracefully, but the stage-1
  // queue/history state is addressed per extended point, so past the
  // 255-register encoding limit the staged pipeline cannot be held in
  // registers at all.
  constexpr int kRegEncodingLimit = 255;
  if (res.regs_per_thread > kRegEncodingLimit) {
    return "registers: " + std::to_string(res.regs_per_thread) +
           " per thread over the " + std::to_string(kRegEncodingLimit) +
           "-register encoding limit at degree " + std::to_string(tb_);
  }
  if (extent.nx % cfg_.tile_w() != 0) return "TX*RX does not divide grid x extent";
  if (extent.ny % cfg_.tile_h() != 0) return "TY*RY does not divide grid y extent";
  if (extent.nz <= tb_ * r_) {
    return "halo depth: grid too shallow for the degree-" + std::to_string(tb_) +
           " pipeline (nz = " + std::to_string(extent.nz) +
           " must exceed tb*r = " + std::to_string(tb_ * r_) + ")";
  }
  return std::nullopt;
}

template <typename T>
void TemporalInPlaneKernel<T>::plane(gpusim::BlockCtx& ctx, const GridAccess& in,
                                     GridAccess& out, int bx, int by, int k,
                                     Work& work) const {
  const int r = r_;
  const int nsteps = tb_;
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const int x0 = bx * w;
  const int y0 = by * h;
  const int e1 = ext_of(1);  // stage-1 ghost-zone extension, (N-1)r
  const int ew = w + 2 * e1;
  const int eh = h + 2 * e1;
  const int n = ew * eh;  // extended points, flattened p = (ey+e1)*ew + (ex+e1)
  const bool fn = ctx.functional();
  const auto elem = static_cast<std::uint32_t>(sizeof(T));
  std::uint64_t ops = 0;
  std::uint64_t flops = 0;

  // Shared layout: t=0 slice (w + 2Nr) x (h + 2Nr) at offset 0, then the
  // (2r+1)-plane ring of each intermediate timestep (see ring_base).
  const int slice_row = w + 2 * nsteps * r;
  const auto slice_off = [&](int gx, int gy) {  // gx in [-Nr, w+Nr)
    return static_cast<std::uint32_t>((gy + e1 + r) * slice_row + (gx + e1 + r)) *
           elem;
  };
  const auto ex_of = [&](int p) { return p % ew - e1; };
  const auto ey_of = [&](int p) { return p / ew - e1; };

  // ---- Stage 1 load: stream the t=0 plane k into the slice --------------
  // (merged full-slice rows; the tile "origin" for the loader is the
  // extended region's origin, so its own halo of width r covers Nr total).
  {
    const SmemTile slice{ew, eh, r, sizeof(T), 0};
    load_rows_to_tile<T>(ctx, in, slice, x0 - e1, y0 - e1, x0 - e1 - r,
                         x0 + w + e1 + r, y0 - e1 - r, y0 + h + e1 + r, k, cfg_.vec);
  }
  ctx.sync();

  // ---- Stage 1 compute: in-plane partials over the extended tile ---------
  smem_read_points<T>(
      ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p)); },
      [&](int p, T v) { work.cur[static_cast<std::size_t>(p)] = v; });
  if (fn) {
    const T c0 = c_[0];
    INPLANE_SIMD_LOOP
    for (int p = 0; p < n; ++p) {
      work.part[static_cast<std::size_t>(p)] =
          c0 * work.cur[static_cast<std::size_t>(p)];
    }
  }
  for (int m = 1; m <= r; ++m) {
    if (fn) std::fill(work.nsum.begin(), work.nsum.end(), T{});
    auto add = [&](int p, T v) { work.nsum[static_cast<std::size_t>(p)] += v; };
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p) - m, ey_of(p)); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p) + m, ey_of(p)); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p) - m); },
                        add);
    smem_read_points<T>(ctx, n, [&](int p) { return slice_off(ex_of(p), ey_of(p) + m); },
                        add);
    if (fn) {
      const T cm = c_[static_cast<std::size_t>(m)];
      INPLANE_SIMD_LOOP
      for (int p = 0; p < n; ++p) {
        work.part[static_cast<std::size_t>(p)] +=
            cm * (work.nsum[static_cast<std::size_t>(p)] + work.back(p, m, r));
      }
    }
  }
  // Queue updates (Eqn. 5), emission of the t=1 plane k-r, and the
  // register shifts.  Non-interior points freeze at their t=0 value
  // (back[r] holds t0(k-r)) so boundaries match the CPU reference.
  const int j1 = k - r;
  if (fn) {
    // Extended points are independent; only the slot walk within one
    // point's register state is sequential (core/simd.hpp contract).
    INPLANE_SIMD_LOOP
    for (int p = 0; p < n; ++p) {
      const T cur = work.cur[static_cast<std::size_t>(p)];
      for (int d = 0; d < r; ++d) {
        work.q(p, d, r) += c_[static_cast<std::size_t>(d + 1)] * cur;
      }
      const bool interior = in.layout->is_interior(x0 + ex_of(p), y0 + ey_of(p), j1);
      const T emit = interior ? work.q(p, r - 1, r) : work.back(p, r, r);
      for (int d = r - 1; d >= 1; --d) work.q(p, d, r) = work.q(p, d - 1, r);
      work.q(p, 0, r) = work.part[static_cast<std::size_t>(p)];
      for (int m = r; m >= 2; --m) work.back(p, m, r) = work.back(p, m - 1, r);
      work.back(p, 1, r) = cur;
      work.part[static_cast<std::size_t>(p)] = emit;  // reuse as emit buffer
    }
  }
  ops += static_cast<std::uint64_t>((n + kWarp - 1) / kWarp) *
         (6 * static_cast<std::uint64_t>(r) + 1);
  flops += static_cast<std::uint64_t>(n) * (8 * static_cast<std::uint64_t>(r) + 1);

  if (nsteps == 1) {
    // Degenerate single-step sweep: the queue emission IS the output.
    if (j1 >= 0) {
      store_columns<T>(ctx, out, cfg_, x0, y0, j1, [&](int tid, int col) {
        const ThreadPos pos = thread_pos(cfg_, tid);
        const int ex = pos.t_x + (col % cfg_.rx) * cfg_.tx;
        const int ey = pos.t_y + (col / cfg_.rx) * cfg_.ty;
        return work.part[static_cast<std::size_t>(ey * ew + ex)];
      });
    }
    ctx.sync();
    ctx.record_compute(ops, flops);
    return;
  }

  if (j1 >= 0) {
    smem_write_points<T>(
        ctx, n, [&](int p) { return ring_off(1, j1, ex_of(p), ey_of(p)); },
        [&](int p) { return work.part[static_cast<std::size_t>(p)]; });
  }
  ctx.sync();

  // ---- Intermediate stages: ring s-1 -> ring s (forward-plane style) -----
  // Stage s emits the t=s plane k - s*r; its whole (2r+1)-plane read
  // window exists in ring s-1 because stage s-1 emitted plane k-(s-1)r
  // just above and planes [-r, -1] were preseeded by run_block.
  for (int s = 2; s < nsteps; ++s) {
    const int js = k - s * r;
    if (js < 0) continue;
    const int es = ext_of(s);
    const int sw = w + 2 * es;
    const int sh = h + 2 * es;
    const int ns = sw * sh;
    const auto sx_of = [&](int p) { return p % sw - es; };
    const auto sy_of = [&](int p) { return p / sw - es; };
    // Centre value doubles as the frozen fallback (ring s-1 holds t=0
    // values at non-interior points by induction).
    smem_read_points<T>(
        ctx, ns, [&](int p) { return ring_off(s - 1, js, sx_of(p), sy_of(p)); },
        [&](int p, T v) { work.cur[static_cast<std::size_t>(p)] = v; });
    if (fn) {
      const T c0 = c_[0];
      INPLANE_SIMD_LOOP
      for (int p = 0; p < ns; ++p) {
        work.part[static_cast<std::size_t>(p)] =
            c0 * work.cur[static_cast<std::size_t>(p)];
      }
    }
    for (int m = 1; m <= r; ++m) {
      if (fn) std::fill(work.nsum.begin(), work.nsum.begin() + ns, T{});
      auto add = [&](int p, T v) { work.nsum[static_cast<std::size_t>(p)] += v; };
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js, sx_of(p) - m, sy_of(p)); },
          add);
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js, sx_of(p) + m, sy_of(p)); },
          add);
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js, sx_of(p), sy_of(p) - m); },
          add);
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js, sx_of(p), sy_of(p) + m); },
          add);
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js - m, sx_of(p), sy_of(p)); },
          add);
      smem_read_points<T>(
          ctx, ns, [&](int p) { return ring_off(s - 1, js + m, sx_of(p), sy_of(p)); },
          add);
      if (fn) {
        const T cm = c_[static_cast<std::size_t>(m)];
        INPLANE_SIMD_LOOP
        for (int p = 0; p < ns; ++p) {
          work.part[static_cast<std::size_t>(p)] +=
              cm * work.nsum[static_cast<std::size_t>(p)];
        }
      }
    }
    if (fn) {
      for (int p = 0; p < ns; ++p) {
        const bool interior =
            in.layout->is_interior(x0 + sx_of(p), y0 + sy_of(p), js);
        if (!interior) {
          work.part[static_cast<std::size_t>(p)] =
              work.cur[static_cast<std::size_t>(p)];
        }
      }
    }
    smem_write_points<T>(
        ctx, ns, [&](int p) { return ring_off(s, js, sx_of(p), sy_of(p)); },
        [&](int p) { return work.part[static_cast<std::size_t>(p)]; });
    ctx.sync();
    ops += static_cast<std::uint64_t>((ns + kWarp - 1) / kWarp) *
           (6 * static_cast<std::uint64_t>(r) + 1);
    flops += static_cast<std::uint64_t>(ns) * (7 * static_cast<std::uint64_t>(r) + 1);
  }

  // ---- Final stage: stencil over ring N-1, store the t=N plane k-Nr ------
  const int j = k - nsteps * r;
  if (j >= 0) {
    const int threads = cfg_.threads();
    const int cols = cfg_.columns_per_thread();
    std::vector<T> acc(static_cast<std::size_t>(threads) *
                       static_cast<std::size_t>(cols));
    auto column_site = [&](int dx, int dy, int dz, auto&& consume) {
      for (int warp0 = 0; warp0 < threads; warp0 += kWarp) {
        for (int col = 0; col < cols; ++col) {
          const int s = col % cfg_.rx;
          const int u = col / cfg_.rx;
          gpusim::BlockCtx::SmemReadLane rd[kWarp];
          T vals[kWarp] = {};
          for (int lane = 0; lane < kWarp; ++lane) {
            const int tid = warp0 + lane;
            const bool active = tid < threads;
            if (active) {
              const ThreadPos pos = thread_pos(cfg_, tid);
              const int cx = pos.t_x + s * cfg_.tx + dx;
              const int cy = pos.t_y + u * cfg_.ty + dy;
              rd[lane] = {ring_off(nsteps - 1, j + dz, cx, cy),
                          fn ? &vals[lane] : nullptr, elem, true};
            } else {
              rd[lane] = {};
            }
          }
          ctx.warp_smem_read({rd, kWarp});
          if (fn) {
            for (int lane = 0; lane < kWarp && warp0 + lane < threads; ++lane) {
              consume(warp0 + lane, col, vals[lane]);
            }
          }
        }
      }
    };
    const auto aidx = [&](int tid, int col) {
      return static_cast<std::size_t>(tid) * static_cast<std::size_t>(cols) +
             static_cast<std::size_t>(col);
    };
    column_site(0, 0, 0, [&](int tid, int col, T v) { acc[aidx(tid, col)] = c_[0] * v; });
    for (int m = 1; m <= r; ++m) {
      const T cm = c_[static_cast<std::size_t>(m)];
      auto add = [&](int tid, int col, T v) { acc[aidx(tid, col)] += cm * v; };
      column_site(-m, 0, 0, add);
      column_site(m, 0, 0, add);
      column_site(0, -m, 0, add);
      column_site(0, m, 0, add);
      column_site(0, 0, -m, add);
      column_site(0, 0, m, add);
    }
    store_columns<T>(ctx, out, cfg_, x0, y0, j,
                     [&](int tid, int col) { return acc[aidx(tid, col)]; });
    ops += static_cast<std::uint64_t>(cfg_.warps(ctx.device())) *
           static_cast<std::uint64_t>(cols) * (6 * static_cast<std::uint64_t>(r) + 1);
    flops += static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(cols) *
             (7 * static_cast<std::uint64_t>(r) + 1);
  }
  ctx.sync();

  // Compute accounting: (6r+1) warp FMA-class ops per point chunk per
  // stage (in-plane counting for stage 1, forward counting over the rings
  // for the rest, Table II).
  ctx.record_compute(ops, flops);
}

template <typename T>
void TemporalInPlaneKernel<T>::run_block(gpusim::BlockCtx& ctx, const GridAccess& in,
                                         GridAccess& out, int bx, int by) const {
  const int r = r_;
  const int w = cfg_.tile_w();
  const int h = cfg_.tile_h();
  const int e1 = ext_of(1);
  const int ew = w + 2 * e1;
  const int eh = h + 2 * e1;
  const int n = ew * eh;
  Work work(n, r);
  const int x0 = bx * w;
  const int y0 = by * h;
  // Prime the stage-1 back history from the z < 0 halo planes.
  for (int m = 1; m <= r; ++m) {
    load_points<T>(
        ctx, n,
        [&](int p) {
          return in.vaddr(x0 + p % ew - e1, y0 + p / ew - e1, -m);
        },
        [&](int p) -> T& { return work.back(p, m, r); });
  }
  // Preseed every ring's z in [-r, -1] planes with the frozen t=0 halo so
  // each stage only ever emits planes >= 0 (see the class comment).
  for (int s = 1; s < tb_; ++s) {
    const int es = ext_of(s);
    const int rh = cfg_.tile_h() + 2 * es;
    const int rw = cfg_.tile_w() + 2 * es;
    for (int z = -r; z < 0; ++z) {
      const std::uint32_t base =
          ring_base(s) + static_cast<std::uint32_t>(ring_slot(z, r) * rh * rw) *
                             static_cast<std::uint32_t>(sizeof(T));
      const SmemTile ring_plane{w, h, es, sizeof(T), base};
      load_rows_to_tile<T>(ctx, in, ring_plane, x0, y0, x0 - es, x0 + w + es,
                           y0 - es, y0 + h + es, z, cfg_.vec);
    }
  }
  if (tb_ > 1) ctx.sync();
  const int nz = in.layout->nz();
  for (int k = 0; k < nz + tb_ * r; ++k) {
    plane(ctx, in, out, bx, by, k, work);
  }
}

template <typename T>
gpusim::TraceStats TemporalInPlaneKernel<T>::trace_plane(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  const GridLayout layout(extent, required_halo(), sizeof(T), 32,
                          preferred_align_offset());
  gpusim::GlobalMemory gmem;
  gpusim::BlockCtx ctx(device, gmem, resources().smem_bytes, gpusim::ExecMode::Trace);
  GridAccess in{&layout, 0x10000};
  GridAccess out{&layout, 0x10000 + round_up(layout.allocated_bytes(), 512) + 512};
  const int e1 = ext_of(1);
  const int ew = cfg_.tile_w() + 2 * e1;
  const int eh = cfg_.tile_h() + 2 * e1;
  Work work(ew * eh, r_);
  // Steady state: every stage active (k - tb*r >= 0) on an interior plane.
  const int k = std::min(extent.nz - 1, tb_ * r_ + 1);
  plane(ctx, in, out, 0, 0, k, work);
  return ctx.stats();
}

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

}  // namespace

template <typename T>
gpusim::TraceStats run_temporal_kernel(const TemporalInPlaneKernel<T>& kernel,
                                       const Grid3<T>& in, Grid3<T>& out,
                                       const gpusim::DeviceSpec& device,
                                       gpusim::ExecMode mode) {
  if (in.extent() != out.extent()) {
    throw InvalidConfigError("run_temporal_kernel: grids must share extent");
  }
  const int need = kernel.required_halo();
  if (in.halo() < need || out.halo() < need) {
    throw InvalidConfigError(
        "run_temporal_kernel: halo " +
        std::to_string(std::min(in.halo(), out.halo())) + " narrower than tb*r = " +
        std::to_string(need));
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw InvalidConfigError("run_temporal_kernel: invalid configuration: " + *err);
  }
  gpusim::GlobalMemory gmem;
  const auto in_id = gmem.map_readonly(const_bytes(in));
  const auto out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};
  const LaunchConfig& cfg = kernel.config();
  gpusim::TraceStats total;
  for (int by = 0; by < in.ny() / cfg.tile_h(); ++by) {
    for (int bx = 0; bx < in.nx() / cfg.tile_w(); ++bx) {
      gpusim::BlockCtx ctx(device, gmem, kernel.resources().smem_bytes, mode);
      kernel.run_block(ctx, in_access, out_access, bx, by);
      total += ctx.stats();
    }
  }
  return total;
}

template <typename T>
gpusim::KernelTiming time_temporal_kernel(const TemporalInPlaneKernel<T>& kernel,
                                          const gpusim::DeviceSpec& device,
                                          const Extent3& extent) {
  return kernels::time_kernel(kernel, device, extent);
}

template class TemporalInPlaneKernel<float>;
template class TemporalInPlaneKernel<double>;
template gpusim::TraceStats run_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const Grid3<float>&, Grid3<float>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
template gpusim::TraceStats run_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const Grid3<double>&, Grid3<double>&,
    const gpusim::DeviceSpec&, gpusim::ExecMode);
template gpusim::KernelTiming time_temporal_kernel<float>(
    const TemporalInPlaneKernel<float>&, const gpusim::DeviceSpec&, const Extent3&);
template gpusim::KernelTiming time_temporal_kernel<double>(
    const TemporalInPlaneKernel<double>&, const gpusim::DeviceSpec&, const Extent3&);

}  // namespace inplane::temporal
