#include "kernels/resources.hpp"

#include "core/status.hpp"

namespace inplane::kernels {

const char* to_string(Method method) {
  switch (method) {
    case Method::ForwardPlane: return "nvstencil";
    case Method::InPlaneClassical: return "classical";
    case Method::InPlaneVertical: return "vertical";
    case Method::InPlaneHorizontal: return "horizontal";
    case Method::InPlaneFullSlice: return "full-slice";
  }
  return "unknown";
}

bool is_in_plane(Method method) { return method != Method::ForwardPlane; }

gpusim::KernelResources estimate_resources(Method method, const LaunchConfig& config,
                                           int radius, std::size_t elem_size) {
  if (radius <= 0) throw InvalidConfigError("estimate_resources: radius must be > 0");
  if (elem_size != 4 && elem_size != 8) {
    throw InvalidConfigError("estimate_resources: elem_size must be 4 or 8");
  }
  gpusim::KernelResources res;
  res.threads = config.threads();

  const int w = config.tile_w() + 2 * radius;
  const int h = config.tile_h() + 2 * radius;
  res.smem_bytes = static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * elem_size;

  // Per-column live values: forward-plane keeps the 2r+1 z-pipeline
  // (behind[r], current, infront[r]); in-plane keeps the r-deep partial
  // output queue plus the r-deep centre-column history (Eqns. (3)-(5)).
  const int values_per_column = method == Method::ForwardPlane ? 2 * radius + 1
                                                               : 2 * radius;
  const int regs_per_value = elem_size == 8 ? 2 : 1;
  constexpr int kBaseRegs = 12;     // indices, pointers, loop counters
  constexpr int kScratchValues = 4; // accumulator + load temporaries
  res.regs_per_thread =
      kBaseRegs +
      regs_per_value * (values_per_column * config.columns_per_thread() + kScratchValues);
  return res;
}

}  // namespace inplane::kernels
