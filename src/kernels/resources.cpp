#include "kernels/resources.hpp"

#include "core/status.hpp"

namespace inplane::kernels {

const char* to_string(Method method) {
  switch (method) {
    case Method::ForwardPlane: return "nvstencil";
    case Method::InPlaneClassical: return "classical";
    case Method::InPlaneVertical: return "vertical";
    case Method::InPlaneHorizontal: return "horizontal";
    case Method::InPlaneFullSlice: return "full-slice";
  }
  return "unknown";
}

bool is_in_plane(Method method) { return method != Method::ForwardPlane; }

gpusim::KernelResources estimate_resources(Method method, const LaunchConfig& config,
                                           int radius, std::size_t elem_size) {
  if (radius <= 0) throw InvalidConfigError("estimate_resources: radius must be > 0");
  if (elem_size != 4 && elem_size != 8) {
    throw InvalidConfigError("estimate_resources: elem_size must be 4 or 8");
  }
  if (config.tb < 1) {
    throw InvalidConfigError("estimate_resources: temporal degree must be >= 1");
  }
  gpusim::KernelResources res;
  res.threads = config.threads();

  if (config.tb > 1) {
    // Degree-N temporal blocking (full-slice only): the t=0 slice spans the
    // stage-1 extended region plus its own halo, (W+2Nr) x (H+2Nr), and
    // each intermediate stage s in [1, N) keeps a (2r+1)-plane ring of
    // t=s values over its (W+2(N-s)r) x (H+2(N-s)r) region.  Registers
    // hold the stage-1 queue + back history for every extended point a
    // thread owns.
    const int n = config.tb;
    const auto row = [&](int e) {
      return static_cast<std::size_t>(config.tile_w() + 2 * e) *
             static_cast<std::size_t>(config.tile_h() + 2 * e);
    };
    std::size_t elems = row(n * radius);  // the t=0 slice
    for (int s = 1; s < n; ++s) {
      elems += static_cast<std::size_t>(2 * radius + 1) * row((n - s) * radius);
    }
    res.smem_bytes = elems * elem_size;

    const int e1 = (n - 1) * radius;
    const int n1 = (config.tile_w() + 2 * e1) * (config.tile_h() + 2 * e1);
    const int per_thread = (n1 + config.threads() - 1) / config.threads();
    const int regs_per_value = elem_size == 8 ? 2 : 1;
    res.regs_per_thread = 12 + regs_per_value * (2 * radius * per_thread + 4);
    return res;
  }

  const int w = config.tile_w() + 2 * radius;
  const int h = config.tile_h() + 2 * radius;
  res.smem_bytes = static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * elem_size;

  // Per-column live values: forward-plane keeps the 2r+1 z-pipeline
  // (behind[r], current, infront[r]); in-plane keeps the r-deep partial
  // output queue plus the r-deep centre-column history (Eqns. (3)-(5)).
  const int values_per_column = method == Method::ForwardPlane ? 2 * radius + 1
                                                               : 2 * radius;
  const int regs_per_value = elem_size == 8 ? 2 : 1;
  constexpr int kBaseRegs = 12;     // indices, pointers, loop counters
  constexpr int kScratchValues = 4; // accumulator + load temporaries
  res.regs_per_thread =
      kBaseRegs +
      regs_per_value * (values_per_column * config.columns_per_thread() + kScratchValues);
  return res;
}

}  // namespace inplane::kernels
