#pragma once

#include <cstdint>

#include "core/grid3.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/timing.hpp"
#include "kernels/abft.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels {

/// Builds a grid whose layout matches what @p kernel's loading pattern
/// wants (halo = required_halo(), i.e. radius for single-step kernels and
/// time_steps * radius for temporal blocking; alignment offset per section
/// III-C2).
template <typename T>
[[nodiscard]] Grid3<T> make_grid_for(const IStencilKernel<T>& kernel, Extent3 extent) {
  return Grid3<T>(extent, kernel.required_halo(), 32, kernel.preferred_align_offset());
}

/// Process-wide kill switch for block-class trace memoization (see
/// gpusim/block_class.hpp).  When enabled (the default), tracing sweeps
/// execute one representative block per position class and replay its
/// TraceStats for the congruent rest; Both-mode sweeps still run every
/// block functionally, so grid output is bit-identical either way.  The
/// switch starts disabled when the INPLANE_NO_TRACE_MEMO environment
/// variable is set to anything but "" or "0" (the CI escape hatch, also
/// reachable via the CLI's --no-trace-memo).  Memoization is bypassed
/// automatically — regardless of this switch — whenever a FaultInjector
/// or an ABFT sink is active, since those make congruent blocks diverge.
void set_trace_memo_enabled(bool enabled);
[[nodiscard]] bool trace_memo_enabled();

/// Functionally executes @p kernel over the whole grid on the simulated
/// device: maps both grids into a fresh global address space and sweeps
/// every thread block.  Returns the aggregated trace (empty counters in
/// pure Functional mode).
///
/// Independent thread blocks execute concurrently on the shared host
/// thread pool under @p policy (default: all hardware threads;
/// ExecPolicy{1} restores the serial sweep).  Output grids and the
/// aggregate TraceStats are bit-identical for every thread count: blocks
/// write disjoint tiles and per-block stats are reduced in iteration
/// order.
///
/// Throws InvalidConfigError (a std::invalid_argument) if the
/// configuration is invalid for the device/extent or the grids are
/// incompatible (mismatched extents, halo narrower than the stencil
/// radius).
template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode = gpusim::ExecMode::Functional,
                              const ExecPolicy& policy = {});

/// Retry discipline of the hardened runner.
struct RetryPolicy {
  int max_attempts = 3;            ///< total attempts (first run + retries)
  double backoff_initial_ms = 0.5; ///< sleep before the first retry
  double backoff_multiplier = 2.0; ///< exponential growth per retry
  /// Deterministic jitter fraction: each delay is scaled by a factor in
  /// [1 - jitter, 1 + jitter] hashed from the attempt index, so a fleet
  /// of retrying sweeps never thunders in lockstep yet every run of the
  /// same plan sleeps identically.
  double backoff_jitter = 0.25;
  /// Hard cap on the *summed* backoff sleep per guarded run, so a
  /// pathological fault plan cannot make the retry loop spend unbounded
  /// wall-clock sleeping.  0 = uncapped.
  double backoff_total_cap_ms = 10'000.0;
  bool verify = true;              ///< check output against the CPU reference
};

/// The backoff sleep before retry attempt @p attempt (1 = first retry),
/// given @p slept_so_far_ms already spent sleeping this run: exponential
/// base, deterministic jitter, clipped so the running total never
/// exceeds the policy's cap.  Exposed for unit testing.
[[nodiscard]] double backoff_delay_ms(const RetryPolicy& policy, int attempt,
                                      double slept_so_far_ms);

/// Options for run_kernel_guarded.
struct RunOptions {
  gpusim::ExecMode mode = gpusim::ExecMode::Functional;
  ExecPolicy policy = {};
  /// Fault injector to wire into every block and the global address
  /// space; nullptr runs clean (and skips verification unless a retry
  /// happened).
  const gpusim::FaultInjector* faults = nullptr;
  /// Watchdog budget in warp-level operations per block; 0 derives a
  /// generous bound from the launch geometry automatically.
  std::uint64_t step_budget = 0;
  RetryPolicy retry = {};
  /// Simulated device identity (device-loss scoping in multi-GPU runs).
  std::int64_t device_index = 0;
  /// Online ABFT checksum detection + surgical repair (see kernels/abft.hpp).
  /// When enabled, corrupted runs are detected by per-plane checksum
  /// mismatch and repaired by recomputing only the flagged blocks — the
  /// CPU-reference verify pass is skipped entirely.
  AbftOptions abft = {};
  /// Memory budget gating the ABFT repair scratch allocation; nullptr =
  /// unlimited.  A denied reservation degrades to the full-retry path.
  MemBudget* mem_budget = nullptr;
  /// Per-run opt-out of block-class trace memoization (AND-ed with the
  /// process-wide trace_memo_enabled() switch).  Fault injection and
  /// ABFT already bypass the memo automatically.
  bool trace_memo = true;
};

/// Outcome of a guarded run.  Never throws for execution faults — the
/// final Status says what happened; only programming errors (foreign
/// exceptions) propagate.
struct RunReport {
  Status status;               ///< Ok, or the last attempt's failure
  gpusim::TraceStats stats;    ///< aggregate trace of the successful attempt
  int attempts = 0;            ///< attempts consumed (>= 1)
  bool verified = false;       ///< output was checked against the reference
  std::uint64_t step_budget = 0;  ///< watchdog budget that was armed
  double total_backoff_ms = 0.0;  ///< wall-clock spent sleeping between retries
  AbftSummary abft;            ///< online checksum detection/repair outcome
};

/// Hardened variant of run_kernel: arms a per-block watchdog (simulated
/// warp-op budget), wires an optional FaultInjector into the block
/// contexts and the global address space, retries retryable faults with
/// exponential backoff, and (per RetryPolicy::verify) checks the output
/// of fault-exposed or retried runs against the CPU reference stencil —
/// a silent bit flip or stuck load surfaces as ErrorCode::DataCorruption
/// and triggers a retry rather than a wrong answer.
///
/// Invalid configurations come back as Status{InvalidConfig} rather than
/// throwing, so callers map every failure class the same way.
template <typename T>
[[nodiscard]] RunReport run_kernel_guarded(const IStencilKernel<T>& kernel,
                                           const Grid3<T>& in, Grid3<T>& out,
                                           const gpusim::DeviceSpec& device,
                                           const RunOptions& options = {});

/// Produces a timing estimate for @p kernel on @p device over a grid of
/// @p extent: traces one steady-state plane of one block and expands it
/// through the staging/occupancy/bandwidth model (see gpusim/timing.hpp).
/// Invalid configurations come back with .valid == false and a reason,
/// like the zeroed points of the Fig. 8 surfaces.
template <typename T>
[[nodiscard]] gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                               const gpusim::DeviceSpec& device,
                                               const Extent3& extent);

extern template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                                     const Grid3<float>&, Grid3<float>&,
                                                     const gpusim::DeviceSpec&,
                                                     gpusim::ExecMode,
                                                     const ExecPolicy&);
extern template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                                      const Grid3<double>&,
                                                      Grid3<double>&,
                                                      const gpusim::DeviceSpec&,
                                                      gpusim::ExecMode,
                                                      const ExecPolicy&);
extern template RunReport run_kernel_guarded<float>(const IStencilKernel<float>&,
                                                    const Grid3<float>&, Grid3<float>&,
                                                    const gpusim::DeviceSpec&,
                                                    const RunOptions&);
extern template RunReport run_kernel_guarded<double>(const IStencilKernel<double>&,
                                                     const Grid3<double>&,
                                                     Grid3<double>&,
                                                     const gpusim::DeviceSpec&,
                                                     const RunOptions&);
extern template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                        const gpusim::DeviceSpec&,
                                                        const Extent3&);
extern template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                         const gpusim::DeviceSpec&,
                                                         const Extent3&);

}  // namespace inplane::kernels
