#pragma once

#include "core/grid3.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/timing.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels {

/// Builds a grid whose layout matches what @p kernel's loading pattern
/// wants (halo = radius, alignment offset per section III-C2).
template <typename T>
[[nodiscard]] Grid3<T> make_grid_for(const IStencilKernel<T>& kernel, Extent3 extent) {
  return Grid3<T>(extent, kernel.radius(), 32, kernel.preferred_align_offset());
}

/// Functionally executes @p kernel over the whole grid on the simulated
/// device: maps both grids into a fresh global address space and sweeps
/// every thread block.  Returns the aggregated trace (empty counters in
/// pure Functional mode).
///
/// Independent thread blocks execute concurrently on the shared host
/// thread pool under @p policy (default: all hardware threads;
/// ExecPolicy{1} restores the serial sweep).  Output grids and the
/// aggregate TraceStats are bit-identical for every thread count: blocks
/// write disjoint tiles and per-block stats are reduced in iteration
/// order.
///
/// Throws std::invalid_argument if the configuration is invalid for the
/// device/extent or the grids are incompatible (mismatched extents, halo
/// narrower than the stencil radius).
template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode = gpusim::ExecMode::Functional,
                              const ExecPolicy& policy = {});

/// Produces a timing estimate for @p kernel on @p device over a grid of
/// @p extent: traces one steady-state plane of one block and expands it
/// through the staging/occupancy/bandwidth model (see gpusim/timing.hpp).
/// Invalid configurations come back with .valid == false and a reason,
/// like the zeroed points of the Fig. 8 surfaces.
template <typename T>
[[nodiscard]] gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                               const gpusim::DeviceSpec& device,
                                               const Extent3& extent);

extern template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                                     const Grid3<float>&, Grid3<float>&,
                                                     const gpusim::DeviceSpec&,
                                                     gpusim::ExecMode,
                                                     const ExecPolicy&);
extern template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                                      const Grid3<double>&,
                                                      Grid3<double>&,
                                                      const gpusim::DeviceSpec&,
                                                      gpusim::ExecMode,
                                                      const ExecPolicy&);
extern template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                        const gpusim::DeviceSpec&,
                                                        const Extent3&);
extern template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                         const gpusim::DeviceSpec&,
                                                         const Extent3&);

}  // namespace inplane::kernels
