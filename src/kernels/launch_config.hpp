#pragma once

#include <string>

#include "gpusim/device.hpp"

namespace inplane::kernels {

/// The blocking configuration the auto-tuner searches: (TX, TY) is the
/// thread block shape, (RX, RY) the register-tiling factor (section
/// III-C3).  A block of TX x TY threads computes a tile of
/// (TX*RX) x (TY*RY) output points per z-plane, each thread owning RX*RY
/// strided output columns.  TB is the temporal-blocking degree (ROADMAP
/// item 3): one sweep advances the tile by TB Jacobi steps; TB = 1 is the
/// paper's single-step kernels, TB > 1 selects the staged temporal kernel
/// (full-slice loading only).
struct LaunchConfig {
  int tx = 32;  ///< threads along x (paper constrains to multiples of 16)
  int ty = 16;  ///< threads along y
  int rx = 1;   ///< register-tile factor along x
  int ry = 1;   ///< register-tile factor along y
  int vec = 1;  ///< vector load width in elements (1, 2 or 4; sec. III-C2)
  int tb = 1;   ///< temporal-blocking degree (timesteps per sweep, >= 1)

  [[nodiscard]] int threads() const { return tx * ty; }
  [[nodiscard]] int tile_w() const { return tx * rx; }
  [[nodiscard]] int tile_h() const { return ty * ry; }
  [[nodiscard]] int columns_per_thread() const { return rx * ry; }
  [[nodiscard]] int warps(const gpusim::DeviceSpec& dev) const {
    return (threads() + dev.warp_size - 1) / dev.warp_size;
  }

  /// "(TX, TY, RX, RY)" in the notation of Table IV; temporally blocked
  /// configurations append their degree.
  [[nodiscard]] std::string to_string() const {
    std::string s = "(" + std::to_string(tx) + ", " + std::to_string(ty) + ", " +
                    std::to_string(rx) + ", " + std::to_string(ry) + ")";
    if (tb != 1) s += " tb=" + std::to_string(tb);
    return s;
  }

  [[nodiscard]] bool operator==(const LaunchConfig&) const = default;

  /// The CUDA SDK FDTD3d sample's hard-coded block shape, used as the
  /// nvstencil baseline configuration throughout the evaluation.
  static LaunchConfig nvstencil_default() { return LaunchConfig{32, 16, 1, 1, 1}; }
};

}  // namespace inplane::kernels
