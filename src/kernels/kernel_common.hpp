#pragma once

// Shared SIMT building blocks for the simulated stencil kernels.  These
// helpers issue *warp-level* instructions through BlockCtx, so every
// loading pattern in section III is expressed as a sequence of the same
// primitives the hardware would execute: warp-wide (vector) global loads
// paired with shared stores, warp-wide shared reads, warp-wide stores.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/grid_layout.hpp"
#include "gpusim/block_ctx.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels::detail {

inline constexpr int kWarp = 32;

/// Geometry of the shared-memory plane buffer: (w + 2r) x (h + 2r)
/// elements, row-contiguous, indexed by tile coordinates with
/// lx in [-r, w+r) and ly in [-r, h+r).
struct SmemTile {
  int w = 0;
  int h = 0;
  int r = 0;
  std::size_t elem = 4;
  std::uint32_t base = 0;  ///< byte offset of this tile within the block's
                           ///< shared memory (multi-grid kernels stack one
                           ///< tile per staged input grid)

  [[nodiscard]] int row_elems() const { return w + 2 * r; }
  [[nodiscard]] int rows() const { return h + 2 * r; }
  [[nodiscard]] std::size_t bytes() const {
    return static_cast<std::size_t>(row_elems()) * static_cast<std::size_t>(rows()) *
           elem;
  }
  [[nodiscard]] std::uint32_t off(int lx, int ly) const {
    return base + static_cast<std::uint32_t>(
                      (static_cast<std::size_t>(ly + r) *
                           static_cast<std::size_t>(row_elems()) +
                       static_cast<std::size_t>(lx + r)) *
                      elem);
  }
};

/// Per-thread register state for all threads of a block:
/// a [threads][columns][slots] array of values.
template <typename T>
struct ThreadState {
  int columns = 1;
  int slots = 1;
  std::vector<T> vals;

  ThreadState(int threads, int columns_, int slots_)
      : columns(columns_), slots(slots_),
        vals(static_cast<std::size_t>(threads) * static_cast<std::size_t>(columns_) *
                 static_cast<std::size_t>(slots_),
             T{}) {}

  [[nodiscard]] T& at(int tid, int col, int slot) {
    return vals[(static_cast<std::size_t>(tid) * static_cast<std::size_t>(columns) +
                 static_cast<std::size_t>(col)) *
                    static_cast<std::size_t>(slots) +
                static_cast<std::size_t>(slot)];
  }

  void reset() { std::fill(vals.begin(), vals.end(), T{}); }
};

/// Loads the rectangular region x in [xa, xb), y in [ya, yb) of plane k
/// into the shared tile, row by row, with vector width @p vec: each region
/// row is covered by chunks of kWarp * vec elements; each active lane loads
/// vec consecutive elements and a paired shared store deposits them.
///
/// With vec = 1 and a narrow region this degenerates to exactly the
/// nvstencil halo-strip pattern (one instruction per row, few active
/// lanes); with vec = 4 and the full slice it is the paper's warp-assigned
/// vectorised loading (section III-C2).
template <typename T>
void load_rows_to_tile(gpusim::BlockCtx& ctx, const GridAccess& g, const SmemTile& tile,
                       int x0, int y0, int xa, int xb, int ya, int yb, int k, int vec) {
  const auto elem = static_cast<std::uint32_t>(sizeof(T));
  for (int y = ya; y < yb; ++y) {
    for (int x = xa; x < xb; x += kWarp * vec) {
      gpusim::BlockCtx::GlobalLoadLane ld[kWarp];
      gpusim::BlockCtx::SmemWriteLane sw[kWarp];
      for (int lane = 0; lane < kWarp; ++lane) {
        const int xx = x + lane * vec;
        const bool active = xx < xb;
        const int n = active ? std::min(vec, xb - xx) : 0;
        const std::uint32_t soff = active ? tile.off(xx - x0, y - y0) : 0;
        void* dst = active && ctx.functional() ? ctx.smem().raw() + soff : nullptr;
        ld[lane] = {active ? g.vaddr(xx, y, k) : 0, dst,
                    static_cast<std::uint32_t>(n) * elem, active};
        sw[lane] = {soff, dst, static_cast<std::uint32_t>(n) * elem, active};
      }
      ctx.warp_load({ld, kWarp});
      ctx.warp_smem_write({sw, kWarp});
    }
  }
}

/// Loads the region x in [xa, xb), y in [ya, yb) of plane k into the
/// shared tile *column by column*: one warp instruction per column chunk,
/// lanes walking consecutive y rows (stride = the grid pitch, so every
/// active lane lands in its own memory segment).  This is how the vertical
/// pattern's left/right halo strips are issued — its load loop is organised
/// around vertical traversal — and it is the mechanical reason Fig. 7 shows
/// the vertical variant collapsing for high stencil orders: the cost grows
/// with r at one transaction per (column, row) pair.
template <typename T>
void load_columns_to_tile(gpusim::BlockCtx& ctx, const GridAccess& g,
                          const SmemTile& tile, int x0, int y0, int xa, int xb, int ya,
                          int yb, int k) {
  const auto elem = static_cast<std::uint32_t>(sizeof(T));
  for (int x = xa; x < xb; ++x) {
    for (int y = ya; y < yb; y += kWarp) {
      gpusim::BlockCtx::GlobalLoadLane ld[kWarp];
      gpusim::BlockCtx::SmemWriteLane sw[kWarp];
      for (int lane = 0; lane < kWarp; ++lane) {
        const int yy = y + lane;
        const bool active = yy < yb;
        const std::uint32_t soff = active ? tile.off(x - x0, yy - y0) : 0;
        void* dst = active && ctx.functional() ? ctx.smem().raw() + soff : nullptr;
        ld[lane] = {active ? g.vaddr(x, yy, k) : 0, dst, active ? elem : 0, active};
        sw[lane] = {soff, dst, active ? elem : 0, active};
      }
      ctx.warp_load({ld, kWarp});
      ctx.warp_smem_write({sw, kWarp});
    }
  }
}

/// Maps the flat thread id to its (t_x, t_y) position in the block.
struct ThreadPos {
  int t_x = 0;
  int t_y = 0;
};
[[nodiscard]] inline ThreadPos thread_pos(const LaunchConfig& cfg, int tid) {
  return {tid % cfg.tx, tid / cfg.tx};
}

/// Grid x coordinate of thread @p t_x's register-tile column @p s (strided
/// register tiling, section III-C3), and likewise for y.
[[nodiscard]] inline int column_x(const LaunchConfig& cfg, int x0, int t_x, int s) {
  return x0 + t_x + s * cfg.tx;
}
[[nodiscard]] inline int column_y(const LaunchConfig& cfg, int y0, int t_y, int u) {
  return y0 + t_y + u * cfg.ty;
}

/// Per-warp, per-column global load of one value per thread from plane k
/// into per-thread state (used for pipeline priming and the forward-plane
/// in[k + r] load).  @p dst_fn(tid, col) returns the destination slot.
template <typename T, typename DstFn>
void load_columns_to_state(gpusim::BlockCtx& ctx, const GridAccess& g,
                           const LaunchConfig& cfg, int x0, int y0, int k,
                           DstFn&& dst_fn) {
  const int nthreads = cfg.threads();
  const int cols = cfg.columns_per_thread();
  for (int warp0 = 0; warp0 < nthreads; warp0 += kWarp) {
    for (int col = 0; col < cols; ++col) {
      const int s = col % cfg.rx;
      const int u = col / cfg.rx;
      gpusim::BlockCtx::GlobalLoadLane ld[kWarp];
      for (int lane = 0; lane < kWarp; ++lane) {
        const int tid = warp0 + lane;
        const bool active = tid < nthreads;
        if (active) {
          const ThreadPos pos = thread_pos(cfg, tid);
          const int x = column_x(cfg, x0, pos.t_x, s);
          const int y = column_y(cfg, y0, pos.t_y, u);
          ld[lane] = {g.vaddr(x, y, k),
                      ctx.functional() ? &dst_fn(tid, col) : nullptr,
                      static_cast<std::uint32_t>(sizeof(T)), true};
        } else {
          ld[lane] = {};
        }
      }
      ctx.warp_load({ld, kWarp});
    }
  }
}

/// Per-warp, per-column coalesced store of one value per thread to plane k.
/// @p src_fn(tid, col) returns the value to store.
template <typename T, typename SrcFn>
void store_columns(gpusim::BlockCtx& ctx, GridAccess& out, const LaunchConfig& cfg,
                   int x0, int y0, int k, SrcFn&& src_fn) {
  const int nthreads = cfg.threads();
  const int cols = cfg.columns_per_thread();
  for (int warp0 = 0; warp0 < nthreads; warp0 += kWarp) {
    for (int col = 0; col < cols; ++col) {
      const int s = col % cfg.rx;
      const int u = col / cfg.rx;
      gpusim::BlockCtx::GlobalStoreLane st[kWarp];
      T vals[kWarp] = {};
      for (int lane = 0; lane < kWarp; ++lane) {
        const int tid = warp0 + lane;
        const bool active = tid < nthreads;
        if (active) {
          const ThreadPos pos = thread_pos(cfg, tid);
          const int x = column_x(cfg, x0, pos.t_x, s);
          const int y = column_y(cfg, y0, pos.t_y, u);
          if (ctx.functional()) vals[lane] = src_fn(tid, col);
          st[lane] = {out.vaddr(x, y, k), &vals[lane],
                      static_cast<std::uint32_t>(sizeof(T)), true};
        } else {
          st[lane] = {};
        }
      }
      ctx.warp_store({st, kWarp});
    }
  }
}

/// Per-warp, per-column shared-memory read of one value per thread at tile
/// offset (dx, dy) relative to each column's own position.  Returns values
/// through @p out_fn(tid, col, value) in functional modes.
template <typename T, typename OutFn>
void smem_read_columns(gpusim::BlockCtx& ctx, const SmemTile& tile,
                       const LaunchConfig& cfg, int dx, int dy, OutFn&& out_fn) {
  const int nthreads = cfg.threads();
  const int cols = cfg.columns_per_thread();
  for (int warp0 = 0; warp0 < nthreads; warp0 += kWarp) {
    for (int col = 0; col < cols; ++col) {
      const int s = col % cfg.rx;
      const int u = col / cfg.rx;
      gpusim::BlockCtx::SmemReadLane rd[kWarp];
      T vals[kWarp] = {};
      for (int lane = 0; lane < kWarp; ++lane) {
        const int tid = warp0 + lane;
        const bool active = tid < nthreads;
        if (active) {
          const ThreadPos pos = thread_pos(cfg, tid);
          const int lx = pos.t_x + s * cfg.tx + dx;
          const int ly = pos.t_y + u * cfg.ty + dy;
          rd[lane] = {tile.off(lx, ly), ctx.functional() ? &vals[lane] : nullptr,
                      static_cast<std::uint32_t>(sizeof(T)), true};
        } else {
          rd[lane] = {};
        }
      }
      ctx.warp_smem_read({rd, kWarp});
      if (ctx.functional()) {
        for (int lane = 0; lane < kWarp; ++lane) {
          const int tid = warp0 + lane;
          if (tid < nthreads) out_fn(tid, col, vals[lane]);
        }
      }
    }
  }
}

/// Per-warp, per-column shared-memory write of one value per thread at the
/// column's own tile position (dx = dy = 0) — how the forward-plane kernel
/// deposits its register-pipelined centre plane into the tile.
/// @p src_fn(tid, col) returns the value to write.
template <typename T, typename SrcFn>
void smem_write_columns(gpusim::BlockCtx& ctx, const SmemTile& tile,
                        const LaunchConfig& cfg, SrcFn&& src_fn) {
  const int nthreads = cfg.threads();
  const int cols = cfg.columns_per_thread();
  for (int warp0 = 0; warp0 < nthreads; warp0 += kWarp) {
    for (int col = 0; col < cols; ++col) {
      const int s = col % cfg.rx;
      const int u = col / cfg.rx;
      gpusim::BlockCtx::SmemWriteLane wr[kWarp];
      T vals[kWarp] = {};
      for (int lane = 0; lane < kWarp; ++lane) {
        const int tid = warp0 + lane;
        const bool active = tid < nthreads;
        if (active) {
          const ThreadPos pos = thread_pos(cfg, tid);
          const int lx = pos.t_x + s * cfg.tx;
          const int ly = pos.t_y + u * cfg.ty;
          if (ctx.functional()) vals[lane] = src_fn(tid, col);
          wr[lane] = {tile.off(lx, ly), &vals[lane],
                      static_cast<std::uint32_t>(sizeof(T)), true};
        } else {
          wr[lane] = {};
        }
      }
      ctx.warp_smem_write({wr, kWarp});
    }
  }
}

}  // namespace inplane::kernels::detail
