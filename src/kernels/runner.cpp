#include "kernels/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/abft.hpp"
#include "gpusim/block_class.hpp"
#include "metrics/metrics.hpp"
#include "verify/reference_oracle.hpp"

namespace inplane::kernels {

namespace {

/// Simulator instruments, flushed once per kernel launch from the already
/// aggregated TraceStats — the per-warp-op hot path stays untouched, so
/// collection cost is a handful of relaxed adds per launch.
struct SimMetrics {
  metrics::Counter& launches;
  metrics::Counter& blocks;
  metrics::Counter& planes;
  metrics::Counter& load_transactions;
  metrics::Counter& store_transactions;
  metrics::Counter& bytes_requested_ld;
  metrics::Counter& bytes_transferred_ld;
  metrics::Counter& bytes_transferred_st;
  metrics::Counter& smem_replays;
  metrics::Counter& syncs;
  metrics::Counter& flops;
  metrics::Counter& retries;
  metrics::Counter& verifications;
  metrics::Counter& timing_evaluations;
  metrics::Timer& launch_timer;

  static SimMetrics& get() {
    auto& reg = metrics::Registry::global();
    static SimMetrics m{
        reg.counter("gpusim.launches"),
        reg.counter("gpusim.blocks"),
        reg.counter("gpusim.planes_loaded"),
        reg.counter("gpusim.load_transactions"),
        reg.counter("gpusim.store_transactions"),
        reg.counter("gpusim.bytes_requested_ld"),
        reg.counter("gpusim.bytes_transferred_ld"),
        reg.counter("gpusim.bytes_transferred_st"),
        reg.counter("gpusim.smem_replays"),
        reg.counter("gpusim.syncs"),
        reg.counter("gpusim.flops"),
        reg.counter("kernels.runner.retries"),
        reg.counter("kernels.runner.verifications"),
        reg.counter("gpusim.timing.evaluations"),
        reg.timer("gpusim.launch"),
    };
    return m;
  }
};

/// Derives the per-launch counter deltas from one launch's aggregate
/// stats.  Plane count uses the barrier invariant the trace auditor pins
/// (every loaded plane costs exactly two barriers per block).
void flush_launch_metrics(const gpusim::TraceStats& stats, std::size_t nblocks) {
  if (!metrics::enabled()) return;
  SimMetrics& m = SimMetrics::get();
  m.launches.add();
  m.blocks.add(nblocks);
  if (nblocks != 0) m.planes.add(stats.syncs / (2 * nblocks));
  m.load_transactions.add(stats.load_transactions);
  m.store_transactions.add(stats.store_transactions);
  m.bytes_requested_ld.add(stats.bytes_requested_ld);
  m.bytes_transferred_ld.add(stats.bytes_transferred_ld);
  m.bytes_transferred_st.add(stats.bytes_transferred_st);
  m.smem_replays.add(stats.smem_replays);
  m.syncs.add(stats.syncs);
  m.flops.add(stats.flops);
}

/// Trace-memoization instruments: how many launches memoized, how many
/// position classes they actually traced and how many blocks replayed a
/// cached representative instead of tracing.
struct MemoMetrics {
  metrics::Counter& launches;
  metrics::Counter& classes;
  metrics::Counter& blocks_replayed;

  static MemoMetrics& get() {
    auto& reg = metrics::Registry::global();
    static MemoMetrics m{
        reg.counter("gpusim.trace_memo.launches"),
        reg.counter("gpusim.trace_memo.classes"),
        reg.counter("gpusim.trace_memo.blocks_replayed"),
    };
    return m;
  }
};

/// The process-wide memoization switch.  Seeded once from the
/// INPLANE_NO_TRACE_MEMO environment variable ("" and "0" leave the memo
/// on; anything else forces the unmemoized path, the CI escape hatch).
std::atomic<bool>& trace_memo_flag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("INPLANE_NO_TRACE_MEMO");
    return env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0;
  }()};
  return enabled;
}

/// ABFT instruments, bumped once per compare/repair — never on the
/// store hot path (the sink accumulates locally, like TraceStats).
struct AbftMetrics {
  metrics::Counter& planes_checked;
  metrics::Counter& planes_flagged;
  metrics::Counter& blocks_repaired;
  metrics::Counter& repair_failures;

  static AbftMetrics& get() {
    auto& reg = metrics::Registry::global();
    static AbftMetrics m{
        reg.counter("kernels.abft.planes_checked"),
        reg.counter("kernels.abft.planes_flagged"),
        reg.counter("kernels.abft.blocks_repaired"),
        reg.counter("kernels.abft.repair_failures"),
    };
    return m;
  }
};

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

/// ABFT needs the sink's store-decoded weights (out layout) to mean the
/// same thing as the prediction's weights (in layout).
bool layouts_identical(const GridLayout& a, const GridLayout& b) {
  return a.extent() == b.extent() && a.halo() == b.halo() &&
         a.pitch_x() == b.pitch_x() && a.index(0, 0, 0) == b.index(0, 0, 0);
}

/// Sweeps every thread block of one launch.  Shared by the plain and the
/// guarded runner; @p faults / @p budget are the fault-tolerance hooks
/// (nullptr / 0 = the historical clean path).
template <typename T>
gpusim::TraceStats sweep_blocks(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                                Grid3<T>& out, const gpusim::DeviceSpec& device,
                                gpusim::ExecMode mode, const ExecPolicy& policy,
                                const gpusim::FaultInjector* faults,
                                std::uint64_t budget, std::int64_t attempt,
                                std::int64_t device_index,
                                gpusim::AbftSink* abft = nullptr,
                                bool allow_memo = true) {
  gpusim::GlobalMemory gmem;
  if (faults != nullptr) gmem.set_fault_context(faults, device_index);
  const gpusim::BufferId in_id = gmem.map_readonly(const_bytes(in));
  const gpusim::BufferId out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};

  const LaunchConfig& cfg = kernel.config();
  const int nbx = in.nx() / cfg.tile_w();
  const int nby = in.ny() / cfg.tile_h();
  const std::size_t smem_bytes = kernel.resources().smem_bytes;

  // Thread blocks are independent: each reads the (shared, frozen) input
  // mapping and writes its own disjoint output tile, so they can run
  // concurrently.  Per-block stats land in a slot indexed by the block's
  // serial iteration position and are reduced in that order afterwards,
  // which keeps the aggregate TraceStats bit-identical to the serial path
  // for every thread count.  Fault sites are keyed by the same serial
  // block index, so injection is equally schedule-independent.
  const std::size_t nblocks =
      static_cast<std::size_t>(nbx) * static_cast<std::size_t>(nby);
  // The sink binds here and not earlier: the output buffer's base address
  // only exists once the grid is mapped into this launch's address space.
  if (abft != nullptr) abft->bind(&out.layout(), gmem.base(out_id), nblocks);
  metrics::ScopedTimer launch_timer(SimMetrics::get().launch_timer);
  std::vector<gpusim::TraceStats> per_block(nblocks);
  const auto run_one = [&](std::size_t b, gpusim::ExecMode block_mode, bool record) {
    const int bx = static_cast<int>(b) % nbx;
    const int by = static_cast<int>(b) / nbx;
    gpusim::BlockCtx ctx(device, gmem, smem_bytes, block_mode);
    if (faults != nullptr) {
      ctx.install_faults(faults, static_cast<std::int64_t>(b), attempt, device_index);
    }
    if (abft != nullptr) ctx.install_abft(abft, static_cast<std::int64_t>(b));
    if (budget != 0) ctx.set_step_budget(budget);
    GridAccess out_block = out_access;
    kernel.run_block(ctx, in_access, out_block, bx, by);
    if (record) per_block[b] = ctx.stats();
  };

  // Block-class trace memoization (gpusim/block_class.hpp): congruent
  // blocks produce bit-identical TraceStats, so a tracing sweep only has
  // to trace one representative per position class.  Fault injection and
  // ABFT break the congruence (their effects are keyed by the serial
  // block index), so they force the unmemoized path; pure Functional
  // sweeps collect no stats, so there is nothing to memoize.
  const bool memo = allow_memo && trace_memo_flag().load(std::memory_order_relaxed) &&
                    mode != gpusim::ExecMode::Functional && faults == nullptr &&
                    abft == nullptr && nblocks > 1;
  if (!memo) {
    parallel_for(policy, nblocks, [&](std::size_t b) { run_one(b, mode, true); });
  } else {
    const gpusim::BlockClassMap classes = gpusim::classify_blocks(
        in.layout(), out.layout(), cfg.tile_w(), cfg.tile_h(), nbx, nby, sizeof(T),
        gpusim::phase_modulus(device));
    // Representatives run in the caller's mode, so Both keeps its data
    // flow exactly where the unmemoized sweep would put it.
    parallel_for(policy, classes.num_classes(), [&](std::size_t c) {
      run_one(classes.representative[c], mode, true);
    });
    // Non-representatives replay their representative's stats.  In Both
    // mode the data movement still has to happen, so they execute in
    // Functional mode (bit-identical output, no tracing cost); in pure
    // Trace mode they are skipped outright.
    if (mode == gpusim::ExecMode::Both) {
      parallel_for(policy, nblocks, [&](std::size_t b) {
        if (!classes.is_representative(b)) {
          run_one(b, gpusim::ExecMode::Functional, false);
        }
      });
    }
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t rep = classes.representative[classes.class_of[b]];
      if (rep != b) per_block[b] = per_block[rep];
    }
    if (metrics::enabled()) {
      MemoMetrics& mm = MemoMetrics::get();
      mm.launches.add();
      mm.classes.add(classes.num_classes());
      mm.blocks_replayed.add(nblocks - classes.num_classes());
    }
  }

  gpusim::TraceStats total;
  for (const gpusim::TraceStats& s : per_block) total += s;
  flush_launch_metrics(total, nblocks);
  return total;
}

/// Generous watchdog bound derived from the launch geometry: a healthy
/// block issues a handful of warp-ops per 32 tile elements per plane;
/// this allows ~512x that before declaring the block hung.
template <typename T>
std::uint64_t auto_step_budget(const IStencilKernel<T>& kernel, const Extent3& extent) {
  // required_halo() = time_steps * radius, so the bound also covers the
  // temporal kernel's deeper pipeline and wider staged regions.
  const std::uint64_t h = static_cast<std::uint64_t>(kernel.required_halo());
  const std::uint64_t tw = static_cast<std::uint64_t>(kernel.config().tile_w());
  const std::uint64_t th = static_cast<std::uint64_t>(kernel.config().tile_h());
  const std::uint64_t planes = static_cast<std::uint64_t>(extent.nz) + 2 * h + 8;
  const std::uint64_t tile_elems = (tw + 2 * h) * (th + 2 * h);
  const std::uint64_t per_plane =
      static_cast<std::uint64_t>(kernel.time_steps()) * (tile_elems / 32) + tw + th +
      64;
  return 512ull * planes * per_plane;
}

/// Checks every interior point of @p out against the CPU reference
/// stencil applied to @p in, through the verification subsystem's shared
/// oracle and its centralized ULP budget — the same comparator behind the
/// differential oracle, the CLI's --verify mode and the fuzzer, so a bug
/// flagged here is flagged identically by all of them.  Returns Ok or
/// DataCorruption with the first offending site.
template <typename T>
Status verify_against_reference(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                                const Grid3<T>& out) {
  const StencilCoeffs& coeffs = kernel.coeffs();
  const int steps = kernel.time_steps();
  return verify::reference_status_n(
      coeffs, in, out, steps,
      UlpBudget::for_radius(coeffs.radius(), sizeof(T))
          .scaled(static_cast<double>(steps)));
}

}  // namespace

void set_trace_memo_enabled(bool enabled) {
  trace_memo_flag().store(enabled, std::memory_order_relaxed);
}

bool trace_memo_enabled() {
  return trace_memo_flag().load(std::memory_order_relaxed);
}

double backoff_delay_ms(const RetryPolicy& policy, int attempt,
                        double slept_so_far_ms) {
  if (attempt < 1 || policy.backoff_initial_ms <= 0.0) return 0.0;
  double delay = policy.backoff_initial_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy.backoff_multiplier;
  // Deterministic jitter: splitmix64-style avalanche of the attempt index
  // mapped into [1 - jitter, 1 + jitter].  No global RNG state, so two
  // runs of the same plan sleep identically.
  const double jitter = std::clamp(policy.backoff_jitter, 0.0, 1.0);
  if (jitter > 0.0) {
    std::uint64_t z = static_cast<std::uint64_t>(attempt) +
                      std::uint64_t{0x9e3779b97f4a7c15};
    z = (z ^ (z >> 30)) * std::uint64_t{0xbf58476d1ce4e5b9};
    z = (z ^ (z >> 27)) * std::uint64_t{0x94d049bb133111eb};
    z ^= z >> 31;
    const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 - jitter + 2.0 * jitter * unit;
  }
  if (policy.backoff_total_cap_ms > 0.0) {
    delay = std::min(delay, policy.backoff_total_cap_ms - slept_so_far_ms);
  }
  return std::max(delay, 0.0);
}

template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode, const ExecPolicy& policy) {
  if (in.extent() != out.extent()) {
    throw InvalidConfigError("run_kernel: grids must share extent");
  }
  if (in.halo() < kernel.required_halo() || out.halo() < kernel.required_halo()) {
    throw InvalidConfigError(
        "run_kernel: halo " + std::to_string(std::min(in.halo(), out.halo())) +
        " narrower than the kernel's required halo " +
        std::to_string(kernel.required_halo()));
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw InvalidConfigError("run_kernel: invalid configuration: " + *err);
  }
  return sweep_blocks(kernel, in, out, device, mode, policy, nullptr, 0, 0, 0);
}

template <typename T>
RunReport run_kernel_guarded(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                             Grid3<T>& out, const gpusim::DeviceSpec& device,
                             const RunOptions& options) {
  RunReport report;
  if (in.extent() != out.extent()) {
    report.status = {ErrorCode::InvalidConfig, "run_kernel: grids must share extent"};
    return report;
  }
  if (in.halo() < kernel.required_halo() || out.halo() < kernel.required_halo()) {
    report.status = {ErrorCode::InvalidConfig,
                     "run_kernel: halo " +
                         std::to_string(std::min(in.halo(), out.halo())) +
                         " narrower than the kernel's required halo " +
                         std::to_string(kernel.required_halo())};
    return report;
  }
  if (auto err = kernel.validate(device, in.extent())) {
    report.status = {ErrorCode::InvalidConfig,
                     "run_kernel: invalid configuration: " + *err};
    return report;
  }

  const int max_attempts = options.retry.max_attempts < 1 ? 1 : options.retry.max_attempts;
  report.step_budget = options.step_budget != 0
                           ? options.step_budget
                           : auto_step_budget(kernel, in.extent());

  // Online ABFT: predict every (block, plane) checksum from the pristine
  // input once; compare after each attempt; surgically repair flagged
  // blocks.  Requires functional data flow and bit-for-bit identical
  // grid layouts (the sink's store-decoded weights must mean the same
  // thing as the prediction's input-side weights).
  // ABFT checksums model a single Jacobi sweep; a degree-N temporal sweep
  // stores t=N values whose per-plane sums are not a linear image of the
  // t=0 input, so temporal kernels fall back to the CPU-reference pass.
  const bool abft_active = options.abft.enabled &&
                           options.mode != gpusim::ExecMode::Trace &&
                           kernel.time_steps() == 1;
  if (abft_active && !layouts_identical(in.layout(), out.layout())) {
    report.status = {ErrorCode::InvalidConfig,
                     "run_kernel_guarded: ABFT requires identical in/out layouts "
                     "(use make_grid_for for both grids)"};
    return report;
  }
  std::optional<AbftChecker<T>> checker;
  gpusim::AbftSink sink;
  if (abft_active) {
    checker.emplace(kernel, in, options.abft);
    report.abft.enabled = true;
  }

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (options.policy.cancel != nullptr && options.policy.cancel->cancelled()) {
      report.status = options.policy.cancel->status();
      return report;
    }
    if (attempt > 0) {
      SimMetrics::get().retries.add();
      const double delay_ms =
          backoff_delay_ms(options.retry, attempt, report.total_backoff_ms);
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
        report.total_backoff_ms += delay_ms;
      }
    }
    report.attempts = attempt + 1;
    try {
      report.stats = sweep_blocks(kernel, in, out, device, options.mode, options.policy,
                                  options.faults, report.step_budget,
                                  static_cast<std::int64_t>(attempt),
                                  options.device_index,
                                  abft_active ? &sink : nullptr,
                                  options.trace_memo);
      report.status = Status::okay();
    } catch (const std::exception& e) {
      report.status = status_of(e);
      if (report.status.retryable() && attempt + 1 < max_attempts) continue;
      return report;
    }
    // Online checksum check: a corrupted load shows up as a per-plane
    // checksum mismatch localized to one block, which is recomputed in
    // place.  Only if surgical repair fails (budget denied, or the
    // repaired tile still mismatches) does the run fall back to the
    // full-retry path below.
    if (abft_active) {
      report.abft.planes_checked += checker->planes_per_sweep();
      AbftMetrics::get().planes_checked.add(checker->planes_per_sweep());
      std::vector<SdcEvent> events = checker->compare(sink);
      if (!events.empty()) {
        report.abft.planes_flagged += events.size();
        AbftMetrics::get().planes_flagged.add(events.size());
        const bool repaired =
            checker->repair(events, out, device, options.mem_budget);
        int blocks_touched = 0;
        for (std::size_t i = 0; i < events.size(); ++i) {
          if (i == 0 || events[i].block != events[i - 1].block) ++blocks_touched;
        }
        report.abft.events.insert(report.abft.events.end(), events.begin(),
                                  events.end());
        if (!repaired) {
          report.abft.repairs_failed += 1;
          AbftMetrics::get().repair_failures.add();
          report.status = {ErrorCode::DataCorruption,
                           "abft: checksum mismatch in " +
                               std::to_string(blocks_touched) +
                               " block(s) not surgically repairable"};
          if (attempt + 1 < max_attempts) continue;
          return report;
        }
        report.abft.blocks_repaired += blocks_touched;
        AbftMetrics::get().blocks_repaired.add(static_cast<std::uint64_t>(blocks_touched));
      }
      // Checksums agree (or were repaired): skip the CPU-reference pass —
      // that is the whole point of carrying the invariants online.
      return report;
    }
    // Silent corruption (a bit flip, a stuck load) completes "successfully";
    // only comparing against the reference stencil exposes it.  Clean runs
    // with no injector and no prior failure skip the sweep — the parallel
    // runner's own tests already pin bit-exactness there.
    const bool exposed = options.faults != nullptr || attempt > 0;
    if (options.retry.verify && exposed && options.mode != gpusim::ExecMode::Trace) {
      const Status verdict = verify_against_reference(kernel, in, out);
      SimMetrics::get().verifications.add();
      report.verified = true;
      if (!verdict.ok()) {
        report.status = verdict;
        if (attempt + 1 < max_attempts) continue;
        return report;
      }
    }
    return report;
  }
  return report;
}

template <typename T>
gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                 const gpusim::DeviceSpec& device,
                                 const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = kernel.required_halo();  // pipeline fill depth: N * r
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  SimMetrics::get().timing_evaluations.add();
  timing = gpusim::estimate_timing(device, input);
  // A degree-N sweep advances every point N timesteps, so the throughput
  // metric counts point-updates per second — directly comparable against
  // single-step configurations in the tuner ranking.
  timing.mpoints_per_s *= kernel.time_steps();
  return timing;
}

template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                              const Grid3<float>&, Grid3<float>&,
                                              const gpusim::DeviceSpec&,
                                              gpusim::ExecMode, const ExecPolicy&);
template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                               const Grid3<double>&, Grid3<double>&,
                                               const gpusim::DeviceSpec&,
                                               gpusim::ExecMode, const ExecPolicy&);
template RunReport run_kernel_guarded<float>(const IStencilKernel<float>&,
                                             const Grid3<float>&, Grid3<float>&,
                                             const gpusim::DeviceSpec&,
                                             const RunOptions&);
template RunReport run_kernel_guarded<double>(const IStencilKernel<double>&,
                                              const Grid3<double>&, Grid3<double>&,
                                              const gpusim::DeviceSpec&,
                                              const RunOptions&);
template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&);
template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&);

}  // namespace inplane::kernels
