#include "kernels/runner.hpp"

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "verify/reference_oracle.hpp"

namespace inplane::kernels {

namespace {

/// Simulator instruments, flushed once per kernel launch from the already
/// aggregated TraceStats — the per-warp-op hot path stays untouched, so
/// collection cost is a handful of relaxed adds per launch.
struct SimMetrics {
  metrics::Counter& launches;
  metrics::Counter& blocks;
  metrics::Counter& planes;
  metrics::Counter& load_transactions;
  metrics::Counter& store_transactions;
  metrics::Counter& bytes_requested_ld;
  metrics::Counter& bytes_transferred_ld;
  metrics::Counter& bytes_transferred_st;
  metrics::Counter& smem_replays;
  metrics::Counter& syncs;
  metrics::Counter& flops;
  metrics::Counter& retries;
  metrics::Counter& verifications;
  metrics::Counter& timing_evaluations;
  metrics::Timer& launch_timer;

  static SimMetrics& get() {
    auto& reg = metrics::Registry::global();
    static SimMetrics m{
        reg.counter("gpusim.launches"),
        reg.counter("gpusim.blocks"),
        reg.counter("gpusim.planes_loaded"),
        reg.counter("gpusim.load_transactions"),
        reg.counter("gpusim.store_transactions"),
        reg.counter("gpusim.bytes_requested_ld"),
        reg.counter("gpusim.bytes_transferred_ld"),
        reg.counter("gpusim.bytes_transferred_st"),
        reg.counter("gpusim.smem_replays"),
        reg.counter("gpusim.syncs"),
        reg.counter("gpusim.flops"),
        reg.counter("kernels.runner.retries"),
        reg.counter("kernels.runner.verifications"),
        reg.counter("gpusim.timing.evaluations"),
        reg.timer("gpusim.launch"),
    };
    return m;
  }
};

/// Derives the per-launch counter deltas from one launch's aggregate
/// stats.  Plane count uses the barrier invariant the trace auditor pins
/// (every loaded plane costs exactly two barriers per block).
void flush_launch_metrics(const gpusim::TraceStats& stats, std::size_t nblocks) {
  if (!metrics::enabled()) return;
  SimMetrics& m = SimMetrics::get();
  m.launches.add();
  m.blocks.add(nblocks);
  if (nblocks != 0) m.planes.add(stats.syncs / (2 * nblocks));
  m.load_transactions.add(stats.load_transactions);
  m.store_transactions.add(stats.store_transactions);
  m.bytes_requested_ld.add(stats.bytes_requested_ld);
  m.bytes_transferred_ld.add(stats.bytes_transferred_ld);
  m.bytes_transferred_st.add(stats.bytes_transferred_st);
  m.smem_replays.add(stats.smem_replays);
  m.syncs.add(stats.syncs);
  m.flops.add(stats.flops);
}

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

/// Sweeps every thread block of one launch.  Shared by the plain and the
/// guarded runner; @p faults / @p budget are the fault-tolerance hooks
/// (nullptr / 0 = the historical clean path).
template <typename T>
gpusim::TraceStats sweep_blocks(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                                Grid3<T>& out, const gpusim::DeviceSpec& device,
                                gpusim::ExecMode mode, const ExecPolicy& policy,
                                const gpusim::FaultInjector* faults,
                                std::uint64_t budget, std::int64_t attempt,
                                std::int64_t device_index) {
  gpusim::GlobalMemory gmem;
  if (faults != nullptr) gmem.set_fault_context(faults, device_index);
  const gpusim::BufferId in_id = gmem.map_readonly(const_bytes(in));
  const gpusim::BufferId out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};

  const LaunchConfig& cfg = kernel.config();
  const int nbx = in.nx() / cfg.tile_w();
  const int nby = in.ny() / cfg.tile_h();
  const std::size_t smem_bytes = kernel.resources().smem_bytes;

  // Thread blocks are independent: each reads the (shared, frozen) input
  // mapping and writes its own disjoint output tile, so they can run
  // concurrently.  Per-block stats land in a slot indexed by the block's
  // serial iteration position and are reduced in that order afterwards,
  // which keeps the aggregate TraceStats bit-identical to the serial path
  // for every thread count.  Fault sites are keyed by the same serial
  // block index, so injection is equally schedule-independent.
  const std::size_t nblocks =
      static_cast<std::size_t>(nbx) * static_cast<std::size_t>(nby);
  metrics::ScopedTimer launch_timer(SimMetrics::get().launch_timer);
  std::vector<gpusim::TraceStats> per_block(nblocks);
  parallel_for(policy, nblocks, [&](std::size_t b) {
    const int bx = static_cast<int>(b) % nbx;
    const int by = static_cast<int>(b) / nbx;
    gpusim::BlockCtx ctx(device, gmem, smem_bytes, mode);
    if (faults != nullptr) {
      ctx.install_faults(faults, static_cast<std::int64_t>(b), attempt, device_index);
    }
    if (budget != 0) ctx.set_step_budget(budget);
    GridAccess out_block = out_access;
    kernel.run_block(ctx, in_access, out_block, bx, by);
    per_block[b] = ctx.stats();
  });

  gpusim::TraceStats total;
  for (const gpusim::TraceStats& s : per_block) total += s;
  flush_launch_metrics(total, nblocks);
  return total;
}

/// Generous watchdog bound derived from the launch geometry: a healthy
/// block issues a handful of warp-ops per 32 tile elements per plane;
/// this allows ~512x that before declaring the block hung.
template <typename T>
std::uint64_t auto_step_budget(const IStencilKernel<T>& kernel, const Extent3& extent) {
  const std::uint64_t r = static_cast<std::uint64_t>(kernel.radius());
  const std::uint64_t tw = static_cast<std::uint64_t>(kernel.config().tile_w());
  const std::uint64_t th = static_cast<std::uint64_t>(kernel.config().tile_h());
  const std::uint64_t planes = static_cast<std::uint64_t>(extent.nz) + 2 * r + 8;
  const std::uint64_t tile_elems = (tw + 2 * r) * (th + 2 * r);
  const std::uint64_t per_plane = tile_elems / 32 + tw + th + 64;
  return 512ull * planes * per_plane;
}

/// Checks every interior point of @p out against the CPU reference
/// stencil applied to @p in, through the verification subsystem's shared
/// oracle and its centralized ULP budget — the same comparator behind the
/// differential oracle, the CLI's --verify mode and the fuzzer, so a bug
/// flagged here is flagged identically by all of them.  Returns Ok or
/// DataCorruption with the first offending site.
template <typename T>
Status verify_against_reference(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                                const Grid3<T>& out) {
  const StencilCoeffs& coeffs = kernel.coeffs();
  return verify::reference_status(coeffs, in, out,
                                  UlpBudget::for_radius(coeffs.radius(), sizeof(T)));
}

}  // namespace

template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode, const ExecPolicy& policy) {
  if (in.extent() != out.extent()) {
    throw InvalidConfigError("run_kernel: grids must share extent");
  }
  if (in.halo() < kernel.radius() || out.halo() < kernel.radius()) {
    throw InvalidConfigError("run_kernel: halo narrower than stencil radius");
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw InvalidConfigError("run_kernel: invalid configuration: " + *err);
  }
  return sweep_blocks(kernel, in, out, device, mode, policy, nullptr, 0, 0, 0);
}

template <typename T>
RunReport run_kernel_guarded(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                             Grid3<T>& out, const gpusim::DeviceSpec& device,
                             const RunOptions& options) {
  RunReport report;
  if (in.extent() != out.extent()) {
    report.status = {ErrorCode::InvalidConfig, "run_kernel: grids must share extent"};
    return report;
  }
  if (in.halo() < kernel.radius() || out.halo() < kernel.radius()) {
    report.status = {ErrorCode::InvalidConfig,
                     "run_kernel: halo narrower than stencil radius"};
    return report;
  }
  if (auto err = kernel.validate(device, in.extent())) {
    report.status = {ErrorCode::InvalidConfig,
                     "run_kernel: invalid configuration: " + *err};
    return report;
  }

  const int max_attempts = options.retry.max_attempts < 1 ? 1 : options.retry.max_attempts;
  report.step_budget = options.step_budget != 0
                           ? options.step_budget
                           : auto_step_budget(kernel, in.extent());
  double backoff_ms = options.retry.backoff_initial_ms;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      SimMetrics::get().retries.add();
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms *= options.retry.backoff_multiplier;
      }
    }
    report.attempts = attempt + 1;
    try {
      report.stats = sweep_blocks(kernel, in, out, device, options.mode, options.policy,
                                  options.faults, report.step_budget,
                                  static_cast<std::int64_t>(attempt),
                                  options.device_index);
      report.status = Status::okay();
    } catch (const std::exception& e) {
      report.status = status_of(e);
      if (report.status.retryable() && attempt + 1 < max_attempts) continue;
      return report;
    }
    // Silent corruption (a bit flip, a stuck load) completes "successfully";
    // only comparing against the reference stencil exposes it.  Clean runs
    // with no injector and no prior failure skip the sweep — the parallel
    // runner's own tests already pin bit-exactness there.
    const bool exposed = options.faults != nullptr || attempt > 0;
    if (options.retry.verify && exposed && options.mode != gpusim::ExecMode::Trace) {
      const Status verdict = verify_against_reference(kernel, in, out);
      SimMetrics::get().verifications.add();
      report.verified = true;
      if (!verdict.ok()) {
        report.status = verdict;
        if (attempt + 1 < max_attempts) continue;
        return report;
      }
    }
    return report;
  }
  return report;
}

template <typename T>
gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                 const gpusim::DeviceSpec& device,
                                 const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = kernel.radius();
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  SimMetrics::get().timing_evaluations.add();
  return gpusim::estimate_timing(device, input);
}

template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                              const Grid3<float>&, Grid3<float>&,
                                              const gpusim::DeviceSpec&,
                                              gpusim::ExecMode, const ExecPolicy&);
template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                               const Grid3<double>&, Grid3<double>&,
                                               const gpusim::DeviceSpec&,
                                               gpusim::ExecMode, const ExecPolicy&);
template RunReport run_kernel_guarded<float>(const IStencilKernel<float>&,
                                             const Grid3<float>&, Grid3<float>&,
                                             const gpusim::DeviceSpec&,
                                             const RunOptions&);
template RunReport run_kernel_guarded<double>(const IStencilKernel<double>&,
                                              const Grid3<double>&, Grid3<double>&,
                                              const gpusim::DeviceSpec&,
                                              const RunOptions&);
template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&);
template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&);

}  // namespace inplane::kernels
