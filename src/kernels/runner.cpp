#include "kernels/runner.hpp"

#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace inplane::kernels {

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

}  // namespace

template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode, const ExecPolicy& policy) {
  if (in.extent() != out.extent()) {
    throw std::invalid_argument("run_kernel: grids must share extent");
  }
  if (in.halo() < kernel.radius() || out.halo() < kernel.radius()) {
    throw std::invalid_argument("run_kernel: halo narrower than stencil radius");
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw std::invalid_argument("run_kernel: invalid configuration: " + *err);
  }

  gpusim::GlobalMemory gmem;
  const gpusim::BufferId in_id = gmem.map_readonly(const_bytes(in));
  const gpusim::BufferId out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};

  const LaunchConfig& cfg = kernel.config();
  const int nbx = in.nx() / cfg.tile_w();
  const int nby = in.ny() / cfg.tile_h();
  const std::size_t smem_bytes = kernel.resources().smem_bytes;

  // Thread blocks are independent: each reads the (shared, frozen) input
  // mapping and writes its own disjoint output tile, so they can run
  // concurrently.  Per-block stats land in a slot indexed by the block's
  // serial iteration position and are reduced in that order afterwards,
  // which keeps the aggregate TraceStats bit-identical to the serial path
  // for every thread count.
  const std::size_t nblocks =
      static_cast<std::size_t>(nbx) * static_cast<std::size_t>(nby);
  std::vector<gpusim::TraceStats> per_block(nblocks);
  parallel_for(policy, nblocks, [&](std::size_t b) {
    const int bx = static_cast<int>(b) % nbx;
    const int by = static_cast<int>(b) / nbx;
    gpusim::BlockCtx ctx(device, gmem, smem_bytes, mode);
    GridAccess out_block = out_access;
    kernel.run_block(ctx, in_access, out_block, bx, by);
    per_block[b] = ctx.stats();
  });

  gpusim::TraceStats total;
  for (const gpusim::TraceStats& s : per_block) total += s;
  return total;
}

template <typename T>
gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                 const gpusim::DeviceSpec& device,
                                 const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = kernel.radius();
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  return gpusim::estimate_timing(device, input);
}

template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                              const Grid3<float>&, Grid3<float>&,
                                              const gpusim::DeviceSpec&,
                                              gpusim::ExecMode, const ExecPolicy&);
template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                               const Grid3<double>&, Grid3<double>&,
                                               const gpusim::DeviceSpec&,
                                               gpusim::ExecMode, const ExecPolicy&);
template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&);
template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&);

}  // namespace inplane::kernels
