#include "kernels/runner.hpp"

#include <stdexcept>

namespace inplane::kernels {

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

}  // namespace

template <typename T>
gpusim::TraceStats run_kernel(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                              Grid3<T>& out, const gpusim::DeviceSpec& device,
                              gpusim::ExecMode mode) {
  if (in.extent() != out.extent()) {
    throw std::invalid_argument("run_kernel: grids must share extent");
  }
  if (in.halo() < kernel.radius() || out.halo() < kernel.radius()) {
    throw std::invalid_argument("run_kernel: halo narrower than stencil radius");
  }
  if (auto err = kernel.validate(device, in.extent())) {
    throw std::invalid_argument("run_kernel: invalid configuration: " + *err);
  }

  gpusim::GlobalMemory gmem;
  const gpusim::BufferId in_id = gmem.map_readonly(const_bytes(in));
  const gpusim::BufferId out_id = gmem.map(out.bytes());
  const GridAccess in_access{&in.layout(), gmem.base(in_id)};
  GridAccess out_access{&out.layout(), gmem.base(out_id)};

  const LaunchConfig& cfg = kernel.config();
  const int nbx = in.nx() / cfg.tile_w();
  const int nby = in.ny() / cfg.tile_h();
  const std::size_t smem_bytes = kernel.resources().smem_bytes;

  gpusim::TraceStats total;
  for (int by = 0; by < nby; ++by) {
    for (int bx = 0; bx < nbx; ++bx) {
      gpusim::BlockCtx ctx(device, gmem, smem_bytes, mode);
      kernel.run_block(ctx, in_access, out_access, bx, by);
      total += ctx.stats();
    }
  }
  return total;
}

template <typename T>
gpusim::KernelTiming time_kernel(const IStencilKernel<T>& kernel,
                                 const gpusim::DeviceSpec& device,
                                 const Extent3& extent) {
  gpusim::KernelTiming timing;
  if (auto err = kernel.validate(device, extent)) {
    timing.invalid_reason = *err;
    return timing;
  }
  gpusim::TimingInput input;
  input.grid = extent;
  input.radius = kernel.radius();
  input.tile_w = kernel.config().tile_w();
  input.tile_h = kernel.config().tile_h();
  input.resources = kernel.resources();
  input.per_plane = kernel.trace_plane(device, extent);
  input.is_double = sizeof(T) == 8;
  input.ilp = kernel.config().columns_per_thread();
  return gpusim::estimate_timing(device, input);
}

template gpusim::TraceStats run_kernel<float>(const IStencilKernel<float>&,
                                              const Grid3<float>&, Grid3<float>&,
                                              const gpusim::DeviceSpec&,
                                              gpusim::ExecMode);
template gpusim::TraceStats run_kernel<double>(const IStencilKernel<double>&,
                                               const Grid3<double>&, Grid3<double>&,
                                               const gpusim::DeviceSpec&,
                                               gpusim::ExecMode);
template gpusim::KernelTiming time_kernel<float>(const IStencilKernel<float>&,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&);
template gpusim::KernelTiming time_kernel<double>(const IStencilKernel<double>&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&);

}  // namespace inplane::kernels
