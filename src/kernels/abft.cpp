#include "kernels/abft.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "gpusim/block_ctx.hpp"
#include "gpusim/global_memory.hpp"

namespace inplane::kernels {

namespace {

template <typename T>
std::span<const std::byte> const_bytes(const Grid3<T>& g) {
  return {reinterpret_cast<const std::byte*>(g.raw()), g.allocated() * sizeof(T)};
}

/// Range sum [lo, hi) over a prefix-sum array whose index 0 is @p base.
double range(const std::vector<double>& prefix, int base, int lo, int hi) {
  return prefix[static_cast<std::size_t>(hi - base)] -
         prefix[static_cast<std::size_t>(lo - base)];
}

}  // namespace

template <typename T>
AbftChecker<T>::AbftChecker(const IStencilKernel<T>& kernel, const Grid3<T>& in,
                            const AbftOptions& options)
    : kernel_(kernel), in_(in), options_(options) {
  nbx_ = in.nx() / kernel.config().tile_w();
  nby_ = in.ny() / kernel.config().tile_h();
  predict();
}

template <typename T>
void AbftChecker<T>::predict() {
  const StencilCoeffs& coeffs = kernel_.coeffs();
  const int r = coeffs.radius();
  const int tw = kernel_.config().tile_w();
  const int th = kernel_.config().tile_h();
  const int nz = in_.nz();
  const GridLayout& layout = in_.layout();
  const double px = static_cast<double>(layout.pitch_x());
  const int halo = layout.halo();

  // Per-plane reductions for one block: prefix sums over per-column and
  // per-row partials, so every shifted-tile sum is two lookups.
  struct PlaneRed {
    std::vector<double> col_s, col_w;  ///< prefix over i in [x0-r, x1+r]
    std::vector<double> row_s, row_w;  ///< prefix over j in [y0-r, y1+r]
    double sabs = 0.0;                 ///< sum|v| over the extended window
  };

  // q(i, j): the element's in-plane padded offset — index() at the lowest
  // allocated plane, where the plane term contributes zero.
  const auto q_of = [&](int i, int j) {
    return static_cast<double>(layout.index(i, j, -halo));
  };

  // Tolerance mass: eps * L1 coefficient norm * accumulated |input|.
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  double coeff_l1 = std::abs(coeffs.c0());
  for (int m = 1; m <= r; ++m) coeff_l1 += 6.0 * std::abs(coeffs.c(m));
  const double tol_unit = options_.tolerance_scale * eps * coeff_l1;

  const std::size_t nblocks =
      static_cast<std::size_t>(nbx_) * static_cast<std::size_t>(nby_);
  pred_.assign(nblocks, std::vector<PredPlane>(static_cast<std::size_t>(nz)));

  const int period = 2 * r + 1;
  std::vector<PlaneRed> ring(static_cast<std::size_t>(period));
  const auto slot = [&](int kk) {
    return static_cast<std::size_t>(((kk % period) + period) % period);
  };

  for (std::size_t b = 0; b < nblocks; ++b) {
    const int bx = static_cast<int>(b) % nbx_;
    const int by = static_cast<int>(b) / nbx_;
    const int x0 = bx * tw, x1 = x0 + tw;
    const int y0 = by * th, y1 = y0 + th;

    const auto reduce_plane = [&](int kk, PlaneRed& red) {
      red.col_s.assign(static_cast<std::size_t>(tw + 2 * r) + 1, 0.0);
      red.col_w.assign(static_cast<std::size_t>(tw + 2 * r) + 1, 0.0);
      red.row_s.assign(static_cast<std::size_t>(th + 2 * r) + 1, 0.0);
      red.row_w.assign(static_cast<std::size_t>(th + 2 * r) + 1, 0.0);
      red.sabs = 0.0;
      for (int i = x0 - r; i < x1 + r; ++i) {
        double cs = 0.0, cw = 0.0;
        for (int j = y0; j < y1; ++j) {
          const double v = static_cast<double>(in_.at(i, j, kk));
          cs += v;
          cw += q_of(i, j) * v;
        }
        const auto idx = static_cast<std::size_t>(i - (x0 - r));
        red.col_s[idx + 1] = red.col_s[idx] + cs;
        red.col_w[idx + 1] = red.col_w[idx] + cw;
      }
      for (int j = y0 - r; j < y1 + r; ++j) {
        double rs = 0.0, rw = 0.0;
        for (int i = x0; i < x1; ++i) {
          const double v = static_cast<double>(in_.at(i, j, kk));
          rs += v;
          rw += q_of(i, j) * v;
        }
        const auto idx = static_cast<std::size_t>(j - (y0 - r));
        red.row_s[idx + 1] = red.row_s[idx] + rs;
        red.row_w[idx + 1] = red.row_w[idx] + rw;
      }
      for (int i = x0 - r; i < x1 + r; ++i) {
        for (int j = y0 - r; j < y1 + r; ++j) {
          red.sabs += std::abs(static_cast<double>(in_.at(i, j, kk)));
        }
      }
    };

    for (int kk = -r; kk < r; ++kk) reduce_plane(kk, ring[slot(kk)]);

    for (int k = 0; k < nz; ++k) {
      reduce_plane(k + r, ring[slot(k + r)]);

      const PlaneRed& c = ring[slot(k)];
      const auto tile_s = [&](const PlaneRed& red) {
        return range(red.col_s, x0 - r, x0, x1);
      };
      const auto tile_w_sum = [&](const PlaneRed& red) {
        return range(red.col_w, x0 - r, x0, x1);
      };

      double p0 = coeffs.c0() * tile_s(c);
      double p1 = coeffs.c0() * tile_w_sum(c);
      double mass = 0.0;
      for (int d = -r; d <= r; ++d) mass += ring[slot(k + d)].sabs;
      for (int m = 1; m <= r; ++m) {
        const double cm = coeffs.c(m);
        const double sxp = range(c.col_s, x0 - r, x0 + m, x1 + m);
        const double sxm = range(c.col_s, x0 - r, x0 - m, x1 - m);
        const double wxp = range(c.col_w, x0 - r, x0 + m, x1 + m);
        const double wxm = range(c.col_w, x0 - r, x0 - m, x1 - m);
        const double syp = range(c.row_s, y0 - r, y0 + m, y1 + m);
        const double sym = range(c.row_s, y0 - r, y0 - m, y1 - m);
        const double wyp = range(c.row_w, y0 - r, y0 + m, y1 + m);
        const double wym = range(c.row_w, y0 - r, y0 - m, y1 - m);
        const PlaneRed& zm = ring[slot(k - m)];
        const PlaneRed& zp = ring[slot(k + m)];
        p0 += cm * (sxp + sxm + syp + sym + tile_s(zm) + tile_s(zp));
        p1 += cm * ((wxp - m * sxp) + (wxm + m * sxm) +
                    (wyp - m * px * syp) + (wym + m * px * sym) +
                    tile_w_sum(zm) + tile_w_sum(zp));
      }

      PredPlane& pp = pred_[b][static_cast<std::size_t>(k)];
      pp.s0 = p0;
      pp.s1 = p1;
      pp.tol0 = std::max(options_.abs_floor, tol_unit * mass);
      // Weights multiply every term by at most one plane stride.
      pp.tol1 = std::max(options_.abs_floor,
                         pp.tol0 * static_cast<double>(layout.plane_stride()));
    }
  }
}

template <typename T>
std::vector<SdcEvent> AbftChecker<T>::compare(const gpusim::AbftSink& sink) const {
  std::vector<SdcEvent> events;
  const int nz = in_.nz();
  for (std::size_t b = 0; b < pred_.size(); ++b) {
    for (int k = 0; k < nz; ++k) {
      const gpusim::PlaneSums& act = sink.plane(b, k);
      const PredPlane& pp = pred_[b][static_cast<std::size_t>(k)];
      const double d0 = std::abs(act.s0 - pp.s0);
      const double d1 = std::abs(act.s1 - pp.s1);
      // Inverted comparisons so a NaN delta (an exponent-bit flip can
      // drive the stored plane to Inf/NaN) counts as flagged.
      if (!(d0 <= pp.tol0) || !(d1 <= pp.tol1)) {
        SdcEvent e;
        e.block = static_cast<int>(b);
        e.plane = k;
        e.delta0 = d0;
        e.delta1 = d1;
        e.tol0 = pp.tol0;
        e.tol1 = pp.tol1;
        events.push_back(e);
      }
    }
  }
  return events;
}

template <typename T>
bool AbftChecker<T>::recheck_block(const Grid3<T>& out, int block) const {
  const int tw = kernel_.config().tile_w();
  const int th = kernel_.config().tile_h();
  const int x0 = (block % nbx_) * tw;
  const int y0 = (block / nbx_) * th;
  for (int k = 0; k < out.nz(); ++k) {
    double s0 = 0.0, s1 = 0.0;
    for (int j = y0; j < y0 + th; ++j) {
      for (int i = x0; i < x0 + tw; ++i) {
        const double v = static_cast<double>(out.at(i, j, k));
        s0 += v;
        s1 += static_cast<double>(out.layout().index(i, j, -out.halo())) * v;
      }
    }
    const PredPlane& pp = pred_[static_cast<std::size_t>(block)][static_cast<std::size_t>(k)];
    if (!(std::abs(s0 - pp.s0) <= pp.tol0) || !(std::abs(s1 - pp.s1) <= pp.tol1)) {
      return false;
    }
  }
  return true;
}

template <typename T>
bool AbftChecker<T>::repair(std::vector<SdcEvent>& events, Grid3<T>& out,
                            const gpusim::DeviceSpec& device,
                            MemBudget* budget) const {
  if (events.empty()) return true;
  std::vector<int> blocks;
  for (const SdcEvent& e : events) {
    if (blocks.empty() || blocks.back() != e.block) blocks.push_back(e.block);
  }
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

  // The scratch grid is the one allocation surgical repair needs; if the
  // run's memory budget cannot cover it, degrade to full retry.
  const GridLayout scratch_layout(out.extent(), out.halo(), sizeof(T), 32,
                                  kernel_.preferred_align_offset());
  MemReservation reservation(budget, scratch_layout.allocated_bytes());
  if (!reservation.ok()) return false;

  Grid3<T> scratch(out.extent(), out.halo(), 32, kernel_.preferred_align_offset());
  gpusim::GlobalMemory gmem;
  const gpusim::BufferId in_id = gmem.map_readonly(const_bytes(in_));
  const gpusim::BufferId scratch_id = gmem.map(scratch.bytes());
  const GridAccess in_access{&in_.layout(), gmem.base(in_id)};
  const GridAccess scratch_access{&scratch.layout(), gmem.base(scratch_id)};
  const std::size_t smem_bytes = kernel_.resources().smem_bytes;
  const int tw = kernel_.config().tile_w();
  const int th = kernel_.config().tile_h();

  for (int b : blocks) {
    const int bx = b % nbx_;
    const int by = b / nbx_;
    // Same run_block code path as the launch, minus the injector: the
    // recomputed tile is bit-identical to a fault-free run's.
    gpusim::BlockCtx ctx(device, gmem, smem_bytes, gpusim::ExecMode::Functional);
    GridAccess out_block = scratch_access;
    kernel_.run_block(ctx, in_access, out_block, bx, by);
    for (int k = 0; k < out.nz(); ++k) {
      for (int j = by * th; j < (by + 1) * th; ++j) {
        for (int i = bx * tw; i < (bx + 1) * tw; ++i) {
          out.at(i, j, k) = scratch.at(i, j, k);
        }
      }
    }
    if (!recheck_block(out, b)) return false;
  }
  for (SdcEvent& e : events) e.repaired = true;
  return true;
}

template class AbftChecker<float>;
template class AbftChecker<double>;

}  // namespace inplane::kernels
