#include "kernels/kernel_base.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels {

template <typename T>
std::unique_ptr<IStencilKernel<T>> make_kernel(Method method, StencilCoeffs coeffs,
                                               LaunchConfig config) {
  if (method == Method::ForwardPlane) {
    return detail::make_forward_plane<T>(std::move(coeffs), config);
  }
  return detail::make_inplane<T>(method, std::move(coeffs), config);
}

template std::unique_ptr<IStencilKernel<float>> make_kernel<float>(Method,
                                                                   StencilCoeffs,
                                                                   LaunchConfig);
template std::unique_ptr<IStencilKernel<double>> make_kernel<double>(Method,
                                                                     StencilCoeffs,
                                                                     LaunchConfig);

}  // namespace inplane::kernels
