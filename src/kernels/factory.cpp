#include "core/status.hpp"
#include "kernels/kernel_base.hpp"
#include "kernels/stencil_kernel.hpp"
#include "temporal/temporal_kernel.hpp"

namespace inplane::kernels {

template <typename T>
std::unique_ptr<IStencilKernel<T>> make_kernel(Method method, StencilCoeffs coeffs,
                                               LaunchConfig config) {
  if (config.tb < 1) {
    throw InvalidConfigError("make_kernel: temporal degree (tb) must be >= 1");
  }
  if (config.tb > 1) {
    // Temporal blocking builds on the full-slice loading pattern (the only
    // one that stages the whole extended region, section III-C2).
    if (method != Method::InPlaneFullSlice) {
      throw InvalidConfigError(
          "make_kernel: temporal blocking (tb > 1) requires the full-slice method");
    }
    return std::make_unique<temporal::TemporalInPlaneKernel<T>>(std::move(coeffs),
                                                                config);
  }
  if (method == Method::ForwardPlane) {
    return detail::make_forward_plane<T>(std::move(coeffs), config);
  }
  return detail::make_inplane<T>(method, std::move(coeffs), config);
}

template std::unique_ptr<IStencilKernel<float>> make_kernel<float>(Method,
                                                                   StencilCoeffs,
                                                                   LaunchConfig);
template std::unique_ptr<IStencilKernel<double>> make_kernel<double>(Method,
                                                                     StencilCoeffs,
                                                                     LaunchConfig);

}  // namespace inplane::kernels
