#pragma once

#include "gpusim/occupancy.hpp"
#include "kernels/launch_config.hpp"

namespace inplane::kernels {

/// Loading strategy of the kernel (section III).
enum class Method {
  ForwardPlane,       ///< nvstencil: 2.5-D forward-plane loading (Fig. 5a)
  InPlaneClassical,   ///< Fig. 6a: separate interior + 4 halo strip loads
  InPlaneVertical,    ///< Fig. 6b: top/bottom halos merged with interior
  InPlaneHorizontal,  ///< Fig. 6c: left/right halos merged with interior
  InPlaneFullSlice,   ///< Fig. 6d: whole (W+2r) x (H+2r) slice in one sweep
};

[[nodiscard]] const char* to_string(Method method);
[[nodiscard]] bool is_in_plane(Method method);

/// Estimates per-block resource usage (K_R and K_S in the paper's model).
///
/// K_S is exact: all variants stage one (W+2r) x (H+2r) plane in shared
/// memory.  K_R is an analytic proxy for nvcc's allocator: a fixed base of
/// address/index temporaries plus the per-column value state — the
/// (2r+1)-deep register pipeline for the forward-plane method, the r-deep
/// output queue plus r-deep back history for the in-plane method (section
/// III-C) — with 64-bit values costing two registers each.  The estimate's
/// purpose is the occupancy trade-off of section IV-C, for which
/// monotonicity in r * RX * RY is what matters.
///
/// With config.tb > 1 (degree-N temporal blocking) K_S adds the stage-1
/// extended slice and the (N-1)-level shared ring hierarchy, and K_R the
/// per-extended-point stage-1 queue/history state; this is the single
/// source of truth the temporal kernel, the search-space pruning and the
/// timing model all share.
[[nodiscard]] gpusim::KernelResources estimate_resources(Method method,
                                                         const LaunchConfig& config,
                                                         int radius,
                                                         std::size_t elem_size);

}  // namespace inplane::kernels
