#pragma once

// Internal: common state shared by the forward-plane and in-plane kernel
// implementations.  Not part of the public API surface.

#include <optional>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "kernels/kernel_common.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels::detail {

/// Validation and bookkeeping shared by both kernel families.
template <typename T>
class KernelBase : public IStencilKernel<T> {
 public:
  KernelBase(StencilCoeffs coeffs, LaunchConfig config)
      : cs_(std::move(coeffs)), cfg_(config), r_(cs_.radius()) {
    if (r_ < 1) throw InvalidConfigError("stencil kernel: radius must be >= 1");
    if (cfg_.tx <= 0 || cfg_.ty <= 0 || cfg_.rx <= 0 || cfg_.ry <= 0) {
      throw InvalidConfigError("stencil kernel: blocking factors must be positive");
    }
    if (cfg_.vec != 1 && cfg_.vec != 2 && cfg_.vec != 4) {
      throw InvalidConfigError("stencil kernel: vec must be 1, 2 or 4");
    }
    if (static_cast<std::size_t>(cfg_.vec) * sizeof(T) > 16) {
      throw InvalidConfigError("stencil kernel: vector load wider than 16 bytes");
    }
    c_.resize(static_cast<std::size_t>(r_) + 1);
    c_[0] = static_cast<T>(cs_.c0());
    for (int m = 1; m <= r_; ++m) c_[static_cast<std::size_t>(m)] = static_cast<T>(cs_.c(m));
  }

  [[nodiscard]] const LaunchConfig& config() const final { return cfg_; }
  [[nodiscard]] const StencilCoeffs& coeffs() const final { return cs_; }
  [[nodiscard]] int radius() const final { return r_; }

  [[nodiscard]] gpusim::KernelResources resources() const final {
    return estimate_resources(this->method(), cfg_, r_, sizeof(T));
  }

  [[nodiscard]] std::optional<std::string> validate(
      const gpusim::DeviceSpec& device, const Extent3& extent) const final {
    extent.validate();
    if (cfg_.threads() > device.max_threads_per_block) {
      return "threads per block (" + std::to_string(cfg_.threads()) +
             ") over device limit";
    }
    const gpusim::KernelResources res = resources();
    if (res.smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
      return "shared tile (" + std::to_string(res.smem_bytes) +
             " B) over per-SM shared memory";
    }
    // Note: the per-thread register estimate is deliberately NOT checked
    // here — exceeding it costs occupancy (Occupancy::compute returns 0
    // and the timing model marks the configuration invalid, zeroing it in
    // the Fig. 8 surfaces) but a real kernel would still run, spilling to
    // local memory, so functional execution is allowed.
    if (extent.nx % cfg_.tile_w() != 0) {
      return "TX*RX does not divide grid x extent";
    }
    if (extent.ny % cfg_.tile_h() != 0) {
      return "TY*RY does not divide grid y extent";
    }
    return std::nullopt;
  }

 protected:
  [[nodiscard]] SmemTile tile() const {
    return SmemTile{cfg_.tile_w(), cfg_.tile_h(), r_, sizeof(T)};
  }

  /// Builds the trace context + synthetic grid accesses and runs
  /// @p plane_fn once for a steady-state interior plane.
  template <typename PlaneFn>
  [[nodiscard]] gpusim::TraceStats trace_one_plane(const gpusim::DeviceSpec& device,
                                                   const Extent3& extent,
                                                   PlaneFn&& plane_fn) const {
    const GridLayout layout(extent, r_, sizeof(T), 32, this->preferred_align_offset());
    gpusim::GlobalMemory gmem;  // never dereferenced in trace mode
    gpusim::BlockCtx ctx(device, gmem, tile().bytes(), gpusim::ExecMode::Trace);
    GridAccess in{&layout, 0x10000};
    GridAccess out{&layout,
                   0x10000 + round_up(layout.allocated_bytes(), 512) + 512};
    const int k = std::min(extent.nz - 1, r_ + 1);
    plane_fn(ctx, in, out, /*bx=*/0, /*by=*/0, k);
    return ctx.stats();
  }

  StencilCoeffs cs_;
  LaunchConfig cfg_;
  int r_;
  std::vector<T> c_;  ///< coefficients cast to the kernel precision
};

/// Internal factories implemented in forward_plane.cpp / inplane.cpp.
template <typename T>
std::unique_ptr<IStencilKernel<T>> make_forward_plane(StencilCoeffs coeffs,
                                                      LaunchConfig config);
template <typename T>
std::unique_ptr<IStencilKernel<T>> make_inplane(Method method, StencilCoeffs coeffs,
                                                LaunchConfig config);

}  // namespace inplane::kernels::detail
