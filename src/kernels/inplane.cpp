// The in-plane stencil kernel (section III-C of the paper).
//
// Instead of fetching all 6r+1 neighbours when an output plane is reached
// (forward-plane), the in-plane method streams one xy-plane at a time and
// accumulates *partial* outputs in a per-thread register queue:
//
//   partial(k)   = c0*in[k] + sum_m c_m*(xy-neighbours(k) + in[k-m])   (Eqn. 3)
//   queue update: out_partial(k-p) += c_p * in[k]   for p = 1..r        (Eqn. 5)
//
// so the output for plane k-r completes exactly when plane k has been
// loaded, and the store is delayed r planes behind the sweep.  Because the
// loaded plane *is* the plane whose x/y halos are needed, the halo loads
// can be merged with the interior loads — the four variants of Fig. 6
// differ only in which halo strips are merged.

#include "core/simd.hpp"
#include "kernels/kernel_base.hpp"

namespace inplane::kernels::detail {

namespace {

template <typename T>
class InPlaneKernel final : public KernelBase<T> {
 public:
  InPlaneKernel(Method method, StencilCoeffs coeffs, LaunchConfig config)
      : KernelBase<T>(std::move(coeffs), config), method_(method) {
    if (!is_in_plane(method)) {
      throw InvalidConfigError("InPlaneKernel: method must be an in-plane variant");
    }
  }

  [[nodiscard]] Method method() const override { return method_; }

  [[nodiscard]] int preferred_align_offset() const override {
    // Horizontal and full-slice vectorise rows that start at x = -r
    // (section III-C2); the other patterns load interior-aligned rows.
    return (method_ == Method::InPlaneHorizontal ||
            method_ == Method::InPlaneFullSlice)
               ? this->r_
               : 0;
  }

  void run_block(gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
                 int by) const override {
    const int r = this->r_;
    Work work = make_work();
    prime(ctx, in, bx, by, work);
    const int nz = in.layout->nz();
    for (int k = 0; k < nz + r; ++k) {
      plane(ctx, in, out, bx, by, k, work);
    }
  }

  [[nodiscard]] gpusim::TraceStats trace_plane(
      const gpusim::DeviceSpec& device, const Extent3& extent) const override {
    Work work = make_work();
    return this->trace_one_plane(
        device, extent,
        [&](gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
            int by, int k) { plane(ctx, in, out, bx, by, k, work); });
  }

 private:
  /// Register-file state plus per-plane scratch for one block.
  /// Slots: back history in[k-1..k-r] at 0..r-1, output queue at r..2r-1
  /// (queue slot r+d holds the partial for output plane k-1-d).
  struct Work {
    ThreadState<T> state;
    std::vector<T> cur;    ///< centre value per (tid, column)
    std::vector<T> nsum;   ///< per-m neighbour sum per (tid, column)
    std::vector<T> part;   ///< Eqn. (3) partial per (tid, column)
    std::vector<T> emit;   ///< completed output per (tid, column)
  };

  [[nodiscard]] Work make_work() const {
    const auto n = static_cast<std::size_t>(this->cfg_.threads()) *
                   static_cast<std::size_t>(this->cfg_.columns_per_thread());
    return Work{ThreadState<T>(this->cfg_.threads(), this->cfg_.columns_per_thread(),
                               2 * this->r_),
                std::vector<T>(n), std::vector<T>(n), std::vector<T>(n),
                std::vector<T>(n)};
  }

  [[nodiscard]] std::size_t idx(int tid, int col) const {
    return static_cast<std::size_t>(tid) *
               static_cast<std::size_t>(this->cfg_.columns_per_thread()) +
           static_cast<std::size_t>(col);
  }

  /// Fills the back-history registers with the z < 0 halo planes so that
  /// the partials of the first r sweep steps see in[i, j, k-m] (Eqn. (3)).
  void prime(gpusim::BlockCtx& ctx, const GridAccess& in, int bx, int by,
             Work& work) const {
    const LaunchConfig& cfg = this->cfg_;
    const int x0 = bx * cfg.tile_w();
    const int y0 = by * cfg.tile_h();
    work.state.reset();
    for (int m = 1; m <= this->r_; ++m) {
      load_columns_to_state<T>(ctx, in, cfg, x0, y0, -m,
                               [&](int tid, int col) -> T& {
                                 return work.state.at(tid, col, m - 1);
                               });
    }
  }

  /// One z-sweep step: load plane k per the variant's pattern, compute the
  /// Eqn. (3) partial, apply the Eqn. (5) queue updates, and store the now
  /// complete output plane k - r.
  void plane(gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
             int by, int k, Work& work) const {
    const LaunchConfig& cfg = this->cfg_;
    const int r = this->r_;
    const int x0 = bx * cfg.tile_w();
    const int y0 = by * cfg.tile_h();

    load_pattern(ctx, in, x0, y0, k);
    ctx.sync();
    compute(ctx, work);
    if (k >= r) {
      store_columns<T>(ctx, out, cfg, x0, y0, k - r, [&](int tid, int col) {
        return work.emit[idx(tid, col)];
      });
    }
    ctx.sync();

    // Per element: 1 MUL (c0 term) + r x (4 ADD + 1 FMA) for the partial
    // + r FMA queue updates = 6r+1 warp instructions; 8r+1 flops (Table II).
    const auto warps = static_cast<std::uint64_t>(cfg.warps(ctx.device()));
    const auto cols = static_cast<std::uint64_t>(cfg.columns_per_thread());
    const auto threads = static_cast<std::uint64_t>(cfg.threads());
    const auto ru = static_cast<std::uint64_t>(r);
    ctx.record_compute(warps * cols * (6 * ru + 1), threads * cols * (8 * ru + 1));
  }

  /// Issues the loads of plane k into the shared tile, per Fig. 6.
  void load_pattern(gpusim::BlockCtx& ctx, const GridAccess& in, int x0, int y0,
                    int k) const {
    const LaunchConfig& cfg = this->cfg_;
    const SmemTile t = this->tile();
    const int r = this->r_;
    const int w = cfg.tile_w();
    const int h = cfg.tile_h();
    const int vec = cfg.vec;
    switch (method_) {
      case Method::InPlaneClassical:
        // Fig. 6a — scalar interior plus four separate strips and corners,
        // mirroring nvstencil's pattern (the paper omits this variant from
        // evaluation for exactly this reason).
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0, y0 + h, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 + h, y0 + h + r, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0, y0 + h, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0, y0 + h, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 - r, y0, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 + h, y0 + h + r, k, 1);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 + h,
                             y0 + h + r, k, 1);
        break;
      case Method::InPlaneVertical:
        // Fig. 6b — top/bottom halos merged with the interior rows; left
        // and right halo columns loaded separately, column-major (one
        // transaction per touched row — the poorly coalesced access the
        // paper blames for vertical's high-order slowdowns).
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 - r, y0 + h + r, k,
                             vec);
        load_columns_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0, y0 + h, k);
        load_columns_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0, y0 + h, k);
        break;
      case Method::InPlaneHorizontal:
        // Fig. 6c — left/right halos merged into full-width rows; top and
        // bottom strips loaded separately (vectorised, section III-C2).
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0 + w + r, y0, y0 + h, k,
                             vec);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 - r, y0, k, vec);
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 + h, y0 + h + r, k,
                             vec);
        break;
      case Method::InPlaneFullSlice:
        // Fig. 6d — the whole (W+2r) x (H+2r) slice as contiguous rows;
        // the 4r^2 corner elements are loaded redundantly.
        load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0 + w + r, y0 - r,
                             y0 + h + r, k, vec);
        break;
      case Method::ForwardPlane:
        break;  // unreachable (constructor rejects)
    }
  }

  /// The compute phase: Eqn. (3) partial from the shared tile plus the
  /// back-history registers, then the Eqn. (5) queue updates and shifts.
  void compute(gpusim::BlockCtx& ctx, Work& work) const {
    const LaunchConfig& cfg = this->cfg_;
    const SmemTile t = this->tile();
    const int r = this->r_;
    const bool fn = ctx.functional();

    // Centre value in[i, j, k].
    smem_read_columns<T>(ctx, t, cfg, 0, 0, [&](int tid, int col, T v) {
      work.cur[idx(tid, col)] = v;
    });
    // The work arrays are indexed by the flattened (tid, col) position,
    // which walks the x-fastest axis contiguously — the SIMD-friendly
    // shape core/simd.hpp documents.  Register-queue slots for position i
    // live at state.vals[i * slots ..], so the nested tid/col loops below
    // flatten to single vectorizable passes.
    const std::size_t n = work.part.size();
    const auto slots = static_cast<std::size_t>(work.state.slots);
    if (fn) {
      const T c0 = this->c_[0];
      INPLANE_SIMD_LOOP
      for (std::size_t i = 0; i < n; ++i) {
        work.part[i] = c0 * work.cur[i];
      }
    }
    // In-plane neighbours at each distance m, plus the in[k-m] back term.
    for (int m = 1; m <= r; ++m) {
      if (fn) std::fill(work.nsum.begin(), work.nsum.end(), T{});
      auto add = [&](int tid, int col, T v) { work.nsum[idx(tid, col)] += v; };
      smem_read_columns<T>(ctx, t, cfg, -m, 0, add);
      smem_read_columns<T>(ctx, t, cfg, m, 0, add);
      smem_read_columns<T>(ctx, t, cfg, 0, -m, add);
      smem_read_columns<T>(ctx, t, cfg, 0, m, add);
      if (fn) {
        const T cm = this->c_[static_cast<std::size_t>(m)];
        const T* sv = work.state.vals.data();
        const std::size_t back = static_cast<std::size_t>(m) - 1;
        INPLANE_SIMD_LOOP
        for (std::size_t i = 0; i < n; ++i) {
          work.part[i] += cm * (work.nsum[i] + sv[i * slots + back]);
        }
      }
    }
    if (!fn) return;
    // Queue updates (Eqn. (5)), emission, and the register shifts of the
    // step 1-5 procedure in section III-C.  Positions are independent;
    // only the slot walk within one position is sequential.
    const auto ru = static_cast<std::size_t>(r);
    T* sv = work.state.vals.data();
    INPLANE_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
      T* s = sv + i * slots;
      const T cur = work.cur[i];
      for (std::size_t d = 0; d < ru; ++d) {
        s[ru + d] += this->c_[d + 1] * cur;
      }
      work.emit[i] = s[2 * ru - 1];
      for (std::size_t d = ru - 1; d >= 1; --d) {
        s[ru + d] = s[ru + d - 1];
      }
      s[ru] = work.part[i];
      for (std::size_t m = ru - 1; m >= 1; --m) {
        s[m] = s[m - 1];
      }
      s[0] = cur;
    }
  }

  Method method_;
};

}  // namespace

template <typename T>
std::unique_ptr<IStencilKernel<T>> make_inplane(Method method, StencilCoeffs coeffs,
                                                LaunchConfig config) {
  return std::make_unique<InPlaneKernel<T>>(method, std::move(coeffs), config);
}

template std::unique_ptr<IStencilKernel<float>> make_inplane<float>(Method,
                                                                    StencilCoeffs,
                                                                    LaunchConfig);
template std::unique_ptr<IStencilKernel<double>> make_inplane<double>(Method,
                                                                      StencilCoeffs,
                                                                      LaunchConfig);

}  // namespace inplane::kernels::detail
