// The forward-plane ("nvstencil") kernel — a faithful re-implementation of
// the 2.5-D blocking scheme of the NVIDIA SDK FDTD3d sample [25], the
// baseline of every experiment in the paper.
//
// Each thread keeps a 2r+1 deep register pipeline of its centre column
// (behind[r], current, infront[r]) and sweeps down z.  Per plane it loads
// exactly one new interior element (plane k+r, Fig. 5a) into the pipeline,
// writes `current` into the shared tile, and *separately* loads the four
// halo strips (and corners) of plane k from global memory — the Fig. 4
// pattern whose poorly coalesced left/right columns and extra per-thread
// load instructions motivate the in-plane method.

#include "core/simd.hpp"
#include "kernels/kernel_base.hpp"

namespace inplane::kernels::detail {

namespace {

template <typename T>
class ForwardPlaneKernel final : public KernelBase<T> {
 public:
  ForwardPlaneKernel(StencilCoeffs coeffs, LaunchConfig config)
      : KernelBase<T>(std::move(coeffs), config) {}

  [[nodiscard]] Method method() const override { return Method::ForwardPlane; }

  [[nodiscard]] int preferred_align_offset() const override { return 0; }

  void run_block(gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
                 int by) const override {
    Work work = make_work();
    prime(ctx, in, bx, by, work);
    const int nz = in.layout->nz();
    for (int k = 0; k < nz; ++k) {
      plane(ctx, in, out, bx, by, k, work);
    }
  }

  [[nodiscard]] gpusim::TraceStats trace_plane(
      const gpusim::DeviceSpec& device, const Extent3& extent) const override {
    Work work = make_work();
    return this->trace_one_plane(
        device, extent,
        [&](gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
            int by, int k) { plane(ctx, in, out, bx, by, k, work); });
  }

 private:
  /// Pipeline slot i holds in[i, j, k - r + i]; slot r is the centre.
  struct Work {
    ThreadState<T> state;
    std::vector<T> nsum;  ///< per-m x/y neighbour sum per (tid, column)
    std::vector<T> acc;   ///< output accumulator per (tid, column)
  };

  [[nodiscard]] Work make_work() const {
    const auto n = static_cast<std::size_t>(this->cfg_.threads()) *
                   static_cast<std::size_t>(this->cfg_.columns_per_thread());
    return Work{ThreadState<T>(this->cfg_.threads(), this->cfg_.columns_per_thread(),
                               2 * this->r_ + 1),
                std::vector<T>(n), std::vector<T>(n)};
  }

  [[nodiscard]] std::size_t idx(int tid, int col) const {
    return static_cast<std::size_t>(tid) *
               static_cast<std::size_t>(this->cfg_.columns_per_thread()) +
           static_cast<std::size_t>(col);
  }

  /// Pre-loads pipeline slots 1..2r with planes -r .. r-1, so the first
  /// sweep step's shift-and-load leaves slot i = in[k - r + i] for k = 0.
  void prime(gpusim::BlockCtx& ctx, const GridAccess& in, int bx, int by,
             Work& work) const {
    const LaunchConfig& cfg = this->cfg_;
    const int x0 = bx * cfg.tile_w();
    const int y0 = by * cfg.tile_h();
    work.state.reset();
    for (int i = 1; i <= 2 * this->r_; ++i) {
      const int z = -this->r_ + (i - 1);
      load_columns_to_state<T>(ctx, in, cfg, x0, y0, z, [&](int tid, int col) -> T& {
        return work.state.at(tid, col, i);
      });
    }
  }

  void plane(gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out, int bx,
             int by, int k, Work& work) const {
    const LaunchConfig& cfg = this->cfg_;
    const SmemTile t = this->tile();
    const int r = this->r_;
    const int w = cfg.tile_w();
    const int h = cfg.tile_h();
    const int x0 = bx * cfg.tile_w();
    const int y0 = by * cfg.tile_h();
    const int cols = cfg.columns_per_thread();
    const int threads = cfg.threads();
    const bool fn = ctx.functional();

    // The work arrays flatten (tid, col) into one contiguous x-fastest
    // index; pipeline slots for position i live at state.vals[i * slots ..]
    // (see core/simd.hpp for the vectorization contract).
    const std::size_t n = work.acc.size();
    const auto slots = static_cast<std::size_t>(work.state.slots);
    const auto ru = static_cast<std::size_t>(r);

    // Advance the register pipeline and stream in plane k + r (Fig. 5a).
    if (fn) {
      T* sv = work.state.vals.data();
      INPLANE_SIMD_LOOP
      for (std::size_t i = 0; i < n; ++i) {
        T* s = sv + i * slots;
        for (std::size_t j = 0; j < 2 * ru; ++j) s[j] = s[j + 1];
      }
    }
    load_columns_to_state<T>(ctx, in, cfg, x0, y0, k + r, [&](int tid, int col) -> T& {
      return work.state.at(tid, col, 2 * r);
    });

    // Stage plane k: interior from the pipeline's centre register, halo
    // strips and corners re-loaded from global memory (the Fig. 4 pattern).
    smem_write_columns<T>(ctx, t, cfg, [&](int tid, int col) {
      return work.state.at(tid, col, r);
    });
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 - r, y0, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0, x0 + w, y0 + h, y0 + h + r, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0, y0 + h, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0, y0 + h, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 - r, y0, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 - r, y0, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 - r, x0, y0 + h, y0 + h + r, k, 1);
    load_rows_to_tile<T>(ctx, in, t, x0, y0, x0 + w, x0 + w + r, y0 + h, y0 + h + r, k,
                         1);
    ctx.sync();

    // Full stencil (Eqn. (2)): x/y neighbours from the tile, z neighbours
    // from the register pipeline.
    if (fn) {
      const T c0 = this->c_[0];
      const T* sv = work.state.vals.data();
      INPLANE_SIMD_LOOP
      for (std::size_t i = 0; i < n; ++i) {
        work.acc[i] = c0 * sv[i * slots + ru];
      }
    }
    for (int m = 1; m <= r; ++m) {
      if (fn) std::fill(work.nsum.begin(), work.nsum.end(), T{});
      auto add = [&](int tid, int col, T v) { work.nsum[idx(tid, col)] += v; };
      smem_read_columns<T>(ctx, t, cfg, -m, 0, add);
      smem_read_columns<T>(ctx, t, cfg, m, 0, add);
      smem_read_columns<T>(ctx, t, cfg, 0, -m, add);
      smem_read_columns<T>(ctx, t, cfg, 0, m, add);
      if (fn) {
        const T cm = this->c_[static_cast<std::size_t>(m)];
        const T* sv = work.state.vals.data();
        const auto mu = static_cast<std::size_t>(m);
        INPLANE_SIMD_LOOP
        for (std::size_t i = 0; i < n; ++i) {
          work.acc[i] += cm * (work.nsum[i] + sv[i * slots + (ru - mu)] +
                               sv[i * slots + (ru + mu)]);
        }
      }
    }
    store_columns<T>(ctx, out, cfg, x0, y0, k, [&](int tid, int col) {
      return work.acc[idx(tid, col)];
    });
    ctx.sync();

    // Per element: 1 MUL + r x (5 ADD + 1 FMA) = 6r+1 warp instructions;
    // 7r+1 flops (Table I).
    const auto warps = static_cast<std::uint64_t>(cfg.warps(ctx.device()));
    const auto colsu = static_cast<std::uint64_t>(cols);
    const auto threadsu = static_cast<std::uint64_t>(threads);
    const auto r64 = static_cast<std::uint64_t>(r);
    ctx.record_compute(warps * colsu * (6 * r64 + 1), threadsu * colsu * (7 * r64 + 1));
  }
};

}  // namespace

template <typename T>
std::unique_ptr<IStencilKernel<T>> make_forward_plane(StencilCoeffs coeffs,
                                                      LaunchConfig config) {
  return std::make_unique<ForwardPlaneKernel<T>>(std::move(coeffs), config);
}

template std::unique_ptr<IStencilKernel<float>> make_forward_plane<float>(StencilCoeffs,
                                                                          LaunchConfig);
template std::unique_ptr<IStencilKernel<double>> make_forward_plane<double>(
    StencilCoeffs, LaunchConfig);

}  // namespace inplane::kernels::detail
