#pragma once

// The "predicted" half of the ABFT layer (gpusim/abft.hpp holds the
// "actual" half): because the stencil update is linear, each (block,
// output-plane) checksum pair the sink accumulates can be predicted from
// the *input* grid and the coefficients alone —
//
//   S_out(tile, k) = c0 * S(tile, k)
//                  + sum_m cm * [ S(tile<<m x, k) + S(tile>>m x, k)
//                              + S(tile<<m y, k) + S(tile>>m y, k)
//                              + S(tile, k-m)    + S(tile, k+m) ]
//
// and the weighted sum W follows the same algebra with the shift
// identities q(i±m, j) = q(i, j) ± m and q(i, j±m) = q(i, j) ± m*pitch_x,
// so each x/y-shift term is W(shifted tile) ∓ m*S or ∓ m*pitch_x*S.
// Shifted-tile sums are assembled from per-column / per-row partial sums
// in O(tile area) per plane — no stencil re-execution, no CPU reference
// pass.  All prediction runs in double precision; the detection tolerance
// scales with the accumulated |input| mass so honest float rounding never
// trips it (see docs/robustness.md, "Silent data corruption").
//
// On a mismatch the corruption is *contained*: faults are injected into
// loads only, and each block writes its own disjoint output tile, so a
// flagged (block, plane) cell implicates exactly one block.  repair()
// re-executes just the flagged blocks cleanly into a scratch grid and
// splices their tiles back — the same run_block code path, so the
// repaired output is bit-identical to a fault-free run.

#include <cstdint>
#include <vector>

#include "core/grid3.hpp"
#include "core/mem_budget.hpp"
#include "gpusim/abft.hpp"
#include "gpusim/device.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::kernels {

/// Knobs for the online checksum check.
struct AbftOptions {
  bool enabled = false;
  /// Detection tolerance: |actual - predicted| must exceed
  /// tolerance_scale * eps_T * (coefficient L1 mass) * sum|input| over the
  /// contributing window before a plane is flagged.  Large enough that
  /// reassociated float rounding never false-positives, tiny against any
  /// exponent-bit flip.
  double tolerance_scale = 256.0;
  /// Near-zero floor below which checksum deltas are never flagged.
  double abs_floor = 1e-9;
};

/// One flagged (block, plane) checksum mismatch.
struct SdcEvent {
  int block = 0;   ///< serial block index
  int plane = 0;   ///< interior output plane k
  double delta0 = 0.0;  ///< |actual - predicted| of the plain sum
  double delta1 = 0.0;  ///< |actual - predicted| of the weighted sum
  double tol0 = 0.0;
  double tol1 = 0.0;
  bool repaired = false;
};

/// Per-run ABFT outcome carried in the RunReport.
struct AbftSummary {
  bool enabled = false;
  std::uint64_t planes_checked = 0;
  std::uint64_t planes_flagged = 0;
  int blocks_repaired = 0;
  int repairs_failed = 0;  ///< fell back to the full-retry path
  std::vector<SdcEvent> events;
};

/// Predicts, compares and surgically repairs one launch's checksums.
/// Constructed once per guarded run from the pristine input grid; the
/// prediction is reused across retry attempts.
template <typename T>
class AbftChecker {
 public:
  AbftChecker(const IStencilKernel<T>& kernel, const Grid3<T>& in,
              const AbftOptions& options);

  [[nodiscard]] std::size_t nblocks() const { return pred_.size(); }
  /// (block, plane) cells checked per sweep.
  [[nodiscard]] std::uint64_t planes_per_sweep() const {
    return static_cast<std::uint64_t>(pred_.size()) *
           static_cast<std::uint64_t>(in_.nz());
  }

  /// Compares the sink's accumulated checksums against the prediction and
  /// returns every flagged (block, plane) cell.
  [[nodiscard]] std::vector<SdcEvent> compare(const gpusim::AbftSink& sink) const;

  /// Re-executes every block named in @p events with a clean context into
  /// a scratch grid, splices the recomputed tiles into @p out, and
  /// re-checks the repaired tiles by direct summation.  The scratch
  /// allocation is gated by @p budget (nullptr = unlimited); a denial or
  /// a still-failing re-check returns false, telling the caller to fall
  /// back to the full-retry path.  On success the flagged events are
  /// marked repaired and @p out is bit-identical to a fault-free run.
  [[nodiscard]] bool repair(std::vector<SdcEvent>& events, Grid3<T>& out,
                            const gpusim::DeviceSpec& device,
                            MemBudget* budget) const;

 private:
  struct PredPlane {
    double s0 = 0.0;
    double s1 = 0.0;
    double tol0 = 0.0;
    double tol1 = 0.0;
  };

  void predict();
  [[nodiscard]] bool recheck_block(const Grid3<T>& out, int block) const;

  const IStencilKernel<T>& kernel_;
  const Grid3<T>& in_;
  AbftOptions options_;
  int nbx_ = 0;
  int nby_ = 0;
  std::vector<std::vector<PredPlane>> pred_;  ///< [block][plane]
};

extern template class AbftChecker<float>;
extern template class AbftChecker<double>;

}  // namespace inplane::kernels
