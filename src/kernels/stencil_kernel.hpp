#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/coefficients.hpp"
#include "core/grid_layout.hpp"
#include "gpusim/block_ctx.hpp"
#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/resources.hpp"

namespace inplane::kernels {

/// A grid as a simulated kernel sees it: geometry plus a virtual base
/// address in GlobalMemory.  The kernel computes byte addresses from the
/// layout — identically in functional and trace modes, which is what makes
/// the traced coalescing trustworthy.
struct GridAccess {
  const GridLayout* layout = nullptr;
  std::uint64_t base = 0;

  [[nodiscard]] std::uint64_t vaddr(int i, int j, int k) const {
    return base + layout->byte_offset(i, j, k);
  }
};

/// Abstract simulated stencil kernel (one loading method, one coefficient
/// set, one launch configuration), precision T in {float, double}.
template <typename T>
class IStencilKernel {
 public:
  virtual ~IStencilKernel() = default;

  [[nodiscard]] virtual Method method() const = 0;
  [[nodiscard]] virtual const LaunchConfig& config() const = 0;
  [[nodiscard]] virtual const StencilCoeffs& coeffs() const = 0;
  [[nodiscard]] virtual int radius() const = 0;

  /// Timesteps one z-sweep advances the grid by (the temporal-blocking
  /// degree): 1 for the paper's kernels, config().tb for the temporal
  /// kernel.  A degree-N sweep equals N applications of the reference
  /// stencil with the halo frozen between steps.
  [[nodiscard]] virtual int time_steps() const { return 1; }

  /// Halo depth the grids handed to run_block must carry: radius() for
  /// single-step kernels, time_steps() * radius() for temporal blocking
  /// (the pipeline streams that far into the z halo).
  [[nodiscard]] virtual int required_halo() const { return radius(); }

  [[nodiscard]] std::string name() const { return to_string(method()); }

  /// Grid align_offset this kernel's loading pattern wants (section
  /// III-C2): r for horizontal / full-slice (vectorised rows start at
  /// x = -r), 0 otherwise.
  [[nodiscard]] virtual int preferred_align_offset() const = 0;

  /// Estimated per-block K_R / K_S / threads.
  [[nodiscard]] virtual gpusim::KernelResources resources() const = 0;

  /// Checks the configuration against a device and grid extent; returns an
  /// explanation if the kernel cannot run (tile does not divide the grid,
  /// block over device limits, ...).
  [[nodiscard]] virtual std::optional<std::string> validate(
      const gpusim::DeviceSpec& device, const Extent3& extent) const = 0;

  /// Executes one thread block's full z-sweep.  @p bx, @p by index the
  /// block in the plane decomposition.  In functional modes this moves
  /// real data via ctx/gmem; in trace mode it only records events.
  virtual void run_block(gpusim::BlockCtx& ctx, const GridAccess& in, GridAccess& out,
                         int bx, int by) const = 0;

  /// Executes one *steady-state z-plane* of one interior block, in trace
  /// mode, and returns its event counts.  This is the per-plane trace the
  /// timing model consumes; it must issue exactly the same instruction
  /// pattern as one plane iteration of run_block.
  [[nodiscard]] virtual gpusim::TraceStats trace_plane(
      const gpusim::DeviceSpec& device, const Extent3& extent) const = 0;
};

/// Creates a kernel of the given method.  Throws std::invalid_argument for
/// nonsensical parameters (radius < 1, non-positive blocking factors, vec
/// not in {1,2,4}, vec * sizeof(T) > 16).
template <typename T>
[[nodiscard]] std::unique_ptr<IStencilKernel<T>> make_kernel(Method method,
                                                             StencilCoeffs coeffs,
                                                             LaunchConfig config);

extern template std::unique_ptr<IStencilKernel<float>> make_kernel<float>(
    Method, StencilCoeffs, LaunchConfig);
extern template std::unique_ptr<IStencilKernel<double>> make_kernel<double>(
    Method, StencilCoeffs, LaunchConfig);

}  // namespace inplane::kernels
