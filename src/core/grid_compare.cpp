#include "core/grid_compare.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace inplane {

template <typename T>
GridDiff compare_grids(const Grid3<T>& a, const Grid3<T>& b) {
  if (a.extent() != b.extent()) {
    throw std::invalid_argument("compare_grids: grids must share extent");
  }
  GridDiff diff;
  for (int k = 0; k < a.nz(); ++k) {
    for (int j = 0; j < a.ny(); ++j) {
      for (int i = 0; i < a.nx(); ++i) {
        const double va = static_cast<double>(a.at(i, j, k));
        const double vb = static_cast<double>(b.at(i, j, k));
        const double abs_d = std::abs(va - vb);
        const double rel_d = abs_d / std::max({std::abs(va), std::abs(vb), 1.0});
        if (abs_d > diff.max_abs) {
          diff.max_abs = abs_d;
          diff.worst_i = i;
          diff.worst_j = j;
          diff.worst_k = k;
        }
        diff.max_rel = std::max(diff.max_rel, rel_d);
      }
    }
  }
  return diff;
}

template <typename T>
bool grids_allclose(const Grid3<T>& a, const Grid3<T>& b, double abs_tol,
                    double rel_tol) {
  const GridDiff diff = compare_grids(a, b);
  return diff.max_abs <= abs_tol || diff.max_rel <= rel_tol;
}

template GridDiff compare_grids<float>(const Grid3<float>&, const Grid3<float>&);
template GridDiff compare_grids<double>(const Grid3<double>&, const Grid3<double>&);
template bool grids_allclose<float>(const Grid3<float>&, const Grid3<float>&, double,
                                    double);
template bool grids_allclose<double>(const Grid3<double>&, const Grid3<double>&, double,
                                     double);

}  // namespace inplane
