#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/grid_layout.hpp"

namespace inplane {

/// A 3-D scalar field with halo cells and alignment padding, laid out the
/// way a CUDA grid would be: x fastest, then y, then z.
///
/// Grid3 = GridLayout (geometry) + owned storage.  Logical coordinates
/// (i, j, k) address interior points for 0 <= i < nx (and likewise y, z);
/// negative indices down to -halo and indices up to nx-1+halo address halo
/// cells.  See GridLayout for the alignment guarantees the simulated
/// kernels rely on; the padding mirrors the "array padding" optimisation
/// standard for GPU stencils (Datta et al. [11]).
template <typename T>
class Grid3 {
 public:
  /// Creates a zero-initialised grid.  See GridLayout for parameter
  /// semantics; kernels of radius r require halo >= r.
  Grid3(Extent3 extent, int halo, std::size_t align_elems = 32, int align_offset = 0)
      : layout_(extent, halo, sizeof(T), align_elems, align_offset),
        data_(layout_.allocated(), T{}) {}

  explicit Grid3(const GridLayout& layout)
      : layout_(layout), data_(layout.allocated(), T{}) {
    if (layout.elem_size() != sizeof(T)) {
      throw std::invalid_argument("Grid3: layout elem_size does not match T");
    }
  }

  [[nodiscard]] const GridLayout& layout() const { return layout_; }
  [[nodiscard]] const Extent3& extent() const { return layout_.extent(); }
  [[nodiscard]] int nx() const { return layout_.nx(); }
  [[nodiscard]] int ny() const { return layout_.ny(); }
  [[nodiscard]] int nz() const { return layout_.nz(); }
  [[nodiscard]] int halo() const { return layout_.halo(); }
  [[nodiscard]] std::size_t alignment() const { return layout_.alignment(); }
  [[nodiscard]] int align_offset() const { return layout_.align_offset(); }
  [[nodiscard]] std::size_t pitch_x() const { return layout_.pitch_x(); }
  [[nodiscard]] std::size_t plane_stride() const { return layout_.plane_stride(); }
  [[nodiscard]] std::size_t allocated() const { return data_.size(); }

  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    return layout_.index(i, j, k);
  }
  [[nodiscard]] std::uint64_t byte_offset(int i, int j, int k) const {
    return layout_.byte_offset(i, j, k);
  }
  [[nodiscard]] bool is_interior(int i, int j, int k) const {
    return layout_.is_interior(i, j, k);
  }

  [[nodiscard]] T& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  [[nodiscard]] const T& at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  [[nodiscard]] std::span<T> data() { return data_; }
  [[nodiscard]] std::span<const T> data() const { return data_; }
  [[nodiscard]] T* raw() { return data_.data(); }
  [[nodiscard]] const T* raw() const { return data_.data(); }

  /// Storage viewed as raw bytes (for mapping into simulated global memory).
  [[nodiscard]] std::span<std::byte> bytes() {
    return {reinterpret_cast<std::byte*>(data_.data()), data_.size() * sizeof(T)};
  }

  /// Sets every allocated element (interior, halo, and padding) to @p value.
  void fill(T value) { data_.assign(data_.size(), value); }

  /// Sets interior elements from a function of the logical coordinates.
  template <typename Fn>
  void fill_interior(Fn&& fn) {
    for (int k = 0; k < nz(); ++k)
      for (int j = 0; j < ny(); ++j)
        for (int i = 0; i < nx(); ++i) at(i, j, k) = fn(i, j, k);
  }

  /// Sets every cell — interior *and* halo — from a function of the
  /// logical coordinates (halo coordinates are negative / beyond extent).
  template <typename Fn>
  void fill_with_halo(Fn&& fn) {
    const int h = halo();
    for (int k = -h; k < nz() + h; ++k)
      for (int j = -h; j < ny() + h; ++j)
        for (int i = -h; i < nx() + h; ++i) at(i, j, k) = fn(i, j, k);
  }

  /// Deterministic pseudo-random interior values in [lo, hi]; halos get 0.
  static Grid3 random(Extent3 extent, int halo, std::uint64_t seed, T lo = T{0},
                      T hi = T{1}) {
    Grid3 g(extent, halo);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(static_cast<double>(lo),
                                                static_cast<double>(hi));
    g.fill_interior([&](int, int, int) { return static_cast<T>(dist(rng)); });
    return g;
  }

 private:
  GridLayout layout_;
  std::vector<T> data_;
};

}  // namespace inplane
