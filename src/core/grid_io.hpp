#pragma once

#include <string>

#include "core/grid3.hpp"

namespace inplane {

/// Binary grid persistence: a small self-describing format (magic, element
/// size, extent, halo, alignment parameters, then the raw padded storage).
/// Round-trips bit-exactly, so simulation checkpoints and test fixtures
/// survive on disk.
///
/// Format (little-endian, 64-bit fields after the magic):
///   "IPG1" | elem_size | nx ny nz | halo | align | align_offset | data...
template <typename T>
void save_grid(const Grid3<T>& grid, const std::string& path);

/// Loads a grid saved by save_grid.  Throws std::runtime_error on I/O
/// failure, format mismatch, or element-size mismatch with T.
template <typename T>
[[nodiscard]] Grid3<T> load_grid(const std::string& path);

/// Writes the interior of one z-plane as CSV (rows = y, columns = x) —
/// handy for inspecting simulation output with external tools.
template <typename T>
void export_plane_csv(const Grid3<T>& grid, int k, const std::string& path);

extern template void save_grid<float>(const Grid3<float>&, const std::string&);
extern template void save_grid<double>(const Grid3<double>&, const std::string&);
extern template Grid3<float> load_grid<float>(const std::string&);
extern template Grid3<double> load_grid<double>(const std::string&);
extern template void export_plane_csv<float>(const Grid3<float>&, int,
                                             const std::string&);
extern template void export_plane_csv<double>(const Grid3<double>&, int,
                                              const std::string&);

}  // namespace inplane
