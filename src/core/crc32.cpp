#include "core/crc32.hpp"

#include <array>

namespace inplane {

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

}  // namespace inplane
