#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace inplane {

/// The failure taxonomy of the fault-tolerant execution layer.  Every
/// error the simulator, runner or tuner can produce is classified into
/// one of these codes so callers can tell a *retryable* fault (a
/// transient load failure, a corrupted measurement) from a *fatal* one
/// (an invalid configuration, a lost device) without string-matching
/// exception messages.
enum class ErrorCode {
  Ok = 0,
  InvalidConfig,   ///< configuration/argument can never work — do not retry
  TransientFault,  ///< one-off execution fault — retry is expected to succeed
  Timeout,         ///< watchdog deadline exceeded (hung kernel) — fatal
  DataCorruption,  ///< output failed verification (bit flip, stale load)
  DeviceLost,      ///< simulated device died — work must move elsewhere
  IoError,         ///< filesystem failure (open/short read/torn write)
  Internal,        ///< unclassified failure (foreign exception)
  // New codes append here: the integer values are persisted in checkpoint
  // journals and must stay stable.
  ResourceExhausted,  ///< deadline/cancellation/budget — stop, do not retry
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// An error code plus human-readable context ("what were we doing").
struct Status {
  ErrorCode code = ErrorCode::Ok;
  std::string context;

  Status() = default;
  Status(ErrorCode c, std::string ctx) : code(c), context(std::move(ctx)) {}

  [[nodiscard]] bool ok() const { return code == ErrorCode::Ok; }

  /// True for faults where an identical retry has a real chance of
  /// succeeding: transient execution faults and corrupted results.
  /// Timeouts, invalid configurations, lost devices and I/O failures
  /// repeat deterministically and are fatal to the attempt.
  [[nodiscard]] bool retryable() const {
    return code == ErrorCode::TransientFault || code == ErrorCode::DataCorruption;
  }

  /// "transient_fault: candidate (64, 4, 2, 2) load failed" style rendering.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static Status okay() { return {}; }
};

/// A value or the Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return status_.ok() && value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_{};
  std::optional<T> value_{};
};

/// Mixin interface implemented by every typed exception below: lets a
/// `catch (const std::exception&)` site recover the Status via
/// status_of() regardless of the concrete type thrown.
class StatusCarrier {
 public:
  virtual ~StatusCarrier() = default;
  [[nodiscard]] virtual const Status& status() const = 0;
};

namespace detail {
/// CRTP-free helper: stores the Status and renders the what() string.
/// Each concrete error derives from the *standard* exception type that
/// call sites historically threw (std::invalid_argument for bad
/// configurations, std::runtime_error for I/O, ...), so existing
/// `catch`/EXPECT_THROW sites keep working while new callers get the
/// typed taxonomy.
template <typename Base>
class StatusErrorImpl : public Base, public StatusCarrier {
 public:
  StatusErrorImpl(ErrorCode code, const std::string& context)
      : Base(std::string(inplane::to_string(code)) + ": " + context),
        status_(code, context) {}

  [[nodiscard]] const Status& status() const override { return status_; }

 private:
  Status status_;
};
}  // namespace detail

/// A configuration or argument that can never work.
class InvalidConfigError : public detail::StatusErrorImpl<std::invalid_argument> {
 public:
  explicit InvalidConfigError(const std::string& context)
      : StatusErrorImpl(ErrorCode::InvalidConfig, context) {}
};

/// One-off execution fault (injected or real); retry may succeed.
class TransientFaultError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit TransientFaultError(const std::string& context)
      : StatusErrorImpl(ErrorCode::TransientFault, context) {}
};

/// Watchdog deadline exceeded — the simulated kernel hung.
class TimeoutError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit TimeoutError(const std::string& context)
      : StatusErrorImpl(ErrorCode::Timeout, context) {}
};

/// Output failed verification against the reference.
class DataCorruptionError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit DataCorruptionError(const std::string& context)
      : StatusErrorImpl(ErrorCode::DataCorruption, context) {}
};

/// The simulated device is gone; its work must be re-sharded.
class DeviceLostError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit DeviceLostError(const std::string& context)
      : StatusErrorImpl(ErrorCode::DeviceLost, context) {}
};

/// Filesystem failure: cannot open, short read, torn write.  Carries the
/// byte offset where the failure was detected when known (-1 otherwise).
class IoError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit IoError(const std::string& context, long long byte_offset = -1)
      : StatusErrorImpl(ErrorCode::IoError,
                        byte_offset < 0 ? context
                                        : context + " (at byte offset " +
                                              std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  [[nodiscard]] long long byte_offset() const { return byte_offset_; }

 private:
  long long byte_offset_;
};

/// A wild memory access (unmapped address / out-of-bounds offset) — the
/// kernel bug the CPU verification of section IV-B exists to catch.
/// Derives std::out_of_range like the untyped throws it replaces.
class WildAccessError : public detail::StatusErrorImpl<std::out_of_range> {
 public:
  explicit WildAccessError(const std::string& context)
      : StatusErrorImpl(ErrorCode::DataCorruption, context) {}
};

/// A functional write through a read-only mapping.  Derives
/// std::logic_error like the untyped throw it replaces.
class ReadOnlyViolationError : public detail::StatusErrorImpl<std::logic_error> {
 public:
  explicit ReadOnlyViolationError(const std::string& context)
      : StatusErrorImpl(ErrorCode::DataCorruption, context) {}
};

/// Unclassified failure (used by raise() for Internal statuses).
class InternalError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit InternalError(const std::string& context)
      : StatusErrorImpl(ErrorCode::Internal, context) {}
};

/// A governed resource ran out: a deadline passed, a CancelToken fired,
/// or a hard budget was exhausted.  Deliberately not retryable — the
/// resource does not come back by re-running the same work.
class ResourceExhaustedError : public detail::StatusErrorImpl<std::runtime_error> {
 public:
  explicit ResourceExhaustedError(const std::string& context)
      : StatusErrorImpl(ErrorCode::ResourceExhausted, context) {}
};

/// Recovers the Status carried by @p e, or wraps a foreign exception as
/// ErrorCode::Internal with its what() string as context.
[[nodiscard]] Status status_of(const std::exception& e);

/// Throws the typed exception matching @p status.code (Ok/Internal map to
/// std::runtime_error-backed Internal).  The inverse of status_of().
[[noreturn]] void raise(const Status& status);

/// The one process exit code mapping shared by `inplane`, the examples and
/// the tests: 0 ok, 2 invalid_config, 3 execution fault (transient /
/// timeout / data_corruption / device_lost), 4 io_error, 5 deadline or
/// budget exhaustion, 1 anything else.
[[nodiscard]] int exit_code(const Status& status);

}  // namespace inplane
