#include "core/grid_io.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/status.hpp"

namespace inplane {

namespace {

constexpr std::array<char, 4> kMagic = {'I', 'P', 'G', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Reads one header field, advancing @p offset; a short read reports the
/// exact byte offset where the file ran out.
std::uint64_t read_u64(std::istream& in, const std::string& path,
                       std::uint64_t& offset) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) {
    throw IoError("load_grid: truncated header in " + path,
                  static_cast<long long>(offset) + in.gcount());
  }
  offset += sizeof v;
  return v;
}

}  // namespace

template <typename T>
void save_grid(const Grid3<T>& grid, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  if (!out) throw IoError("save_grid: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  write_u64(out, sizeof(T));
  write_u64(out, static_cast<std::uint64_t>(grid.nx()));
  write_u64(out, static_cast<std::uint64_t>(grid.ny()));
  write_u64(out, static_cast<std::uint64_t>(grid.nz()));
  write_u64(out, static_cast<std::uint64_t>(grid.halo()));
  write_u64(out, grid.alignment());
  write_u64(out, static_cast<std::uint64_t>(grid.align_offset()));
  out.write(reinterpret_cast<const char*>(grid.raw()),
            static_cast<std::streamsize>(grid.allocated() * sizeof(T)));
  if (!out) throw IoError("save_grid: write failed for " + path);
}

template <typename T>
Grid3<T> load_grid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("load_grid: cannot open " + path);
  std::uint64_t offset = 0;
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw IoError("load_grid: not an IPG1 grid file: " + path,
                  in ? 0 : static_cast<long long>(in.gcount()));
  }
  offset += magic.size();
  const std::uint64_t elem = read_u64(in, path, offset);
  if (elem != sizeof(T)) {
    throw IoError("load_grid: element size mismatch in " + path + " (file has " +
                  std::to_string(elem) + "-byte elements, expected " +
                  std::to_string(sizeof(T)) + ")");
  }
  const auto nx = static_cast<int>(read_u64(in, path, offset));
  const auto ny = static_cast<int>(read_u64(in, path, offset));
  const auto nz = static_cast<int>(read_u64(in, path, offset));
  const auto halo = static_cast<int>(read_u64(in, path, offset));
  const auto align = read_u64(in, path, offset);
  const auto align_offset = static_cast<int>(read_u64(in, path, offset));
  Grid3<T> grid({nx, ny, nz}, halo, align, align_offset);
  const std::streamsize want =
      static_cast<std::streamsize>(grid.allocated() * sizeof(T));
  in.read(reinterpret_cast<char*>(grid.raw()), want);
  if (!in || in.gcount() != want) {
    // Short read: the reported offset is exactly where the data stopped.
    throw IoError("load_grid: truncated data in " + path + " (wanted " +
                      std::to_string(want) + " payload bytes, got " +
                      std::to_string(in.gcount()) + ")",
                  static_cast<long long>(offset) + in.gcount());
  }
  return grid;
}

template <typename T>
void export_plane_csv(const Grid3<T>& grid, int k, const std::string& path) {
  if (k < 0 || k >= grid.nz()) {
    throw InvalidConfigError("export_plane_csv: plane index out of range");
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw IoError("export_plane_csv: cannot open " + path);
  for (int j = 0; j < grid.ny(); ++j) {
    for (int i = 0; i < grid.nx(); ++i) {
      if (i != 0) out << ',';
      out << grid.at(i, j, k);
    }
    out << '\n';
  }
}

template void save_grid<float>(const Grid3<float>&, const std::string&);
template void save_grid<double>(const Grid3<double>&, const std::string&);
template Grid3<float> load_grid<float>(const std::string&);
template Grid3<double> load_grid<double>(const std::string&);
template void export_plane_csv<float>(const Grid3<float>&, int, const std::string&);
template void export_plane_csv<double>(const Grid3<double>&, int, const std::string&);

}  // namespace inplane
