#include "core/grid_io.hpp"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace inplane {

namespace {

constexpr std::array<char, 4> kMagic = {'I', 'P', 'G', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) throw std::runtime_error("grid_io: truncated file");
  return v;
}

}  // namespace

template <typename T>
void save_grid(const Grid3<T>& grid, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  if (!out) throw std::runtime_error("save_grid: cannot open " + path);
  out.write(kMagic.data(), kMagic.size());
  write_u64(out, sizeof(T));
  write_u64(out, static_cast<std::uint64_t>(grid.nx()));
  write_u64(out, static_cast<std::uint64_t>(grid.ny()));
  write_u64(out, static_cast<std::uint64_t>(grid.nz()));
  write_u64(out, static_cast<std::uint64_t>(grid.halo()));
  write_u64(out, grid.alignment());
  write_u64(out, static_cast<std::uint64_t>(grid.align_offset()));
  out.write(reinterpret_cast<const char*>(grid.raw()),
            static_cast<std::streamsize>(grid.allocated() * sizeof(T)));
  if (!out) throw std::runtime_error("save_grid: write failed for " + path);
}

template <typename T>
Grid3<T> load_grid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_grid: cannot open " + path);
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_grid: not an IPG1 grid file: " + path);
  }
  const std::uint64_t elem = read_u64(in);
  if (elem != sizeof(T)) {
    throw std::runtime_error("load_grid: element size mismatch in " + path);
  }
  const auto nx = static_cast<int>(read_u64(in));
  const auto ny = static_cast<int>(read_u64(in));
  const auto nz = static_cast<int>(read_u64(in));
  const auto halo = static_cast<int>(read_u64(in));
  const auto align = read_u64(in);
  const auto align_offset = static_cast<int>(read_u64(in));
  Grid3<T> grid({nx, ny, nz}, halo, align, align_offset);
  in.read(reinterpret_cast<char*>(grid.raw()),
          static_cast<std::streamsize>(grid.allocated() * sizeof(T)));
  if (!in) throw std::runtime_error("load_grid: truncated data in " + path);
  return grid;
}

template <typename T>
void export_plane_csv(const Grid3<T>& grid, int k, const std::string& path) {
  if (k < 0 || k >= grid.nz()) {
    throw std::invalid_argument("export_plane_csv: plane index out of range");
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw std::runtime_error("export_plane_csv: cannot open " + path);
  for (int j = 0; j < grid.ny(); ++j) {
    for (int i = 0; i < grid.nx(); ++i) {
      if (i != 0) out << ',';
      out << grid.at(i, j, k);
    }
    out << '\n';
  }
}

template void save_grid<float>(const Grid3<float>&, const std::string&);
template void save_grid<double>(const Grid3<double>&, const std::string&);
template Grid3<float> load_grid<float>(const std::string&);
template Grid3<double> load_grid<double>(const std::string&);
template void export_plane_csv<float>(const Grid3<float>&, int, const std::string&);
template void export_plane_csv<double>(const Grid3<double>&, int, const std::string&);

}  // namespace inplane
