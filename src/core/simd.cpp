#include "core/simd.hpp"

namespace inplane {

bool simd_enabled() {
#if defined(INPLANE_SIMD)
  return true;
#else
  return false;
#endif
}

}  // namespace inplane
