#include "core/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "core/cancel.hpp"
#include "metrics/metrics.hpp"

namespace inplane {

namespace {

/// Pool instruments (scope "core.pool"), cached once.  Counters are
/// relaxed atomics; when collection is disabled each call is one
/// never-taken branch, which is what keeps the pool's hot loop free.
struct PoolMetrics {
  metrics::Counter& submitted;
  metrics::Counter& executed;
  metrics::Counter& steals;
  metrics::Counter& idle_ns;
  metrics::Counter& for_each_calls;
  metrics::Counter& for_each_items;

  static PoolMetrics& get() {
    static PoolMetrics m{
        metrics::Registry::global().counter("core.pool.tasks_submitted"),
        metrics::Registry::global().counter("core.pool.tasks_executed"),
        metrics::Registry::global().counter("core.pool.steals"),
        metrics::Registry::global().counter("core.pool.idle_ns"),
        metrics::Registry::global().counter("core.pool.for_each_calls"),
        metrics::Registry::global().counter("core.pool.for_each_items"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1u : hw;
  }
  deques_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;  // intentionally leaked-at-exit via static storage
  return pool;
}

namespace {
/// Index of the current thread inside its pool's deque array, or -1 when
/// the thread is not a pool worker.  One pool's workers never execute
/// inside another pool, so a single slot suffices.
thread_local std::ptrdiff_t tls_worker_index = -1;
}  // namespace

void ThreadPool::submit(std::function<void()> task) {
  std::size_t victim;
  if (tls_worker_index >= 0 &&
      static_cast<std::size_t>(tls_worker_index) < deques_.size()) {
    victim = static_cast<std::size_t>(tls_worker_index);
  } else {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    victim = next_victim_;
    next_victim_ = (next_victim_ + 1) % deques_.size();
  }
  {
    std::lock_guard<std::mutex> lock(deques_[victim]->mutex);
    deques_[victim]->tasks.push_back(std::move(task));
  }
  {
    // The increment must happen under sleep_mutex_ so a worker that just
    // evaluated its wait predicate cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  sleep_cv_.notify_one();
  PoolMetrics::get().submitted.add();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task (LIFO: it is the hottest in cache)...
  {
    Deque& own = *deques_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal the oldest task from someone else (FIFO: steals take
  // the coldest work, the owner keeps its locality).
  const std::size_t n = deques_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Deque& other = *deques_[(self + k) % n];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.tasks.empty()) {
      out = std::move(other.tasks.front());
      other.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      PoolMetrics::get().steals.add();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker_index = static_cast<std::ptrdiff_t>(self);
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      PoolMetrics::get().executed.add();
      continue;
    }
    const bool timing_idle = metrics::enabled();
    const auto idle_start =
        timing_idle ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_) return;
    // pending_ only ever rises while sleep_mutex_ is held (see submit),
    // so a non-zero count cannot slip past this predicate unnoticed.  A
    // lost steal race merely causes one spurious loop iteration.
    sleep_cv_.wait(lock, [&] {
      return stop_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (timing_idle) {
      PoolMetrics::get().idle_ns.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_start)
              .count()));
    }
    if (stop_) return;
  }
}

namespace {

/// Shared state of one for_each call.  Participants (the caller plus any
/// helper tasks that get scheduled) claim items through an atomic cursor;
/// every claimed index bumps `completed` exactly once — after an error
/// the remaining claims drain without calling fn — so `completed == n`
/// is the single termination condition and implies no thread is still
/// inside fn.  Helpers that were queued but never scheduled find the
/// cursor exhausted and exit without touching fn, so completion never
/// depends on a pool worker becoming free — which is what makes nesting
/// for_each inside a task safe.
struct ForEachState {
  explicit ForEachState(std::size_t total) : n(total) {}
  const std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure (under mutex)

  void run_items(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::for_each(std::size_t n, unsigned max_concurrency,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  PoolMetrics::get().for_each_calls.add();
  PoolMetrics::get().for_each_items.add(n);
  if (max_concurrency <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForEachState>(n);
  const std::size_t helpers =
      std::min<std::size_t>({static_cast<std::size_t>(max_concurrency) - 1,
                             n - 1, worker_count()});
  for (std::size_t h = 0; h < helpers; ++h) {
    // Helpers keep the state (and their copy of fn) alive; one scheduled
    // after the caller has returned finds the cursor exhausted and is a
    // no-op.
    submit([state, fn] { state->run_items(fn); });
  }

  state->run_items(fn);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) == n;
  });
  if (state->error) std::rethrow_exception(state->error);
}

void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const unsigned conc = policy.concurrency();
  if (conc <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      check_cancelled(policy.cancel);
      fn(i);
    }
    return;
  }
  if (policy.cancel == nullptr) {
    ThreadPool::shared().for_each(n, conc, fn);
    return;
  }
  // Poll once per item; for_each rethrows the first raised error, so a
  // fired token surfaces as ResourceExhaustedError from the caller.
  const CancelToken* token = policy.cancel;
  ThreadPool::shared().for_each(n, conc, [&](std::size_t i) {
    check_cancelled(token);
    fn(i);
  });
}

}  // namespace inplane
