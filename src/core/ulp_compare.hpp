#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/grid3.hpp"

namespace inplane {

/// Maps a float onto the integer line so that adjacent representable
/// values differ by exactly 1 (lexicographic IEEE-754 ordering).
[[nodiscard]] inline std::uint64_t ulp_key(float x) {
  const auto bits = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t key =
      (bits & 0x8000'0000u) != 0 ? ~bits : bits | 0x8000'0000u;
  return key;
}

[[nodiscard]] inline std::uint64_t ulp_key(double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  return (bits & 0x8000'0000'0000'0000ull) != 0 ? ~bits
                                                : bits | 0x8000'0000'0000'0000ull;
}

/// ULP distance between two values of the same type: the number of
/// representable values strictly between them (0 = identical, and +0/-0
/// count as identical).  Any NaN is infinitely far from everything,
/// including another NaN — a NaN in a kernel output must never compare
/// "close".
template <typename T>
[[nodiscard]] std::uint64_t ulp_distance(T a, T b) {
  if (std::isnan(a) || std::isnan(b)) return ~0ull;
  if (a == b) return 0;  // covers +0 vs -0
  const std::uint64_t ka = ulp_key(a);
  const std::uint64_t kb = ulp_key(b);
  return ka > kb ? ka - kb : kb - ka;
}

/// The centralized comparison budget of the verification subsystem: a
/// value pair matches if it is within `max_ulps` representable values
/// (relative criterion, scale-free) OR within `abs_floor` absolutely
/// (near-zero criterion, where cancellation makes ULP distance
/// meaningless).  Budgets derive from the stencil order because the
/// simulated kernels reassociate the 6r+1-term sum of Eqn. (1) and the
/// in-plane method of Eqns. (3)-(5) carries r-deep partial-output queues:
/// rounding error grows with the term count, so one fixed epsilon is
/// either too loose for order 2 or too tight for order 12.
struct UlpBudget {
  std::uint64_t max_ulps = 4;
  double abs_floor = 0.0;

  /// Bitwise equality (modulo +0/-0).
  [[nodiscard]] static UlpBudget exact() { return {0, 0.0}; }

  [[nodiscard]] static UlpBudget for_order(int order, std::size_t elem_size) {
    const auto o = static_cast<std::uint64_t>(order < 2 ? 2 : order);
    if (elem_size == 8) {
      return {512 * o, 1e-12 * static_cast<double>(o)};
    }
    return {1024 * o, 5e-5 * static_cast<double>(o)};
  }

  [[nodiscard]] static UlpBudget for_radius(int radius, std::size_t elem_size) {
    return for_order(2 * radius, elem_size);
  }

  /// Widens the budget for accumulated error, e.g. over @p factor Jacobi
  /// timesteps or the extra cancellation of a metamorphic sum.
  [[nodiscard]] UlpBudget scaled(double factor) const {
    UlpBudget b = *this;
    b.max_ulps = static_cast<std::uint64_t>(static_cast<double>(max_ulps) * factor);
    b.abs_floor = abs_floor * factor;
    return b;
  }
};

/// Verdict of one value comparison.
template <typename T>
struct UlpCheck {
  bool pass = true;
  std::uint64_t ulps = 0;
  double abs_diff = 0.0;

  explicit operator bool() const { return pass; }
};

template <typename T>
[[nodiscard]] UlpCheck<T> ulp_check(T a, T b, const UlpBudget& budget) {
  UlpCheck<T> c;
  c.ulps = ulp_distance(a, b);
  c.abs_diff = std::abs(static_cast<double>(a) - static_cast<double>(b));
  c.pass = c.ulps <= budget.max_ulps ||
           (!std::isnan(a) && !std::isnan(b) && c.abs_diff <= budget.abs_floor);
  return c;
}

template <typename T>
[[nodiscard]] bool ulp_close(T a, T b, const UlpBudget& budget) {
  return ulp_check(a, b, budget).pass;
}

/// Interior-wide comparison verdict: worst offending site plus counts.
struct UlpGridDiff {
  bool pass = true;
  std::size_t mismatches = 0;   ///< points outside the budget
  std::uint64_t max_ulps = 0;   ///< largest finite ULP distance seen
  double max_abs = 0.0;
  int worst_i = -1;             ///< site of the first budget violation
  int worst_j = -1;
  int worst_k = -1;

  [[nodiscard]] std::string describe() const {
    if (pass) return "interiors match within budget";
    return std::to_string(mismatches) + " point(s) outside budget, first at (" +
           std::to_string(worst_i) + ", " + std::to_string(worst_j) + ", " +
           std::to_string(worst_k) + "), max " + std::to_string(max_ulps) +
           " ulps / " + std::to_string(max_abs) + " abs";
  }
};

/// Compares the interiors of two grids of identical extent under the
/// budget.  Grids may have different halos/alignment; only logical
/// interior coordinates are visited.
template <typename T>
[[nodiscard]] UlpGridDiff ulp_compare_grids(const Grid3<T>& a, const Grid3<T>& b,
                                            const UlpBudget& budget) {
  UlpGridDiff d;
  for (int k = 0; k < a.nz(); ++k) {
    for (int j = 0; j < a.ny(); ++j) {
      for (int i = 0; i < a.nx(); ++i) {
        const UlpCheck<T> c = ulp_check(a.at(i, j, k), b.at(i, j, k), budget);
        if (c.ulps != ~0ull) d.max_ulps = std::max(d.max_ulps, c.ulps);
        d.max_abs = std::max(d.max_abs, c.abs_diff);
        if (!c.pass) {
          if (d.pass) {
            d.worst_i = i;
            d.worst_j = j;
            d.worst_k = k;
          }
          d.pass = false;
          ++d.mismatches;
        }
      }
    }
  }
  return d;
}

}  // namespace inplane
