#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace inplane {

/// Coefficients of an axis-symmetric star ("Jacobi") stencil of radius r:
///
///   out[i,j,k] = c0 * in[i,j,k]
///              + sum_{m=1..r} cm * (in[i+-m,j,k] + in[i,j+-m,k] + in[i,j,k+-m])
///
/// (Eqn. (1) of the paper).  The stencil *order* is 2r.
class StencilCoeffs {
 public:
  /// Builds a stencil from a centre weight and per-distance weights.
  /// @param centre  c0
  /// @param ring    c1..cr (size determines the radius; may be empty for r=0)
  StencilCoeffs(double centre, std::vector<double> ring);

  /// Radius r of the stencil.
  [[nodiscard]] int radius() const { return static_cast<int>(ring_.size()); }
  /// Order 2r of the stencil.
  [[nodiscard]] int order() const { return 2 * radius(); }

  [[nodiscard]] double c0() const { return c0_; }
  /// Weight c_m for neighbour distance m in [1, r].
  [[nodiscard]] double c(int m) const { return ring_[static_cast<std::size_t>(m - 1)]; }
  [[nodiscard]] std::span<const double> ring() const { return ring_; }

  /// A normalised diffusion-like stencil of radius r: all 6r+1 weights sum
  /// to 1, ring weights decay with distance.  Numerically stable under
  /// repeated Jacobi iteration, so long multi-timestep tests do not blow up.
  static StencilCoeffs diffusion(int radius);

  /// Deterministic pseudo-random coefficients in [-1, 1]; useful for
  /// property tests (no accidental symmetry-induced cancellation).
  static StencilCoeffs random(int radius, std::uint64_t seed);

 private:
  double c0_;
  std::vector<double> ring_;
};

}  // namespace inplane
