#pragma once

#include "core/coefficients.hpp"
#include "core/grid3.hpp"

namespace inplane {

/// Applies one Jacobi sweep of the star stencil (Eqn. (1)) to every
/// interior point of @p in, writing @p out.  This is the "gold" CPU
/// reference all simulated GPU kernels are verified against (the paper
/// verifies every kernel variant "with the result from the CPU-computed
/// stencil output", section IV-B).
///
/// Requirements: both grids share extent; halo width >= stencil radius.
/// Halo cells of @p out are left untouched.
template <typename T>
void apply_reference(const Grid3<T>& in, Grid3<T>& out, const StencilCoeffs& coeffs);

/// Cache-blocked variant of apply_reference: identical results, tiled over
/// (block_y x block_z) pencils so the working set fits in cache.  Used by
/// the CPU micro-benchmarks and the quickstart example.
template <typename T>
void apply_reference_blocked(const Grid3<T>& in, Grid3<T>& out,
                             const StencilCoeffs& coeffs, int block_y = 8,
                             int block_z = 8);

extern template void apply_reference<float>(const Grid3<float>&, Grid3<float>&,
                                            const StencilCoeffs&);
extern template void apply_reference<double>(const Grid3<double>&, Grid3<double>&,
                                             const StencilCoeffs&);
extern template void apply_reference_blocked<float>(const Grid3<float>&, Grid3<float>&,
                                                    const StencilCoeffs&, int, int);
extern template void apply_reference_blocked<double>(const Grid3<double>&,
                                                     Grid3<double>&,
                                                     const StencilCoeffs&, int, int);

}  // namespace inplane
