#pragma once

#include <functional>

#include "core/coefficients.hpp"
#include "core/grid3.hpp"

namespace inplane {

/// Outcome of an iterative stencil loop (Fig. 1 of the paper).
struct IterationResult {
  int steps_taken = 0;      ///< number of ComputeKernel invocations
  double last_delta = 0.0;  ///< max |out - in| over the final sweep
  bool converged = false;   ///< true if a tolerance criterion stopped the loop
};

/// Stop criteria for run_iterative_stencil.  The loop stops after
/// max_steps sweeps, or earlier once the max pointwise change of a sweep
/// drops to or below tolerance (if tolerance >= 0).
struct StopCriteria {
  int max_steps = 1;
  double tolerance = -1.0;  ///< negative disables the convergence check
};

/// The ITERSTENCILLOOP procedure of Fig. 1: repeatedly calls @p kernel on
/// (in, out) and swaps the roles of the two grids between sweeps, exactly
/// as the paper's pseudo-code does with pointer swapping.
///
/// @param kernel ComputeKernel(in, out): any callable applying one Jacobi
///               sweep — a CPU reference or a simulated GPU kernel.
/// @returns a pointer to whichever of the two buffers holds the final
///          state, plus iteration statistics.
template <typename T>
struct IterationOutcome {
  Grid3<T>* result = nullptr;
  IterationResult stats;
};

template <typename T>
using ComputeKernelFn = std::function<void(const Grid3<T>&, Grid3<T>&)>;

template <typename T>
IterationOutcome<T> run_iterative_stencil(Grid3<T>& a, Grid3<T>& b,
                                          const ComputeKernelFn<T>& kernel,
                                          const StopCriteria& stop);

/// Convenience wrapper using the CPU reference kernel.
template <typename T>
IterationOutcome<T> run_reference_loop(Grid3<T>& a, Grid3<T>& b,
                                       const StencilCoeffs& coeffs,
                                       const StopCriteria& stop);

extern template IterationOutcome<float> run_iterative_stencil<float>(
    Grid3<float>&, Grid3<float>&, const ComputeKernelFn<float>&, const StopCriteria&);
extern template IterationOutcome<double> run_iterative_stencil<double>(
    Grid3<double>&, Grid3<double>&, const ComputeKernelFn<double>&, const StopCriteria&);
extern template IterationOutcome<float> run_reference_loop<float>(Grid3<float>&,
                                                                  Grid3<float>&,
                                                                  const StencilCoeffs&,
                                                                  const StopCriteria&);
extern template IterationOutcome<double> run_reference_loop<double>(Grid3<double>&,
                                                                    Grid3<double>&,
                                                                    const StencilCoeffs&,
                                                                    const StopCriteria&);

}  // namespace inplane
