#pragma once

// Portable vectorization hints for the functional plane-update loops.
//
// The simulator's numerics run over Grid3 storage that is already
// aligned and x-padded to a multiple of 32 elements (core/grid_layout.hpp),
// and the kernels' per-plane work arrays index the x-fastest axis
// contiguously, so the inner update loops vectorize cleanly.  The hint is
// a pragma, not intrinsics: each loop still computes every element with
// the same scalar operation sequence, so results stay bit-identical to
// the un-vectorized build — the pragma only licenses the compiler to run
// independent elements in SIMD lanes.
//
// Selection happens at configure time: the INPLANE_ENABLE_SIMD CMake
// option (default ON) defines INPLANE_SIMD globally; without it every
// INPLANE_SIMD_LOOP expands to nothing and the loops compile exactly as
// before (the scalar fallback).

#if defined(INPLANE_SIMD)
#if defined(__clang__)
#define INPLANE_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define INPLANE_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define INPLANE_SIMD_LOOP
#endif
#else
#define INPLANE_SIMD_LOOP
#endif

namespace inplane {

/// Whether this build compiled the plane-update loops with the SIMD
/// pragmas (INPLANE_ENABLE_SIMD at configure time).  Defined in a .cpp so
/// every consumer sees the library's actual build mode, not its own
/// macro environment; surfaced in the bench reports' config notes.
[[nodiscard]] bool simd_enabled();

}  // namespace inplane
