#pragma once

#include "core/grid3.hpp"

namespace inplane {

/// Summary of the pointwise difference between two grids' interiors.
struct GridDiff {
  double max_abs = 0.0;  ///< max |a - b|
  double max_rel = 0.0;  ///< max |a - b| / max(|a|, |b|, 1)
  int worst_i = -1;      ///< coordinates of the largest absolute difference
  int worst_j = -1;
  int worst_k = -1;
};

/// Compares the interiors of two grids of identical extent.
template <typename T>
[[nodiscard]] GridDiff compare_grids(const Grid3<T>& a, const Grid3<T>& b);

/// True if interiors match to within @p abs_tol or @p rel_tol pointwise.
template <typename T>
[[nodiscard]] bool grids_allclose(const Grid3<T>& a, const Grid3<T>& b,
                                  double abs_tol, double rel_tol);

extern template GridDiff compare_grids<float>(const Grid3<float>&, const Grid3<float>&);
extern template GridDiff compare_grids<double>(const Grid3<double>&,
                                               const Grid3<double>&);
extern template bool grids_allclose<float>(const Grid3<float>&, const Grid3<float>&,
                                           double, double);
extern template bool grids_allclose<double>(const Grid3<double>&, const Grid3<double>&,
                                            double, double);

}  // namespace inplane
