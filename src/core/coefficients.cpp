#include "core/coefficients.hpp"

#include <random>
#include <stdexcept>

namespace inplane {

StencilCoeffs::StencilCoeffs(double centre, std::vector<double> ring)
    : c0_(centre), ring_(std::move(ring)) {}

StencilCoeffs StencilCoeffs::diffusion(int radius) {
  if (radius < 0) throw std::invalid_argument("StencilCoeffs: radius must be >= 0");
  // Weights proportional to 1/m for distance m; normalised so that
  // c0 + 6 * sum(cm) == 1, with c0 taking half of the total mass.
  std::vector<double> ring(static_cast<std::size_t>(radius));
  double mass = 0.0;
  for (int m = 1; m <= radius; ++m) mass += 1.0 / m;
  for (int m = 1; m <= radius; ++m) {
    ring[static_cast<std::size_t>(m - 1)] = (mass > 0.0) ? 0.5 / (6.0 * mass * m) : 0.0;
  }
  const double centre = (radius == 0) ? 1.0 : 0.5;
  return StencilCoeffs(centre, std::move(ring));
}

StencilCoeffs StencilCoeffs::random(int radius, std::uint64_t seed) {
  if (radius < 0) throw std::invalid_argument("StencilCoeffs: radius must be >= 0");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const double centre = dist(rng);
  std::vector<double> ring(static_cast<std::size_t>(radius));
  for (auto& c : ring) c = dist(rng);
  return StencilCoeffs(centre, std::move(ring));
}

}  // namespace inplane
