#include "core/iteration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/reference.hpp"

namespace inplane {

namespace {

template <typename T>
double max_interior_delta(const Grid3<T>& a, const Grid3<T>& b) {
  double delta = 0.0;
  for (int k = 0; k < a.nz(); ++k)
    for (int j = 0; j < a.ny(); ++j)
      for (int i = 0; i < a.nx(); ++i)
        delta = std::max(delta,
                         std::abs(static_cast<double>(a.at(i, j, k)) -
                                  static_cast<double>(b.at(i, j, k))));
  return delta;
}

}  // namespace

template <typename T>
IterationOutcome<T> run_iterative_stencil(Grid3<T>& a, Grid3<T>& b,
                                          const ComputeKernelFn<T>& kernel,
                                          const StopCriteria& stop) {
  if (!kernel) throw std::invalid_argument("run_iterative_stencil: null kernel");
  if (stop.max_steps < 0) {
    throw std::invalid_argument("run_iterative_stencil: max_steps must be >= 0");
  }
  Grid3<T>* in = &a;
  Grid3<T>* out = &b;
  IterationOutcome<T> outcome;
  outcome.result = in;
  for (int t = 0; t < stop.max_steps; ++t) {
    kernel(*in, *out);
    outcome.stats.steps_taken = t + 1;
    if (stop.tolerance >= 0.0) {
      outcome.stats.last_delta = max_interior_delta(*in, *out);
      if (outcome.stats.last_delta <= stop.tolerance) {
        outcome.stats.converged = true;
        outcome.result = out;
        return outcome;
      }
    }
    std::swap(in, out);
    outcome.result = in;
  }
  return outcome;
}

template <typename T>
IterationOutcome<T> run_reference_loop(Grid3<T>& a, Grid3<T>& b,
                                       const StencilCoeffs& coeffs,
                                       const StopCriteria& stop) {
  ComputeKernelFn<T> kernel = [&coeffs](const Grid3<T>& in, Grid3<T>& out) {
    apply_reference(in, out, coeffs);
  };
  return run_iterative_stencil(a, b, kernel, stop);
}

template IterationOutcome<float> run_iterative_stencil<float>(Grid3<float>&,
                                                              Grid3<float>&,
                                                              const ComputeKernelFn<float>&,
                                                              const StopCriteria&);
template IterationOutcome<double> run_iterative_stencil<double>(
    Grid3<double>&, Grid3<double>&, const ComputeKernelFn<double>&, const StopCriteria&);
template IterationOutcome<float> run_reference_loop<float>(Grid3<float>&, Grid3<float>&,
                                                           const StencilCoeffs&,
                                                           const StopCriteria&);
template IterationOutcome<double> run_reference_loop<double>(Grid3<double>&,
                                                             Grid3<double>&,
                                                             const StencilCoeffs&,
                                                             const StopCriteria&);

}  // namespace inplane
