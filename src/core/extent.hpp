#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace inplane {

/// Logical size of a 3-D grid (interior points only, halos excluded).
///
/// The paper uses LX x LY x LZ for the lattice size; x is the
/// fastest-varying (contiguous) dimension throughout this code base,
/// matching the CUDA memory layout the paper assumes.
struct Extent3 {
  int nx = 0;  ///< points along x (contiguous dimension)
  int ny = 0;  ///< points along y
  int nz = 0;  ///< points along z (sweep dimension)

  [[nodiscard]] constexpr std::size_t volume() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  [[nodiscard]] constexpr bool operator==(const Extent3&) const = default;

  /// Throws std::invalid_argument unless all dimensions are positive.
  void validate() const {
    if (nx <= 0 || ny <= 0 || nz <= 0) {
      throw std::invalid_argument("Extent3: all dimensions must be positive, got " +
                                  std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                                  std::to_string(nz));
    }
  }
};

}  // namespace inplane
