#include "core/mem_budget.hpp"

#include "metrics/metrics.hpp"

namespace inplane {

namespace {
struct BudgetMetrics {
  metrics::Counter& reserved;
  metrics::Counter& denied;
  static BudgetMetrics& get() {
    auto& reg = metrics::Registry::global();
    static BudgetMetrics m{reg.counter("core.membudget.reserved_bytes"),
                           reg.counter("core.membudget.denied")};
    return m;
  }
};
}  // namespace

bool MemBudget::try_reserve(std::uint64_t bytes) {
  if (limit_ == 0) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
    BudgetMetrics::get().reserved.add(bytes);
    return true;
  }
  std::uint64_t cur = used_.load(std::memory_order_relaxed);
  while (true) {
    if (bytes > limit_ || cur > limit_ - bytes) {
      denied_.fetch_add(1, std::memory_order_relaxed);
      BudgetMetrics::get().denied.add();
      return false;
    }
    if (used_.compare_exchange_weak(cur, cur + bytes,
                                    std::memory_order_relaxed)) {
      BudgetMetrics::get().reserved.add(bytes);
      return true;
    }
  }
}

void MemBudget::release(std::uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace inplane
