#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace inplane {

class CancelToken;

/// Host-side execution policy threaded through the runner and tuner APIs.
///
/// The simulator is deterministic by construction: parallel execution
/// partitions work into independent units (thread blocks, tuner
/// candidates) whose results are reduced in iteration order, so grids,
/// TraceStats and tuning outcomes are bit-identical for every
/// `num_threads`.  `ExecPolicy{1}` restores the fully serial path (no
/// pool involvement at all), which is the right setting when profiling
/// the simulator itself.
struct ExecPolicy {
  /// 0 = one software thread per hardware thread; 1 = serial; n = use up
  /// to n threads (including the calling thread).
  int num_threads = 0;

  /// Optional cooperative cancellation: parallel_for polls the token once
  /// per work item and raises ResourceExhaustedError when it has fired.
  /// Not owned; must outlive every call made under this policy.
  const CancelToken* cancel = nullptr;

  /// The policy resolved against the host: always >= 1.
  [[nodiscard]] unsigned concurrency() const {
    if (num_threads > 0) return static_cast<unsigned>(num_threads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  }

  [[nodiscard]] bool serial() const { return concurrency() == 1; }
};

/// A shared work-stealing thread pool.
///
/// Each worker owns a deque: its own tasks are popped LIFO from the back
/// (cache locality), and idle workers steal FIFO from the front of other
/// workers' deques.  Tasks submitted from outside the pool are dealt to
/// the deques round-robin.  Tasks must not block on other tasks except
/// through ThreadPool::for_each, which is safe to nest (the calling
/// thread always participates, so progress never depends on a free
/// worker).
class ThreadPool {
 public:
  /// @p workers = 0 means one worker per hardware thread.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool the runner and tuners share.  Sized to the
  /// hardware concurrency; ExecPolicy caps how much of it one call uses.
  static ThreadPool& shared();

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one fire-and-forget task.
  void submit(std::function<void()> task);

  /// Runs fn(i) exactly once for every i in [0, n), using up to
  /// @p max_concurrency threads including the caller.  Work is claimed
  /// dynamically (an atomic cursor), so load balances like stealing at
  /// item granularity; the assignment of items to threads is arbitrary
  /// but every item runs exactly once, which is what the deterministic
  /// index-addressed reductions above this layer rely on.  The first
  /// exception thrown by fn cancels the remaining items and is rethrown
  /// on the calling thread.
  void for_each(std::size_t n, unsigned max_concurrency,
                const std::function<void(std::size_t)>& fn);

 private:
  struct Deque {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};  // queued, not yet popped tasks
  std::size_t next_victim_ = 0;  // round-robin submit target (under sleep_mutex_)
  bool stop_ = false;            // under sleep_mutex_
};

/// Convenience wrapper: runs fn(i) for i in [0, n) under @p policy on the
/// shared pool; a serial policy (or n <= 1) runs inline with zero
/// synchronisation.
void parallel_for(const ExecPolicy& policy, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace inplane
