#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace inplane {

/// Analytic per-element operation counts for a star stencil of a given
/// order, as tabulated in Tables I and II of the paper.
struct StencilSpec {
  int order = 2;  ///< 2r

  [[nodiscard]] int radius() const { return order / 2; }

  /// Edge length of the (2r+1)^3 computation cell ("extent" column).
  [[nodiscard]] int extent_edge() const { return 2 * radius() + 1; }

  /// Memory references per element: 6r+1 neighbour loads + 1 store = 6r+2.
  [[nodiscard]] int memory_refs() const { return 6 * radius() + 2; }

  /// Flops per element for the forward-plane method: 7r+1 (Table I /
  /// Table II "Flops (nvstencil)" column).
  [[nodiscard]] int flops_forward() const { return 7 * radius() + 1; }

  /// Flops per element for the in-plane method: 8r+1 (Table II).  The
  /// incremental update of Eqn. (5) adds one extra multiply-add per
  /// pipeline stage.
  [[nodiscard]] int flops_inplane() const { return 8 * radius() + 1; }

  /// Redundant corner elements loaded per plane per block by the
  /// full-slice variant: 4r^2 (section III-C1).  Independent of block size.
  [[nodiscard]] int fullslice_corner_elems() const { return 4 * radius() * radius(); }

  /// "3x3x3"-style extent string used in Table I.
  [[nodiscard]] std::string extent_string() const;
};

/// The stencil orders evaluated throughout the paper (Tables I, II, IV;
/// Figs. 7, 9, 10, 12).
[[nodiscard]] std::vector<int> paper_stencil_orders();

}  // namespace inplane
