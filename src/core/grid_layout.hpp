#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/extent.hpp"

namespace inplane {

/// Rounds @p value up to the next multiple of @p mult (mult > 0).
[[nodiscard]] constexpr std::size_t round_up(std::size_t value, std::size_t mult) {
  return ((value + mult - 1) / mult) * mult;
}

/// Geometry of a padded, aligned 3-D grid — everything needed to turn a
/// logical coordinate (i, j, k) into a linear index or byte offset, with no
/// storage attached.  Grid3 owns one of these plus the data; the simulated
/// kernels consume layouts directly so that timing traces can be produced
/// without allocating full-size grids.
///
/// Layout: x fastest, then y, then z (CUDA convention).  Guarantees:
///  * index(-align_offset, j, k) is a multiple of align_elems for all j, k;
///  * pitch_x() is a multiple of align_elems.
/// align_offset = 0 aligns the interior row start; align_offset = r aligns
/// the halo-inclusive row start that the horizontal and full-slice loading
/// patterns vectorise over (section III-C2 of the paper).
class GridLayout {
 public:
  GridLayout(Extent3 extent, int halo, std::size_t elem_size,
             std::size_t align_elems = 32, int align_offset = 0)
      : extent_(extent), halo_(halo), elem_size_(elem_size), align_(align_elems),
        align_offset_(align_offset) {
    extent.validate();
    if (halo < 0) throw std::invalid_argument("GridLayout: halo must be >= 0");
    if (align_offset < 0 || align_offset > halo) {
      throw std::invalid_argument("GridLayout: align_offset must be in [0, halo]");
    }
    if (align_elems == 0 || (align_elems & (align_elems - 1)) != 0) {
      throw std::invalid_argument("GridLayout: alignment must be a nonzero power of two");
    }
    if (elem_size == 0) throw std::invalid_argument("GridLayout: elem_size must be > 0");
    const auto h = static_cast<std::size_t>(halo);
    origin_x_ = round_up(h, align_) + static_cast<std::size_t>(align_offset) % align_;
    pitch_x_ = round_up(origin_x_ + static_cast<std::size_t>(extent_.nx) + h, align_);
    padded_ny_ = static_cast<std::size_t>(extent_.ny) + 2 * h;
    padded_nz_ = static_cast<std::size_t>(extent_.nz) + 2 * h;
  }

  [[nodiscard]] const Extent3& extent() const { return extent_; }
  [[nodiscard]] int nx() const { return extent_.nx; }
  [[nodiscard]] int ny() const { return extent_.ny; }
  [[nodiscard]] int nz() const { return extent_.nz; }
  [[nodiscard]] int halo() const { return halo_; }
  [[nodiscard]] std::size_t elem_size() const { return elem_size_; }
  [[nodiscard]] std::size_t alignment() const { return align_; }
  [[nodiscard]] int align_offset() const { return align_offset_; }

  /// Stride between consecutive y rows, in elements.
  [[nodiscard]] std::size_t pitch_x() const { return pitch_x_; }
  /// Stride between consecutive z planes, in elements.
  [[nodiscard]] std::size_t plane_stride() const { return pitch_x_ * padded_ny_; }
  /// Total elements including halo and padding.
  [[nodiscard]] std::size_t allocated() const { return plane_stride() * padded_nz_; }
  /// Total bytes including halo and padding.
  [[nodiscard]] std::size_t allocated_bytes() const { return allocated() * elem_size_; }

  /// Linear element index of (i, j, k); valid for -halo <= i < nx+halo etc.
  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    const auto x = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(origin_x_) + i);
    const auto jj = static_cast<std::size_t>(j + halo_);
    const auto kk = static_cast<std::size_t>(k + halo_);
    return x + pitch_x_ * jj + plane_stride() * kk;
  }

  /// Byte offset of (i, j, k) from the buffer base — what the simulated
  /// coalescer sees, so it reflects padding and alignment faithfully.
  [[nodiscard]] std::uint64_t byte_offset(int i, int j, int k) const {
    return static_cast<std::uint64_t>(index(i, j, k)) * elem_size_;
  }

  [[nodiscard]] bool is_interior(int i, int j, int k) const {
    return i >= 0 && i < nx() && j >= 0 && j < ny() && k >= 0 && k < nz();
  }

 private:
  Extent3 extent_;
  int halo_;
  std::size_t elem_size_;
  std::size_t align_;
  int align_offset_;
  std::size_t origin_x_ = 0;
  std::size_t pitch_x_ = 0;
  std::size_t padded_ny_ = 0;
  std::size_t padded_nz_ = 0;
};

}  // namespace inplane
