#pragma once

#include <cstddef>
#include <cstdint>

namespace inplane {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xedb88320) over @p n bytes.
/// Frames the auto-tuner checkpoint journal records and the golden-trace
/// snapshots of the verification subsystem.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

}  // namespace inplane
