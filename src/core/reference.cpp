#include "core/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace inplane {

namespace {

template <typename T>
void check_compatible(const Grid3<T>& in, Grid3<T>& out, const StencilCoeffs& coeffs) {
  if (in.extent() != out.extent()) {
    throw std::invalid_argument("apply_reference: grids must share extent");
  }
  if (in.halo() < coeffs.radius() || out.halo() < coeffs.radius()) {
    throw std::invalid_argument("apply_reference: halo narrower than stencil radius");
  }
}

template <typename T>
inline T stencil_point(const Grid3<T>& in, const StencilCoeffs& coeffs, int i, int j,
                       int k) {
  const int r = coeffs.radius();
  T acc = static_cast<T>(coeffs.c0()) * in.at(i, j, k);
  for (int m = 1; m <= r; ++m) {
    const T cm = static_cast<T>(coeffs.c(m));
    acc += cm * (in.at(i - m, j, k) + in.at(i + m, j, k) + in.at(i, j - m, k) +
                 in.at(i, j + m, k) + in.at(i, j, k - m) + in.at(i, j, k + m));
  }
  return acc;
}

}  // namespace

template <typename T>
void apply_reference(const Grid3<T>& in, Grid3<T>& out, const StencilCoeffs& coeffs) {
  check_compatible(in, out, coeffs);
  for (int k = 0; k < in.nz(); ++k) {
    for (int j = 0; j < in.ny(); ++j) {
      for (int i = 0; i < in.nx(); ++i) {
        out.at(i, j, k) = stencil_point(in, coeffs, i, j, k);
      }
    }
  }
}

template <typename T>
void apply_reference_blocked(const Grid3<T>& in, Grid3<T>& out,
                             const StencilCoeffs& coeffs, int block_y, int block_z) {
  check_compatible(in, out, coeffs);
  if (block_y <= 0 || block_z <= 0) {
    throw std::invalid_argument("apply_reference_blocked: block sizes must be positive");
  }
  for (int k0 = 0; k0 < in.nz(); k0 += block_z) {
    const int k1 = std::min(k0 + block_z, in.nz());
    for (int j0 = 0; j0 < in.ny(); j0 += block_y) {
      const int j1 = std::min(j0 + block_y, in.ny());
      for (int k = k0; k < k1; ++k) {
        for (int j = j0; j < j1; ++j) {
          for (int i = 0; i < in.nx(); ++i) {
            out.at(i, j, k) = stencil_point(in, coeffs, i, j, k);
          }
        }
      }
    }
  }
}

template void apply_reference<float>(const Grid3<float>&, Grid3<float>&,
                                     const StencilCoeffs&);
template void apply_reference<double>(const Grid3<double>&, Grid3<double>&,
                                      const StencilCoeffs&);
template void apply_reference_blocked<float>(const Grid3<float>&, Grid3<float>&,
                                             const StencilCoeffs&, int, int);
template void apply_reference_blocked<double>(const Grid3<double>&, Grid3<double>&,
                                              const StencilCoeffs&, int, int);

}  // namespace inplane
