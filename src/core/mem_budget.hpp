#pragma once

// A per-run memory budget for the governance layer.  Holders of a budget
// *ask* before a large allocation (a tuner's candidate working set, a
// multi-GPU slab buffer pair, an ABFT repair scratch grid) and degrade
// gracefully on denial — fewer candidates measured, chunked slab buffers,
// full-retry instead of surgical repair — rather than aborting.  A denial
// is therefore never an error; it only shapes *how* the run proceeds.

#include <atomic>
#include <cstdint>

namespace inplane {

class MemBudget {
 public:
  /// @p limit_bytes 0 means unlimited (every reservation succeeds).
  explicit MemBudget(std::uint64_t limit_bytes = 0) : limit_(limit_bytes) {}
  MemBudget(const MemBudget&) = delete;
  MemBudget& operator=(const MemBudget&) = delete;

  [[nodiscard]] std::uint64_t limit_bytes() const { return limit_; }
  [[nodiscard]] std::uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denied() const {
    return denied_.load(std::memory_order_relaxed);
  }

  /// Tries to reserve @p bytes against the limit.  On success the caller
  /// owns the reservation and must release() it; on denial nothing is
  /// reserved and the `core.membudget.denied` counter is bumped.
  [[nodiscard]] bool try_reserve(std::uint64_t bytes);

  /// Returns a previous successful reservation.
  void release(std::uint64_t bytes);

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> denied_{0};
};

/// RAII reservation: holds @p bytes of @p budget for the scope, or reports
/// denial via ok().  A null budget always succeeds (unlimited).
class MemReservation {
 public:
  MemReservation(MemBudget* budget, std::uint64_t bytes)
      : budget_(budget), bytes_(bytes),
        ok_(budget == nullptr || budget->try_reserve(bytes)) {}
  ~MemReservation() {
    if (ok_ && budget_ != nullptr) budget_->release(bytes_);
  }
  MemReservation(const MemReservation&) = delete;
  MemReservation& operator=(const MemReservation&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }

 private:
  MemBudget* budget_;
  std::uint64_t bytes_;
  bool ok_;
};

}  // namespace inplane
