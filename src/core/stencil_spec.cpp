#include "core/stencil_spec.hpp"

namespace inplane {

std::string StencilSpec::extent_string() const {
  const std::string e = std::to_string(extent_edge());
  return e + "x" + e + "x" + e;
}

std::vector<int> paper_stencil_orders() { return {2, 4, 6, 8, 10, 12}; }

}  // namespace inplane
