#include "core/status.hpp"

namespace inplane {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::InvalidConfig: return "invalid_config";
    case ErrorCode::TransientFault: return "transient_fault";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::DataCorruption: return "data_corruption";
    case ErrorCode::DeviceLost: return "device_lost";
    case ErrorCode::IoError: return "io_error";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::ResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string s = inplane::to_string(code);
  if (!context.empty()) {
    s += ": ";
    s += context;
  }
  return s;
}

Status status_of(const std::exception& e) {
  if (const auto* carrier = dynamic_cast<const StatusCarrier*>(&e)) {
    return carrier->status();
  }
  return {ErrorCode::Internal, e.what()};
}

void raise(const Status& status) {
  switch (status.code) {
    case ErrorCode::InvalidConfig: throw InvalidConfigError(status.context);
    case ErrorCode::TransientFault: throw TransientFaultError(status.context);
    case ErrorCode::Timeout: throw TimeoutError(status.context);
    case ErrorCode::DataCorruption: throw DataCorruptionError(status.context);
    case ErrorCode::DeviceLost: throw DeviceLostError(status.context);
    case ErrorCode::IoError: throw IoError(status.context);
    case ErrorCode::ResourceExhausted: throw ResourceExhaustedError(status.context);
    case ErrorCode::Ok:
    case ErrorCode::Internal: break;
  }
  throw InternalError(status.context.empty() ? "raise() on non-error status"
                                             : status.context);
}

int exit_code(const Status& status) {
  switch (status.code) {
    case ErrorCode::Ok: return 0;
    case ErrorCode::InvalidConfig: return 2;
    case ErrorCode::TransientFault:
    case ErrorCode::Timeout:
    case ErrorCode::DataCorruption:
    case ErrorCode::DeviceLost: return 3;
    case ErrorCode::IoError: return 4;
    case ErrorCode::ResourceExhausted: return 5;
    case ErrorCode::Internal: return 1;
  }
  return 1;
}

}  // namespace inplane
