#pragma once

// Minimal OS-process portability shim for the distributed sweep engine:
// spawn a child with an argv, poll/wait for its exit status, and deliver
// SIGTERM/SIGKILL.  POSIX-only today (the container toolchain); the
// Windows branch compiles but every operation throws InternalError, so
// the supervisor degrades loudly rather than silently on an unsupported
// host.  The shim never throws from poll()/alive() — supervision loops
// must keep running when a child misbehaves.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace inplane::core {

/// How a child process ended.  Exactly one of exited/signalled is set.
struct ExitStatus {
  bool exited = false;     ///< normal termination via exit()/_exit()/return
  int code = 0;            ///< exit code when exited
  bool signalled = false;  ///< killed by a signal (SIGKILL, SIGSEGV, ...)
  int signal = 0;          ///< the signal number when signalled

  [[nodiscard]] bool success() const { return exited && code == 0; }
  [[nodiscard]] std::string to_string() const;
};

/// One spawned child.  Movable, not copyable; the destructor reaps a
/// child that already exited but never blocks on (or kills) a live one —
/// owners decide the child's fate explicitly.
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// Spawns @p argv (argv[0] = executable path, PATH not searched when it
  /// contains a '/').  Throws IoError when the executable cannot be
  /// spawned, InvalidConfigError on an empty argv.
  [[nodiscard]] static ChildProcess spawn(const std::vector<std::string>& argv);

  /// True while a child is attached and has not been reaped.
  [[nodiscard]] bool valid() const { return pid_ > 0; }
  [[nodiscard]] std::int64_t pid() const { return pid_; }

  /// Non-blocking: reaps and returns the exit status if the child has
  /// ended, std::nullopt while it is still running.  After the first
  /// non-null return the status is cached and returned forever.
  [[nodiscard]] std::optional<ExitStatus> poll();

  /// Blocks until the child ends, then reaps it.
  ExitStatus wait();

  /// Polite stop request (SIGTERM).  No-op once the child is reaped.
  void terminate();

  /// Immediate stop (SIGKILL) — what the supervisor uses on a hung
  /// worker.  No-op once the child is reaped.
  void kill_hard();

 private:
  std::int64_t pid_ = -1;
  std::optional<ExitStatus> status_{};
};

}  // namespace inplane::core
