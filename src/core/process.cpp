#include "core/process.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/status.hpp"

#ifndef _WIN32
#include <signal.h>
#include <spawn.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;
#endif

namespace inplane::core {

std::string ExitStatus::to_string() const {
  if (exited) return "exit " + std::to_string(code);
  if (signalled) return "signal " + std::to_string(signal);
  return "unknown";
}

ChildProcess::~ChildProcess() {
#ifndef _WIN32
  // Reap a child that already ended so it never lingers as a zombie; a
  // live child is deliberately left running (the owner chose not to
  // wait or kill).
  if (pid_ > 0 && !status_.has_value()) {
    int st = 0;
    (void)waitpid(static_cast<pid_t>(pid_), &st, WNOHANG);
  }
#endif
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)), status_(std::move(other.status_)) {
  other.status_.reset();
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    pid_ = std::exchange(other.pid_, -1);
    status_ = std::move(other.status_);
    other.status_.reset();
  }
  return *this;
}

#ifndef _WIN32

namespace {

ExitStatus decode_wait_status(int st) {
  ExitStatus s;
  if (WIFEXITED(st)) {
    s.exited = true;
    s.code = WEXITSTATUS(st);
  } else if (WIFSIGNALED(st)) {
    s.signalled = true;
    s.signal = WTERMSIG(st);
  }
  return s;
}

}  // namespace

ChildProcess ChildProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw InvalidConfigError("process: spawn needs a non-empty argv");
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      posix_spawn(&pid, argv[0].c_str(), nullptr, nullptr, cargv.data(), environ);
  if (rc != 0) {
    throw IoError("process: cannot spawn " + argv[0] + ": " + std::strerror(rc));
  }
  ChildProcess child;
  child.pid_ = pid;
  return child;
}

std::optional<ExitStatus> ChildProcess::poll() {
  if (status_.has_value()) return status_;
  if (pid_ <= 0) return std::nullopt;
  int st = 0;
  const pid_t r = waitpid(static_cast<pid_t>(pid_), &st, WNOHANG);
  if (r == static_cast<pid_t>(pid_)) {
    status_ = decode_wait_status(st);
  } else if (r < 0 && errno == ECHILD) {
    // Already reaped elsewhere (should not happen with exclusive
    // ownership) — report a generic failure rather than spinning forever.
    ExitStatus s;
    s.exited = true;
    s.code = -1;
    status_ = s;
  }
  return status_;
}

ExitStatus ChildProcess::wait() {
  if (status_.has_value()) return *status_;
  if (pid_ <= 0) {
    throw InternalError("process: wait on an empty ChildProcess");
  }
  int st = 0;
  pid_t r = 0;
  do {
    r = waitpid(static_cast<pid_t>(pid_), &st, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    throw IoError("process: waitpid(" + std::to_string(pid_) +
                  ") failed: " + std::strerror(errno));
  }
  status_ = decode_wait_status(st);
  return *status_;
}

void ChildProcess::terminate() {
  if (pid_ > 0 && !status_.has_value()) {
    (void)::kill(static_cast<pid_t>(pid_), SIGTERM);
  }
}

void ChildProcess::kill_hard() {
  if (pid_ > 0 && !status_.has_value()) {
    (void)::kill(static_cast<pid_t>(pid_), SIGKILL);
  }
}

#else  // _WIN32

ChildProcess ChildProcess::spawn(const std::vector<std::string>&) {
  throw InternalError("process: spawning is unimplemented on this platform");
}
std::optional<ExitStatus> ChildProcess::poll() { return std::nullopt; }
ExitStatus ChildProcess::wait() {
  throw InternalError("process: wait is unimplemented on this platform");
}
void ChildProcess::terminate() {}
void ChildProcess::kill_hard() {}

#endif

}  // namespace inplane::core
