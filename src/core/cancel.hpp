#pragma once

// Cooperative cancellation for the execution-governance layer: one token
// carries both an external cancel flag and an optional wall-clock deadline,
// and every long-running loop (the parallel runner's block sweep, the
// tuners' candidate sweep, MultiGpuStencil's time stepping) polls it at a
// natural unit of work.  Polling is cheap (one relaxed atomic load on the
// common path) and cooperative — a fired token never tears a unit of work
// in half, so whatever checkpoint journal is open stays resumable.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "core/status.hpp"

namespace inplane {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline @p ms milliseconds from now.
  void set_deadline_ms(double ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
  }

  /// External cancellation (a signal handler, another thread, a test).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Deterministic test hook: the token reports cancelled on the @p n-th
  /// subsequent cancelled() poll (counted across threads), regardless of
  /// wall clock.  n=1 fires on the very next poll.
  void cancel_after_checks(std::int64_t n) {
    checks_left_.store(n, std::memory_order_relaxed);
  }

  /// True once the token has fired (externally, by deadline, or by the
  /// check-countdown hook).  Sticky: once true, always true.
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t left = checks_left_.load(std::memory_order_relaxed);
    if (left > 0 &&
        checks_left_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The Status a fired token maps onto.
  [[nodiscard]] Status status() const {
    return {ErrorCode::ResourceExhausted,
            deadline_ ? "deadline exceeded / run cancelled" : "run cancelled"};
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::int64_t> checks_left_{0};
  std::optional<std::chrono::steady_clock::time_point> deadline_{};
};

/// Polls @p token (null = never fires) and throws ResourceExhaustedError
/// when it has fired, bumping the `core.cancel.fired` counter.  The single
/// raise path keeps the context string and metrics consistent across every
/// layer that polls.
void check_cancelled(const CancelToken* token);

}  // namespace inplane
