#include "core/cancel.hpp"

#include "metrics/metrics.hpp"

namespace inplane {

namespace {
struct CancelMetrics {
  metrics::Counter& checks;
  metrics::Counter& fired;
  static CancelMetrics& get() {
    auto& reg = metrics::Registry::global();
    static CancelMetrics m{reg.counter("core.cancel.checks"),
                           reg.counter("core.cancel.fired")};
    return m;
  }
};
}  // namespace

void check_cancelled(const CancelToken* token) {
  if (token == nullptr) return;
  CancelMetrics::get().checks.add();
  if (!token->cancelled()) return;
  CancelMetrics::get().fired.add();
  const Status s = token->status();
  throw ResourceExhaustedError(s.context);
}

}  // namespace inplane
