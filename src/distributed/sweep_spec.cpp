#include "distributed/sweep_spec.hpp"

#include <algorithm>
#include <cmath>

#include "autotune/search_space.hpp"
#include "core/status.hpp"
#include "gpusim/device_file.hpp"

namespace inplane::distributed {

kernels::Method resolve_method(const std::string& name) {
  using kernels::Method;
  if (name == "nvstencil" || name == "forward") return Method::ForwardPlane;
  if (name == "classical") return Method::InPlaneClassical;
  if (name == "vertical") return Method::InPlaneVertical;
  if (name == "horizontal") return Method::InPlaneHorizontal;
  if (name == "fullslice" || name == "full-slice") return Method::InPlaneFullSlice;
  throw InvalidConfigError("unknown method '" + name +
                           "' (nvstencil | classical | vertical | horizontal | "
                           "fullslice)");
}

gpusim::DeviceSpec resolve_device(const std::string& name) {
  if (name.find('/') != std::string::npos ||
      (name.size() > 7 && name.substr(name.size() - 7) == ".device")) {
    return gpusim::load_device(name);
  }
  if (name == "gtx580") return gpusim::DeviceSpec::geforce_gtx580();
  if (name == "gtx680") return gpusim::DeviceSpec::geforce_gtx680();
  if (name == "c2070") return gpusim::DeviceSpec::tesla_c2070();
  if (name == "c2050") return gpusim::DeviceSpec::tesla_c2050();
  throw InvalidConfigError("unknown device '" + name +
                           "' (gtx580 | gtx680 | c2070 | c2050 | path to a "
                           ".device file)");
}

Extent3 measure_extent(const SweepSpec& spec, PartitionMode mode, int workers) {
  if (mode == PartitionMode::Slabs) {
    return slab_extent(spec.extent, workers, spec.radius());
  }
  return spec.extent;
}

autotune::CheckpointKey checkpoint_key(const SweepSpec& spec,
                                       const Extent3& measured) {
  return autotune::make_checkpoint_key(resolve_method(spec.method),
                                       resolve_device(spec.device), measured,
                                       spec.elem_size(), spec.kind);
}

namespace {

template <typename T>
CandidatePlan plan_impl(const SweepSpec& spec, const gpusim::DeviceSpec& device,
                        const Extent3& measured) {
  const kernels::Method method = resolve_method(spec.method);
  const autotune::SearchSpace space;
  const int vec = autotune::default_vec(method, sizeof(T));
  const std::vector<kernels::LaunchConfig> configs =
      space.enumerate(device, measured, method, spec.radius(), sizeof(T), vec);

  CandidatePlan plan;
  plan.entries.resize(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    plan.entries[i].config = configs[i];
    plan.entries[i].model_mpoints = autotune::predict_candidate<T>(
        method, spec.radius(), device, measured, configs[i]);
  }

  if (spec.kind == "model") {
    // Rank exactly as model_guided_tune does: std::sort over TuneEntry
    // with the identical comparator, so equal predictions land in the
    // identical permutation and ordinals match the in-process sweep.
    std::sort(plan.entries.begin(), plan.entries.end(),
              [](const autotune::TuneEntry& a, const autotune::TuneEntry& b) {
                return a.model_mpoints > b.model_mpoints;
              });
    const double frac = std::clamp(spec.beta, 0.0, 1.0);
    plan.n_measure = std::min(
        plan.entries.size(),
        std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(frac * static_cast<double>(plan.entries.size())))));
  } else if (spec.kind == "exhaustive") {
    plan.n_measure = plan.entries.size();
  } else {
    throw InvalidConfigError("unknown sweep kind '" + spec.kind +
                             "' (exhaustive | model)");
  }
  return plan;
}

}  // namespace

CandidatePlan plan_candidates(const SweepSpec& spec,
                              const gpusim::DeviceSpec& device,
                              const Extent3& measured) {
  if (spec.double_precision) return plan_impl<double>(spec, device, measured);
  return plan_impl<float>(spec, device, measured);
}

}  // namespace inplane::distributed
