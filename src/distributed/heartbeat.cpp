#include "distributed/heartbeat.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "core/status.hpp"

namespace inplane::distributed {

namespace {
constexpr const char* kTag = "IPHB1";
}

void write_heartbeat(const std::string& path, const Heartbeat& hb) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError("heartbeat: cannot create " + tmp);
  }
  const int n = std::fprintf(f, "%s %" PRIu64 " %" PRIu64 "\n", kTag, hb.seq, hb.done);
  const bool ok = n > 0 && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw IoError("heartbeat: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw IoError("heartbeat: cannot rename " + tmp + " over " + path);
  }
}

std::optional<Heartbeat> read_heartbeat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  char tag[8] = {};
  Heartbeat hb;
  const int got = std::fscanf(f, "%7s %" SCNu64 " %" SCNu64, tag, &hb.seq, &hb.done);
  std::fclose(f);
  if (got != 3 || std::string(tag) != kTag) return std::nullopt;
  return hb;
}

}  // namespace inplane::distributed
