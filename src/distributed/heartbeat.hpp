#pragma once

// Worker liveness protocol: each worker process republishes a tiny
// heartbeat file (write-temp + atomic rename, so readers never see a
// torn one) after every candidate it journals.  The supervisor polls the
// file; a sequence number that stops advancing past the per-worker
// deadline means the worker is hung (as opposed to merely slow — a slow
// worker still advances between candidates) and gets killed and
// respawned.  File contents are a single text line: "IPHB1 <seq> <done>".

#include <cstdint>
#include <optional>
#include <string>

namespace inplane::distributed {

struct Heartbeat {
  std::uint64_t seq = 0;   ///< bumps on every publish — the liveness signal
  std::uint64_t done = 0;  ///< candidates this process has completed so far
};

/// Atomically publishes @p hb at @p path.  Throws IoError when the file
/// cannot be written.
void write_heartbeat(const std::string& path, const Heartbeat& hb);

/// Reads the heartbeat at @p path; std::nullopt when the file is absent
/// or malformed (a worker that has not started yet, or a stray file).
[[nodiscard]] std::optional<Heartbeat> read_heartbeat(const std::string& path);

}  // namespace inplane::distributed
