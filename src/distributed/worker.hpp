#pragma once

// One worker process of a distributed sweep.  The supervisor hands a
// worker its shard as a text file of "ordinal tx ty rx ry vec" lines;
// the worker measures each candidate with the exact hardened-sweep
// machinery (autotune::measure_single_candidate, keyed by the ordinal so
// fault injection replays identically), appends every fresh measurement
// to its own IPTJ3 shard journal, and republishes a heartbeat after each
// candidate.  A respawned worker reopens the same journal and skips
// everything already measured — crash recovery costs at most the one
// candidate that was in flight.

#include <string>

#include "distributed/partition.hpp"
#include "distributed/sweep_spec.hpp"

namespace inplane::distributed {

struct WorkerArgs {
  SweepSpec spec;
  PartitionMode mode = PartitionMode::Candidates;
  int workers = 1;      ///< total slot count (fixes the slab extent)
  int slot = 0;         ///< this worker's slot index
  int generation = 0;   ///< spawn count on this slot (0 = first spawn)
  std::string shard_path;      ///< candidate list to measure
  std::string journal_path;    ///< this slot's IPTJ3 shard journal
  std::string heartbeat_path;  ///< liveness file republished per candidate
  std::string fault_spec;      ///< WorkerFaultPlan text (whole plan; the
                               ///< worker filters by slot + generation)
  std::string sim_fault_spec;  ///< gpusim::FaultPlan for the measurements
  int max_attempts = 3;        ///< per-candidate retry budget
  bool abft = false;           ///< online SDC containment
};

/// Runs the shard to completion.  Returns a process exit code (0 = all
/// candidates journaled); configuration and I/O errors map through the
/// repo's status taxonomy.  May not return at all when the worker fault
/// plan says so (SIGKILL / hang / torn-tail crash).
[[nodiscard]] int run_worker(const WorkerArgs& args);

}  // namespace inplane::distributed
