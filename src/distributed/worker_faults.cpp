#include "distributed/worker_faults.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "core/status.hpp"

namespace inplane::distributed {

const char* to_string(WorkerFaultKind kind) {
  switch (kind) {
    case WorkerFaultKind::Kill: return "kill";
    case WorkerFaultKind::Hang: return "hang";
    case WorkerFaultKind::CorruptTail: return "corrupt";
    case WorkerFaultKind::Slow: return "slow";
  }
  return "unknown";
}

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void bad(const std::string& clause, const std::string& why) {
  throw InvalidConfigError("worker fault plan: bad clause '" + clause + "': " + why);
}

std::int64_t parse_int(const std::string& clause, const std::string& text,
                       const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(text, &used);
    if (used != text.size() || v < 0) bad(clause, std::string("bad ") + what);
    return v;
  } catch (const InvalidConfigError&) {
    throw;
  } catch (const std::exception&) {
    bad(clause, std::string("bad ") + what);
  }
}

double parse_ms(const std::string& clause, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || v < 0.0) bad(clause, "bad millisecond value");
    return v;
  } catch (const InvalidConfigError&) {
    throw;
  } catch (const std::exception&) {
    bad(clause, "bad millisecond value");
  }
}

// Consumes trailing ":wI" / ":gI" / ":g*" suffixes from an already-split
// clause body; @p body arrives as everything after the kind token.
void parse_suffixes(const std::string& clause, std::vector<std::string> parts,
                    WorkerFaultRule& rule) {
  for (const std::string& raw : parts) {
    const std::string p = strip(raw);
    if (p.size() >= 2 && p[0] == 'w') {
      rule.worker = static_cast<int>(parse_int(clause, p.substr(1), "worker index"));
    } else if (p == "g*") {
      rule.generation = -1;
    } else if (p.size() >= 2 && p[0] == 'g') {
      rule.generation =
          static_cast<int>(parse_int(clause, p.substr(1), "generation index"));
    } else {
      bad(clause, "unknown suffix '" + p + "' (expected :wI, :gI, or :g*)");
    }
  }
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

WorkerFaultRule parse_clause(const std::string& clause) {
  WorkerFaultRule rule;
  std::vector<std::string> parts = split(clause, ':');
  const std::string head = strip(parts.front());
  parts.erase(parts.begin());

  const std::size_t at_pos = head.find('@');
  const std::size_t eq_pos = head.find('=');
  if (at_pos != std::string::npos) {
    const std::string kind = strip(head.substr(0, at_pos));
    const std::string arg = strip(head.substr(at_pos + 1));
    if (kind == "kill") {
      rule.kind = WorkerFaultKind::Kill;
    } else if (kind == "hang") {
      rule.kind = WorkerFaultKind::Hang;
    } else if (kind == "corrupt") {
      rule.kind = WorkerFaultKind::CorruptTail;
    } else {
      bad(clause, "unknown fault kind '" + kind + "'");
    }
    rule.at = parse_int(clause, arg, "candidate count");
    if (rule.at < 1) bad(clause, "candidate count must be >= 1");
  } else if (eq_pos != std::string::npos) {
    const std::string kind = strip(head.substr(0, eq_pos));
    if (kind != "slow") bad(clause, "unknown fault kind '" + kind + "'");
    rule.kind = WorkerFaultKind::Slow;
    rule.slow_ms = parse_ms(clause, strip(head.substr(eq_pos + 1)));
  } else {
    bad(clause, "expected kill@K, hang@K, corrupt@K, or slow=MS");
  }

  parse_suffixes(clause, std::move(parts), rule);
  return rule;
}

}  // namespace

WorkerFaultPlan WorkerFaultPlan::parse(const std::string& spec) {
  WorkerFaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string clause = strip(raw);
    if (clause.empty()) continue;
    plan.rules.push_back(parse_clause(clause));
  }
  return plan;
}

std::string WorkerFaultPlan::to_string() const {
  std::string out;
  for (const WorkerFaultRule& r : rules) {
    if (!out.empty()) out += "; ";
    out += inplane::distributed::to_string(r.kind);
    if (r.kind == WorkerFaultKind::Slow) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "=%g", r.slow_ms);
      out += buf;
    } else {
      out += "@" + std::to_string(r.at);
    }
    if (r.worker >= 0) out += ":w" + std::to_string(r.worker);
    if (r.generation < 0) {
      out += ":g*";
    } else if (r.generation != 0) {
      out += ":g" + std::to_string(r.generation);
    }
  }
  return out;
}

std::vector<WorkerFaultRule> WorkerFaultPlan::for_worker(int slot, int gen) const {
  std::vector<WorkerFaultRule> out;
  for (const WorkerFaultRule& r : rules) {
    if (r.applies_to(slot, gen)) out.push_back(r);
  }
  return out;
}

}  // namespace inplane::distributed
