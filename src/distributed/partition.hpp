#pragma once

// Work partitioning for the distributed sweep engine: how one tuning
// sweep's candidate list is sharded across N worker processes, and how a
// dead worker's leftovers are re-dealt onto the survivors.  Everything
// here is pure and deterministic — the supervisor's failover decisions
// must replay identically when a killed sweep is resumed.

#include <cstddef>
#include <string>
#include <vector>

#include "core/extent.hpp"

namespace inplane::distributed {

/// How the sweep is sharded across workers.
///  * Candidates: the candidate list is dealt round-robin; every worker
///    measures its candidates on the full grid.  Merged results are
///    bit-identical to the single-process sweep.
///  * Slabs: the grid is cut into per-worker z-slabs (workers stand in
///    for cluster nodes); candidates are still dealt round-robin but
///    measured on the slab extent, and the supervisor composes full-grid
///    timing from the slab time plus the inter-node halo-exchange term
///    (multigpu::internode_exchange_seconds).
enum class PartitionMode { Candidates, Slabs };

[[nodiscard]] const char* to_string(PartitionMode mode);
/// Parses "candidates" | "slabs"; throws InvalidConfigError otherwise.
[[nodiscard]] PartitionMode partition_mode_from(const std::string& name);

/// Deals items [0, n) onto @p workers shards round-robin: item i lands
/// on shard i % workers.  Shards are near-equal (sizes differ by at most
/// one) and interleaved, so the expensive low-ordinal candidates of a
/// ranked sweep spread across all workers instead of piling onto shard 0.
/// Throws InvalidConfigError when workers < 1.
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_round_robin(
    std::size_t n, int workers);

/// Re-deals a dead worker's remaining item list onto @p survivors piles
/// (indexes into the returned outer vector, round-robin again).  The
/// pile order is the caller's survivor order, so resharding is as
/// deterministic as the partition itself.
[[nodiscard]] std::vector<std::vector<std::size_t>> reshard_round_robin(
    std::size_t n_remaining, int survivors);

/// The per-worker z-slab of @p full for the slab partition mode.  Throws
/// InvalidConfigError unless nz divides evenly into slabs at least
/// @p radius deep — same decomposition rule as multigpu::MultiGpuStencil.
[[nodiscard]] Extent3 slab_extent(const Extent3& full, int workers, int radius);

}  // namespace inplane::distributed
