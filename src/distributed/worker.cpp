#include "distributed/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/status.hpp"
#include "distributed/heartbeat.hpp"
#include "distributed/worker_faults.hpp"
#include "gpusim/fault_injector.hpp"

namespace inplane::distributed {

namespace {

struct ShardItem {
  std::int64_t ordinal = 0;
  kernels::LaunchConfig config;
};

std::vector<ShardItem> read_shard(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("worker: cannot read shard file " + path);
  }
  std::vector<ShardItem> items;
  ShardItem item;
  long long ordinal = 0;
  while (in >> ordinal >> item.config.tx >> item.config.ty >> item.config.rx >>
         item.config.ry >> item.config.vec) {
    if (ordinal < 0) throw IoError("worker: negative ordinal in " + path);
    item.ordinal = ordinal;
    items.push_back(item);
  }
  if (!in.eof()) {
    throw IoError("worker: malformed shard line in " + path);
  }
  return items;
}

/// Appends a deliberately torn record (a length/CRC frame whose payload
/// never arrives) to the shard journal — byte-for-byte what a worker
/// killed mid-append leaves behind — then dies without unwinding, like
/// the real crash would.
[[noreturn]] void corrupt_tail_and_die(const std::string& journal_path) {
  std::FILE* f = std::fopen(journal_path.c_str(), "ab");
  if (f != nullptr) {
    const std::uint32_t len = 4096;   // promises far more payload than follows
    const std::uint32_t crc = 0xDEADBEEFu;
    std::fwrite(&len, sizeof(len), 1, f);
    std::fwrite(&crc, sizeof(crc), 1, f);
    const char torn[] = "torn";
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fflush(f);
    std::fclose(f);
  }
  std::_Exit(9);
}

[[noreturn]] void hang_forever() {
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

template <typename T>
int run_impl(const WorkerArgs& args) {
  const gpusim::DeviceSpec device = resolve_device(args.spec.device);
  const kernels::Method method = resolve_method(args.spec.method);
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(args.spec.radius());
  const Extent3 extent = measure_extent(args.spec, args.mode, args.workers);

  const std::vector<ShardItem> shard = read_shard(args.shard_path);
  const std::vector<WorkerFaultRule> rules =
      WorkerFaultPlan::parse(args.fault_spec).for_worker(args.slot,
                                                         args.generation);
  double slow_ms = 0.0;
  for (const WorkerFaultRule& r : rules) {
    if (r.kind == WorkerFaultKind::Slow) slow_ms = std::max(slow_ms, r.slow_ms);
  }

  std::optional<gpusim::FaultInjector> injector;
  if (!args.sim_fault_spec.empty()) {
    injector.emplace(gpusim::FaultPlan::parse(args.sim_fault_spec));
  }
  autotune::TuneOptions opts;
  opts.max_attempts = args.max_attempts;
  opts.abft = args.abft;
  if (injector) opts.faults = &*injector;

  autotune::CheckpointJournal journal;
  journal.open(args.journal_path, checkpoint_key(args.spec, extent));

  Heartbeat hb;
  write_heartbeat(args.heartbeat_path, hb);

  std::size_t fresh = 0;
  for (const ShardItem& item : shard) {
    hb.seq += 1;
    write_heartbeat(args.heartbeat_path, hb);
    if (journal.find(item.config)) {
      // Already measured by a previous generation of this slot — the
      // respawn skips it, which is the whole point of the shard journal.
      hb.done += 1;
      continue;
    }
    if (slow_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slow_ms));
    }
    const autotune::TuneEntry entry = autotune::measure_single_candidate<T>(
        method, coeffs, device, extent, item.config, item.ordinal, opts);
    journal.append(entry);
    fresh += 1;
    hb.seq += 1;
    hb.done += 1;
    write_heartbeat(args.heartbeat_path, hb);

    for (const WorkerFaultRule& r : rules) {
      if (static_cast<std::int64_t>(fresh) != r.at) continue;
      switch (r.kind) {
        case WorkerFaultKind::Kill:
#ifdef SIGKILL
          std::raise(SIGKILL);
#else
          std::abort();
#endif
          break;
        case WorkerFaultKind::Hang:
          hang_forever();
        case WorkerFaultKind::CorruptTail:
          corrupt_tail_and_die(args.journal_path);
        case WorkerFaultKind::Slow:
          break;
      }
    }
  }
  hb.seq += 1;
  write_heartbeat(args.heartbeat_path, hb);
  return 0;
}

}  // namespace

int run_worker(const WorkerArgs& args) {
  try {
    if (args.spec.double_precision) return run_impl<double>(args);
    return run_impl<float>(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker %d (gen %d): %s\n", args.slot, args.generation,
                 e.what());
    return exit_code(status_of(e));
  }
}

}  // namespace inplane::distributed
