#pragma once

// The shared description of one distributed tuning sweep.  Supervisor and
// worker processes communicate through the command line and the
// filesystem, so both sides re-derive everything else — the device, the
// coefficients, the candidate ordering, the journal fingerprint — from
// this spec with the *same* deterministic code.  That shared derivation
// is what makes the merged distributed result bit-identical to the
// single-process sweep: a worker measuring ordinal k runs exactly the
// measurement the in-process tuner would have run for slot k.

#include <cstddef>
#include <string>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/extent.hpp"
#include "distributed/partition.hpp"
#include "gpusim/device.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::distributed {

struct SweepSpec {
  std::string method = "fullslice";  ///< kernel family (CLI names)
  std::string device = "gtx580";     ///< device preset or .device path
  Extent3 extent{512, 512, 64};      ///< full grid
  int order = 8;                     ///< stencil order (radius = order / 2)
  bool double_precision = false;
  std::string kind = "exhaustive";   ///< "exhaustive" | "model"
  double beta = 0.05;                ///< model-guided measured fraction

  [[nodiscard]] int radius() const { return order / 2; }
  [[nodiscard]] std::size_t elem_size() const {
    return double_precision ? sizeof(double) : sizeof(float);
  }
};

/// CLI method names -> kernels::Method; throws InvalidConfigError on an
/// unknown name.  Same vocabulary as the `inplane` CLI.
[[nodiscard]] kernels::Method resolve_method(const std::string& name);

/// Device presets (gtx580 | gtx680 | c2070 | c2050) or a path to a
/// .device description file; throws InvalidConfigError otherwise.
[[nodiscard]] gpusim::DeviceSpec resolve_device(const std::string& name);

/// The grid each worker actually measures on: the full grid for
/// candidate partitioning, the per-worker z-slab for slab partitioning.
[[nodiscard]] Extent3 measure_extent(const SweepSpec& spec, PartitionMode mode,
                                     int workers);

/// The journal identity every shard journal of this sweep carries.  All
/// workers and the supervisor must agree on it, or merge_journals would
/// (correctly) refuse the shards.
[[nodiscard]] autotune::CheckpointKey checkpoint_key(const SweepSpec& spec,
                                                     const Extent3& measured);

/// The sweep's candidate schedule, in ordinal order.
struct CandidatePlan {
  /// Constraint-satisfying candidates as (config, model prediction)
  /// pairs, in *ordinal* order: enumeration order for an exhaustive
  /// sweep, model-ranked order for a model-guided one.  Only `config`
  /// and `model_mpoints` are populated.
  std::vector<autotune::TuneEntry> entries;
  /// The measured prefix: entries[0, n_measure) are dealt to workers;
  /// the tail stays un-executed with predictions attached (the
  /// section-VI cutoff), exactly as in the in-process tuner.
  std::size_t n_measure = 0;
};

/// Reproduces the in-process tuner's candidate ordering (including the
/// model-guided ranking sort, applied with the identical comparator so
/// tied predictions permute identically) for @p measured — the extent
/// the candidates will be measured on.
[[nodiscard]] CandidatePlan plan_candidates(const SweepSpec& spec,
                                            const gpusim::DeviceSpec& device,
                                            const Extent3& measured);

}  // namespace inplane::distributed
