#include "distributed/partition.hpp"

#include "core/status.hpp"

namespace inplane::distributed {

const char* to_string(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::Candidates: return "candidates";
    case PartitionMode::Slabs: return "slabs";
  }
  return "unknown";
}

PartitionMode partition_mode_from(const std::string& name) {
  if (name == "candidates") return PartitionMode::Candidates;
  if (name == "slabs") return PartitionMode::Slabs;
  throw InvalidConfigError("unknown partition mode '" + name +
                           "' (candidates | slabs)");
}

std::vector<std::vector<std::size_t>> partition_round_robin(std::size_t n,
                                                            int workers) {
  if (workers < 1) {
    throw InvalidConfigError("partition_round_robin: need at least one worker");
  }
  std::vector<std::vector<std::size_t>> shards(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % static_cast<std::size_t>(workers)].push_back(i);
  }
  return shards;
}

std::vector<std::vector<std::size_t>> reshard_round_robin(std::size_t n_remaining,
                                                          int survivors) {
  if (survivors < 1) {
    throw InvalidConfigError("reshard_round_robin: no surviving workers");
  }
  return partition_round_robin(n_remaining, survivors);
}

Extent3 slab_extent(const Extent3& full, int workers, int radius) {
  if (workers < 1) {
    throw InvalidConfigError("slab_extent: need at least one worker");
  }
  if (full.nz % workers != 0) {
    throw InvalidConfigError("slab_extent: nz (" + std::to_string(full.nz) +
                             ") not divisible by the worker count (" +
                             std::to_string(workers) + ")");
  }
  const auto slab_nz = full.nz / workers;
  if (slab_nz < radius) {
    throw InvalidConfigError("slab_extent: slabs shallower than the stencil radius");
  }
  return {full.nx, full.ny, slab_nz};
}

}  // namespace inplane::distributed
