#include "distributed/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/process.hpp"
#include "core/status.hpp"
#include "distributed/heartbeat.hpp"
#include "metrics/metrics.hpp"
#include "multigpu/multi_gpu.hpp"

namespace inplane::distributed {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Supervision instruments (scope "distributed").
struct DistMetrics {
  metrics::Counter& workers_spawned;
  metrics::Counter& workers_lost;
  metrics::Counter& candidates_resharded;
  metrics::Counter& journal_merge_dups;

  static DistMetrics& get() {
    static DistMetrics m = [] {
      auto& reg = metrics::Registry::global();
      return DistMetrics{
          reg.counter("distributed.workers_spawned"),
          reg.counter("distributed.workers_lost"),
          reg.counter("distributed.candidates_resharded"),
          reg.counter("distributed.journal_merge_dups"),
      };
    }();
    return m;
  }
};

std::string config_key(const kernels::LaunchConfig& c) {
  return std::to_string(c.tx) + "," + std::to_string(c.ty) + "," +
         std::to_string(c.rx) + "," + std::to_string(c.ry) + "," +
         std::to_string(c.vec);
}

/// Config keys already journaled for @p key across the shard journals in
/// @p dir (read-only; tolerates torn tails and foreign fingerprints).
std::set<std::string> measured_keys(const std::vector<std::string>& paths,
                                    const autotune::CheckpointKey& key) {
  std::set<std::string> out;
  for (const std::string& p : paths) {
    const autotune::JournalContents c = autotune::read_journal(p, key);
    if (!c.fingerprint_match) continue;
    for (const autotune::TuneEntry& e : c.entries) out.insert(config_key(e.config));
  }
  return out;
}

/// All shard journals ("worker_*.iptj") currently in @p dir, sorted.  A
/// resumed sweep may find journals from a run with a different worker
/// count; merging by directory scan adopts them all.
std::vector<std::string> journal_paths_in(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("worker_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".iptj") {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct Slot {
  int index = 0;
  std::vector<std::size_t> queue;  ///< indices into the measured prefix
  core::ChildProcess proc;
  bool running = false;
  bool done = false;
  bool dead = false;
  int spawns = 0;          ///< generation of the next spawn
  int respawns_used = 0;   ///< crash-triggered respawns consumed
  bool lost = false;       ///< ever crashed or hung
  std::string last_exit;
  std::uint64_t last_seq = 0;
  /// Liveness deadline, re-armed on every heartbeat advance.  A fired
  /// token is sticky (CancelToken semantics), so each spawn gets a fresh
  /// one; hung detection is exactly "this spawn's token fired".
  std::unique_ptr<CancelToken> liveness;
  bool in_backoff = false;
  Clock::time_point backoff_until{};
  double next_backoff_ms = 0.0;
};

struct Sweep {
  const SupervisorOptions& opts;
  gpusim::DeviceSpec device;
  Extent3 measured_ext;
  autotune::CheckpointKey key;
  CandidatePlan plan;
  std::vector<Slot> slots;
  SweepReport report;

  explicit Sweep(const SupervisorOptions& o)
      : opts(o),
        device(resolve_device(o.spec.device)),
        measured_ext(measure_extent(o.spec, o.mode, o.workers)),
        key(checkpoint_key(o.spec, measured_ext)),
        plan(plan_candidates(o.spec, device, measured_ext)) {}

  [[nodiscard]] const kernels::LaunchConfig& config_of(std::size_t idx) const {
    return plan.entries[idx].config;
  }

  /// The slot's queue minus what its own journal already holds.
  [[nodiscard]] std::vector<std::size_t> remaining_of(const Slot& s) const {
    const std::set<std::string> have =
        measured_keys({journal_path(opts.checkpoint_dir, s.index)}, key);
    std::vector<std::size_t> rest;
    for (std::size_t idx : s.queue) {
      if (have.count(config_key(config_of(idx))) == 0) rest.push_back(idx);
    }
    return rest;
  }

  void write_shard(const Slot& s, const std::vector<std::size_t>& items) const {
    const std::string path = shard_path(opts.checkpoint_dir, s.index);
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t idx : items) {
      const kernels::LaunchConfig& c = config_of(idx);
      out << idx << ' ' << c.tx << ' ' << c.ty << ' ' << c.rx << ' ' << c.ry
          << ' ' << c.vec << '\n';
    }
    if (!out.flush()) throw IoError("supervisor: cannot write shard file " + path);
  }

  [[nodiscard]] std::vector<std::string> worker_argv(const Slot& s) const {
    std::vector<std::string> argv = {
        opts.worker_exe, "--worker",
        "--method", opts.spec.method,
        "--device", opts.spec.device,
        "--nx", std::to_string(opts.spec.extent.nx),
        "--ny", std::to_string(opts.spec.extent.ny),
        "--nz", std::to_string(opts.spec.extent.nz),
        "--order", std::to_string(opts.spec.order),
        "--kind", opts.spec.kind,
        "--partition", to_string(opts.mode),
        "--workers", std::to_string(opts.workers),
        "--slot", std::to_string(s.index),
        "--generation", std::to_string(s.spawns),
        "--shard", shard_path(opts.checkpoint_dir, s.index),
        "--journal", journal_path(opts.checkpoint_dir, s.index),
        "--heartbeat", heartbeat_path(opts.checkpoint_dir, s.index),
        "--max-attempts", std::to_string(opts.max_attempts),
    };
    if (opts.spec.double_precision) argv.emplace_back("--dp");
    if (opts.abft) argv.emplace_back("--abft");
    if (!opts.worker_fault_spec.empty()) {
      argv.emplace_back("--worker-fault-plan");
      argv.push_back(opts.worker_fault_spec);
    }
    if (!opts.sim_fault_spec.empty()) {
      argv.emplace_back("--faults");
      argv.push_back(opts.sim_fault_spec);
    }
    return argv;
  }

  /// Spawns the slot on its remaining work; marks it done when none left.
  void spawn(Slot& s) {
    const std::vector<std::size_t> rest = remaining_of(s);
    if (rest.empty()) {
      s.done = true;
      return;
    }
    write_shard(s, rest);
    s.proc = core::ChildProcess::spawn(worker_argv(s));
    s.running = true;
    s.in_backoff = false;
    s.spawns += 1;
    s.last_seq = 0;
    if (const auto hb = read_heartbeat(heartbeat_path(opts.checkpoint_dir, s.index))) {
      s.last_seq = hb->seq;  // stale file from the previous generation
    }
    s.liveness = std::make_unique<CancelToken>();
    s.liveness->set_deadline_ms(opts.heartbeat_deadline_ms);
    report.workers_spawned += 1;
  }

  /// Crash/hang bookkeeping: backoff-respawn while budget remains, else
  /// declare the slot dead and re-deal its remainder onto survivors.
  void on_lost(Slot& s, const std::string& why) {
    s.running = false;
    s.lost = true;
    s.last_exit = why;
    report.workers_lost += 1;
    if (s.respawns_used < opts.retry_budget) {
      s.respawns_used += 1;
      s.in_backoff = true;
      if (s.next_backoff_ms <= 0.0) s.next_backoff_ms = opts.backoff_initial_ms;
      s.backoff_until =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 s.next_backoff_ms));
      s.next_backoff_ms *= opts.backoff_multiplier;
      return;
    }
    s.dead = true;
    reshard(s);
  }

  void reshard(Slot& dead_slot) {
    const std::vector<std::size_t> rest = remaining_of(dead_slot);
    dead_slot.queue.clear();
    if (rest.empty()) return;
    std::vector<Slot*> survivors;
    for (Slot& s : slots) {
      if (!s.dead) survivors.push_back(&s);
    }
    if (survivors.empty()) return;  // nobody left; the sweep ends incomplete
    const auto piles =
        reshard_round_robin(rest.size(), static_cast<int>(survivors.size()));
    for (std::size_t w = 0; w < survivors.size(); ++w) {
      for (std::size_t j : piles[w]) survivors[w]->queue.push_back(rest[j]);
      if (!piles[w].empty()) survivors[w]->done = false;  // revive finished slots
    }
    report.candidates_resharded += rest.size();
    std::fprintf(stderr,
                 "supervisor: worker %d dead after %d spawns; resharded %zu "
                 "candidates onto %zu survivors\n",
                 dead_slot.index, dead_slot.spawns, rest.size(),
                 survivors.size());
  }

  void kill_all() {
    for (Slot& s : slots) {
      if (s.running) {
        s.proc.kill_hard();
        (void)s.proc.wait();
        s.running = false;
      }
    }
  }

  void poll_slot(Slot& s) {
    if (const auto st = s.proc.poll()) {
      s.running = false;
      s.last_exit = st->to_string();
      if (!st->success()) {
        on_lost(s, st->to_string());
        return;
      }
      // Clean exit: finished its shard file — but resharding may have
      // grown the queue since the spawn, in which case the next loop
      // iteration respawns it (no backoff: nothing failed).
      if (remaining_of(s).empty()) s.done = true;
      return;
    }
    const auto hb = read_heartbeat(heartbeat_path(opts.checkpoint_dir, s.index));
    if (hb && hb->seq > s.last_seq) {
      s.last_seq = hb->seq;
      s.liveness->set_deadline_ms(opts.heartbeat_deadline_ms);
    } else if (s.liveness->cancelled()) {
      s.proc.kill_hard();
      (void)s.proc.wait();
      on_lost(s, "hung (heartbeat stalled; killed by supervisor)");
    }
  }

  void supervise() {
    for (;;) {
      if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        kill_all();
        check_cancelled(opts.cancel);  // raises ResourceExhaustedError
      }
      bool settled = true;
      for (Slot& s : slots) {
        if (s.done || s.dead) continue;
        settled = false;
        if (s.running) {
          poll_slot(s);
        } else if (!s.in_backoff || Clock::now() >= s.backoff_until) {
          spawn(s);
        }
      }
      if (settled) break;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          opts.poll_interval_ms));
    }
  }
};

}  // namespace

std::string shard_path(const std::string& dir, int slot) {
  return dir + "/worker_" + std::to_string(slot) + ".shard";
}
std::string journal_path(const std::string& dir, int slot) {
  return dir + "/worker_" + std::to_string(slot) + ".iptj";
}
std::string heartbeat_path(const std::string& dir, int slot) {
  return dir + "/worker_" + std::to_string(slot) + ".hb";
}

SweepReport run_distributed_sweep(const SupervisorOptions& options) {
  if (options.workers < 1) {
    throw InvalidConfigError("supervisor: need at least one worker");
  }
  if (options.checkpoint_dir.empty()) {
    throw InvalidConfigError("supervisor: --checkpoint-dir is required");
  }
  if (options.worker_exe.empty()) {
    throw InvalidConfigError("supervisor: worker executable path is empty");
  }
  std::error_code ec;
  fs::create_directories(options.checkpoint_dir, ec);
  if (ec) {
    throw IoError("supervisor: cannot create " + options.checkpoint_dir);
  }

  Sweep sweep(options);

  // A fresh (non-resume) run must not adopt stale shard state.
  if (!options.resume) {
    for (const std::string& p : journal_paths_in(options.checkpoint_dir)) {
      fs::remove(p, ec);
    }
    for (int i = 0; i < options.workers; ++i) {
      fs::remove(shard_path(options.checkpoint_dir, i), ec);
      fs::remove(heartbeat_path(options.checkpoint_dir, i), ec);
    }
  }

  // What is already on disk (a resumed sweep) never re-measures.
  const std::set<std::string> pre_measured =
      measured_keys(journal_paths_in(options.checkpoint_dir), sweep.key);
  sweep.report.resumed_entries = pre_measured.size();

  // Deal the not-yet-measured prefix round-robin across the slots.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < sweep.plan.n_measure; ++i) {
    if (pre_measured.count(config_key(sweep.config_of(i))) == 0) todo.push_back(i);
  }
  sweep.slots.resize(static_cast<std::size_t>(options.workers));
  const auto shards = partition_round_robin(todo.size(), options.workers);
  for (int i = 0; i < options.workers; ++i) {
    Slot& s = sweep.slots[static_cast<std::size_t>(i)];
    s.index = i;
    for (std::size_t j : shards[static_cast<std::size_t>(i)]) {
      s.queue.push_back(todo[j]);
    }
    if (s.queue.empty()) s.done = true;
  }

  sweep.supervise();

  // Merge the shard journals and rebuild the single-process entry list:
  // measured entries come from the journals (first record wins), the
  // model predictions are re-attached from the plan (the journal stores
  // the pre-overwrite value, exactly like the in-process resume path),
  // and the un-measured tail keeps its predictions.
  SweepReport& report = sweep.report;
  std::vector<autotune::TuneEntry> merged = autotune::merge_journals(
      journal_paths_in(options.checkpoint_dir), sweep.key, &report.merge);
  report.journal_merge_dups = report.merge.duplicates;
  std::map<std::string, const autotune::TuneEntry*> by_config;
  for (const autotune::TuneEntry& e : merged) {
    by_config.emplace(config_key(e.config), &e);
  }

  const double exchange =
      options.mode == PartitionMode::Slabs
          ? [&] {
              multigpu::MultiGpuOptions mg;
              mg.internode_bw_gbs = options.internode_bw_gbs;
              mg.internode_latency_us = options.internode_latency_us;
              return multigpu::internode_exchange_seconds(
                  options.spec.extent, options.spec.radius(),
                  options.spec.elem_size(), options.workers, mg);
            }()
          : 0.0;

  std::vector<autotune::TuneEntry> entries = sweep.plan.entries;
  for (std::size_t i = 0; i < sweep.plan.n_measure; ++i) {
    const auto it = by_config.find(config_key(entries[i].config));
    if (it == by_config.end()) {
      report.unmeasured += 1;
      continue;
    }
    const double predicted = entries[i].model_mpoints;
    entries[i] = *it->second;
    entries[i].model_mpoints = predicted;
    entries[i].resumed =
        options.resume && pre_measured.count(config_key(entries[i].config)) != 0;
    if (options.mode == PartitionMode::Slabs && entries[i].timing.valid) {
      // Slab composition: nodes step their slabs concurrently, then
      // exchange halo planes over the inter-node link — one full-grid
      // iteration costs the slab time plus the exchange term.
      entries[i].timing.seconds += exchange;
      entries[i].timing.mpoints_per_s =
          static_cast<double>(options.spec.extent.volume()) /
          entries[i].timing.seconds / 1e6;
    }
  }
  report.complete = report.unmeasured == 0;
  report.result = autotune::assemble_result(
      std::move(entries), sweep.plan.entries.size() - sweep.plan.n_measure);

  for (const Slot& s : sweep.slots) {
    WorkerAttribution a;
    a.slot = s.index;
    a.spawns = s.spawns;
    a.lost_process = s.lost;
    a.dead = s.dead;
    a.last_exit = s.last_exit;
    const autotune::JournalContents c = autotune::read_journal(
        journal_path(options.checkpoint_dir, s.index), sweep.key);
    a.measured = c.fingerprint_match ? c.entries.size() : 0;
    report.per_worker.push_back(std::move(a));
  }

  if (metrics::enabled()) {
    DistMetrics& m = DistMetrics::get();
    m.workers_spawned.add(report.workers_spawned);
    m.workers_lost.add(report.workers_lost);
    m.candidates_resharded.add(report.candidates_resharded);
    m.journal_merge_dups.add(report.journal_merge_dups);
  }
  return report;
}

}  // namespace inplane::distributed
