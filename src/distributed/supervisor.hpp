#pragma once

// The supervision side of the distributed sweep engine.  One supervisor
// process shards a tuning sweep across N worker OS processes (see
// worker.hpp), then babysits them:
//
//  * liveness:   every worker republishes a heartbeat per candidate; a
//                per-worker CancelToken deadline is re-armed on every
//                heartbeat advance, so a worker whose token fires is
//                *hung* (not merely slow) and is killed;
//  * crashes:    a worker that exits non-zero / dies of a signal is
//                respawned with exponential backoff, up to a retry
//                budget — its shard journal makes the respawn resume
//                instead of re-measure;
//  * resharding: a slot that exhausts its budget is declared dead and
//                its unmeasured candidates are re-dealt onto survivors;
//  * merging:    on completion the per-slot IPTJ3 journals are merged
//                (fingerprint-checked, CRC-framed, first-record-wins
//                dedup) and assembled into the same TuneResult — same
//                best config, bit for bit — as the single-process sweep;
//  * resuming:   everything above is derived from the journals on disk,
//                so a supervisor that is itself killed restarts with
//                --resume and only the in-flight candidates re-measure.

#include <cstddef>
#include <string>
#include <vector>

#include "autotune/checkpoint.hpp"
#include "autotune/tuner.hpp"
#include "core/cancel.hpp"
#include "distributed/partition.hpp"
#include "distributed/sweep_spec.hpp"

namespace inplane::distributed {

struct SupervisorOptions {
  SweepSpec spec;
  int workers = 2;
  PartitionMode mode = PartitionMode::Candidates;
  /// Directory holding shard files, journals, and heartbeats.  Required;
  /// created if absent.  A resumed sweep must reuse the same directory.
  std::string checkpoint_dir;
  /// The worker executable (normally the supervisor's own binary, which
  /// re-enters as a worker via its hidden --worker mode).
  std::string worker_exe;
  /// A worker whose heartbeat does not advance for this long is hung.
  double heartbeat_deadline_ms = 5000.0;
  double poll_interval_ms = 10.0;
  /// Respawns allowed per slot (beyond the first spawn) before the slot
  /// is declared dead and its remaining candidates reshard.
  int retry_budget = 2;
  double backoff_initial_ms = 50.0;  ///< delay before the first respawn
  double backoff_multiplier = 2.0;   ///< growth per subsequent respawn
  /// Adopt measurements already present in the shard journals (a sweep
  /// interrupted at the supervisor level).  Without it, stale shard
  /// files from a previous run are removed first.
  bool resume = false;
  /// Worker fault plan text (worker_faults.hpp), forwarded verbatim to
  /// every worker; empty = no injected process faults.
  std::string worker_fault_spec;
  /// gpusim::FaultPlan text forwarded to the workers' measurements.
  std::string sim_fault_spec;
  int max_attempts = 3;  ///< per-candidate retry budget inside a worker
  bool abft = false;     ///< online SDC containment inside workers
  /// Supervisor-level cancellation/deadline.  When the token fires, all
  /// live workers are killed and ResourceExhaustedError propagates (the
  /// journals stay resumable).  nullptr = never fires.
  const CancelToken* cancel = nullptr;
  /// Slab mode: inter-node link the full-grid timing composition charges
  /// for halo exchange (multigpu::internode_exchange_seconds).
  double internode_bw_gbs = 1.0;
  double internode_latency_us = 50.0;
};

/// What one worker slot contributed to the sweep.
struct WorkerAttribution {
  int slot = 0;
  int spawns = 0;            ///< processes started on this slot
  std::size_t measured = 0;  ///< valid records in the slot's journal
  bool lost_process = false; ///< at least one process crashed/hung
  bool dead = false;         ///< retry budget exhausted; shard resharded
  std::string last_exit;     ///< human-readable last exit status
};

/// Outcome of a distributed sweep.
struct SweepReport {
  autotune::TuneResult result;
  bool complete = false;          ///< every planned candidate measured
  std::size_t unmeasured = 0;     ///< planned candidates with no record
  std::size_t workers_spawned = 0;
  std::size_t workers_lost = 0;   ///< processes that crashed or hung
  std::size_t candidates_resharded = 0;
  std::size_t journal_merge_dups = 0;
  std::size_t resumed_entries = 0;  ///< adopted from a previous run (--resume)
  autotune::MergeStats merge;
  std::vector<WorkerAttribution> per_worker;
};

/// Shard-file layout helpers (shared with the worker CLI and the tests).
[[nodiscard]] std::string shard_path(const std::string& dir, int slot);
[[nodiscard]] std::string journal_path(const std::string& dir, int slot);
[[nodiscard]] std::string heartbeat_path(const std::string& dir, int slot);

/// Runs the sweep to completion (or to cancellation).  Throws
/// InvalidConfigError for bad options, IoError for filesystem failures,
/// ResourceExhaustedError when options.cancel fires.  A sweep that ends
/// with dead slots still holding work returns complete == false with the
/// survivors' results merged.
[[nodiscard]] SweepReport run_distributed_sweep(const SupervisorOptions& options);

}  // namespace inplane::distributed
