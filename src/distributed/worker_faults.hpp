#pragma once

// Process-level fault plans for the supervision layer — the distributed
// counterpart of gpusim::FaultPlan.  Where the PR 2 injector corrupts
// loads inside one simulated kernel, these rules make a whole *worker
// process* misbehave at a deterministic point, so every supervisor
// recovery path (crash detection, hung-worker kill, torn-journal resume,
// slow-worker tolerance) is testable bit-for-bit:
//
//   kill@K     raise(SIGKILL) once K candidates have been journaled
//   hang@K     stop heartbeating and sleep forever after K candidates
//              (the supervisor's liveness deadline must catch it)
//   corrupt@K  append a torn record to the shard journal after K
//              candidates, then exit non-zero (exercises CRC framing
//              plus crash recovery together)
//   slow=MS    sleep MS milliseconds before each measurement (must NOT
//              be treated as hung while heartbeats keep advancing)
//
// Each clause takes optional suffixes `:wI` (only worker slot I;
// default: every slot) and `:gI` (only spawn generation I on that slot;
// default g0 — the first spawn — so a respawned worker succeeds and the
// failover path completes.  `:g*` fires on every generation, forcing
// the retry budget to exhaust and the reshard path to run).
//
// Example: "kill@2:w0; slow=5:w1" — worker 0's first process dies of
// SIGKILL after its 2nd candidate, worker 1 is permanently slow.

#include <cstdint>
#include <string>
#include <vector>

namespace inplane::distributed {

enum class WorkerFaultKind { Kill, Hang, CorruptTail, Slow };

[[nodiscard]] const char* to_string(WorkerFaultKind kind);

struct WorkerFaultRule {
  WorkerFaultKind kind = WorkerFaultKind::Kill;
  int worker = -1;         ///< slot index; -1 = any slot
  int generation = 0;      ///< spawn index on the slot; -1 = every spawn
  std::int64_t at = 1;     ///< fires once this many candidates are journaled
  double slow_ms = 0.0;    ///< Slow: delay before each measurement

  [[nodiscard]] bool applies_to(int slot, int gen) const {
    return (worker < 0 || worker == slot) &&
           (generation < 0 || generation == gen);
  }
};

struct WorkerFaultPlan {
  std::vector<WorkerFaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Parses the clause syntax above ( ';'-separated, whitespace ignored).
  /// Throws InvalidConfigError on malformed input; an empty/blank spec
  /// yields an empty plan.
  [[nodiscard]] static WorkerFaultPlan parse(const std::string& spec);

  /// Canonical re-rendering of the plan (parse(to_string(p)) == p) —
  /// how the supervisor forwards the plan on worker command lines.
  [[nodiscard]] std::string to_string() const;

  /// The rules that apply to spawn @p gen of worker slot @p slot.
  [[nodiscard]] std::vector<WorkerFaultRule> for_worker(int slot, int gen) const;
};

}  // namespace inplane::distributed
