#include "report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace inplane::report {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) != 0) {
      fail(std::string("expected '") + literal + "'");
    }
    pos_ += n;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case 'n': expect("null"); return Json(nullptr);
      case 't': expect("true"); return Json(true);
      case 'f': expect("false"); return Json(false);
      case '"': return Json(string());
      case '[': return array();
      case '{': return object();
      default: return number();
    }
  }

  /// Four hex digits of a \uXXXX escape.
  unsigned hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = take();
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  std::string string() {
    if (take() != '"') fail("expected string");
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      c = take();
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = hex4();
          // Surrogate pairs (RFC 8259 §7): a high surrogate must be
          // followed by an escaped low surrogate; together they encode
          // one supplementary-plane code point.  Lone or out-of-order
          // surrogates are malformed and rejected loudly — bench
          // metadata must round-trip, never silently mangle.
          if (code >= 0xd800 && code <= 0xdbff) {
            if (take() != '\\' || take() != 'u') {
              fail("high surrogate \\u escape not followed by \\uXXXX");
            }
            const unsigned low = hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("high surrogate \\u escape not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate \\u escape");
          }
          // UTF-8 encode (1-4 bytes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
    ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("malformed number");
    }
    return Json(v);
  }

  Json array() {
    take();  // '['
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return Json(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  Json object() {
    take();  // '{'
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      if (take() != ':') fail("expected ':' in object");
      members[std::move(key)] = value();
      skip_ws();
      const char c = take();
      if (c == '}') return Json(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    // Integral values print without a fractional part — counters stay
    // greppable and the canonical form is stable.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void dump_into(std::string& out, const Json& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Json::Kind::Null: out += "null"; break;
    case Json::Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Kind::Number: number_into(out, v.as_number()); break;
    case Json::Kind::String: escape_into(out, v.as_string()); break;
    case Json::Kind::Array: {
      const auto& items = v.as_array();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Json& item : items) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump_into(out, item, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Json::Kind::Object: {
      const auto& members = v.as_object();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : members) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_into(out, key);
        out += indent < 0 ? ":" : ": ";
        dump_into(out, member, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).run(); }

std::string Json::dump(int indent) const {
  std::string out;
  dump_into(out, *this, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

}  // namespace inplane::report
