#pragma once

#include <string>
#include <vector>

namespace inplane::report {

/// A simple fixed-width ascii table builder used by the bench binaries to
/// print paper-style tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column-aligned cells, a header rule, and optional title.
  [[nodiscard]] std::string render(const std::string& title = "") const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the same content as CSV (RFC-4180-style quoting for cells
  /// containing commas or quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with @p decimals digits after the point.
[[nodiscard]] std::string fmt(double value, int decimals = 1);

/// Horizontal ascii bar chart: one labelled bar per entry, scaled to
/// @p width characters at the maximum value.  Used for the figure benches.
struct Bar {
  std::string label;
  double value = 0.0;
};
[[nodiscard]] std::string bar_chart(const std::string& title,
                                    const std::vector<Bar>& bars, int width = 50,
                                    const std::string& value_suffix = "");

/// Renders a z = f(x, y) performance surface (Fig. 8) as a value grid with
/// row/column labels; invalid points render as "-".
[[nodiscard]] std::string surface(const std::string& title,
                                  const std::vector<std::string>& x_labels,
                                  const std::vector<std::string>& y_labels,
                                  const std::vector<std::vector<double>>& z,
                                  int decimals = 0);

/// Writes @p content to @p path, creating parent directories if needed.
void write_file(const std::string& path, const std::string& content);

}  // namespace inplane::report
