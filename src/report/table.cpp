#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace inplane::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: cell count does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  if (!title.empty()) out += title + "\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| " + row[c] + std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|" + std::string(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string q = "\"";
    for (char ch : cell) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ",";
      out += quote(row[c]);
    }
    out += "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string bar_chart(const std::string& title, const std::vector<Bar>& bars, int width,
                      const std::string& value_suffix) {
  std::string out;
  if (!title.empty()) out += title + "\n";
  double max_value = 0.0;
  std::size_t label_w = 0;
  for (const Bar& b : bars) {
    max_value = std::max(max_value, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  for (const Bar& b : bars) {
    const int n = max_value > 0.0
                      ? static_cast<int>(std::lround(b.value / max_value * width))
                      : 0;
    out += b.label + std::string(label_w - b.label.size(), ' ') + " |" +
           std::string(static_cast<std::size_t>(n), '#') +
           std::string(static_cast<std::size_t>(width - n), ' ') + "| " +
           fmt(b.value, 2) + value_suffix + "\n";
  }
  return out;
}

std::string surface(const std::string& title, const std::vector<std::string>& x_labels,
                    const std::vector<std::string>& y_labels,
                    const std::vector<std::vector<double>>& z, int decimals) {
  if (z.size() != y_labels.size()) {
    throw std::invalid_argument("surface: z row count must match y labels");
  }
  Table table([&] {
    std::vector<std::string> header{""};
    header.insert(header.end(), x_labels.begin(), x_labels.end());
    return header;
  }());
  for (std::size_t y = 0; y < y_labels.size(); ++y) {
    if (z[y].size() != x_labels.size()) {
      throw std::invalid_argument("surface: z column count must match x labels");
    }
    std::vector<std::string> row{y_labels[y]};
    for (double v : z[y]) {
      row.push_back(v > 0.0 ? fmt(v, decimals) : "-");
    }
    table.add_row(std::move(row));
  }
  return table.render(title);
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out << content;
}

}  // namespace inplane::report
