#pragma once

// Schema-versioned machine-readable bench reports (BENCH_<name>.json).
//
// Every bench binary emits one of these next to its CSV: headline
// numbers with explicit better-direction, the full metrics-registry
// snapshot, a config fingerprint and the repo SHA.  tools/bench_diff
// compares two trees of them and fails on regressions; the bench-smoke
// ctest tier validates every emitted file against this schema.  The key
// set and the fingerprint algorithm are pinned by a golden-file test —
// bump kBenchSchemaVersion for any breaking change.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "report/json.hpp"

namespace inplane::report {

inline constexpr int kBenchSchemaVersion = 1;

/// One gate-able result of a bench run.  `noisy` marks wall-clock-derived
/// values that vary across machines; bench_diff skips them by default.
struct HeadlineMetric {
  std::string name;
  double value = 0.0;
  std::string unit;            ///< "mpoints/s", "x", "%", "s", ...
  bool higher_is_better = true;
  bool noisy = false;
};

/// One metrics-registry instrument flattened into the report.
struct MetricSample {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;          ///< counter/gauge
  std::uint64_t count = 0;     ///< histogram sample count
  double sum = 0.0, min = 0.0, max = 0.0;  ///< histogram summary
};

struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string bench;   ///< short name, [a-z0-9_]+, e.g. "fig7_variants"
  bool smoke = false;
  std::string repo_sha = "unknown";
  /// Free-form configuration that must match for two reports to be
  /// comparable (grid, repeats, devices, ...).  Part of the fingerprint.
  std::map<std::string, std::string> config;
  std::vector<HeadlineMetric> headline;
  std::vector<MetricSample> metrics;

  /// CRC-32 over the canonical encoding of (schema_version, bench, smoke,
  /// config) — NOT the repo SHA or any measured value, so reports from
  /// different commits of the same bench configuration stay comparable.
  [[nodiscard]] std::uint32_t fingerprint() const;

  [[nodiscard]] Json to_json() const;

  /// Inverse of to_json; throws std::runtime_error with a message listing
  /// the first schema violation.
  [[nodiscard]] static BenchReport from_json(const Json& doc);
};

/// Validates @p doc against the BENCH schema: exact schema_version, the
/// pinned top-level key set (no missing, no unknown), well-formed
/// headline/metric entries and a fingerprint that matches the recomputed
/// value.  Returns an empty vector when valid.
[[nodiscard]] std::vector<std::string> validate_bench_json(const Json& doc);

/// The repo SHA baked in at configure time ("unknown" outside git).
[[nodiscard]] const char* compiled_repo_sha();

/// Flattens a metrics-registry snapshot into report samples (sorted by
/// name; timers appear as two histogram samples, .wall_s and .cpu_s).
[[nodiscard]] std::vector<MetricSample> metric_samples(const metrics::Registry& registry);

/// Canonical file name for a bench: "BENCH_<name>.json".
[[nodiscard]] std::string bench_report_filename(const std::string& bench);

/// Writes the report (pretty-printed) to @p dir/BENCH_<bench>.json,
/// creating directories as needed.  Returns the path written.
std::string write_bench_report(const BenchReport& report, const std::string& dir);

// ---------------------------------------------------------------------------
// Tree diff (the engine behind tools/bench_diff).

struct BenchDiffOptions {
  double threshold = 0.10;      ///< relative regression that fails (10%)
  bool include_noisy = false;   ///< gate wall-clock-derived headlines too
};

struct BenchDelta {
  std::string bench;
  std::string metric;
  double old_value = 0.0;
  double new_value = 0.0;
  double change = 0.0;  ///< signed relative change, >0 = improvement
  bool regression = false;
  bool skipped_noisy = false;
};

struct BenchDiffResult {
  std::vector<BenchDelta> deltas;       ///< every compared headline metric
  std::vector<std::string> warnings;    ///< missing files, fingerprint drift…
  std::size_t compared_files = 0;

  [[nodiscard]] std::vector<const BenchDelta*> regressions() const;
  [[nodiscard]] bool pass() const { return regressions().empty(); }
};

/// Compares every BENCH_*.json present in @p old_dir against @p new_dir.
/// Files missing on either side, invalid files and fingerprint mismatches
/// produce warnings and are skipped; matching files have their headline
/// metrics gated at options.threshold in the direction each metric
/// declares.  Throws std::runtime_error if either directory is unreadable.
[[nodiscard]] BenchDiffResult diff_bench_trees(const std::string& old_dir,
                                               const std::string& new_dir,
                                               const BenchDiffOptions& options = {});

}  // namespace inplane::report
