#pragma once

// Minimal self-contained JSON value tree, parser and serializer — just
// enough for the BENCH_*.json observability reports (tools/bench_diff,
// the bench-smoke schema validator and their tests).  No external
// dependencies; numbers are doubles (exact for the integral counters the
// reports carry, which stay far below 2^53).

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace inplane::report {

/// Raised by Json::parse on malformed input, with a byte offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Json>;
  /// std::map keeps object keys sorted, which makes dump() canonical —
  /// the fingerprint and the golden-file test rely on that.
  using Object = std::map<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double n) : kind_(Kind::Number), number_(n) {}
  Json(int n) : kind_(Kind::Number), number_(n) {}
  Json(std::uint64_t n) : kind_(Kind::Number), number_(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& as_array() const { return array_; }
  [[nodiscard]] Array& as_array() { return array_; }
  [[nodiscard]] const Object& as_object() const { return object_; }
  [[nodiscard]] Object& as_object() { return object_; }

  /// Object member access; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const {
    if (kind_ != Kind::Object) return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Parses one JSON document.  Raw string bytes pass through as UTF-8;
  /// \uXXXX escapes are decoded to UTF-8, including surrogate pairs for
  /// supplementary-plane characters (lone/malformed surrogates are a
  /// parse error, never silently mangled — serialize -> parse round-trips).
  /// Throws JsonParseError on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(const std::string& text);

  /// Canonical serialization: object keys sorted (std::map order), no
  /// whitespace when @p indent < 0, pretty-printed otherwise.  Numbers
  /// use the shortest round-trip form.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace inplane::report
