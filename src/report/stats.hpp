#pragma once

// Shared wall-clock and summary-statistic helpers for the bench binaries
// and the metrics layer.  These used to be re-implemented ad hoc inside
// bench/*.cpp (median_seconds, seconds_since, ...); one copy lives here
// so the benches, bench_common and the observability reports agree on
// the definitions.

#include <chrono>
#include <vector>

namespace inplane::report {

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  /// Seconds elapsed since construction / the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median of @p samples (sorts a copy; 0.0 when empty).  Even-sized
/// inputs return the upper median, matching the historical bench helper.
[[nodiscard]] double median(std::vector<double> samples);

/// Arithmetic mean (0.0 when empty).
[[nodiscard]] double mean(const std::vector<double>& samples);

/// Population standard deviation (0.0 when fewer than two samples).
[[nodiscard]] double stddev(const std::vector<double>& samples);

/// Linear-interpolated percentile over the sorted samples.  Contract:
/// empty input returns 0.0 (matching median/mean); @p p is clamped into
/// [0, 100], so p = 0 is the minimum and p = 100 exactly the maximum (a
/// single sample returns itself for every p); a NaN @p p returns NaN.
/// Never reads out of bounds.
[[nodiscard]] double percentile(std::vector<double> samples, double p);

}  // namespace inplane::report
