#include "report/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/crc32.hpp"
#include "report/table.hpp"

namespace inplane::report {

namespace {

bool valid_bench_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) return false;
  }
  return true;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

const std::string* get_string(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? &v->as_string() : nullptr;
}

}  // namespace

std::uint32_t BenchReport::fingerprint() const {
  // Canonical encoding: newline-framed fields in fixed order, config as
  // sorted key=value lines (std::map iteration order).  Measured values,
  // headline entries and the repo SHA are deliberately excluded.
  std::string canon = "bench-schema-v" + std::to_string(schema_version) + "\n";
  canon += bench + "\n";
  canon += smoke ? "smoke\n" : "full\n";
  for (const auto& [key, value] : config) {
    canon += key + "=" + value + "\n";
  }
  return crc32(canon.data(), canon.size());
}

Json BenchReport::to_json() const {
  Json::Object root;
  root["schema_version"] = Json(schema_version);
  root["bench"] = Json(bench);
  root["smoke"] = Json(smoke);
  root["repo_sha"] = Json(repo_sha);
  root["fingerprint"] = Json(hex32(fingerprint()));

  Json::Object cfg;
  for (const auto& [key, value] : config) cfg[key] = Json(value);
  root["config"] = Json(std::move(cfg));

  Json::Array head;
  for (const HeadlineMetric& h : headline) {
    Json::Object e;
    e["name"] = Json(h.name);
    e["value"] = Json(h.value);
    e["unit"] = Json(h.unit);
    e["higher_is_better"] = Json(h.higher_is_better);
    e["noisy"] = Json(h.noisy);
    head.push_back(Json(std::move(e)));
  }
  root["headline"] = Json(std::move(head));

  Json::Array mets;
  for (const MetricSample& m : metrics) {
    Json::Object e;
    e["name"] = Json(m.name);
    e["type"] = Json(m.type);
    if (m.type == "histogram") {
      e["count"] = Json(m.count);
      e["sum"] = Json(m.sum);
      e["min"] = Json(m.min);
      e["max"] = Json(m.max);
    } else {
      e["value"] = Json(m.value);
    }
    mets.push_back(Json(std::move(e)));
  }
  root["metrics"] = Json(std::move(mets));
  return Json(std::move(root));
}

BenchReport BenchReport::from_json(const Json& doc) {
  const std::vector<std::string> errors = validate_bench_json(doc);
  if (!errors.empty()) {
    throw std::runtime_error("invalid BENCH json: " + errors.front());
  }
  BenchReport r;
  r.schema_version = static_cast<int>(doc.find("schema_version")->as_number());
  r.bench = doc.find("bench")->as_string();
  r.smoke = doc.find("smoke")->as_bool();
  r.repo_sha = doc.find("repo_sha")->as_string();
  for (const auto& [key, value] : doc.find("config")->as_object()) {
    r.config[key] = value.as_string();
  }
  for (const Json& e : doc.find("headline")->as_array()) {
    HeadlineMetric h;
    h.name = e.find("name")->as_string();
    h.value = e.find("value")->as_number();
    h.unit = e.find("unit")->as_string();
    h.higher_is_better = e.find("higher_is_better")->as_bool();
    h.noisy = e.find("noisy")->as_bool();
    r.headline.push_back(std::move(h));
  }
  for (const Json& e : doc.find("metrics")->as_array()) {
    MetricSample m;
    m.name = e.find("name")->as_string();
    m.type = e.find("type")->as_string();
    if (m.type == "histogram") {
      m.count = static_cast<std::uint64_t>(e.find("count")->as_number());
      m.sum = e.find("sum")->as_number();
      m.min = e.find("min")->as_number();
      m.max = e.find("max")->as_number();
    } else {
      m.value = e.find("value")->as_number();
    }
    r.metrics.push_back(std::move(m));
  }
  return r;
}

std::vector<std::string> validate_bench_json(const Json& doc) {
  std::vector<std::string> errors;
  if (!doc.is_object()) return {"document is not a JSON object"};

  // Pinned top-level key set: nothing missing, nothing unknown.  A field
  // rename breaks here (and in the golden test) instead of silently
  // disappearing from bench_diff's comparisons.
  static const char* kKeys[] = {"schema_version", "bench",    "smoke", "repo_sha",
                                "fingerprint",    "config",   "headline", "metrics"};
  for (const char* key : kKeys) {
    if (doc.find(key) == nullptr) errors.push_back(std::string("missing key: ") + key);
  }
  for (const auto& [key, value] : doc.as_object()) {
    bool known = false;
    for (const char* k : kKeys) known = known || key == k;
    if (!known) errors.push_back("unknown key: " + key);
  }
  if (!errors.empty()) return errors;

  const Json* version = doc.find("schema_version");
  if (!version->is_number() ||
      static_cast<int>(version->as_number()) != kBenchSchemaVersion) {
    errors.push_back("schema_version must be " + std::to_string(kBenchSchemaVersion));
  }
  const std::string* bench = get_string(doc, "bench");
  if (bench == nullptr || !valid_bench_name(*bench)) {
    errors.push_back("bench must be a non-empty [a-z0-9_]+ string");
  }
  if (!doc.find("smoke")->is_bool()) errors.push_back("smoke must be a bool");
  if (get_string(doc, "repo_sha") == nullptr) {
    errors.push_back("repo_sha must be a string");
  }
  const Json* config = doc.find("config");
  if (!config->is_object()) {
    errors.push_back("config must be an object");
  } else {
    for (const auto& [key, value] : config->as_object()) {
      if (!value.is_string()) errors.push_back("config." + key + " must be a string");
    }
  }
  const Json* headline = doc.find("headline");
  if (!headline->is_array()) {
    errors.push_back("headline must be an array");
  } else {
    for (const Json& e : headline->as_array()) {
      if (!e.is_object() || get_string(e, "name") == nullptr ||
          e.find("value") == nullptr || !e.find("value")->is_number() ||
          !std::isfinite(e.find("value")->as_number()) ||
          get_string(e, "unit") == nullptr || e.find("higher_is_better") == nullptr ||
          !e.find("higher_is_better")->is_bool() || e.find("noisy") == nullptr ||
          !e.find("noisy")->is_bool()) {
        errors.push_back("malformed headline entry");
        break;
      }
    }
  }
  const Json* metrics = doc.find("metrics");
  if (!metrics->is_array()) {
    errors.push_back("metrics must be an array");
  } else {
    for (const Json& e : metrics->as_array()) {
      const std::string* type = e.is_object() ? get_string(e, "type") : nullptr;
      const bool ok =
          type != nullptr && get_string(e, "name") != nullptr &&
          (*type == "histogram"
               ? (e.find("count") != nullptr && e.find("count")->is_number() &&
                  e.find("sum") != nullptr && e.find("sum")->is_number() &&
                  e.find("min") != nullptr && e.find("min")->is_number() &&
                  e.find("max") != nullptr && e.find("max")->is_number())
               : ((*type == "counter" || *type == "gauge") &&
                  e.find("value") != nullptr && e.find("value")->is_number()));
      if (!ok) {
        errors.push_back("malformed metrics entry");
        break;
      }
    }
  }
  if (!errors.empty()) return errors;

  // Fingerprint must match the canonical recomputation, so a report
  // cannot claim comparability with a config it was not produced by.
  const BenchReport probe = [&] {
    BenchReport r;
    r.schema_version = static_cast<int>(version->as_number());
    r.bench = *bench;
    r.smoke = doc.find("smoke")->as_bool();
    for (const auto& [key, value] : config->as_object()) {
      r.config[key] = value.as_string();
    }
    return r;
  }();
  if (*get_string(doc, "fingerprint") != hex32(probe.fingerprint())) {
    errors.push_back("fingerprint does not match config");
  }
  return errors;
}

const char* compiled_repo_sha() {
#ifdef INPLANE_REPO_SHA
  return INPLANE_REPO_SHA;
#else
  return "unknown";
#endif
}

std::vector<MetricSample> metric_samples(const metrics::Registry& registry) {
  std::vector<MetricSample> out;
  for (const metrics::SnapshotEntry& e : registry.snapshot()) {
    MetricSample m;
    m.name = e.name;
    switch (e.kind) {
      case metrics::SnapshotEntry::Kind::Counter:
        m.type = "counter";
        m.value = e.value;
        break;
      case metrics::SnapshotEntry::Kind::Gauge:
        m.type = "gauge";
        m.value = e.value;
        break;
      case metrics::SnapshotEntry::Kind::Histogram:
        m.type = "histogram";
        m.count = e.histogram.count;
        m.sum = e.histogram.sum;
        m.min = e.histogram.min;
        m.max = e.histogram.max;
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string bench_report_filename(const std::string& bench) {
  return "BENCH_" + bench + ".json";
}

std::string write_bench_report(const BenchReport& report, const std::string& dir) {
  const std::string path =
      (std::filesystem::path(dir) / bench_report_filename(report.bench)).string();
  write_file(path, report.to_json().dump(2));
  return path;
}

std::vector<const BenchDelta*> BenchDiffResult::regressions() const {
  std::vector<const BenchDelta*> out;
  for (const BenchDelta& d : deltas) {
    if (d.regression) out.push_back(&d);
  }
  return out;
}

BenchDiffResult diff_bench_trees(const std::string& old_dir, const std::string& new_dir,
                                 const BenchDiffOptions& options) {
  namespace fs = std::filesystem;
  for (const std::string& dir : {old_dir, new_dir}) {
    if (!fs::is_directory(dir)) {
      throw std::runtime_error("bench_diff: not a directory: " + dir);
    }
  }
  const auto load_tree = [](const std::string& dir,
                            std::vector<std::string>& warnings) {
    std::map<std::string, BenchReport> reports;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string file = entry.path().filename().string();
      if (file.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") continue;
      try {
        std::ifstream in(entry.path());
        std::stringstream buf;
        buf << in.rdbuf();
        BenchReport r = BenchReport::from_json(Json::parse(buf.str()));
        reports[r.bench] = std::move(r);
      } catch (const std::exception& e) {
        warnings.push_back("skipping " + entry.path().string() + ": " + e.what());
      }
    }
    return reports;
  };

  BenchDiffResult result;
  const auto old_reports = load_tree(old_dir, result.warnings);
  const auto new_reports = load_tree(new_dir, result.warnings);

  for (const auto& [bench, old_report] : old_reports) {
    const auto it = new_reports.find(bench);
    if (it == new_reports.end()) {
      result.warnings.push_back("bench missing from new tree: " + bench);
      continue;
    }
    const BenchReport& new_report = it->second;
    if (old_report.fingerprint() != new_report.fingerprint()) {
      result.warnings.push_back("config fingerprint changed for " + bench +
                                " — headline gating skipped");
      continue;
    }
    result.compared_files += 1;

    std::map<std::string, const HeadlineMetric*> new_headline;
    for (const HeadlineMetric& h : new_report.headline) new_headline[h.name] = &h;
    for (const HeadlineMetric& h : old_report.headline) {
      BenchDelta d;
      d.bench = bench;
      d.metric = h.name;
      d.old_value = h.value;
      const auto hit = new_headline.find(h.name);
      if (hit == new_headline.end()) {
        // A metric that disappears from the new tree must never pass the
        // gate silently — there is no number to compare, so it is a hard
        // regression (noisy or not; --warn-only remains the escape hatch
        // for intentional baseline reshapes).
        result.warnings.push_back(bench + ": headline metric disappeared: " + h.name);
        d.new_value = 0.0;
        d.change = -1.0;
        d.regression = true;
        result.deltas.push_back(d);
        continue;
      }
      d.new_value = hit->second->value;
      const double base = std::abs(h.value);
      const double raw = base == 0.0 ? 0.0 : (hit->second->value - h.value) / base;
      d.change = h.higher_is_better ? raw : -raw;
      if (h.noisy && !options.include_noisy) {
        d.skipped_noisy = true;
      } else if (base == 0.0 && hit->second->value != h.value) {
        // Zero baseline: the relative change is undefined (the division
        // would give Inf/NaN, which no threshold comparison catches), so
        // any drift off an exact-zero baseline is a hard mismatch.
        result.warnings.push_back(bench + ": " + h.name +
                                  " drifted off a zero baseline (relative gate "
                                  "undefined) — hard mismatch");
        d.regression = true;
      } else if (!std::isfinite(d.change)) {
        // Belt and braces: a non-finite change (Inf/NaN values in either
        // tree) silently compares false against any threshold.
        result.warnings.push_back(bench + ": " + h.name +
                                  " produced a non-finite change — hard mismatch");
        d.regression = true;
      } else {
        d.regression = d.change < -options.threshold;
      }
      result.deltas.push_back(d);
    }
  }
  for (const auto& [bench, report] : new_reports) {
    if (old_reports.find(bench) == old_reports.end()) {
      result.warnings.push_back("new bench without baseline: " + bench);
    }
  }
  return result;
}

}  // namespace inplane::report
