#include "report/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace inplane::report {

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (const double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  // NaN survives std::clamp (every comparison is false), and casting a
  // NaN rank to size_t is UB — catch it before any arithmetic.  A NaN
  // request gets a NaN answer rather than a silently made-up quantile.
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  // Clamp the lower index too: p = 100 makes rank exactly size-1 only as
  // long as the double rounding cooperates, and a single sample must
  // never index past element 0.
  const std::size_t lo =
      std::min(static_cast<std::size_t>(rank), samples.size() - 1);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = std::clamp(rank - static_cast<double>(lo), 0.0, 1.0);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace inplane::report
