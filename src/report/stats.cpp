#include "report/stats.hpp"

#include <algorithm>
#include <cmath>

namespace inplane::report {

double median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (const double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace inplane::report
