#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include <chrono>

namespace inplane::metrics {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("INPLANE_METRICS");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}()};

/// Thread-CPU time in nanoseconds (0 where the clock is unavailable).
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Atomically folds @p v into @p target with @p pick (min/max/plus).
template <typename Pick>
void atomic_fold(std::atomic<double>& target, double v, Pick pick) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, pick(cur, v), std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Histogram::record(double v) {
  if (!(kCompiledIn && enabled())) return;
  if (!(v >= 0.0) || !std::isfinite(v)) v = 0.0;  // clamp NaN/negative
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_fold(sum_, v, [](double a, double b) { return a + b; });
  atomic_fold(min_, v, [](double a, double b) { return std::min(a, b); });
  atomic_fold(max_, v, [](double a, double b) { return std::max(a, b); });
  const double scaled = v / kResolution;
  int bucket = 0;
  if (scaled >= 1.0) {
    bucket = std::min(kBuckets - 1, static_cast<int>(std::log2(scaled)) + 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Timer& timer) : timer_(nullptr) {
  if (kCompiledIn && enabled()) {
    timer_ = &timer;
    wall_ns_ = wall_ns();
    cpu_ns_ = thread_cpu_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (timer_ == nullptr) return;
  const std::uint64_t w = wall_ns() - wall_ns_;
  const std::uint64_t c = thread_cpu_ns() - cpu_ns_;
  timer_->wall().record(static_cast<double>(w) * 1e-9);
  timer_->cpu().record(static_cast<double>(c) * 1e-9);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: element addresses are stable across insertions, so
  // instrumentation sites may cache references forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, std::unique_ptr<Timer>> timers;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Intentionally leaked: instrumentation sites cache instrument
  // references in function-local statics, which may be touched by pool
  // workers during static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->timers[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::vector<SnapshotEntry> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<SnapshotEntry> out;
  out.reserve(impl_->counters.size() + impl_->gauges.size() +
              impl_->histograms.size() + 2 * impl_->timers.size());
  for (const auto& [name, c] : impl_->counters) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::Counter;
    e.value = static_cast<double>(c->value());
    out.push_back(std::move(e));
  }
  for (const auto& [name, g] : impl_->gauges) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::Gauge;
    e.value = g->value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, h] : impl_->histograms) {
    SnapshotEntry e;
    e.name = name;
    e.kind = SnapshotEntry::Kind::Histogram;
    e.histogram = h->summary();
    out.push_back(std::move(e));
  }
  for (const auto& [name, t] : impl_->timers) {
    SnapshotEntry w;
    w.name = name + ".wall_s";
    w.kind = SnapshotEntry::Kind::Histogram;
    w.histogram = t->wall().summary();
    out.push_back(std::move(w));
    SnapshotEntry c;
    c.name = name + ".cpu_s";
    c.kind = SnapshotEntry::Kind::Histogram;
    c.histogram = t->cpu().summary();
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
  for (auto& [name, t] : impl_->timers) t->reset();
}

}  // namespace inplane::metrics
