#pragma once

// Low-overhead, thread-safe metrics registry: counters, gauges,
// histograms and scoped wall/CPU timers, addressed by dotted scope names
// ("layer.component.metric", e.g. "gpusim.coalescer.load_transactions").
//
// Design constraints (see docs/observability.md):
//
//  * Recording is lock-free: counters/gauges are single relaxed atomics,
//    histograms a handful of them.  Registration (name -> instrument
//    lookup) takes a mutex but is meant to happen once per site, cached
//    in a function-local static reference.
//  * Collection is disabled by default.  Every record call starts with
//    one relaxed load + predicted branch (`enabled()`), so the
//    instrumented-off overhead is a never-taken branch per site —
//    bench_metrics_overhead pins it below 1% of the fig7 variant sweep.
//    Define INPLANE_METRICS_DISABLED to compile recording out entirely.
//  * Instruments are never destroyed or re-seated once created
//    (Registry::reset() zeroes values but keeps addresses), so cached
//    references stay valid for the process lifetime.
//
// The registry has no dependencies beyond the standard library; JSON
// serialization lives in report/bench_json.hpp so this layer can be
// linked from inplane_core without cycles.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace inplane::metrics {

/// Runtime collection switch.  Starts off unless the INPLANE_METRICS
/// environment variable is set to a non-"0" value.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

#ifdef INPLANE_METRICS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (kCompiledIn && enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (occupancy, queue depth, model error of the most
/// recent sweep, ...).
class Gauge {
 public:
  void set(double v) {
    if (kCompiledIn && enabled()) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution of non-negative samples with exact
/// count/sum/min/max.  Bucket b holds samples in [2^(b-1), 2^b) times the
/// base resolution (1e-9, so durations in seconds bucket from ~1 ns).
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr double kResolution = 1e-9;

  void record(double v);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Summary summary() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded with +/-infinity so concurrent first samples fold exactly;
  // summary() reports 0 for an empty histogram.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Paired wall-clock / thread-CPU duration histograms fed by ScopedTimer.
class Timer {
 public:
  [[nodiscard]] Histogram& wall() { return wall_; }
  [[nodiscard]] Histogram& cpu() { return cpu_; }
  [[nodiscard]] const Histogram& wall() const { return wall_; }
  [[nodiscard]] const Histogram& cpu() const { return cpu_; }
  void reset() {
    wall_.reset();
    cpu_.reset();
  }

 private:
  Histogram wall_;
  Histogram cpu_;
};

/// RAII scope that records elapsed wall and thread-CPU seconds into a
/// Timer on destruction.  When collection is disabled at construction the
/// clock reads are skipped entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;  ///< nullptr when collection was off at entry
  std::uint64_t wall_ns_ = 0;
  std::uint64_t cpu_ns_ = 0;
};

/// One instrument in a point-in-time snapshot.
struct SnapshotEntry {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;  ///< timers appear as "<name>.wall_s" / "<name>.cpu_s"
  Kind kind = Kind::Counter;
  double value = 0.0;             ///< counter/gauge value
  Histogram::Summary histogram;   ///< for Kind::Histogram
};

/// Name-addressed instrument store.  Lookups intern the name on first
/// use; returned references are stable for the registry's lifetime.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static Registry& global();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);
  [[nodiscard]] Timer& timer(const std::string& name);

  /// All instruments, sorted by name (deterministic serialization order).
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const;

  /// Zeroes every instrument.  Addresses stay valid — cached references
  /// held by instrumentation sites keep working.
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace inplane::metrics
