#pragma once

#include "core/extent.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/resources.hpp"

namespace inplane::perfmodel {

/// Inputs of the paper's analytic performance model (section VI).
struct ModelInput {
  Extent3 grid;                     ///< LX x LY x LZ
  int radius = 1;                   ///< stencil radius r
  kernels::Method method = kernels::Method::InPlaneFullSlice;
  kernels::LaunchConfig config;
  bool is_double = false;
};

/// Output of the Eqns. (6)-(14) evaluation.
struct ModelResult {
  bool valid = false;       ///< false when ActBlks == 0 (zeroed in Fig. 8)
  std::string invalid_reason;

  long blks = 0;            ///< Eqn. (6)
  int act_blks = 0;         ///< Eqn. (7)
  int stages = 0;           ///< Eqn. (8)
  int rem_blks = 0;         ///< Eqn. (9)
  double t_m_cycles = 0.0;  ///< Eqn. (10)
  double t_c_cycles = 0.0;  ///< Eqn. (11)
  double t_s_cycles = 0.0;  ///< Eqn. (12)
  double t_l_cycles = 0.0;  ///< Eqn. (13)
  double mpoints_per_s = 0.0;  ///< Eqn. (14), converted to MPoint/s
};

/// Evaluates the paper's performance model, Eqns. (6)-(14), verbatim:
///
///   Blks     = LX*LY / ((TX*RX)(TY*RY))                             (6)
///   ActBlks  = min(Reg/K_R, Smem/K_S, Warp_SM/Warp_Blk, Blk_SM)     (7)
///   Stages   = ceil(Blks / (SM * ActBlks))                          (8)
///   RemBlks  = ceil((Blks - (Stages-1)*ActBlks*SM) / SM)            (9)
///   T_m      = Lat/Clock + Bytes_Blk / BW_SM                        (10)
///   T_c      = ActBlks * Ops * RX * RY * Warp_Blk / Clock           (11)
///   T_s      = f(ActBlks) * T_m + ActBlks * T_c                     (12)
///   T_l      = f(RemBlks) * T_m + RemBlks * T_c                     (13)
///   Perf     = LX*LY / (T_s * (Stages-1) + T_l)                     (14)
///
/// where f(arg) interpolates linearly between perfect latency hiding
/// (returns 1 at full occupancy) and full serialisation (returns arg for a
/// single resident warp), exactly as described in section VI.  Bytes_Blk
/// counts the bytes read and written per stencil plane per block for the
/// given loading method (including the full-slice corner redundancy);
/// Ops is the per-element flop count (7r+1 forward-plane, 8r+1 in-plane).
///
/// Perf from Eqn. (14) is per-plane; the returned MPoint/s scales it by the
/// plane count.  All model limitations the paper lists (no bank conflicts,
/// no scheduling overhead, no cache effects) apply here too — this module
/// exists to *rank* configurations for the model-guided tuner of Fig. 12,
/// not to predict absolute performance.
[[nodiscard]] ModelResult evaluate(const gpusim::DeviceSpec& device,
                                   const ModelInput& input);

/// Bytes_Blk: bytes read + written per z-plane per block under @p method
/// (used by Eqn. (10); exposed for tests and the ablation bench).
[[nodiscard]] double bytes_per_plane_block(const ModelInput& input);

}  // namespace inplane::perfmodel
