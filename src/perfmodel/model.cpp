#include "perfmodel/model.hpp"

#include <algorithm>
#include <cmath>

namespace inplane::perfmodel {

namespace {

/// The latency-hiding function f(arg) of Eqns. (12)/(13): returns a value
/// between 1 and arg, linear in occupancy.  At full occupancy (resident
/// warps == Warp_SM) memory phases of concurrent blocks overlap perfectly
/// (f = 1); with a single warp they serialise completely (f = arg).
double latency_hiding_f(double arg, double resident_warps, double warp_sm) {
  if (arg <= 1.0) return std::max(arg, 0.0);
  const double occ = std::clamp(resident_warps / warp_sm, 0.0, 1.0);
  return arg + (1.0 - arg) * occ;  // = arg at occ 0 ... 1 at occ 1
}

}  // namespace

double bytes_per_plane_block(const ModelInput& input) {
  const int r = input.radius;
  const int w = input.config.tile_w();
  const int h = input.config.tile_h();
  const double elem = input.is_double ? 8.0 : 4.0;
  if (input.config.tb > 1) {
    // Degree-N temporal blocking: each z iteration streams one plane of
    // the t=0 slice — the stage-1 extended region plus its own halo,
    // (W+2Nr) x (H+2Nr) — and stores one W x H output plane.  All the
    // intermediate timesteps live in shared memory and never touch DRAM,
    // which is the entire bandwidth case for the extension.
    const int n = input.config.tb;
    const double read_elems =
        (static_cast<double>(w) + 2.0 * n * r) * (static_cast<double>(h) + 2.0 * n * r);
    const double write_elems = static_cast<double>(w) * h;
    return (read_elems + write_elems) * elem;
  }
  // Reads: interior + the halo strips the method touches per plane.
  double read_elems = static_cast<double>(w) * h;
  switch (input.method) {
    case kernels::Method::ForwardPlane:
    case kernels::Method::InPlaneClassical:
      // interior + four strips + corners (Fig. 4).
      read_elems += 2.0 * r * w + 2.0 * r * h + 4.0 * r * r;
      break;
    case kernels::Method::InPlaneVertical:
    case kernels::Method::InPlaneHorizontal:
      // merged strips, no corners (Fig. 6b/6c).
      read_elems += 2.0 * r * w + 2.0 * r * h;
      break;
    case kernels::Method::InPlaneFullSlice:
      // whole slice, 4r^2 redundant corner elements (Fig. 6d).
      read_elems += 2.0 * r * w + 2.0 * r * h + 4.0 * r * r;
      break;
  }
  const double write_elems = static_cast<double>(w) * h;
  return (read_elems + write_elems) * elem;
}

ModelResult evaluate(const gpusim::DeviceSpec& device, const ModelInput& input) {
  ModelResult res;
  input.grid.validate();
  const kernels::LaunchConfig& cfg = input.config;
  if (input.grid.nx % cfg.tile_w() != 0 || input.grid.ny % cfg.tile_h() != 0) {
    res.invalid_reason = "tile does not divide grid";
    return res;
  }

  // Eqn. (7) via the shared occupancy calculator.
  const gpusim::KernelResources kres = kernels::estimate_resources(
      input.method, cfg, input.radius, input.is_double ? 8 : 4);
  const gpusim::Occupancy occ = gpusim::Occupancy::compute(device, kres);
  if (occ.active_blocks == 0) {
    res.invalid_reason = occ.invalid_reason.empty() ? "zero active blocks"
                                                    : occ.invalid_reason;
    return res;
  }
  res.act_blks = occ.active_blocks;

  // Eqn. (6).
  res.blks = static_cast<long>(input.grid.nx / cfg.tile_w()) *
             static_cast<long>(input.grid.ny / cfg.tile_h());

  // Eqns. (8), (9).
  const long per_round = static_cast<long>(res.act_blks) * device.sm_count;
  res.stages = static_cast<int>((res.blks + per_round - 1) / per_round);
  const long rem = res.blks - static_cast<long>(res.stages - 1) * per_round;
  res.rem_blks = static_cast<int>((rem + device.sm_count - 1) / device.sm_count);

  // Eqn. (10): T_m = Lat/Clock + Bytes_Blk / BW_SM   (seconds).
  const double clock_hz = device.clock_ghz * 1e9;
  const double bw_sm = device.achieved_bw_gbs * 1e9 / device.sm_count;
  const double t_m = device.mem_latency_cycles / clock_hz +
                     bytes_per_plane_block(input) / bw_sm;
  res.t_m_cycles = t_m * clock_hz;

  // Eqn. (11): the compute time of one block's plane — Ops flops for each
  // of the TX*RX x TY*RY elements through the SM's cores (DP at the
  // device's DP issue ratio).  A degree-N temporal iteration runs every
  // stage once: the in-plane stage 1 over its extended region (redundant
  // ghost-zone compute included) plus a forward-style pass per later
  // timestep — the compute-inflation term of the trade-off.
  const int r = input.radius;
  double total_ops;
  if (cfg.tb > 1) {
    const int n = cfg.tb;
    const auto region = [&](int s) {
      const double e = static_cast<double>((n - s) * r);
      return (static_cast<double>(cfg.tile_w()) + 2.0 * e) *
             (static_cast<double>(cfg.tile_h()) + 2.0 * e);
    };
    total_ops = static_cast<double>(8 * r + 1) * region(1);
    for (int s = 2; s < n; ++s) total_ops += static_cast<double>(7 * r + 1) * region(s);
    total_ops += static_cast<double>(7 * r + 1) * cfg.tile_w() * cfg.tile_h();
  } else {
    const int ops = input.method == kernels::Method::ForwardPlane ? 7 * r + 1
                                                                  : 8 * r + 1;
    total_ops = static_cast<double>(ops) * cfg.tx * cfg.ty * cfg.rx * cfg.ry;
  }
  const double dp_scale = input.is_double ? 1.0 / device.dp_throughput_ratio : 1.0;
  const double t_c_one_block =
      total_ops * dp_scale / (device.cores_per_sm * 2.0) / clock_hz;
  res.t_c_cycles = t_c_one_block * clock_hz;

  // Eqns. (12), (13) with the linear f(.).  f models "latency hiding
  // during memory accesses" (section VI): at full occupancy the access
  // latencies of concurrent blocks overlap (counted once), with a single
  // warp they serialise (counted per block).  The bandwidth component of
  // T_m always serialises — concurrent blocks share the SM's share of the
  // memory bus — so f scales the latency term only.
  const double t_lat = device.mem_latency_cycles / clock_hz;
  const double t_bw = t_m - t_lat;
  const double warps_full = static_cast<double>(res.act_blks) * occ.warps_per_block;
  const double warps_rem = static_cast<double>(res.rem_blks) * occ.warps_per_block;
  const double t_s =
      latency_hiding_f(res.act_blks, warps_full, device.max_warps_per_sm) * t_lat +
      res.act_blks * (t_bw + t_c_one_block);
  const double t_l =
      latency_hiding_f(res.rem_blks, warps_rem, device.max_warps_per_sm) * t_lat +
      res.rem_blks * (t_bw + t_c_one_block);
  res.t_s_cycles = t_s * clock_hz;
  res.t_l_cycles = t_l * clock_hz;

  // Eqn. (14), scaled over all LZ planes.  A degree-N sweep runs
  // nz + N*r iterations (pipeline drain) and advances every point N
  // timesteps, so throughput counts point-updates per second — the same
  // unit time_kernel reports, directly comparable across degrees.
  const double per_plane_seconds = t_s * (res.stages - 1) + t_l;
  const double planes = static_cast<double>(input.grid.nz) +
                        (cfg.tb > 1 ? static_cast<double>(cfg.tb * r) : 0.0);
  const double total_seconds = per_plane_seconds * planes;
  res.mpoints_per_s = static_cast<double>(input.grid.volume()) * cfg.tb /
                      total_seconds / 1e6;
  res.valid = true;
  return res;
}

}  // namespace inplane::perfmodel
