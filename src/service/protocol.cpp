#include "service/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "core/status.hpp"

namespace inplane::service {

namespace {

bool parse_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty() || v.size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = x;
  return true;
}

bool parse_double(const std::string& v, double& out) {
  if (v.empty() || v.size() > 32) return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return errno == 0 && end != nullptr && *end == '\0';
}

std::optional<Request> fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = "request: " + why;
  return std::nullopt;
}

}  // namespace

std::optional<Request> parse_request(const std::string& line, std::string* error) {
  if (line.empty() || line.size() > 4096) return fail(error, "empty or oversized line");
  std::size_t sp = line.find(' ');
  const std::string verb = line.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

  Request req;
  if (verb == "PING" || verb == "STATS" || verb == "SHUTDOWN") {
    if (!rest.empty()) return fail(error, verb + " takes no arguments");
    req.verb = verb == "PING"    ? Verb::Ping
               : verb == "STATS" ? Verb::Stats
                                 : Verb::Shutdown;
    return req;
  }
  if (verb != "TUNE" && verb != "RUN") return fail(error, "unknown verb '" + verb + "'");
  req.verb = verb == "TUNE" ? Verb::Tune : Verb::Run;

  // Peel the QoS options off; whatever remains must be a wisdom key line.
  std::string key_line;
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t end = rest.find(' ', pos);
    if (end == std::string::npos) end = rest.size();
    const std::string token = rest.substr(pos, end - pos);
    pos = end + (end < rest.size() ? 1 : 0);
    if (token.empty()) return fail(error, "empty token (double space?)");
    const std::size_t eq = token.find('=');
    const std::string k = eq == std::string::npos ? token : token.substr(0, eq);
    const std::string v = eq == std::string::npos ? "" : token.substr(eq + 1);
    if (k == "deadline_ms") {
      if (!parse_double(v, req.tune.deadline_ms) || req.tune.deadline_ms < 0.0) {
        return fail(error, "bad deadline_ms");
      }
    } else if (k == "mem_budget") {
      if (!parse_u64(v, req.tune.mem_budget_bytes)) return fail(error, "bad mem_budget");
    } else if (k == "no_cache") {
      if (v != "1" && v != "0") return fail(error, "no_cache must be 0 or 1");
      req.tune.no_cache = v == "1";
    } else {
      if (!key_line.empty()) key_line.push_back(' ');
      key_line.append(token);
    }
  }
  std::string key_error;
  const auto key = WisdomKey::parse(key_line, &key_error);
  if (!key) return fail(error, key_error);
  req.tune.key = *key;
  return req;
}

std::string hex_encode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(kDigits[u >> 4]);
    out.push_back(kDigits[u & 0xf]);
  }
  return out;
}

std::optional<std::string> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

bool LineFramer::feed(const char* data, std::size_t n) {
  if (overflowed_) return false;
  // The limit applies to the *unterminated tail*: a batch of short lines
  // may legitimately arrive in one large read, so scan for the newline
  // that would reset the frame before judging the size.
  std::size_t pending = buffer_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] == '\n') {
      pending = 0;
    } else if (++pending > max_frame_bytes_) {
      overflowed_ = true;
      buffer_.clear();
      buffer_.shrink_to_fit();
      return false;
    }
  }
  buffer_.append(data, n);
  return true;
}

std::optional<std::string> LineFramer::next_line() {
  while (!overflowed_) {
    const std::size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) return std::nullopt;
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) return line;
  }
  return std::nullopt;
}

std::string format_tune_response(const TuneOutcome& outcome) {
  char head[128];
  std::snprintf(head, sizeof(head), "OK source=%s degraded=%d mpoints=%.17g entry=",
                to_string(outcome.source), outcome.degraded ? 1 : 0,
                outcome.best.timing.mpoints_per_s);
  return std::string(head) + hex_encode(outcome.entry_payload());
}

std::string format_run_response(const TuneOutcome& outcome) {
  const auto& c = outcome.best.config;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "OK source=%s degraded=%d tx=%d ty=%d rx=%d ry=%d vec=%d "
                "mpoints=%.17g",
                to_string(outcome.source), outcome.degraded ? 1 : 0, c.tx, c.ty, c.rx,
                c.ry, c.vec, outcome.best.timing.mpoints_per_s);
  return buf;
}

std::string format_stats_response(const ServiceCounters& counters,
                                  const WisdomCache::Stats& cache,
                                  std::size_t cache_size, const ServerStats& server,
                                  const std::string& breaker_state) {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "OK requests=%llu cache_hits=%llu dedup_joins=%llu sweeps=%llu "
                "failures=%llu cache_size=%zu evictions=%zu compactions=%zu "
                "records_recovered=%zu wisdom_write_errors=%zu wisdom_degraded=%d "
                "shed_requests=%llu shed_connections=%llu frame_errors=%llu "
                "deadline_drops=%llu draining=%d breaker_state=%s "
                "breaker_failures=%llu breaker_trips=%llu "
                "breaker_short_circuits=%llu breaker_probes=%llu",
                static_cast<unsigned long long>(counters.requests),
                static_cast<unsigned long long>(counters.cache_hits),
                static_cast<unsigned long long>(counters.dedup_joins),
                static_cast<unsigned long long>(counters.sweeps),
                static_cast<unsigned long long>(counters.failures), cache_size,
                cache.evictions, cache.compactions, cache.records_recovered,
                cache.write_errors, cache.degraded_to_memory ? 1 : 0,
                static_cast<unsigned long long>(server.shed_requests),
                static_cast<unsigned long long>(server.shed_connections),
                static_cast<unsigned long long>(server.frame_errors),
                static_cast<unsigned long long>(server.deadline_drops),
                server.draining ? 1 : 0, breaker_state.c_str(),
                static_cast<unsigned long long>(counters.breaker_failures),
                static_cast<unsigned long long>(counters.breaker_trips),
                static_cast<unsigned long long>(counters.breaker_short_circuits),
                static_cast<unsigned long long>(counters.breaker_probes));
  return buf;
}

std::string format_error(const std::exception& e) {
  const Status st = status_of(e);
  std::string msg = st.context;
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "ERR code=" + std::to_string(exit_code(st)) + " " + msg;
}

std::string format_overloaded(double retry_after_ms, const std::string& what) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "ERR code=overloaded retry_after_ms=%.0f %s",
                retry_after_ms < 0.0 ? 0.0 : retry_after_ms, what.c_str());
  return buf;
}

std::string format_draining(const std::string& what) {
  return "ERR code=draining " + what;
}

std::optional<ParsedResponse> parse_response(const std::string& line,
                                             std::string* error) {
  const auto bad = [&](const std::string& why) -> std::optional<ParsedResponse> {
    if (error != nullptr) *error = "response: " + why;
    return std::nullopt;
  };
  ParsedResponse resp;
  if (line.rfind("ERR ", 0) == 0) {
    const std::string rest = line.substr(4);
    if (rest.rfind("code=", 0) != 0) return bad("ERR without code=");
    std::size_t sp = rest.find(' ');
    const std::string code_str = rest.substr(5, sp == std::string::npos ? sp : sp - 5);
    resp.ok = false;
    if (code_str == "overloaded" || code_str == "draining") {
      // Overload-control signals map to the ResourceExhausted exit code:
      // the request was fine, the server just cannot take it right now.
      resp.err_name = code_str;
      resp.err_code = 5;
    } else {
      char* end = nullptr;
      const long code = std::strtol(code_str.c_str(), &end, 10);
      if (code_str.empty() || end == nullptr || *end != '\0') return bad("bad ERR code");
      resp.err_code = static_cast<int>(code);
    }
    std::string message = sp == std::string::npos ? "" : rest.substr(sp + 1);
    if (message.rfind("retry_after_ms=", 0) == 0) {
      sp = message.find(' ');
      const std::string v = message.substr(15, sp == std::string::npos ? sp : sp - 15);
      if (!parse_double(v, resp.retry_after_ms) || resp.retry_after_ms < 0.0) {
        return bad("bad retry_after_ms");
      }
      message = sp == std::string::npos ? "" : message.substr(sp + 1);
    }
    resp.message = message;
    return resp;
  }
  if (line.rfind("OK", 0) != 0) return bad("neither OK nor ERR");
  resp.ok = true;
  std::size_t pos = line.size() > 2 ? 3 : 2;
  while (pos < line.size()) {
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(pos, end - pos);
    pos = end + (end < line.size() ? 1 : 0);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      resp.message = token;  // "pong" / "bye"
      continue;
    }
    const std::string k = token.substr(0, eq);
    const std::string v = token.substr(eq + 1);
    if (k == "source") {
      resp.source = v;
    } else if (k == "degraded") {
      resp.degraded = v == "1";
    } else if (k == "mpoints") {
      if (!parse_double(v, resp.mpoints)) return bad("bad mpoints");
    } else if (k == "entry") {
      const auto bytes = hex_decode(v);
      if (!bytes) return bad("bad entry hex");
      resp.entry_payload = *bytes;
    } else if (k == "tx" || k == "ty" || k == "rx" || k == "ry" || k == "vec") {
      std::uint64_t n = 0;
      if (!parse_u64(v, n)) return bad("bad " + k);
      (k == "tx"   ? resp.tx
       : k == "ty" ? resp.ty
       : k == "rx" ? resp.rx
       : k == "ry" ? resp.ry
                   : resp.vec) = static_cast<int>(n);
    }
    // Unknown OK fields are ignored: STATS responses flow through here
    // too, and the field set may grow.
  }
  return resp;
}

bool wisdom_roundtrip_check(const std::string& line, std::string* why) {
  std::string error;
  const auto key = WisdomKey::parse(line, &error);
  if (!key) return true;  // loud reject is a pass
  const std::string out = key->to_line();
  const auto again = WisdomKey::parse(out, &error);
  if (!again) {
    if (why != nullptr) *why = "to_line produced an unparseable line: " + error;
    return false;
  }
  if (!(*again == key->canonical()) || again->to_line() != out) {
    if (why != nullptr) *why = "parse -> to_line -> parse is not a fixed point";
    return false;
  }
  return true;
}

}  // namespace inplane::service
