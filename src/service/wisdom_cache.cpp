#include "service/wisdom_cache.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "autotune/checkpoint.hpp"
#include "autotune/fingerprint.hpp"
#include "core/crc32.hpp"
#include "core/status.hpp"
#include "metrics/metrics.hpp"

namespace inplane::service {

namespace {

/// Wisdom-cache instruments (scope "service").  service.cache_hits and
/// service.evictions are part of the daemon's documented counter set.
struct WisdomMetrics {
  metrics::Counter& cache_hits;
  metrics::Counter& cache_misses;
  metrics::Counter& evictions;
  metrics::Counter& records_recovered;
  metrics::Counter& legacy_upgrades;
  metrics::Counter& torn_tails;
  metrics::Counter& rejected_files;
  metrics::Counter& compactions;
  metrics::Counter& write_errors;

  static WisdomMetrics& get() {
    auto& reg = metrics::Registry::global();
    static WisdomMetrics m{
        reg.counter("service.cache_hits"),
        reg.counter("service.cache_misses"),
        reg.counter("service.evictions"),
        reg.counter("service.wisdom.records_recovered"),
        reg.counter("service.wisdom.legacy_upgrades"),
        reg.counter("service.wisdom.torn_tails"),
        reg.counter("service.wisdom.rejected_files"),
        reg.counter("service.wisdom.compactions"),
        reg.counter("service.wisdom.write_errors"),
    };
    return m;
  }
};

constexpr char kMagic[6] = {'I', 'P', 'W', 'Z', '1', '\n'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint64_t);
constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

std::uint64_t schema_fingerprint() {
  return autotune::fnv1a_str(autotune::kFingerprintSeed, "inplane-wisdom-v1");
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

bool take_u32(const std::string& buf, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > buf.size()) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(buf.data() + pos);
  v = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
      (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
  pos += 4;
  return true;
}

bool take_str(const std::string& buf, std::size_t& pos, std::string& s) {
  std::uint32_t n = 0;
  if (!take_u32(buf, pos, n) || pos + n > buf.size()) return false;
  s.assign(buf.data() + pos, n);
  pos += n;
  return true;
}

/// Key/value fields must survive the space-separated key=value line
/// format: printable, no whitespace, no '='.
bool is_token(const std::string& s) {
  if (s.empty() || s.size() > 256) return false;
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7f || c == '=') return false;
  }
  return true;
}

bool parse_int(const std::string& v, long long lo, long long hi, long long& out) {
  if (v.empty() || v.size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  if (x < lo || x > hi) return false;
  out = x;
  return true;
}

void sync_path(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
#else
  (void)path;
#endif
}

void sync_parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  sync_path(parent.empty() ? std::string(".") : parent.string());
}

std::string encode_record(const std::string& key_line, const std::string& entry) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(key_line.size()));
  payload.append(key_line);
  put_u32(payload, static_cast<std::uint32_t>(entry.size()));
  payload.append(entry);
  return payload;
}

std::string frame_record(const std::string& payload) {
  std::string framed;
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(framed, crc32(payload.data(), payload.size()));
  framed.append(payload);
  return framed;
}

}  // namespace

WisdomKey WisdomKey::canonical() const {
  WisdomKey k = *this;
  if (k.kind == "exhaustive") k.beta = 0.0;
  return k;
}

std::uint64_t WisdomKey::fingerprint() const {
  const WisdomKey k = canonical();
  std::uint64_t h = autotune::problem_fingerprint(k.method, k.device, k.extent,
                                                  k.elem_size(), k.kind);
  const std::int64_t ints[3] = {k.order, static_cast<std::int64_t>(k.device_fp),
                                k.temporal_degree};
  h = autotune::fnv1a(h, ints, sizeof(ints));
  h = autotune::fnv1a(h, &k.beta, sizeof(k.beta));
  return h;
}

std::string WisdomKey::to_line() const {
  const WisdomKey k = canonical();
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "method=%s device=%s devfp=0x%016" PRIx64
                " order=%d prec=%s nx=%d ny=%d nz=%d kind=%s beta=%.17g tb=%d",
                k.method.c_str(), k.device.c_str(), k.device_fp, k.order,
                k.double_precision ? "dp" : "sp", k.extent.nx, k.extent.ny,
                k.extent.nz, k.kind.c_str(), k.beta, k.temporal_degree);
  return buf;
}

std::optional<WisdomKey> WisdomKey::parse(const std::string& line, std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<WisdomKey> {
    if (error != nullptr) *error = "wisdom key: " + why;
    return std::nullopt;
  };
  if (line.size() > 4096) return fail("line longer than 4096 bytes");
  WisdomKey key;
  key.extent = Extent3{0, 0, 0};
  bool seen[11] = {};  // method device devfp order prec nx ny nz kind beta tb
  std::size_t pos = 0;
  while (pos < line.size()) {
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(pos, end - pos);
    pos = end + (end < line.size() ? 1 : 0);
    if (token.empty()) return fail("empty token (double space?)");
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return fail("token without '=': '" + token + "'");
    const std::string k = token.substr(0, eq);
    const std::string v = token.substr(eq + 1);
    const auto once = [&](int idx) {
      if (seen[idx]) return false;
      seen[idx] = true;
      return true;
    };
    long long n = 0;
    if (k == "method") {
      if (!once(0)) return fail("duplicate method");
      if (!is_token(v)) return fail("bad method value");
      key.method = v;
    } else if (k == "device") {
      if (!once(1)) return fail("duplicate device");
      if (!is_token(v)) return fail("bad device value");
      key.device = v;
    } else if (k == "devfp") {
      if (!once(2)) return fail("duplicate devfp");
      if (v.size() < 3 || v.size() > 18 || v[0] != '0' || (v[1] != 'x' && v[1] != 'X')) {
        return fail("devfp must be 0x-prefixed hex");
      }
      errno = 0;
      char* endp = nullptr;
      key.device_fp = std::strtoull(v.c_str(), &endp, 16);
      if (errno != 0 || endp == nullptr || *endp != '\0') return fail("bad devfp");
    } else if (k == "order") {
      if (!once(3)) return fail("duplicate order");
      if (!parse_int(v, 1, 64, n)) return fail("order out of range [1, 64]");
      key.order = static_cast<int>(n);
    } else if (k == "prec") {
      if (!once(4)) return fail("duplicate prec");
      if (v == "sp") {
        key.double_precision = false;
      } else if (v == "dp") {
        key.double_precision = true;
      } else {
        return fail("prec must be sp or dp");
      }
    } else if (k == "nx" || k == "ny" || k == "nz") {
      const int idx = k == "nx" ? 5 : k == "ny" ? 6 : 7;
      if (!once(idx)) return fail("duplicate " + k);
      if (!parse_int(v, 1, 1 << 24, n)) return fail(k + " out of range [1, 2^24]");
      (idx == 5 ? key.extent.nx : idx == 6 ? key.extent.ny : key.extent.nz) =
          static_cast<int>(n);
    } else if (k == "kind") {
      if (!once(8)) return fail("duplicate kind");
      if (v != "exhaustive" && v != "model") return fail("kind must be exhaustive or model");
      key.kind = v;
    } else if (k == "beta") {
      if (!once(9)) return fail("duplicate beta");
      if (v.empty() || v.size() > 32) return fail("bad beta");
      errno = 0;
      char* endp = nullptr;
      key.beta = std::strtod(v.c_str(), &endp);
      if (errno != 0 || endp == nullptr || *endp != '\0') return fail("bad beta");
      if (!(key.beta >= 0.0 && key.beta <= 1.0)) return fail("beta out of [0, 1]");
    } else if (k == "tb") {
      if (!once(10)) return fail("duplicate tb");
      if (!parse_int(v, 1, 8, n)) return fail("tb out of range [1, 8]");
      key.temporal_degree = static_cast<int>(n);
    } else {
      return fail("unknown field '" + k + "'");
    }
  }
  // devfp (index 2) is optional: the daemon stamps it after resolving the
  // device server-side; a wire request carries the name only.  tb (index
  // 10) is optional for wire compatibility with pre-degree clients and
  // defaults to 1, a single-step sweep; *stored* key lines without tb are
  // the pre-degree wisdom format and get the loud degree-2 upgrade in
  // WisdomCache::open() instead.
  static const char* kNames[11] = {"method", "device", "devfp", "order", "prec",
                                   "nx",     "ny",     "nz",    "kind",  "beta",
                                   "tb"};
  for (int i = 0; i < 11; ++i) {
    if (i == 2 || i == 10) continue;
    if (!seen[i]) return fail(std::string("missing field '") + kNames[i] + "'");
  }
  return key.canonical();
}

// --------------------------------------------------------------------------

struct WisdomCache::Impl {
  struct Entry {
    WisdomKey key;
    autotune::TuneEntry best;
  };

  mutable std::mutex mu;
  std::size_t capacity = 256;
  std::list<Entry> lru;  ///< front = least recently used, back = most recent
  std::map<std::string, std::list<Entry>::iterator> index;  ///< by key line
  Stats stats;
  std::string path;
  std::FILE* file = nullptr;

  // Torn-write crash simulation (simulate_torn_write_after).
  bool torn_armed = false;
  std::size_t torn_countdown = 0;
  int torn_exit_code = -1;

  // Disk-full injection (simulate_write_error_after).
  bool write_fail_armed = false;
  std::size_t write_fail_countdown = 0;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  void touch(std::list<Entry>::iterator it) { lru.splice(lru.end(), lru, it); }

  /// In-memory insert/update + recency bump; returns true when the put
  /// evicted an LRU victim (the caller then compacts instead of appending).
  bool put_mem(const WisdomKey& key, const autotune::TuneEntry& best,
               const std::string& line) {
    if (const auto it = index.find(line); it != index.end()) {
      it->second->best = best;
      touch(it->second);
      stats.updates += 1;
      return false;
    }
    bool evicted = false;
    while (lru.size() >= capacity && !lru.empty()) {
      index.erase(lru.front().key.to_line());
      lru.pop_front();
      stats.evictions += 1;
      WisdomMetrics::get().evictions.add();
      evicted = true;
    }
    lru.push_back(Entry{key, best});
    index.emplace(line, std::prev(lru.end()));
    stats.insertions += 1;
    return evicted;
  }

  /// Drops the append handle after a failed write: live entries keep
  /// serving from memory, nothing persists until the next open().  The
  /// warning is printed once per degradation, not per put.
  void degrade_locked(const std::string& why) {
    if (file != nullptr) {
      std::fclose(file);
      file = nullptr;
    }
    stats.write_errors += 1;
    WisdomMetrics::get().write_errors.add();
    if (!stats.degraded_to_memory) {
      stats.degraded_to_memory = true;
      std::fprintf(stderr,
                   "wisdom: WARNING: %s — cache degrades to serve-from-memory "
                   "(live entries stay available; nothing persists until the "
                   "next open)\n",
                   why.c_str());
    }
  }

  /// Appends one framed record, honouring the crash/disk-full simulations.
  /// A failed append truncates the half-written record back so the file
  /// never keeps a torn frame, then degrades the cache to memory-only.
  Status append_record(const std::string& key_line, const std::string& entry_payload) {
    if (file == nullptr) {
      if (stats.degraded_to_memory) {
        return Status(ErrorCode::IoError,
                      "wisdom: cache is degraded to memory-only (earlier write "
                      "failure); entry kept in memory");
      }
      return Status::okay();
    }
    const std::string framed = frame_record(encode_record(key_line, entry_payload));
    if (torn_armed) {
      if (torn_countdown == 0) {
        // Crash mid-record: flush only the first half of the frame, then
        // die (or drop the handle) exactly as a killed daemon would.
        const std::size_t half = framed.size() / 2;
        (void)std::fwrite(framed.data(), 1, half, file);
        (void)std::fflush(file);
        if (torn_exit_code >= 0) std::_Exit(torn_exit_code);
        std::fclose(file);
        file = nullptr;
        torn_armed = false;
        return Status::okay();
      }
      torn_countdown -= 1;
    }
    // Every append is flushed, so the current size is the clean edge to
    // roll back to if this write fails partway.
    std::error_code size_ec;
    const auto pre = std::filesystem::file_size(path, size_ec);
    bool failed = false;
    if (write_fail_armed) {
      if (write_fail_countdown == 0) {
        // ENOSPC simulation: half the frame lands, then the disk is full.
        const std::size_t half = framed.size() / 2;
        (void)std::fwrite(framed.data(), 1, half, file);
        (void)std::fflush(file);
        write_fail_armed = false;
        failed = true;
      } else {
        write_fail_countdown -= 1;
      }
    }
    if (!failed) {
      failed = std::fwrite(framed.data(), 1, framed.size(), file) != framed.size() ||
               std::fflush(file) != 0;
    }
    if (!failed) return Status::okay();
    std::fclose(file);
    file = nullptr;
    if (!size_ec) {
      // Best effort — if even the truncation fails, the next open()'s
      // torn-tail scan discards the partial frame instead.
      std::error_code ec;
      std::filesystem::resize_file(path, pre, ec);
    }
    degrade_locked("append to " + path + " failed (disk full?)");
    return Status(ErrorCode::IoError, "wisdom: append to " + path +
                                          " failed; half-written record truncated "
                                          "back, serving from memory");
  }

  /// Rewrites path to exactly the live set (LRU order) atomically.
  void compact_locked() {
    if (path.empty()) return;
    const std::string tmp = path + ".tmp";
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) throw IoError("wisdom: cannot create " + tmp);
    const std::uint64_t schema = schema_fingerprint();
    bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), out) == sizeof(kMagic) &&
              std::fwrite(&schema, 1, sizeof(schema), out) == sizeof(schema);
    for (const Entry& e : lru) {
      if (!ok) break;
      const std::string framed =
          frame_record(encode_record(e.key.to_line(), autotune::encode_tune_entry(e.best)));
      ok = std::fwrite(framed.data(), 1, framed.size(), out) == framed.size();
    }
    ok = ok && std::fflush(out) == 0;
    std::fclose(out);
    if (!ok) throw IoError("wisdom: short write compacting to " + tmp);
    sync_path(tmp);
    if (file != nullptr) {
      std::fclose(file);
      file = nullptr;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) throw IoError("wisdom: cannot rename " + tmp + " over " + path);
    sync_path(path);
    sync_parent_dir(path);
    file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) throw IoError("wisdom: cannot reopen " + path);
    stats.compactions += 1;
    WisdomMetrics::get().compactions.add();
  }
};

WisdomCache::WisdomCache(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

WisdomCache::~WisdomCache() { delete impl_; }

bool WisdomCache::is_open() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return !impl_->path.empty();
}

void WisdomCache::open(const std::string& path, std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl& im = *impl_;
  im.capacity = capacity == 0 ? 1 : capacity;
  im.lru.clear();
  im.index.clear();
  if (im.file != nullptr) {
    std::fclose(im.file);
    im.file = nullptr;
  }

  // Scan whatever is there: header, then the CRC-valid record prefix.
  bool header_ok = false;
  bool fresh_needed = true;
  std::size_t valid_end = 0;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char magic[sizeof(kMagic)] = {};
    std::uint64_t schema = 0;
    if (std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
        std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
        std::fread(&schema, 1, sizeof(schema), f) == sizeof(schema) &&
        schema == schema_fingerprint()) {
      header_ok = true;
      fresh_needed = false;
      valid_end = kHeaderBytes;
      for (;;) {
        std::uint32_t len = 0;
        std::uint32_t crc = 0;
        if (std::fread(&len, 1, sizeof(len), f) != sizeof(len)) break;
        if (std::fread(&crc, 1, sizeof(crc), f) != sizeof(crc)) break;
        if (len > kMaxRecordBytes) break;
        std::string payload(len, '\0');
        if (len != 0 && std::fread(payload.data(), 1, len, f) != len) break;
        if (crc32(payload.data(), payload.size()) != crc) break;
        std::size_t pos = 0;
        std::string key_line;
        std::string entry_payload;
        if (!take_str(payload, pos, key_line) ||
            !take_str(payload, pos, entry_payload) || pos != payload.size()) {
          break;
        }
        auto key = WisdomKey::parse(key_line);
        autotune::TuneEntry entry;
        if (!key) break;
        // A stored key line without tb= is the pre-degree wisdom format;
        // its entry payload is the shorter IPTJ2-era layout and the record
        // was measured when the temporal kernel was hard-wired to two
        // steps — adopt it as a degree-2 entry, loudly (warning printed
        // once after the scan).
        const bool legacy = key_line.find(" tb=") == std::string::npos;
        if (legacy) {
          if (!autotune::decode_tune_entry_pre_degree(entry_payload, entry)) break;
          key->temporal_degree = 2;
          entry.config.tb = 2;
          im.stats.legacy_upgraded += 1;
          WisdomMetrics::get().legacy_upgrades.add();
        } else if (!autotune::decode_tune_entry(entry_payload, entry)) {
          break;
        }
        im.put_mem(*key, entry, key->to_line());
        im.stats.records_recovered += 1;
        WisdomMetrics::get().records_recovered.add();
        valid_end += sizeof(len) + sizeof(crc) + len;
      }
      if (im.stats.legacy_upgraded > 0) {
        std::fprintf(stderr,
                     "wisdom: WARNING: upgraded %zu pre-degree record(s) in %s to "
                     "temporal degree 2 (the degree the fixed temporal kernel ran "
                     "at); re-tune with an explicit tb= key to refresh them\n",
                     im.stats.legacy_upgraded, path.c_str());
      }
    }
    std::fclose(f);
    if (!header_ok) {
      // Foreign or corrupt wisdom file: never trust it, never clobber it.
      const std::string orphan = path + ".orphan";
      std::error_code ec;
      std::filesystem::rename(path, orphan, ec);
      if (ec) {
        throw IoError("wisdom: cannot preserve unrecognised file " + path + " as " +
                      orphan);
      }
      std::fprintf(stderr,
                   "wisdom: WARNING: %s is not a readable wisdom file; preserved "
                   "as %s and starting fresh\n",
                   path.c_str(), orphan.c_str());
      im.stats.rejected_file = true;
      WisdomMetrics::get().rejected_files.add();
    }
  }

  if (fresh_needed) {
    // Header via write-temp + atomic rename (crash-safe creation).
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) throw IoError("wisdom: cannot create " + tmp);
    const std::uint64_t schema = schema_fingerprint();
    const bool wrote = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic) &&
                       std::fwrite(&schema, 1, sizeof(schema), f) == sizeof(schema) &&
                       std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote) throw IoError("wisdom: short write creating " + tmp);
    sync_path(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) throw IoError("wisdom: cannot rename " + tmp + " over " + path);
    sync_path(path);
    sync_parent_dir(path);
  } else {
    // Drop the torn tail (a record the dead writer never finished) so
    // appends continue from a clean edge.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size > valid_end) {
      im.stats.torn_bytes = static_cast<std::size_t>(size) - valid_end;
      WisdomMetrics::get().torn_tails.add();
      std::fprintf(stderr,
                   "wisdom: WARNING: discarded %zu torn byte(s) at the tail of %s\n",
                   im.stats.torn_bytes, path.c_str());
      std::filesystem::resize_file(path, valid_end, ec);
      if (ec) {
        throw IoError("wisdom: cannot truncate torn tail of " + path,
                      static_cast<long long>(valid_end));
      }
    }
  }

  im.file = std::fopen(path.c_str(), "ab");
  if (im.file == nullptr) throw IoError("wisdom: cannot open " + path + " for appending");
  im.path = path;
  // A fresh append handle ends any earlier memory-only degradation (the
  // write_errors count stays, it is monotonic history).
  im.stats.degraded_to_memory = false;
}

std::optional<autotune::TuneEntry> WisdomCache::find(const WisdomKey& key) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->index.find(key.canonical().to_line());
  if (it == impl_->index.end()) {
    impl_->stats.misses += 1;
    WisdomMetrics::get().cache_misses.add();
    return std::nullopt;
  }
  impl_->touch(it->second);
  impl_->stats.hits += 1;
  WisdomMetrics::get().cache_hits.add();
  return it->second->best;
}

Status WisdomCache::put(const WisdomKey& key, const autotune::TuneEntry& best) {
  const WisdomKey canon = key.canonical();
  if (!is_token(canon.method) || !is_token(canon.device) || !is_token(canon.kind)) {
    throw InvalidConfigError("wisdom: key fields must be space-free tokens: " +
                             canon.method + " / " + canon.device + " / " + canon.kind);
  }
  const std::string line = canon.to_line();
  std::lock_guard<std::mutex> lock(impl_->mu);
  const bool evicted = impl_->put_mem(canon, best, line);
  if (impl_->path.empty()) return Status::okay();
  if (impl_->stats.degraded_to_memory) {
    // Every unpersisted put counts: the daemon's wisdom_write_errors
    // counter keeps growing while the cache is degraded, so a drifting
    // STATS line makes the condition impossible to miss.
    impl_->stats.write_errors += 1;
    WisdomMetrics::get().write_errors.add();
    return Status(ErrorCode::IoError,
                  "wisdom: cache is degraded to memory-only (earlier write "
                  "failure); entry kept in memory");
  }
  if (evicted) {
    // The file still carries the victim; rewrite it to the live set so
    // the on-disk size stays bounded by the capacity.
    try {
      impl_->compact_locked();
    } catch (const std::exception& e) {
      impl_->degrade_locked("compaction of " + impl_->path + " failed (disk full?)");
      return status_of(e);
    }
    return Status::okay();
  }
  return impl_->append_record(line, autotune::encode_tune_entry(best));
}

std::size_t WisdomCache::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->lru.size();
}

std::size_t WisdomCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

WisdomCache::Stats WisdomCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

std::vector<WisdomKey> WisdomCache::lru_order() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<WisdomKey> keys;
  keys.reserve(impl_->lru.size());
  for (const auto& e : impl_->lru) keys.push_back(e.key);
  return keys;
}

void WisdomCache::compact() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->path.empty() && !impl_->stats.degraded_to_memory) {
    impl_->compact_locked();
  }
}

void WisdomCache::flush() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->file == nullptr) return;
  (void)std::fflush(impl_->file);
#ifndef _WIN32
  (void)::fsync(::fileno(impl_->file));
#endif
}

void WisdomCache::simulate_torn_write_after(std::size_t puts, int exit_code) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->torn_armed = true;
  impl_->torn_countdown = puts;
  impl_->torn_exit_code = exit_code;
  if (puts == 0 && exit_code == 0) impl_->torn_armed = false;  // disarm idiom
}

void WisdomCache::simulate_write_error_after(std::size_t puts) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->write_fail_armed = true;
  impl_->write_fail_countdown = puts;
}

}  // namespace inplane::service
