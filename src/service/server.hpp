#pragma once

// AF_UNIX stream server for the tuner daemon: accepts connections on a
// filesystem socket, reads newline-delimited protocol requests
// (protocol.hpp) and answers each with one response line.  One handler
// thread per connection — request concurrency (and therefore the
// dedup/stress behaviour) is the TuningService's problem, which is
// exactly what the harness wants to hammer.
//
// The connection layer is hardened against adversarial clients:
//
//  * admission control — at most max_connections concurrent connections
//    and max_inflight concurrent sweep-capable requests; beyond either
//    budget the server *sheds* with a typed
//    `ERR code=overloaded retry_after_ms=<jittered>` instead of queuing
//    unboundedly.  Cache hits and PING/STATS/SHUTDOWN are never shed.
//  * read/write deadlines — a connection that does not complete a
//    request line within read_deadline_ms of its last one (slow loris),
//    or whose peer stops draining responses for write_deadline_ms, is
//    answered with a typed error where possible and dropped.
//  * max-frame-bytes — an unterminated request line larger than
//    max_frame_bytes poisons the connection's framer (O(1) memory,
//    LineFramer), earns `ERR code=2 ...` and a close, never an OOM.
//
// Lifecycle: start() binds/listens and returns; wait() blocks until a
// SHUTDOWN request (or stop()) arrives; the destructor closes every
// live connection and joins every thread.  A daemon that exits via
// SHUTDOWN exits 0 — see the exit-code table in the README.  drain()
// is the graceful path SIGTERM takes: stop accepting, answer new
// sweep requests with `ERR code=draining`, give in-flight sweeps
// drain_deadline_ms to finish, then cancel the stragglers (they answer
// `ERR code=5`) and stop.
//
// POSIX only (like core/process.hpp): on Windows every entry point
// throws InternalError.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/cancel.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace inplane::service {

struct ServerOptions {
  /// Max concurrent sweep-capable (cache-missing TUNE/RUN) requests
  /// before shedding; 0 = unbounded (pre-hardening behaviour).
  int max_inflight = 16;
  /// Max concurrent connections before new ones are shed; 0 = unbounded.
  std::size_t max_connections = 256;
  /// A connection must complete each request line within this of the
  /// previous one; idle connections past it are closed, half-written
  /// lines earn `ERR code=5` first.  <= 0 disables.
  double read_deadline_ms = 30000.0;
  /// SO_SNDTIMEO per connection: a peer that stops draining responses
  /// for this long gets dropped.  <= 0 disables.
  double write_deadline_ms = 30000.0;
  /// Unterminated request lines beyond this poison the connection.
  std::size_t max_frame_bytes = 65536;
  /// Shed responses suggest retrying after ~this (jittered x[0.5, 1.5)).
  double retry_after_base_ms = 100.0;
  std::uint64_t shed_jitter_seed = 0x5eed5eed5eed5eedull;
  /// drain(): how long in-flight sweeps get before being cancelled.
  double drain_deadline_ms = 5000.0;
};

class SocketServer {
 public:
  /// Serves @p service on @p socket_path.  The service must outlive the
  /// server.  An existing socket file at the path is removed first (a
  /// stale socket from a dead daemon would otherwise wedge bind()).
  SocketServer(TuningService& service, std::string socket_path,
               ServerOptions options = {});
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop.  Throws IoError when the
  /// socket cannot be created/bound.
  void start();

  /// Blocks until SHUTDOWN is received or stop() is called.
  void wait();

  /// Initiates shutdown: stops accepting, fires the server cancel token
  /// (in-flight sweeps see ResourceExhausted), closes live connections.
  /// Idempotent.
  void stop();

  /// Graceful drain (the SIGTERM path): stops accepting, sheds new
  /// sweep-capable requests with `ERR code=draining` (PING/STATS and
  /// cache hits still answer), waits up to options.drain_deadline_ms for
  /// in-flight requests to finish, then cancels the stragglers — each
  /// still receives a typed `ERR code=5` line — and stops.  Blocks until
  /// the server is stopped.  Idempotent; safe after stop().
  void drain();

  [[nodiscard]] bool running() const;

  /// True from the start of drain() until destruction.
  [[nodiscard]] bool draining() const;

  /// Socket-layer shed/hardening counters (also folded into STATS).
  [[nodiscard]] ServerStats stats() const;

  /// The token threaded into every request as its external cancel; fires
  /// on stop().  Exposed for tests.
  [[nodiscard]] const CancelToken& cancel_token() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace inplane::service
