#pragma once

// AF_UNIX stream server for the tuner daemon: accepts connections on a
// filesystem socket, reads newline-delimited protocol requests
// (protocol.hpp) and answers each with one response line.  One handler
// thread per connection — request concurrency (and therefore the
// dedup/stress behaviour) is the TuningService's problem, which is
// exactly what the harness wants to hammer.
//
// Lifecycle: start() binds/listens and returns; wait() blocks until a
// SHUTDOWN request (or stop()) arrives; the destructor closes every
// live connection and joins every thread.  A daemon that exits via
// SHUTDOWN exits 0 — see the exit-code table in the README.
//
// POSIX only (like core/process.hpp): on Windows every entry point
// throws InternalError.

#include <string>

#include "core/cancel.hpp"
#include "service/service.hpp"

namespace inplane::service {

class SocketServer {
 public:
  /// Serves @p service on @p socket_path.  The service must outlive the
  /// server.  An existing socket file at the path is removed first (a
  /// stale socket from a dead daemon would otherwise wedge bind()).
  SocketServer(TuningService& service, std::string socket_path);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens and spawns the accept loop.  Throws IoError when the
  /// socket cannot be created/bound.
  void start();

  /// Blocks until SHUTDOWN is received or stop() is called.
  void wait();

  /// Initiates shutdown: stops accepting, fires the server cancel token
  /// (in-flight sweeps see ResourceExhausted), closes live connections.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const;

  /// The token threaded into every request as its external cancel; fires
  /// on stop().  Exposed for tests.
  [[nodiscard]] const CancelToken& cancel_token() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace inplane::service
