#pragma once

// Minimal blocking client for the tuner daemon's socket protocol: one
// connection, newline-delimited request/response lines.  POSIX only
// (Windows entry points throw InternalError, matching core/process.hpp).

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hpp"

namespace inplane::service {

class Client {
 public:
  explicit Client(std::string socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon.  Throws IoError when the socket does not
  /// exist or refuses the connection.
  void connect();

  [[nodiscard]] bool connected() const;

  /// Sends one request line and returns the one response line (without
  /// the trailing newline).  Throws IoError on a broken connection.
  [[nodiscard]] std::string roundtrip(const std::string& request_line);

  void close();

 private:
  std::string path_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// Retry policy for request_with_retry: jittered exponential backoff on
/// connect failures (daemon not up yet / restarting, the ECONNREFUSED
/// class) and on `overloaded` sheds, where a server-sent retry_after_ms
/// overrides the local backoff.  `draining` is final — that daemon is
/// going away; retrying it would just prolong its drain.  Mid-roundtrip
/// transport failures (connection died *after* the request was sent) are
/// never retried: the daemon may have started a sweep and a blind
/// re-send would double the work.
struct RetryOptions {
  int budget = 2;                ///< retries after the first attempt
  double base_backoff_ms = 50.0; ///< first local backoff; doubles per retry
  double max_backoff_ms = 2000.0;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Test hook: called instead of sleeping; default sleeps for the given
  /// milliseconds.
  std::function<void(double)> sleeper;
};

/// One request line with retries per @p retry.  Returns the final parsed
/// response (ok or ERR); throws IoError when every connect attempt
/// failed and InvalidConfigError on an unparseable response.
/// @p attempts_out (optional) receives the number of attempts made.
[[nodiscard]] ParsedResponse request_with_retry(const std::string& socket_path,
                                                const std::string& request_line,
                                                const RetryOptions& retry = {},
                                                int* attempts_out = nullptr);

/// One-shot convenience: connect, TUNE @p key with the given QoS, parse
/// the response.  Throws IoError on transport errors and
/// InvalidConfigError when the daemon's response cannot be parsed; a
/// daemon-side ERR is returned in ParsedResponse (ok == false).
[[nodiscard]] ParsedResponse tune_over_socket(const std::string& socket_path,
                                              const WisdomKey& key,
                                              double deadline_ms = 0.0,
                                              std::uint64_t mem_budget_bytes = 0,
                                              bool no_cache = false);

/// Builds the TUNE request line tune_over_socket sends (shared with the
/// retrying CLI path).
[[nodiscard]] std::string format_tune_request(const WisdomKey& key,
                                              double deadline_ms = 0.0,
                                              std::uint64_t mem_budget_bytes = 0,
                                              bool no_cache = false);

}  // namespace inplane::service
