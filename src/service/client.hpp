#pragma once

// Minimal blocking client for the tuner daemon's socket protocol: one
// connection, newline-delimited request/response lines.  POSIX only
// (Windows entry points throw InternalError, matching core/process.hpp).

#include <string>

#include "service/protocol.hpp"

namespace inplane::service {

class Client {
 public:
  explicit Client(std::string socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon.  Throws IoError when the socket does not
  /// exist or refuses the connection.
  void connect();

  [[nodiscard]] bool connected() const;

  /// Sends one request line and returns the one response line (without
  /// the trailing newline).  Throws IoError on a broken connection.
  [[nodiscard]] std::string roundtrip(const std::string& request_line);

  void close();

 private:
  std::string path_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// One-shot convenience: connect, TUNE @p key with the given QoS, parse
/// the response.  Throws IoError on transport errors and
/// InvalidConfigError when the daemon's response cannot be parsed; a
/// daemon-side ERR is returned in ParsedResponse (ok == false).
[[nodiscard]] ParsedResponse tune_over_socket(const std::string& socket_path,
                                              const WisdomKey& key,
                                              double deadline_ms = 0.0,
                                              std::uint64_t mem_budget_bytes = 0,
                                              bool no_cache = false);

}  // namespace inplane::service
