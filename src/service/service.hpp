#pragma once

// The tuning-as-a-service core: a long-lived, thread-safe TuningService
// that request threads (socket handlers, tests, benches) call blocking
// tune() on.  Three things happen between a request and its answer:
//
//  1. wisdom lookup — the persistent WisdomCache is consulted first; a
//     hit answers without running *any* sweep (the stress tests pin this
//     with the service.sweeps counter);
//  2. in-flight dedup — concurrent requests for the same key join the
//     sweep already running instead of starting their own: the first
//     requester (the *leader*) sweeps, every later identical request (a
//     *joiner*) blocks on the leader's shared future and receives the
//     bit-identical entry;
//  3. the sweep itself — in-process exhaustive/model-guided tune, or
//     fanned out across the distributed worker fleet when the service is
//     configured with fan_out_workers > 0.
//
// QoS: each request carries its own deadline and memory budget.  The
// leader's deadline governs its sweep (CancelToken threaded into the
// ExecPolicy); joiners enforce their own deadlines while waiting on the
// future.  A sweep that degraded under a memory budget (candidates
// pruned by denial) is answered but *never cached* — the wisdom file
// only holds full-fidelity results.  Failed sweeps are never cached
// either, so a later retry re-sweeps cleanly.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "autotune/tuner.hpp"
#include "core/cancel.hpp"
#include "core/thread_pool.hpp"
#include "service/wisdom_cache.hpp"

namespace inplane::service {

/// How a request's answer was obtained.
enum class Source {
  CacheHit,  ///< served from the wisdom cache; no sweep ran anywhere
  Swept,     ///< this request led a sweep (in-process or fanned out)
  Joined,    ///< deduped onto a concurrent identical request's sweep
};

[[nodiscard]] const char* to_string(Source source);

/// One tuning request as the service core sees it (the socket protocol
/// parses the wire form into this).
struct TuneRequest {
  WisdomKey key;
  double deadline_ms = 0.0;  ///< wall-clock QoS deadline; 0 = none
  std::uint64_t mem_budget_bytes = 0;  ///< sweep memory budget; 0 = unlimited
  bool no_cache = false;  ///< bypass wisdom and dedup (always sweep fresh)
  /// External cancellation (socket closed, shutdown); may be null.
  /// Checked alongside the deadline on both leader and joiner paths.
  const CancelToken* cancel = nullptr;
};

/// One tuning answer.
struct TuneOutcome {
  autotune::TuneEntry best;
  Source source = Source::Swept;
  /// The sweep ran under a memory budget that denied at least one
  /// reservation, or a fan-out settled incomplete: the answer is the
  /// best of what *was* measured and is deliberately not cached.
  bool degraded = false;
  /// The key the answer is stored under (device fingerprint stamped).
  WisdomKey key;

  /// Canonical byte-for-byte form of the answer (the IPTJ3 entry
  /// payload) — the oracle the stress harness compares against a direct
  /// single-process tune() of the same key.
  [[nodiscard]] std::string entry_payload() const;
};

/// Monotonic service-level counters.  Mirrored into the metrics registry
/// as service.requests / service.cache_hits / service.dedup_joins /
/// service.sweeps / service.failures / service.breaker.* /
/// service.wisdom.write_errors (service.evictions is owned by the wisdom
/// cache); these struct copies exist so tests can assert exact values
/// without enabling metrics.
struct ServiceCounters {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t sweeps = 0;      ///< sweeps actually started (leaders only)
  std::uint64_t failures = 0;    ///< requests answered with an error
  std::uint64_t breaker_failures = 0;  ///< fan-out attempts that failed
  std::uint64_t breaker_trips = 0;     ///< transitions to the open state
  std::uint64_t breaker_short_circuits = 0;  ///< sweeps kept local by an open breaker
  std::uint64_t breaker_probes = 0;    ///< half-open probe sweeps sent to the fleet
  std::uint64_t wisdom_write_errors = 0;  ///< cache puts the wisdom file rejected
};

struct ServiceOptions {
  /// Wisdom persistence path; empty keeps the cache in memory only.
  std::string wisdom_path;
  std::size_t cache_capacity = 256;
  /// Thread policy for in-process sweeps (per-request deadline tokens are
  /// layered on top of it; its own .cancel, if any, is ignored).
  ExecPolicy sweep_policy = {};
  /// > 0: cache-miss sweeps fan out across this many distributed worker
  /// processes (PR 7 supervisor) instead of running in-process.
  int fan_out_workers = 0;
  std::string fan_out_dir;         ///< shard/journal directory for fan-out
  std::string fan_out_worker_exe;  ///< inplane_distd binary for fan-out
  /// Worker fault plan (distributed::SupervisorOptions::worker_fault_spec,
  /// e.g. "kill@2:w0") forwarded verbatim into every fan-out sweep — the
  /// overload chaos drill kills real workers mid-sweep through this.
  std::string fan_out_fault_spec;

  /// Circuit breaker over the worker fleet: `breaker_threshold`
  /// *consecutive* fan-out failures trip it open; while open, sweeps
  /// short-circuit to the bit-identical local path; after a jittered
  /// ~breaker_probe_after_ms one half-open probe re-tries the fleet and
  /// either closes the breaker or re-opens it.  Cancellation/deadline
  /// (ResourceExhausted) never counts as a fleet failure.
  bool fan_out_breaker = true;
  int breaker_threshold = 3;
  double breaker_probe_after_ms = 1000.0;
  std::uint64_t breaker_jitter_seed = 0x1f2e3d4c5b6a7988ull;

  /// Test hook: called by every sweep *leader* after it has registered
  /// itself as in-flight (joiners can already join) and before the sweep
  /// starts.  Blocking in the hook holds the sweep open deterministically.
  std::function<void(const WisdomKey&)> on_sweep_start;
  /// Test hook: called right before each fan-out attempt reaches the
  /// fleet; throwing from it simulates a deterministic fleet failure
  /// (the breaker tests trip/probe/recover through this).
  std::function<void(const WisdomKey&)> on_fan_out;
};

class TuningService {
 public:
  explicit TuningService(ServiceOptions options);
  ~TuningService();
  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Blocking tune: wisdom lookup, dedup join or led sweep.  Thread-safe;
  /// call it from as many threads as you like.  Throws
  /// ResourceExhaustedError when the request's deadline/cancel fires,
  /// InvalidConfigError for an unresolvable key, and propagates sweep
  /// failures (joiners see the leader's failure).
  [[nodiscard]] TuneOutcome tune(const TuneRequest& request);

  /// Non-blocking cache probe: the outcome when @p request is already
  /// answerable from wisdom (counted as a request + cache hit), or
  /// std::nullopt without touching any counter — no sweep is ever
  /// started or joined.  The admission controller serves hits through
  /// this even when the sweep budget is exhausted ("cache hits are never
  /// shed").  Same key validation/stamping exceptions as tune().
  [[nodiscard]] std::optional<TuneOutcome> peek(const TuneRequest& request);

  /// Stamps the device fingerprint onto @p key (resolving the device
  /// name), exactly as tune() does before touching the cache.  Throws
  /// InvalidConfigError for an unknown device.
  [[nodiscard]] WisdomKey stamp(const WisdomKey& key) const;

  [[nodiscard]] ServiceCounters counters() const;
  [[nodiscard]] WisdomCache& cache();

  /// Current fan-out breaker state: "off" (no fan-out or breaker
  /// disabled), "closed", "open" or "half_open".  STATS exposes this.
  [[nodiscard]] const char* breaker_state() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs the identical sweep tune() would lead for @p key — same
/// coefficients (StencilCoeffs::diffusion), same policy, no cache, no
/// dedup — and returns the best entry.  This is the single-process
/// oracle the concurrency stress harness compares bit-identity against.
[[nodiscard]] autotune::TuneEntry direct_tune(const WisdomKey& key,
                                              const ExecPolicy& policy = {});

}  // namespace inplane::service
