#include "service/service.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>

#include "autotune/checkpoint.hpp"
#include "autotune/fingerprint.hpp"
#include "core/coefficients.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "distributed/supervisor.hpp"
#include "distributed/sweep_spec.hpp"
#include "metrics/metrics.hpp"

namespace inplane::service {

namespace {

struct ServiceMetrics {
  metrics::Counter& requests;
  metrics::Counter& dedup_joins;
  metrics::Counter& sweeps;
  metrics::Counter& failures;

  static ServiceMetrics& get() {
    auto& reg = metrics::Registry::global();
    static ServiceMetrics m{
        reg.counter("service.requests"),
        reg.counter("service.dedup_joins"),
        reg.counter("service.sweeps"),
        reg.counter("service.failures"),
    };
    return m;
  }
};

/// Validates the parts of a programmatic key that WisdomKey::parse would
/// have enforced on the wire (tune() accepts keys built in code too).
void validate_key(const WisdomKey& key) {
  if (key.kind != "exhaustive" && key.kind != "model") {
    throw InvalidConfigError("service: unknown sweep kind '" + key.kind +
                             "' (exhaustive | model)");
  }
  if (key.order < 1 || key.order > 64) {
    throw InvalidConfigError("service: stencil order out of range [1, 64]");
  }
  if (key.extent.nx < 1 || key.extent.ny < 1 || key.extent.nz < 1) {
    throw InvalidConfigError("service: grid extent must be positive");
  }
  if (key.temporal_degree < 1 || key.temporal_degree > 8) {
    throw InvalidConfigError("service: temporal degree out of range [1, 8]");
  }
  (void)distributed::resolve_method(key.method);  // throws on unknown names
}

/// The in-process sweep both tune() leaders and direct_tune run: identical
/// coefficients and tuner entry points, so answers are bit-comparable.
autotune::TuneResult run_local_sweep(const WisdomKey& key,
                                     const autotune::TuneOptions& options) {
  const kernels::Method method = distributed::resolve_method(key.method);
  const gpusim::DeviceSpec device = distributed::resolve_device(key.device);
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(key.order / 2);
  autotune::SearchSpace space;
  // The key's degree widens the tb axis to {1..degree}; degree 1 is the
  // paper's single-step space, so legacy keys sweep exactly what they did.
  space.set_max_temporal_degree(key.temporal_degree);
  if (key.double_precision) {
    if (key.kind == "model") {
      return autotune::model_guided_tune<double>(method, coeffs, device, key.extent,
                                                 key.beta, space, options);
    }
    return autotune::exhaustive_tune<double>(method, coeffs, device, key.extent,
                                             space, options);
  }
  if (key.kind == "model") {
    return autotune::model_guided_tune<float>(method, coeffs, device, key.extent,
                                              key.beta, space, options);
  }
  return autotune::exhaustive_tune<float>(method, coeffs, device, key.extent, space,
                                          options);
}

}  // namespace

const char* to_string(Source source) {
  switch (source) {
    case Source::CacheHit: return "hit";
    case Source::Swept: return "swept";
    case Source::Joined: return "joined";
  }
  return "?";
}

std::string TuneOutcome::entry_payload() const {
  return autotune::encode_tune_entry(best);
}

// --------------------------------------------------------------------------

struct TuningService::Impl {
  /// What a led sweep hands its joiners.
  struct SweptAnswer {
    autotune::TuneEntry best;
    bool degraded = false;
  };

  ServiceOptions opts;
  WisdomCache cache;

  std::mutex inflight_mu;
  std::map<std::string, std::shared_future<SweptAnswer>> inflight;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> dedup_joins{0};
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<std::uint64_t> failures{0};

  mutable std::mutex devfp_mu;
  mutable std::map<std::string, std::uint64_t> devfp_memo;

  explicit Impl(ServiceOptions o)
      : opts(std::move(o)), cache(opts.cache_capacity) {
    if (!opts.wisdom_path.empty()) cache.open(opts.wisdom_path, opts.cache_capacity);
  }

  std::uint64_t device_fp(const std::string& device) const {
    {
      std::lock_guard<std::mutex> lock(devfp_mu);
      if (const auto it = devfp_memo.find(device); it != devfp_memo.end()) {
        return it->second;
      }
    }
    const std::uint64_t fp =
        autotune::device_fingerprint(distributed::resolve_device(device));
    std::lock_guard<std::mutex> lock(devfp_mu);
    devfp_memo.emplace(device, fp);
    return fp;
  }

  /// The sweep a leader runs for @p key: distributed fan-out when the
  /// service is configured for it and the request carries no memory
  /// budget (budgets are a single-process concept); in-process otherwise.
  SweptAnswer lead_sweep(const WisdomKey& key, const CancelToken* cancel,
                         MemBudget* budget) {
    sweeps.fetch_add(1, std::memory_order_relaxed);
    ServiceMetrics::get().sweeps.add();

    if (opts.fan_out_workers > 0 && budget == nullptr) {
      distributed::SupervisorOptions so;
      so.spec.method = key.method;
      so.spec.device = key.device;
      so.spec.extent = key.extent;
      so.spec.order = key.order;
      so.spec.double_precision = key.double_precision;
      so.spec.kind = key.kind;
      so.spec.beta = key.beta;
      so.workers = opts.fan_out_workers;
      char sub[32];
      std::snprintf(sub, sizeof(sub), "/k%016" PRIx64, key.fingerprint());
      so.checkpoint_dir = opts.fan_out_dir + sub;
      so.worker_exe = opts.fan_out_worker_exe;
      so.cancel = cancel;
      const distributed::SweepReport report = distributed::run_distributed_sweep(so);
      if (!report.result.found()) {
        throw InternalError("service: fan-out sweep produced no valid candidate");
      }
      return SweptAnswer{report.result.best, !report.complete};
    }

    autotune::TuneOptions topts;
    topts.policy = opts.sweep_policy;
    topts.policy.cancel = cancel;
    topts.mem_budget = budget;
    const autotune::TuneResult result = run_local_sweep(key, topts);
    if (!result.found()) {
      throw InternalError("service: sweep produced no valid candidate");
    }
    const bool degraded = budget != nullptr && budget->denied() > 0;
    return SweptAnswer{result.best, degraded};
  }
};

TuningService::TuningService(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

TuningService::~TuningService() = default;

WisdomKey TuningService::stamp(const WisdomKey& key) const {
  WisdomKey stamped = key.canonical();
  stamped.device_fp = impl_->device_fp(stamped.device);
  return stamped;
}

ServiceCounters TuningService::counters() const {
  ServiceCounters c;
  c.requests = impl_->requests.load(std::memory_order_relaxed);
  c.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
  c.dedup_joins = impl_->dedup_joins.load(std::memory_order_relaxed);
  c.sweeps = impl_->sweeps.load(std::memory_order_relaxed);
  c.failures = impl_->failures.load(std::memory_order_relaxed);
  return c;
}

WisdomCache& TuningService::cache() { return impl_->cache; }

TuneOutcome TuningService::tune(const TuneRequest& request) {
  Impl& im = *impl_;
  im.requests.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics::get().requests.add();
  try {
    validate_key(request.key);
    const WisdomKey key = stamp(request.key);

    // Per-request QoS: a deadline becomes a local token the sweep (or the
    // joiner's wait) polls; an external cancel token is polled alongside.
    CancelToken deadline_token;
    const CancelToken* token = request.cancel;
    if (request.deadline_ms > 0.0) {
      deadline_token.set_deadline_ms(request.deadline_ms);
      token = &deadline_token;
    }
    const auto poll_qos = [&] {
      check_cancelled(token);
      if (token != request.cancel) check_cancelled(request.cancel);
    };
    poll_qos();

    // 1. Wisdom lookup — a hit is answered with no sweep anywhere.
    if (!request.no_cache) {
      if (auto hit = im.cache.find(key)) {
        im.cache_hits.fetch_add(1, std::memory_order_relaxed);
        return TuneOutcome{*hit, Source::CacheHit, false, key};
      }
    }

    // no_cache bypasses dedup too: the caller asked for a fresh sweep,
    // so it neither joins nor publishes one.
    if (request.no_cache) {
      MemBudget budget(request.mem_budget_bytes);
      const Impl::SweptAnswer ans = im.lead_sweep(
          key, token, request.mem_budget_bytes > 0 ? &budget : nullptr);
      return TuneOutcome{ans.best, Source::Swept, ans.degraded, key};
    }

    // 2. In-flight dedup.  The dedup key widens the wisdom key by the
    // memory budget: a budgeted sweep may legitimately differ from an
    // unbudgeted one, so they must not share a future.
    const std::string dedup_key =
        key.to_line() + "|mb=" + std::to_string(request.mem_budget_bytes);
    std::promise<Impl::SweptAnswer> promise;
    std::shared_future<Impl::SweptAnswer> shared;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(im.inflight_mu);
      if (const auto it = im.inflight.find(dedup_key); it != im.inflight.end()) {
        shared = it->second;
        // Counted under the lock so a hook-blocked leader can await a
        // deterministic joiner count (see the dedup stress test).
        im.dedup_joins.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().dedup_joins.add();
      } else {
        shared = promise.get_future().share();
        im.inflight.emplace(dedup_key, shared);
        leader = true;
      }
    }

    if (!leader) {
      // Joiner: wait on the leader's future under *this* request's QoS.
      for (;;) {
        poll_qos();
        if (shared.wait_for(std::chrono::microseconds(200)) ==
            std::future_status::ready) {
          break;
        }
      }
      const Impl::SweptAnswer ans = shared.get();  // rethrows sweep failures
      return TuneOutcome{ans.best, Source::Joined, ans.degraded, key};
    }

    // Leader: joiners can pile on from here.
    try {
      if (im.opts.on_sweep_start) im.opts.on_sweep_start(key);
      MemBudget budget(request.mem_budget_bytes);
      const Impl::SweptAnswer ans = im.lead_sweep(
          key, token, request.mem_budget_bytes > 0 ? &budget : nullptr);
      // Publish to the cache *before* retiring the in-flight entry: a
      // request arriving in between sees either the future or the cached
      // entry, never a window that starts a duplicate sweep.
      if (!ans.degraded) im.cache.put(key, ans.best);
      {
        std::lock_guard<std::mutex> lock(im.inflight_mu);
        im.inflight.erase(dedup_key);
      }
      promise.set_value(ans);
      return TuneOutcome{ans.best, Source::Swept, ans.degraded, key};
    } catch (...) {
      // Failures are never cached; joiners inherit this exception and a
      // later identical request sweeps fresh.
      {
        std::lock_guard<std::mutex> lock(im.inflight_mu);
        im.inflight.erase(dedup_key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  } catch (...) {
    im.failures.fetch_add(1, std::memory_order_relaxed);
    ServiceMetrics::get().failures.add();
    throw;
  }
}

autotune::TuneEntry direct_tune(const WisdomKey& key, const ExecPolicy& policy) {
  validate_key(key);
  autotune::TuneOptions topts;
  topts.policy = policy;
  const autotune::TuneResult result = run_local_sweep(key.canonical(), topts);
  if (!result.found()) {
    throw InternalError("direct_tune: sweep produced no valid candidate");
  }
  return result.best;
}

}  // namespace inplane::service
