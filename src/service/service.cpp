#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>

#include "autotune/checkpoint.hpp"
#include "autotune/fingerprint.hpp"
#include "core/coefficients.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "distributed/supervisor.hpp"
#include "distributed/sweep_spec.hpp"
#include "metrics/metrics.hpp"

namespace inplane::service {

namespace {

struct ServiceMetrics {
  metrics::Counter& requests;
  metrics::Counter& dedup_joins;
  metrics::Counter& sweeps;
  metrics::Counter& failures;
  metrics::Counter& breaker_failures;
  metrics::Counter& breaker_trips;
  metrics::Counter& breaker_short_circuits;
  metrics::Counter& breaker_probes;

  static ServiceMetrics& get() {
    auto& reg = metrics::Registry::global();
    static ServiceMetrics m{
        reg.counter("service.requests"),
        reg.counter("service.dedup_joins"),
        reg.counter("service.sweeps"),
        reg.counter("service.failures"),
        reg.counter("service.breaker.failures"),
        reg.counter("service.breaker.trips"),
        reg.counter("service.breaker.short_circuits"),
        reg.counter("service.breaker.probes"),
    };
    return m;
  }
};

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Validates the parts of a programmatic key that WisdomKey::parse would
/// have enforced on the wire (tune() accepts keys built in code too).
void validate_key(const WisdomKey& key) {
  if (key.kind != "exhaustive" && key.kind != "model") {
    throw InvalidConfigError("service: unknown sweep kind '" + key.kind +
                             "' (exhaustive | model)");
  }
  if (key.order < 1 || key.order > 64) {
    throw InvalidConfigError("service: stencil order out of range [1, 64]");
  }
  if (key.extent.nx < 1 || key.extent.ny < 1 || key.extent.nz < 1) {
    throw InvalidConfigError("service: grid extent must be positive");
  }
  if (key.temporal_degree < 1 || key.temporal_degree > 8) {
    throw InvalidConfigError("service: temporal degree out of range [1, 8]");
  }
  (void)distributed::resolve_method(key.method);  // throws on unknown names
}

/// The in-process sweep both tune() leaders and direct_tune run: identical
/// coefficients and tuner entry points, so answers are bit-comparable.
autotune::TuneResult run_local_sweep(const WisdomKey& key,
                                     const autotune::TuneOptions& options) {
  const kernels::Method method = distributed::resolve_method(key.method);
  const gpusim::DeviceSpec device = distributed::resolve_device(key.device);
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(key.order / 2);
  autotune::SearchSpace space;
  // The key's degree widens the tb axis to {1..degree}; degree 1 is the
  // paper's single-step space, so legacy keys sweep exactly what they did.
  space.set_max_temporal_degree(key.temporal_degree);
  if (key.double_precision) {
    if (key.kind == "model") {
      return autotune::model_guided_tune<double>(method, coeffs, device, key.extent,
                                                 key.beta, space, options);
    }
    return autotune::exhaustive_tune<double>(method, coeffs, device, key.extent,
                                             space, options);
  }
  if (key.kind == "model") {
    return autotune::model_guided_tune<float>(method, coeffs, device, key.extent,
                                              key.beta, space, options);
  }
  return autotune::exhaustive_tune<float>(method, coeffs, device, key.extent, space,
                                          options);
}

}  // namespace

const char* to_string(Source source) {
  switch (source) {
    case Source::CacheHit: return "hit";
    case Source::Swept: return "swept";
    case Source::Joined: return "joined";
  }
  return "?";
}

std::string TuneOutcome::entry_payload() const {
  return autotune::encode_tune_entry(best);
}

// --------------------------------------------------------------------------

struct TuningService::Impl {
  /// What a led sweep hands its joiners.
  struct SweptAnswer {
    autotune::TuneEntry best;
    bool degraded = false;
  };

  ServiceOptions opts;
  WisdomCache cache;

  std::mutex inflight_mu;
  std::map<std::string, std::shared_future<SweptAnswer>> inflight;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> dedup_joins{0};
  std::atomic<std::uint64_t> sweeps{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> breaker_failures{0};
  std::atomic<std::uint64_t> breaker_trips{0};
  std::atomic<std::uint64_t> breaker_short_circuits{0};
  std::atomic<std::uint64_t> breaker_probes{0};
  std::atomic<std::uint64_t> wisdom_write_errors{0};

  // Fan-out circuit breaker (guarded by breaker_mu).
  enum class Breaker { Closed, Open, HalfOpen };
  std::mutex breaker_mu;
  Breaker breaker = Breaker::Closed;
  int breaker_consecutive = 0;  ///< consecutive fleet failures while closed
  std::chrono::steady_clock::time_point breaker_open_until{};
  bool breaker_probe_inflight = false;
  std::uint64_t breaker_rng;

  mutable std::mutex devfp_mu;
  mutable std::map<std::string, std::uint64_t> devfp_memo;

  explicit Impl(ServiceOptions o)
      : opts(std::move(o)), cache(opts.cache_capacity),
        breaker_rng(opts.breaker_jitter_seed) {
    if (!opts.wisdom_path.empty()) cache.open(opts.wisdom_path, opts.cache_capacity);
  }

  std::uint64_t device_fp(const std::string& device) const {
    {
      std::lock_guard<std::mutex> lock(devfp_mu);
      if (const auto it = devfp_memo.find(device); it != devfp_memo.end()) {
        return it->second;
      }
    }
    const std::uint64_t fp =
        autotune::device_fingerprint(distributed::resolve_device(device));
    std::lock_guard<std::mutex> lock(devfp_mu);
    devfp_memo.emplace(device, fp);
    return fp;
  }

  /// Jittered open-state duration (~[0.5, 1.5) x breaker_probe_after_ms)
  /// so a fleet of daemons never probes a recovering cluster in lockstep.
  /// Caller holds breaker_mu (the rng is guarded by it).
  std::chrono::steady_clock::duration jittered_open_duration() {
    const double factor =
        0.5 + static_cast<double>(splitmix64(breaker_rng) % 1024) / 1024.0;
    const double ms = opts.breaker_probe_after_ms * factor;
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms < 1.0 ? 1.0 : ms));
  }

  SweptAnswer run_fan_out(const WisdomKey& key, const CancelToken* cancel) {
    if (opts.on_fan_out) opts.on_fan_out(key);
    distributed::SupervisorOptions so;
    so.spec.method = key.method;
    so.spec.device = key.device;
    so.spec.extent = key.extent;
    so.spec.order = key.order;
    so.spec.double_precision = key.double_precision;
    so.spec.kind = key.kind;
    so.spec.beta = key.beta;
    so.workers = opts.fan_out_workers;
    char sub[32];
    std::snprintf(sub, sizeof(sub), "/k%016" PRIx64, key.fingerprint());
    so.checkpoint_dir = opts.fan_out_dir + sub;
    so.worker_exe = opts.fan_out_worker_exe;
    so.worker_fault_spec = opts.fan_out_fault_spec;
    so.cancel = cancel;
    const distributed::SweepReport report = distributed::run_distributed_sweep(so);
    if (!report.result.found()) {
      throw InternalError("service: fan-out sweep produced no valid candidate");
    }
    return SweptAnswer{report.result.best, !report.complete};
  }

  SweptAnswer run_local(const WisdomKey& key, const CancelToken* cancel,
                        MemBudget* budget) {
    autotune::TuneOptions topts;
    topts.policy = opts.sweep_policy;
    topts.policy.cancel = cancel;
    topts.mem_budget = budget;
    const autotune::TuneResult result = run_local_sweep(key, topts);
    if (!result.found()) {
      throw InternalError("service: sweep produced no valid candidate");
    }
    const bool degraded = budget != nullptr && budget->denied() > 0;
    return SweptAnswer{result.best, degraded};
  }

  /// The sweep a leader runs for @p key: distributed fan-out when the
  /// service is configured for it and the request carries no memory
  /// budget (budgets are a single-process concept); in-process otherwise.
  /// The fan-out path runs behind the circuit breaker: fleet failures
  /// fall back to the bit-identical local sweep and, once consecutive
  /// failures reach the threshold, trip the breaker open so later sweeps
  /// skip the fleet entirely until a half-open probe succeeds.
  SweptAnswer lead_sweep(const WisdomKey& key, const CancelToken* cancel,
                         MemBudget* budget) {
    sweeps.fetch_add(1, std::memory_order_relaxed);
    ServiceMetrics::get().sweeps.add();

    if (!(opts.fan_out_workers > 0 && budget == nullptr)) {
      return run_local(key, cancel, budget);
    }
    if (!opts.fan_out_breaker) {
      return run_fan_out(key, cancel);  // pre-breaker behaviour: failures propagate
    }

    bool probing = false;
    bool attempt = false;
    {
      std::lock_guard<std::mutex> lock(breaker_mu);
      if (breaker == Breaker::Closed) {
        attempt = true;
      } else if (!breaker_probe_inflight &&
                 (breaker == Breaker::HalfOpen ||
                  std::chrono::steady_clock::now() >= breaker_open_until)) {
        breaker = Breaker::HalfOpen;
        breaker_probe_inflight = true;
        attempt = probing = true;
        breaker_probes.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().breaker_probes.add();
      }
    }
    if (!attempt) {
      breaker_short_circuits.fetch_add(1, std::memory_order_relaxed);
      ServiceMetrics::get().breaker_short_circuits.add();
      return run_local(key, cancel, budget);
    }
    try {
      const SweptAnswer ans = run_fan_out(key, cancel);
      std::lock_guard<std::mutex> lock(breaker_mu);
      breaker_consecutive = 0;
      if (probing) breaker_probe_inflight = false;
      if (breaker != Breaker::Closed) {
        breaker = Breaker::Closed;
        std::fprintf(stderr, "service: fan-out breaker closed (fleet recovered)\n");
      }
      return ans;
    } catch (const ResourceExhaustedError&) {
      // Cancellation/deadline says nothing about fleet health: release
      // the probe slot (if held) without moving the state machine.
      std::lock_guard<std::mutex> lock(breaker_mu);
      if (probing) breaker_probe_inflight = false;
      throw;
    } catch (const std::exception& e) {
      breaker_failures.fetch_add(1, std::memory_order_relaxed);
      ServiceMetrics::get().breaker_failures.add();
      bool tripped = false;
      {
        std::lock_guard<std::mutex> lock(breaker_mu);
        if (probing) {
          // A failed probe re-opens immediately (the fleet is still sick).
          breaker_probe_inflight = false;
          breaker = Breaker::Open;
          breaker_open_until = std::chrono::steady_clock::now() + jittered_open_duration();
          tripped = true;
        } else if (breaker == Breaker::Closed &&
                   ++breaker_consecutive >= std::max(1, opts.breaker_threshold)) {
          breaker = Breaker::Open;
          breaker_consecutive = 0;
          breaker_open_until = std::chrono::steady_clock::now() + jittered_open_duration();
          tripped = true;
        }
      }
      if (tripped) {
        breaker_trips.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().breaker_trips.add();
        std::fprintf(stderr,
                     "service: WARNING: fan-out breaker opened (%s); sweeps fall "
                     "back to in-process until a probe succeeds\n",
                     e.what());
      }
      return run_local(key, cancel, budget);
    }
  }
};

TuningService::TuningService(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

TuningService::~TuningService() = default;

WisdomKey TuningService::stamp(const WisdomKey& key) const {
  WisdomKey stamped = key.canonical();
  stamped.device_fp = impl_->device_fp(stamped.device);
  return stamped;
}

ServiceCounters TuningService::counters() const {
  ServiceCounters c;
  c.requests = impl_->requests.load(std::memory_order_relaxed);
  c.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
  c.dedup_joins = impl_->dedup_joins.load(std::memory_order_relaxed);
  c.sweeps = impl_->sweeps.load(std::memory_order_relaxed);
  c.failures = impl_->failures.load(std::memory_order_relaxed);
  c.breaker_failures = impl_->breaker_failures.load(std::memory_order_relaxed);
  c.breaker_trips = impl_->breaker_trips.load(std::memory_order_relaxed);
  c.breaker_short_circuits =
      impl_->breaker_short_circuits.load(std::memory_order_relaxed);
  c.breaker_probes = impl_->breaker_probes.load(std::memory_order_relaxed);
  c.wisdom_write_errors = impl_->wisdom_write_errors.load(std::memory_order_relaxed);
  return c;
}

WisdomCache& TuningService::cache() { return impl_->cache; }

const char* TuningService::breaker_state() const {
  Impl& im = *impl_;
  if (im.opts.fan_out_workers <= 0 || !im.opts.fan_out_breaker) return "off";
  std::lock_guard<std::mutex> lock(im.breaker_mu);
  switch (im.breaker) {
    case Impl::Breaker::Closed: return "closed";
    case Impl::Breaker::Open: return "open";
    case Impl::Breaker::HalfOpen: return "half_open";
  }
  return "?";
}

std::optional<TuneOutcome> TuningService::peek(const TuneRequest& request) {
  Impl& im = *impl_;
  validate_key(request.key);
  const WisdomKey key = stamp(request.key);
  if (request.no_cache) return std::nullopt;
  auto hit = im.cache.find(key);
  if (!hit) return std::nullopt;
  im.requests.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics::get().requests.add();
  im.cache_hits.fetch_add(1, std::memory_order_relaxed);
  return TuneOutcome{*hit, Source::CacheHit, false, key};
}

TuneOutcome TuningService::tune(const TuneRequest& request) {
  Impl& im = *impl_;
  im.requests.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics::get().requests.add();
  try {
    validate_key(request.key);
    const WisdomKey key = stamp(request.key);

    // Per-request QoS: a deadline becomes a local token the sweep (or the
    // joiner's wait) polls; an external cancel token is polled alongside.
    CancelToken deadline_token;
    const CancelToken* token = request.cancel;
    if (request.deadline_ms > 0.0) {
      deadline_token.set_deadline_ms(request.deadline_ms);
      token = &deadline_token;
    }
    const auto poll_qos = [&] {
      check_cancelled(token);
      if (token != request.cancel) check_cancelled(request.cancel);
    };
    poll_qos();

    // 1. Wisdom lookup — a hit is answered with no sweep anywhere.
    if (!request.no_cache) {
      if (auto hit = im.cache.find(key)) {
        im.cache_hits.fetch_add(1, std::memory_order_relaxed);
        return TuneOutcome{*hit, Source::CacheHit, false, key};
      }
    }

    // no_cache bypasses dedup too: the caller asked for a fresh sweep,
    // so it neither joins nor publishes one.  The sweep-start hook still
    // fires — it observes every sweep, not every cache publish.
    if (request.no_cache) {
      if (im.opts.on_sweep_start) im.opts.on_sweep_start(key);
      MemBudget budget(request.mem_budget_bytes);
      const Impl::SweptAnswer ans = im.lead_sweep(
          key, token, request.mem_budget_bytes > 0 ? &budget : nullptr);
      return TuneOutcome{ans.best, Source::Swept, ans.degraded, key};
    }

    // 2. In-flight dedup.  The dedup key widens the wisdom key by the
    // memory budget: a budgeted sweep may legitimately differ from an
    // unbudgeted one, so they must not share a future.
    const std::string dedup_key =
        key.to_line() + "|mb=" + std::to_string(request.mem_budget_bytes);
    std::promise<Impl::SweptAnswer> promise;
    std::shared_future<Impl::SweptAnswer> shared;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(im.inflight_mu);
      if (const auto it = im.inflight.find(dedup_key); it != im.inflight.end()) {
        shared = it->second;
        // Counted under the lock so a hook-blocked leader can await a
        // deterministic joiner count (see the dedup stress test).
        im.dedup_joins.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().dedup_joins.add();
      } else {
        shared = promise.get_future().share();
        im.inflight.emplace(dedup_key, shared);
        leader = true;
      }
    }

    if (!leader) {
      // Joiner: wait on the leader's future under *this* request's QoS.
      for (;;) {
        poll_qos();
        if (shared.wait_for(std::chrono::microseconds(200)) ==
            std::future_status::ready) {
          break;
        }
      }
      const Impl::SweptAnswer ans = shared.get();  // rethrows sweep failures
      return TuneOutcome{ans.best, Source::Joined, ans.degraded, key};
    }

    // Leader: joiners can pile on from here.
    try {
      if (im.opts.on_sweep_start) im.opts.on_sweep_start(key);
      MemBudget budget(request.mem_budget_bytes);
      const Impl::SweptAnswer ans = im.lead_sweep(
          key, token, request.mem_budget_bytes > 0 ? &budget : nullptr);
      // Publish to the cache *before* retiring the in-flight entry: a
      // request arriving in between sees either the future or the cached
      // entry, never a window that starts a duplicate sweep.  A wisdom
      // *write* failure (disk full) is not a request failure: the entry
      // serves from memory and the answer stays OK.
      if (!ans.degraded) {
        const Status put_status = im.cache.put(key, ans.best);
        if (!put_status.ok()) {
          im.wisdom_write_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
      {
        std::lock_guard<std::mutex> lock(im.inflight_mu);
        im.inflight.erase(dedup_key);
      }
      promise.set_value(ans);
      return TuneOutcome{ans.best, Source::Swept, ans.degraded, key};
    } catch (...) {
      // Failures are never cached; joiners inherit this exception and a
      // later identical request sweeps fresh.
      {
        std::lock_guard<std::mutex> lock(im.inflight_mu);
        im.inflight.erase(dedup_key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  } catch (...) {
    im.failures.fetch_add(1, std::memory_order_relaxed);
    ServiceMetrics::get().failures.add();
    throw;
  }
}

autotune::TuneEntry direct_tune(const WisdomKey& key, const ExecPolicy& policy) {
  validate_key(key);
  autotune::TuneOptions topts;
  topts.policy = policy;
  const autotune::TuneResult result = run_local_sweep(key.canonical(), topts);
  if (!result.found()) {
    throw InternalError("direct_tune: sweep produced no valid candidate");
  }
  return result.best;
}

}  // namespace inplane::service
