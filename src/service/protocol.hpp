#pragma once

// Wire protocol of the tuner daemon (tools/inplane_tuned): one request
// per line, one response line back, over a local AF_UNIX stream socket.
//
// Requests:
//   TUNE <wisdom key line> [deadline_ms=<ms>] [mem_budget=<bytes>] [no_cache=1]
//   RUN  <wisdom key line> [same QoS options]
//   PING
//   STATS
//   SHUTDOWN
//
// The wisdom key line is WisdomKey::to_line()'s key=value vocabulary
// (devfp optional — the daemon stamps it); the QoS options may be
// interleaved anywhere after the verb.  Unknown tokens are loudly
// rejected, never guessed at.
//
// Responses (single line):
//   OK pong                                   (PING)
//   OK bye                                    (SHUTDOWN; daemon then exits 0)
//   OK requests=... cache_hits=... ...        (STATS)
//   OK source=hit|swept|joined degraded=0|1 mpoints=<g> entry=<hex>   (TUNE)
//   OK source=... tx=.. ty=.. rx=.. ry=.. vec=.. mpoints=<g>          (RUN)
//   ERR code=<exit code taxonomy> <message>
//
// TUNE's entry=<hex> is the *byte-exact* IPTJ3 entry payload
// (autotune::encode_tune_entry), so a client can compare bit-identity
// against a local sweep — the stress harness does exactly that.

#include <optional>
#include <string>

#include "service/service.hpp"

namespace inplane::service {

enum class Verb { Tune, Run, Ping, Stats, Shutdown };

/// One parsed request line.  `tune` is meaningful for Tune/Run only.
/// The embedded TuneRequest never carries an external cancel token —
/// the server layers its own.
struct Request {
  Verb verb = Verb::Ping;
  TuneRequest tune;
};

/// Strict parse of one request line; std::nullopt + @p error on any
/// violation (unknown verb, malformed key, unknown option, bad number).
[[nodiscard]] std::optional<Request> parse_request(const std::string& line,
                                                   std::string* error = nullptr);

[[nodiscard]] std::string hex_encode(const std::string& bytes);
[[nodiscard]] std::optional<std::string> hex_decode(const std::string& hex);

/// `OK ...` response lines.
[[nodiscard]] std::string format_tune_response(const TuneOutcome& outcome);
[[nodiscard]] std::string format_run_response(const TuneOutcome& outcome);
[[nodiscard]] std::string format_stats_response(const ServiceCounters& counters,
                                                const WisdomCache::Stats& cache,
                                                std::size_t cache_size);

/// `ERR code=<n> <message>` with the repo-wide exit-code taxonomy
/// (core/status.hpp exit_code()).
[[nodiscard]] std::string format_error(const std::exception& e);

/// Parsed TUNE/RUN response, as clients and tests consume it.
struct ParsedResponse {
  bool ok = false;
  int err_code = 0;         ///< taxonomy code when !ok
  std::string message;      ///< error text when !ok
  std::string source;       ///< hit | swept | joined
  bool degraded = false;
  double mpoints = 0.0;
  std::string entry_payload;  ///< decoded entry bytes (TUNE only)
  int tx = 0, ty = 0, rx = 0, ry = 0, vec = 0;  ///< RUN only
};

[[nodiscard]] std::optional<ParsedResponse> parse_response(const std::string& line,
                                                           std::string* error = nullptr);

/// Fuzz oracle for the wisdom-key line format (tools/stencil_fuzz
/// --wisdom-iters and the `wisdom ` replay corpus lines): a line must
/// either be loudly rejected by WisdomKey::parse, or survive
/// parse -> to_line -> parse as the identical key with an identical
/// canonical line.  Returns false (with @p why) when the law is violated.
[[nodiscard]] bool wisdom_roundtrip_check(const std::string& line,
                                          std::string* why = nullptr);

}  // namespace inplane::service
