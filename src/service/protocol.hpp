#pragma once

// Wire protocol of the tuner daemon (tools/inplane_tuned): one request
// per line, one response line back, over a local AF_UNIX stream socket.
//
// Requests:
//   TUNE <wisdom key line> [deadline_ms=<ms>] [mem_budget=<bytes>] [no_cache=1]
//   RUN  <wisdom key line> [same QoS options]
//   PING
//   STATS
//   SHUTDOWN
//
// The wisdom key line is WisdomKey::to_line()'s key=value vocabulary
// (devfp optional — the daemon stamps it); the QoS options may be
// interleaved anywhere after the verb.  Unknown tokens are loudly
// rejected, never guessed at.
//
// Responses (single line):
//   OK pong                                   (PING)
//   OK bye                                    (SHUTDOWN; daemon then exits 0)
//   OK requests=... cache_hits=... ...        (STATS)
//   OK source=hit|swept|joined degraded=0|1 mpoints=<g> entry=<hex>   (TUNE)
//   OK source=... tx=.. ty=.. rx=.. ry=.. vec=.. mpoints=<g>          (RUN)
//   ERR code=<exit code taxonomy> <message>
//   ERR code=overloaded retry_after_ms=<ms> <message>   (admission shed)
//   ERR code=draining <message>                         (server draining)
//
// The two symbolic codes are overload-control signals, not taxonomy
// failures of the *request*: clients map them onto the ResourceExhausted
// exit code (5) and `overloaded` carries a jittered retry_after_ms hint
// the retrying client honours.
//
// TUNE's entry=<hex> is the *byte-exact* IPTJ3 entry payload
// (autotune::encode_tune_entry), so a client can compare bit-identity
// against a local sweep — the stress harness does exactly that.

#include <optional>
#include <string>

#include "service/service.hpp"

namespace inplane::service {

enum class Verb { Tune, Run, Ping, Stats, Shutdown };

/// One parsed request line.  `tune` is meaningful for Tune/Run only.
/// The embedded TuneRequest never carries an external cancel token —
/// the server layers its own.
struct Request {
  Verb verb = Verb::Ping;
  TuneRequest tune;
};

/// Strict parse of one request line; std::nullopt + @p error on any
/// violation (unknown verb, malformed key, unknown option, bad number).
[[nodiscard]] std::optional<Request> parse_request(const std::string& line,
                                                   std::string* error = nullptr);

[[nodiscard]] std::string hex_encode(const std::string& bytes);
[[nodiscard]] std::optional<std::string> hex_decode(const std::string& hex);

/// Incremental newline framer for the hardened server: feed() raw socket
/// bytes as they arrive, pull complete lines with next_line().  A frame
/// (the bytes since the last newline) that exceeds max_frame_bytes
/// *poisons* the framer — overflowed() turns true, buffered bytes are
/// discarded and further feeds are swallowed, so an attacker streaming an
/// endless unterminated line costs O(1) memory, never an OOM.  Trailing
/// '\r' is stripped, empty lines are skipped (matching the historical
/// reader's behaviour).
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_frame_bytes = 65536)
      : max_frame_bytes_(max_frame_bytes == 0 ? 1 : max_frame_bytes) {}

  /// Buffers @p n bytes.  Returns false (and poisons) when the pending
  /// partial frame would exceed the limit.
  bool feed(const char* data, std::size_t n);

  /// Next complete line (without '\n'/'\r'), or std::nullopt when no full
  /// line is buffered.  Never returns empty lines.
  [[nodiscard]] std::optional<std::string> next_line();

  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }
  [[nodiscard]] std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool overflowed_ = false;
};

/// What the socket layer itself observed (next to the ServiceCounters,
/// which count requests that *reached* the service).  Exposed via STATS
/// and mirrored into service.shed.* metrics counters.
struct ServerStats {
  std::uint64_t shed_requests = 0;     ///< TUNE/RUN answered overloaded/draining
  std::uint64_t shed_connections = 0;  ///< connections refused at max_connections
  std::uint64_t frame_errors = 0;      ///< oversized frames dropped
  std::uint64_t deadline_drops = 0;    ///< read/write-deadline closes (slow loris)
  bool draining = false;
};

/// `OK ...` response lines.
[[nodiscard]] std::string format_tune_response(const TuneOutcome& outcome);
[[nodiscard]] std::string format_run_response(const TuneOutcome& outcome);
[[nodiscard]] std::string format_stats_response(const ServiceCounters& counters,
                                                const WisdomCache::Stats& cache,
                                                std::size_t cache_size,
                                                const ServerStats& server = {},
                                                const std::string& breaker_state = "off");

/// `ERR code=<n> <message>` with the repo-wide exit-code taxonomy
/// (core/status.hpp exit_code()).
[[nodiscard]] std::string format_error(const std::exception& e);

/// Overload-control error lines (symbolic codes; see the header comment).
[[nodiscard]] std::string format_overloaded(double retry_after_ms,
                                            const std::string& what);
[[nodiscard]] std::string format_draining(const std::string& what);

/// Parsed TUNE/RUN response, as clients and tests consume it.
struct ParsedResponse {
  bool ok = false;
  int err_code = 0;         ///< taxonomy code when !ok
  std::string err_name;     ///< symbolic code when the daemon sent one
                            ///< ("overloaded" | "draining"); empty otherwise
  double retry_after_ms = 0.0;  ///< shed responses: suggested client backoff
  std::string message;      ///< error text when !ok
  std::string source;       ///< hit | swept | joined
  bool degraded = false;
  double mpoints = 0.0;
  std::string entry_payload;  ///< decoded entry bytes (TUNE only)
  int tx = 0, ty = 0, rx = 0, ry = 0, vec = 0;  ///< RUN only

  [[nodiscard]] bool overloaded() const { return !ok && err_name == "overloaded"; }
  [[nodiscard]] bool draining() const { return !ok && err_name == "draining"; }
};

[[nodiscard]] std::optional<ParsedResponse> parse_response(const std::string& line,
                                                           std::string* error = nullptr);

/// Fuzz oracle for the wisdom-key line format (tools/stencil_fuzz
/// --wisdom-iters and the `wisdom ` replay corpus lines): a line must
/// either be loudly rejected by WisdomKey::parse, or survive
/// parse -> to_line -> parse as the identical key with an identical
/// canonical line.  Returns false (with @p why) when the law is violated.
[[nodiscard]] bool wisdom_roundtrip_check(const std::string& line,
                                          std::string* why = nullptr);

}  // namespace inplane::service
