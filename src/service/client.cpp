#include "service/client.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/status.hpp"

#ifndef _WIN32

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace inplane::service {

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {}

Client::~Client() { close(); }

void Client::connect() {
  if (fd_ >= 0) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw InvalidConfigError("service: socket path longer than sun_path: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("service: cannot create AF_UNIX socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw IoError("service: cannot connect to " + path_);
  }
  fd_ = fd;
  buffer_.clear();
}

bool Client::connected() const { return fd_ >= 0; }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::string Client::roundtrip(const std::string& request_line) {
  if (fd_ < 0) throw IoError("service: client is not connected");
  const std::string framed = request_line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      throw IoError("service: send failed on " + path_);
    }
    sent += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      throw IoError("service: connection closed by " + path_ +
                    " before a response line arrived");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace inplane::service

#else  // _WIN32

namespace inplane::service {

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {}
Client::~Client() = default;
void Client::connect() {
  throw InternalError("service: AF_UNIX client is POSIX-only");
}
bool Client::connected() const { return false; }
void Client::close() {}
std::string Client::roundtrip(const std::string&) {
  throw InternalError("service: AF_UNIX client is POSIX-only");
}

}  // namespace inplane::service

#endif

namespace inplane::service {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string format_tune_request(const WisdomKey& key, double deadline_ms,
                                std::uint64_t mem_budget_bytes, bool no_cache) {
  std::string line = "TUNE " + key.to_line();
  if (deadline_ms > 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " deadline_ms=%.17g", deadline_ms);
    line += buf;
  }
  if (mem_budget_bytes > 0) line += " mem_budget=" + std::to_string(mem_budget_bytes);
  if (no_cache) line += " no_cache=1";
  return line;
}

ParsedResponse request_with_retry(const std::string& socket_path,
                                  const std::string& request_line,
                                  const RetryOptions& retry, int* attempts_out) {
  std::uint64_t rng = retry.jitter_seed;
  const auto sleep_ms = [&](double ms) {
    if (retry.sleeper) {
      retry.sleeper(ms);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
  };
  // Local backoff for attempt k: base * 2^k, capped, jittered x[0.5, 1.5)
  // so a thundering herd of shed clients does not return in lockstep.
  const auto backoff_ms = [&](int attempt) {
    double ms = retry.base_backoff_ms;
    for (int i = 0; i < attempt && ms < retry.max_backoff_ms; ++i) ms *= 2.0;
    if (ms > retry.max_backoff_ms) ms = retry.max_backoff_ms;
    const double factor = 0.5 + static_cast<double>(splitmix64(rng) % 1024) / 1024.0;
    ms *= factor;
    return ms < 1.0 ? 1.0 : ms;
  };

  const int budget = retry.budget < 0 ? 0 : retry.budget;
  for (int attempt = 0;; ++attempt) {
    if (attempts_out != nullptr) *attempts_out = attempt + 1;
    bool sent = false;
    try {
      Client client(socket_path);
      client.connect();
      sent = true;
      const std::string response = client.roundtrip(request_line);
      std::string error;
      const auto parsed = parse_response(response, &error);
      if (!parsed) {
        throw InvalidConfigError("service: unparseable daemon response: " + error);
      }
      if (!parsed->overloaded() || attempt >= budget) return *parsed;
      // Shed: the server's retry_after_ms hint wins over the local curve.
      sleep_ms(parsed->retry_after_ms > 0.0 ? parsed->retry_after_ms
                                            : backoff_ms(attempt));
    } catch (const IoError&) {
      // Only pre-send failures (the ECONNREFUSED class) are safe to
      // retry; a connection that died mid-roundtrip may have a sweep
      // running server-side.
      if (sent || attempt >= budget) throw;
      sleep_ms(backoff_ms(attempt));
    }
  }
}

ParsedResponse tune_over_socket(const std::string& socket_path, const WisdomKey& key,
                                double deadline_ms, std::uint64_t mem_budget_bytes,
                                bool no_cache) {
  Client client(socket_path);
  client.connect();
  const std::string response =
      client.roundtrip(format_tune_request(key, deadline_ms, mem_budget_bytes, no_cache));
  std::string error;
  const auto parsed = parse_response(response, &error);
  if (!parsed) {
    throw InvalidConfigError("service: unparseable daemon response: " + error);
  }
  return *parsed;
}

}  // namespace inplane::service
