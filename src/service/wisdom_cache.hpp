#pragma once

// The tuner daemon's persistent wisdom cache: best-known launch configs
// memoized across runs, keyed by (device fingerprint, stencil spec, grid
// shape).  Modeled on kernel_launcher's TuningCache wisdom files, but
// persisted in the repo's own CRC-framed journal framing (the IPTJ3
// record layout of autotune/checkpoint.cpp) so the same torn-tail /
// loud-reject recovery rules apply:
//
//   header  "IPWZ1\n" + u64 schema fingerprint
//   record* u32 payload_len | u32 crc32 | payload
//   payload u32 key_len | key line (WisdomKey::to_line) |
//           u32 entry_len | IPTJ3 TuneEntry payload (encode_tune_entry)
//
// Recovery rules:
//  * records are appended and flushed one put at a time — a daemon killed
//    mid-write loses at most the record being written; open() reloads the
//    valid prefix and truncates the torn tail (loudly, with a counter);
//  * a file whose header is foreign/corrupt is *never* trusted or
//    silently overwritten: it is preserved as <path>.orphan, a warning is
//    printed, and a fresh cache starts (the re-tune is clean);
//  * within the valid prefix the *last* record per key wins, so re-puts
//    update in place across restarts;
//  * a record whose key line predates the temporal-degree dimension (no
//    tb= field; its entry payload is the shorter IPTJ2-era layout) is
//    reloaded as a *degree-2* entry — the degree the temporal kernel was
//    hard-wired to when the record was written — loudly: a stderr warning
//    plus the legacy_upgraded stat / service.wisdom.legacy_upgrades
//    counter, never a silent re-keying.
//
// Bounding: the cache holds at most `capacity` entries under LRU —
// find() and put() both refresh recency.  An eviction compacts the file
// (live entries only, least-recent first) via write-temp + fsync +
// atomic rename, so the on-disk file never grows without bound and a
// crash during compaction leaves the previous complete file.
//
// Thread safety: every public method serialises on one internal mutex;
// the service's request threads share a cache freely.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "autotune/tuner.hpp"
#include "core/extent.hpp"
#include "core/status.hpp"

namespace inplane::service {

/// Identity of one tuning problem as the wisdom cache keys it: the
/// checkpoint-journal identity (method, device, extent, element size,
/// kind) widened by the stencil order, the model-guided beta and a
/// fingerprint of the *full device description* — two .device files that
/// share a name but differ in bandwidth must never alias.
struct WisdomKey {
  std::string method = "fullslice";  ///< CLI method name
  std::string device = "gtx580";     ///< device preset name or .device path
  std::uint64_t device_fp = 0;       ///< autotune::device_fingerprint of the spec
  int order = 2;                     ///< stencil order (radius * 2)
  bool double_precision = false;
  Extent3 extent{512, 512, 256};
  std::string kind = "exhaustive";   ///< "exhaustive" | "model"
  double beta = 0.0;                 ///< model-guided measured fraction
  int temporal_degree = 1;           ///< max temporal-blocking degree swept (tb axis)

  [[nodiscard]] std::size_t elem_size() const {
    return double_precision ? sizeof(double) : sizeof(float);
  }

  /// Canonical form: exhaustive sweeps ignore beta, so it is pinned to 0
  /// to keep "exhaustive beta=0.05" and "exhaustive beta=0.2" from
  /// occupying two cache slots for the same sweep.
  [[nodiscard]] WisdomKey canonical() const;

  /// Identity hash over every field (via autotune's FNV-1a primitives).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// One-line key=value serialization, stable field order:
  ///   method=... device=... devfp=0x... order=... prec=sp|dp
  ///   nx=... ny=... nz=... kind=... beta=... tb=...
  /// This line is both the cache-file key and the wire form the daemon's
  /// TUNE requests use, so the parser below is fuzzed (tools/stencil_fuzz
  /// --wisdom-iters) and its shrunk rejects pinned in the replay corpus.
  [[nodiscard]] std::string to_line() const;

  /// Strict inverse of to_line(): every field present exactly once
  /// (devfp may be omitted — the daemon stamps it server-side; tb may be
  /// omitted by a pre-degree client and defaults to 1, a single-step
  /// sweep), no unknown keys, no trailing garbage, every number in range.
  /// Returns std::nullopt and fills @p error on any violation — a
  /// malformed key is *loudly rejected*, never guessed at.
  [[nodiscard]] static std::optional<WisdomKey> parse(const std::string& line,
                                                      std::string* error = nullptr);

  [[nodiscard]] bool operator==(const WisdomKey&) const = default;
};

class WisdomCache {
 public:
  /// What one cache observed since construction (monotonic; next to the
  /// `service.*` metrics these are the exact values the property tests
  /// assert on).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;   ///< puts of a new key
    std::size_t updates = 0;      ///< puts of an existing key
    std::size_t evictions = 0;    ///< LRU victims dropped at capacity
    std::size_t compactions = 0;  ///< atomic-rename rewrites of the file
    std::size_t records_recovered = 0;  ///< valid records adopted by open()
    std::size_t legacy_upgraded = 0;  ///< pre-degree records reloaded as degree 2
    std::size_t torn_bytes = 0;   ///< bytes discarded after the valid prefix
    bool rejected_file = false;   ///< open() refused a foreign/corrupt header
    std::size_t write_errors = 0;  ///< failed appends/compactions (ENOSPC, EIO)
    /// A write failure detached the file: entries keep serving from
    /// memory, nothing else is persisted until the next open().
    bool degraded_to_memory = false;
  };

  /// In-memory cache (no persistence) holding at most @p capacity entries.
  explicit WisdomCache(std::size_t capacity = 256);
  ~WisdomCache();
  WisdomCache(const WisdomCache&) = delete;
  WisdomCache& operator=(const WisdomCache&) = delete;

  /// Attaches the cache to @p path (created if absent) and reloads
  /// whatever valid prefix an existing wisdom file holds, oldest record
  /// first — so the reloaded LRU order is the append order.  Throws
  /// IoError when the path cannot be created/opened.
  void open(const std::string& path, std::size_t capacity);

  [[nodiscard]] bool is_open() const;

  /// Looks up @p key (canonicalised) and refreshes its recency.
  [[nodiscard]] std::optional<autotune::TuneEntry> find(const WisdomKey& key);

  /// Inserts or updates the best entry for @p key, refreshes recency,
  /// appends the record to the wisdom file and flushes it.  At capacity
  /// the least-recently-used entry is evicted first and the file is
  /// compacted.
  ///
  /// A *write* failure (disk full, EIO) never loses the in-memory entry
  /// and never leaves a torn frame on disk: the half-written record is
  /// truncated back, the file handle is dropped (the cache degrades to
  /// serve-from-memory — see Stats::degraded_to_memory) and the failure
  /// is surfaced as a typed IoError Status.  Deliberately not
  /// [[nodiscard]]: callers that only care about the in-memory insert
  /// (tests, benches) may ignore it.  Still throws InvalidConfigError
  /// for a malformed key — that is a caller bug, not an I/O condition.
  Status put(const WisdomKey& key, const autotune::TuneEntry& best);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] Stats stats() const;

  /// Keys in recency order, least recently used first (test oracle).
  [[nodiscard]] std::vector<WisdomKey> lru_order() const;

  /// Rewrites the wisdom file to exactly the live entries (LRU order,
  /// least-recent first) via write-temp + fsync + atomic rename.  No-op
  /// for an in-memory cache.
  void compact();

  /// Flushes (fflush + fsync) the append handle so a drain loses nothing
  /// that was put.  No-op for an in-memory or degraded cache.
  void flush();

  /// Crash-simulation hook for the torn-write tests and
  /// tools/cli_service_crash.sh: after @p puts further successful puts,
  /// the *next* append writes only half of its record's bytes and then
  /// either hard-exits the process (when @p exit_code >= 0) or drops the
  /// file handle mid-record (exit_code < 0), leaving a torn tail for the
  /// next open() to recover from.  0 disarms.
  void simulate_torn_write_after(std::size_t puts, int exit_code);

  /// Disk-full injection hook for the degradation regression tests: after
  /// @p puts further successful puts, the next append writes half of its
  /// record and then fails as an ENOSPC-style short write would — put()
  /// returns the typed IoError Status, the torn half-record is truncated
  /// back and the cache degrades to memory-only.  Fires once, then
  /// disarms.
  void simulate_write_error_after(std::size_t puts);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace inplane::service
