#include "service/server.hpp"

#include "core/status.hpp"
#include "metrics/metrics.hpp"
#include "service/protocol.hpp"

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace inplane::service {

namespace {

struct ServerMetrics {
  metrics::Counter& shed_requests;
  metrics::Counter& shed_connections;
  metrics::Counter& frame_errors;
  metrics::Counter& deadline_drops;

  static ServerMetrics& get() {
    auto& reg = metrics::Registry::global();
    static ServerMetrics m{
        reg.counter("service.shed.requests"),
        reg.counter("service.shed.connections"),
        reg.counter("service.shed.frame_errors"),
        reg.counter("service.shed.deadline_drops"),
    };
    return m;
  }
};

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_SNDTIMEO: peer stopped draining
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct SocketServer::Impl {
  TuningService& service;
  std::string path;
  ServerOptions opts;
  // Read lock-free by the accept loop, closed-and-cleared by
  // request_stop(): atomic so the teardown handshake is race-free.
  std::atomic<int> listen_fd{-1};
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> draining{false};
  CancelToken cancel;
  std::thread accept_thread;
  std::mutex mu;
  std::condition_variable stopped_cv;
  std::vector<std::thread> handlers;
  std::set<int> live_fds;

  // Admission control + drain accounting.
  std::atomic<int> inflight_sweeps{0};   ///< TUNE/RUN holding a sweep slot
  std::atomic<int> active_requests{0};   ///< TUNE/RUN being handled at all
  std::atomic<std::uint64_t> shed_requests{0};
  std::atomic<std::uint64_t> shed_connections{0};
  std::atomic<std::uint64_t> frame_errors{0};
  std::atomic<std::uint64_t> deadline_drops{0};
  std::mutex jitter_mu;
  std::uint64_t jitter_rng;

  explicit Impl(TuningService& s, std::string p, ServerOptions o)
      : service(s), path(std::move(p)), opts(o), jitter_rng(o.shed_jitter_seed) {}

  double jittered_retry_ms() {
    std::lock_guard<std::mutex> lock(jitter_mu);
    const double factor =
        0.5 + static_cast<double>(splitmix64(jitter_rng) % 1024) / 1024.0;
    const double ms = opts.retry_after_base_ms * factor;
    return ms < 1.0 ? 1.0 : ms;
  }

  ServerStats stats_snapshot() const {
    ServerStats s;
    s.shed_requests = shed_requests.load(std::memory_order_relaxed);
    s.shed_connections = shed_connections.load(std::memory_order_relaxed);
    s.frame_errors = frame_errors.load(std::memory_order_relaxed);
    s.deadline_drops = deadline_drops.load(std::memory_order_relaxed);
    s.draining = draining.load(std::memory_order_relaxed);
    return s;
  }

  void count_shed_request() {
    shed_requests.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().shed_requests.add();
  }

  std::string handle_tune_or_run(const Request& req) {
    TuneRequest tune = req.tune;
    tune.cancel = &cancel;  // daemon shutdown cancels in-flight sweeps

    const auto answer = [&](const TuneOutcome& outcome) {
      return req.verb == Verb::Tune ? format_tune_response(outcome)
                                    : format_run_response(outcome);
    };

    // Drain: wisdom already in memory still answers ("cache hits are
    // never shed"), anything needing a sweep is refused — the daemon is
    // on its way out and must not start long work.
    if (draining.load(std::memory_order_acquire)) {
      if (const auto hit = service.peek(tune)) return answer(*hit);
      count_shed_request();
      return format_draining("server is draining; retry against the replacement");
    }

    // Admission: claim a sweep slot; over budget, serve a cache hit if
    // one exists, otherwise shed with a jittered retry hint.  A slot is
    // held for the whole service call — a hit inside tune() releases it
    // in microseconds, so hits under budget are never refused.
    struct SlotGuard {
      std::atomic<int>& c;
      bool held = false;
      explicit SlotGuard(std::atomic<int>& counter) : c(counter) {}
      ~SlotGuard() {
        if (held) c.fetch_sub(1);
      }
    } slot(inflight_sweeps);
    if (opts.max_inflight > 0) {
      if (inflight_sweeps.fetch_add(1) + 1 > opts.max_inflight) {
        inflight_sweeps.fetch_sub(1);
        if (const auto hit = service.peek(tune)) return answer(*hit);
        count_shed_request();
        return format_overloaded(
            jittered_retry_ms(),
            "server at max in-flight sweeps (" +
                std::to_string(opts.max_inflight) + ")");
      }
      slot.held = true;
    }
    return answer(service.tune(tune));
  }

  std::string handle_line(const std::string& line, bool& is_shutdown) {
    try {
      std::string error;
      const auto req = parse_request(line, &error);
      if (!req) throw InvalidConfigError("service: " + error);
      switch (req->verb) {
        case Verb::Ping:
          return "OK pong";
        case Verb::Stats:
          return format_stats_response(service.counters(), service.cache().stats(),
                                       service.cache().size(), stats_snapshot(),
                                       service.breaker_state());
        case Verb::Shutdown:
          is_shutdown = true;
          return "OK bye";  // caller initiates the actual stop
        case Verb::Tune:
        case Verb::Run:
          return handle_tune_or_run(*req);
      }
      throw InternalError("service: unreachable verb");
    } catch (const std::exception& e) {
      return format_error(e);
    }
  }

  void serve_connection(int fd) {
    if (opts.write_deadline_ms > 0.0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(opts.write_deadline_ms / 1000.0);
      tv.tv_usec = static_cast<suseconds_t>(
          std::fmod(opts.write_deadline_ms, 1000.0) * 1000.0);
      if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    LineFramer framer(opts.max_frame_bytes);
    bool shutdown_requested = false;
    char chunk[4096];
    auto last_line_at = std::chrono::steady_clock::now();
    for (;;) {
      // Drain every complete buffered line before reading again.
      bool peer_gone = false;
      while (const auto line = framer.next_line()) {
        bool is_shutdown = false;
        // Counted across handle *and* send so drain() only cuts the
        // connections once every in-flight answer line is on the wire.
        struct ActiveGuard {
          std::atomic<int>& c;
          explicit ActiveGuard(std::atomic<int>& counter) : c(counter) {
            c.fetch_add(1);
          }
          ~ActiveGuard() { c.fetch_sub(1); }
        } active(active_requests);
        const std::string response = handle_line(*line, is_shutdown);
        const bool sent = send_all(fd, response + "\n");
        // The next request's read deadline starts *after* this response:
        // a sweep longer than the deadline must not count against the
        // client's next line.
        last_line_at = std::chrono::steady_clock::now();
        if (!sent) {
          peer_gone = true;
          shutdown_requested = is_shutdown;
          break;
        }
        if (is_shutdown) {
          shutdown_requested = true;
          break;
        }
      }
      if (peer_gone || shutdown_requested) break;
      if (framer.overflowed()) {
        // Oversized frame: typed reject, then drop the connection — the
        // framer already discarded the bytes, so a streamed endless line
        // costs O(1) memory.
        frame_errors.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::get().frame_errors.add();
        (void)send_all(fd, format_error(InvalidConfigError(
                               "service: request line exceeds " +
                               std::to_string(framer.max_frame_bytes()) +
                               " bytes")) +
                               "\n");
        break;
      }

      int timeout_ms = -1;
      if (opts.read_deadline_ms > 0.0) {
        const double elapsed =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - last_line_at)
                .count();
        const double remaining = opts.read_deadline_ms - elapsed;
        if (remaining <= 0.0) {
          // Read deadline: a half-sent request line is a slow loris and
          // earns a typed error; a clean idle connection just closes.
          deadline_drops.fetch_add(1, std::memory_order_relaxed);
          ServerMetrics::get().deadline_drops.add();
          if (framer.pending_bytes() > 0) {
            (void)send_all(fd, format_error(ResourceExhaustedError(
                                   "service: read deadline exceeded "
                                   "mid-request")) +
                                   "\n");
          }
          break;
        }
        timeout_ms = static_cast<int>(remaining) + 1;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (pr == 0) continue;  // re-evaluates the deadline at the loop top
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      (void)framer.feed(chunk, static_cast<std::size_t>(n));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      live_fds.erase(fd);
    }
    ::close(fd);
    if (shutdown_requested) request_stop();
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd.load(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listen_fd closed (stop/drain) or fatal accept error
      }
      if (stopping.load()) {
        ::close(fd);
        continue;
      }
      std::lock_guard<std::mutex> lock(mu);
      if (opts.max_connections > 0 && live_fds.size() >= opts.max_connections) {
        shed_connections.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::get().shed_connections.add();
        (void)send_all(fd, format_overloaded(jittered_retry_ms(),
                                             "server at max connections (" +
                                                 std::to_string(opts.max_connections) +
                                                 ")") +
                               "\n");
        ::close(fd);
        continue;
      }
      live_fds.insert(fd);
      handlers.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  /// Spin-waits until no TUNE/RUN is being handled, up to @p deadline_ms.
  /// Returns true when the server went quiet in time.
  bool wait_requests_done(double deadline_ms) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms < 0.0 ? 0.0 : deadline_ms));
    while (active_requests.load() > 0) {
      if (std::chrono::steady_clock::now() >= until) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  void request_drain() {
    bool expected = false;
    if (draining.compare_exchange_strong(expected, true)) {
      // Stop accepting; existing connections keep their handlers, new
      // sweep requests on them are shed by handle_tune_or_run.
      const int lfd = listen_fd.exchange(-1);
      if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
      }
    }
    // In-flight sweeps get the deadline, then the cancel token — every
    // waiter unwinds through the service with ResourceExhausted and its
    // handler still writes the typed `ERR code=5` line before we cut the
    // connections in request_stop().
    if (!wait_requests_done(opts.drain_deadline_ms)) {
      cancel.cancel();
      (void)wait_requests_done(2000.0);
    }
    request_stop();
  }

  void request_stop() {
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) return;
    cancel.cancel();
    // Closing the listen socket unblocks accept(); shutting down live
    // connections unblocks their recv()/poll() so handlers drain.
    std::lock_guard<std::mutex> lock(mu);
    const int lfd = listen_fd.exchange(-1);
    if (lfd >= 0) {
      ::shutdown(lfd, SHUT_RDWR);
      ::close(lfd);
    }
    for (const int fd : live_fds) ::shutdown(fd, SHUT_RDWR);
    stopped_cv.notify_all();
  }
};

SocketServer::SocketServer(TuningService& service, std::string socket_path,
                           ServerOptions options)
    : impl_(new Impl(service, std::move(socket_path), options)) {}

SocketServer::~SocketServer() {
  stop();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  // Handlers self-deregister their fds; the list itself is only appended
  // under the mutex, and no new handlers spawn once stopping is set.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    handlers.swap(impl_->handlers);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  ::unlink(impl_->path.c_str());
  delete impl_;
}

void SocketServer::start() {
  Impl& im = *impl_;
  if (im.started.load()) throw InternalError("service: server already started");
  if (im.path.empty()) throw InvalidConfigError("service: empty socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (im.path.size() >= sizeof(addr.sun_path)) {
    throw InvalidConfigError("service: socket path longer than sun_path: " + im.path);
  }
  std::memcpy(addr.sun_path, im.path.c_str(), im.path.size() + 1);

  // send() on a peer-closed socket must surface as an error return, not
  // kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  ::unlink(im.path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("service: cannot create AF_UNIX socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw IoError("service: cannot bind " + im.path);
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    ::unlink(im.path.c_str());
    throw IoError("service: cannot listen on " + im.path);
  }
  im.listen_fd.store(fd);
  im.started.store(true);
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
}

void SocketServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->stopped_cv.wait(lock, [this] { return impl_->stopping.load(); });
}

void SocketServer::stop() { impl_->request_stop(); }

void SocketServer::drain() { impl_->request_drain(); }

bool SocketServer::running() const {
  return impl_->started.load() && !impl_->stopping.load();
}

bool SocketServer::draining() const { return impl_->draining.load(); }

ServerStats SocketServer::stats() const { return impl_->stats_snapshot(); }

const CancelToken& SocketServer::cancel_token() const { return impl_->cancel; }

}  // namespace inplane::service

#else  // _WIN32

namespace inplane::service {

struct SocketServer::Impl {
  explicit Impl(TuningService&, std::string, ServerOptions) {}
  CancelToken cancel;
};

SocketServer::SocketServer(TuningService& service, std::string socket_path,
                           ServerOptions options)
    : impl_(new Impl(service, std::move(socket_path), options)) {}
SocketServer::~SocketServer() { delete impl_; }

void SocketServer::start() {
  throw InternalError("service: AF_UNIX server is POSIX-only");
}
void SocketServer::wait() {
  throw InternalError("service: AF_UNIX server is POSIX-only");
}
void SocketServer::stop() {}
void SocketServer::drain() {}
bool SocketServer::running() const { return false; }
bool SocketServer::draining() const { return false; }
ServerStats SocketServer::stats() const { return {}; }
const CancelToken& SocketServer::cancel_token() const { return impl_->cancel; }

}  // namespace inplane::service

#endif
