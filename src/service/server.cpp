#include "service/server.hpp"

#include "core/status.hpp"
#include "service/protocol.hpp"

#ifndef _WIN32

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace inplane::service {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct SocketServer::Impl {
  TuningService& service;
  std::string path;
  // Read lock-free by the accept loop, closed-and-cleared by
  // request_stop(): atomic so the teardown handshake is race-free.
  std::atomic<int> listen_fd{-1};
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  CancelToken cancel;
  std::thread accept_thread;
  std::mutex mu;
  std::condition_variable stopped_cv;
  std::vector<std::thread> handlers;
  std::set<int> live_fds;

  explicit Impl(TuningService& s, std::string p) : service(s), path(std::move(p)) {}

  std::string handle_line(const std::string& line) {
    try {
      std::string error;
      const auto req = parse_request(line, &error);
      if (!req) throw InvalidConfigError("service: " + error);
      switch (req->verb) {
        case Verb::Ping:
          return "OK pong";
        case Verb::Stats:
          return format_stats_response(service.counters(), service.cache().stats(),
                                       service.cache().size());
        case Verb::Shutdown:
          return "OK bye";  // caller initiates the actual stop
        case Verb::Tune:
        case Verb::Run: {
          TuneRequest tune = req->tune;
          tune.cancel = &cancel;  // daemon shutdown cancels in-flight sweeps
          const TuneOutcome outcome = service.tune(tune);
          return req->verb == Verb::Tune ? format_tune_response(outcome)
                                         : format_run_response(outcome);
        }
      }
      throw InternalError("service: unreachable verb");
    } catch (const std::exception& e) {
      return format_error(e);
    }
  }

  void serve_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    bool shutdown_requested = false;
    while (!shutdown_requested) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const bool is_shutdown = line == "SHUTDOWN";
        if (!send_all(fd, handle_line(line) + "\n")) {
          shutdown_requested = is_shutdown;
          break;
        }
        if (is_shutdown) {
          shutdown_requested = true;
          break;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      live_fds.erase(fd);
    }
    ::close(fd);
    if (shutdown_requested) request_stop();
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd.load(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listen_fd closed (stop) or fatal accept error
      }
      if (stopping.load()) {
        ::close(fd);
        continue;
      }
      std::lock_guard<std::mutex> lock(mu);
      live_fds.insert(fd);
      handlers.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  void request_stop() {
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) return;
    cancel.cancel();
    // Closing the listen socket unblocks accept(); shutting down live
    // connections unblocks their recv() so handlers drain.
    std::lock_guard<std::mutex> lock(mu);
    const int lfd = listen_fd.exchange(-1);
    if (lfd >= 0) {
      ::shutdown(lfd, SHUT_RDWR);
      ::close(lfd);
    }
    for (const int fd : live_fds) ::shutdown(fd, SHUT_RDWR);
    stopped_cv.notify_all();
  }
};

SocketServer::SocketServer(TuningService& service, std::string socket_path)
    : impl_(new Impl(service, std::move(socket_path))) {}

SocketServer::~SocketServer() {
  stop();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  // Handlers self-deregister their fds; the list itself is only appended
  // under the mutex, and no new handlers spawn once stopping is set.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    handlers.swap(impl_->handlers);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  ::unlink(impl_->path.c_str());
  delete impl_;
}

void SocketServer::start() {
  Impl& im = *impl_;
  if (im.started.load()) throw InternalError("service: server already started");
  if (im.path.empty()) throw InvalidConfigError("service: empty socket path");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (im.path.size() >= sizeof(addr.sun_path)) {
    throw InvalidConfigError("service: socket path longer than sun_path: " + im.path);
  }
  std::memcpy(addr.sun_path, im.path.c_str(), im.path.size() + 1);

  // send() on a peer-closed socket must surface as an error return, not
  // kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
  ::unlink(im.path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("service: cannot create AF_UNIX socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw IoError("service: cannot bind " + im.path);
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    ::unlink(im.path.c_str());
    throw IoError("service: cannot listen on " + im.path);
  }
  im.listen_fd.store(fd);
  im.started.store(true);
  im.accept_thread = std::thread([&im] { im.accept_loop(); });
}

void SocketServer::wait() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->stopped_cv.wait(lock, [this] { return impl_->stopping.load(); });
}

void SocketServer::stop() { impl_->request_stop(); }

bool SocketServer::running() const {
  return impl_->started.load() && !impl_->stopping.load();
}

const CancelToken& SocketServer::cancel_token() const { return impl_->cancel; }

}  // namespace inplane::service

#else  // _WIN32

namespace inplane::service {

struct SocketServer::Impl {
  explicit Impl(TuningService&, std::string) {}
  CancelToken cancel;
};

SocketServer::SocketServer(TuningService& service, std::string socket_path)
    : impl_(new Impl(service, std::move(socket_path))) {}
SocketServer::~SocketServer() { delete impl_; }

void SocketServer::start() {
  throw InternalError("service: AF_UNIX server is POSIX-only");
}
void SocketServer::wait() {
  throw InternalError("service: AF_UNIX server is POSIX-only");
}
void SocketServer::stop() {}
bool SocketServer::running() const { return false; }
const CancelToken& SocketServer::cancel_token() const { return impl_->cancel; }

}  // namespace inplane::service

#endif
