#include "multigpu/multi_gpu.hpp"

#include <stdexcept>

#include "kernels/runner.hpp"

namespace inplane::multigpu {

template <typename T>
MultiGpuStencil<T>::MultiGpuStencil(kernels::Method method, StencilCoeffs coeffs,
                                    kernels::LaunchConfig config,
                                    MultiGpuOptions options)
    : kernel_(kernels::make_kernel<T>(method, std::move(coeffs), config)),
      options_(options) {
  if (options_.n_devices < 1) {
    throw std::invalid_argument("MultiGpuStencil: need at least one device");
  }
  if (options_.pcie_bw_gbs <= 0.0) {
    throw std::invalid_argument("MultiGpuStencil: interconnect bandwidth must be > 0");
  }
}

template <typename T>
int MultiGpuStencil<T>::radius() const {
  return kernel_->radius();
}

template <typename T>
std::optional<std::string> MultiGpuStencil<T>::validate(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  extent.validate();
  if (extent.nz % options_.n_devices != 0) {
    return "nz not divisible by the device count";
  }
  const int slab = extent.nz / options_.n_devices;
  if (slab < kernel_->radius()) {
    return "slabs shallower than the stencil radius";
  }
  return kernel_->validate(device, {extent.nx, extent.ny, slab});
}

template <typename T>
void MultiGpuStencil<T>::run(Grid3<T>& a, Grid3<T>& b,
                             const gpusim::DeviceSpec& device, int steps) const {
  if (a.extent() != b.extent()) {
    throw std::invalid_argument("MultiGpuStencil::run: grids must share extent");
  }
  if (auto err = validate(device, a.extent())) {
    throw std::invalid_argument("MultiGpuStencil::run: " + *err);
  }
  if (a.halo() < kernel_->radius() || b.halo() < kernel_->radius()) {
    throw std::invalid_argument("MultiGpuStencil::run: halo narrower than radius");
  }
  const int r = kernel_->radius();
  const int n = options_.n_devices;
  const int slab_nz = a.nz() / n;
  const Extent3 slab_extent{a.nx(), a.ny(), slab_nz};

  Grid3<T>* cur = &a;
  Grid3<T>* nxt = &b;
  // Per-device slab buffers, laid out the way the kernel wants.
  std::vector<Grid3<T>> slab_in;
  std::vector<Grid3<T>> slab_out;
  for (int d = 0; d < n; ++d) {
    slab_in.emplace_back(slab_extent, r, 32, kernel_->preferred_align_offset());
    slab_out.emplace_back(slab_extent, r, 32, kernel_->preferred_align_offset());
  }

  for (int step = 0; step < steps; ++step) {
    // Scatter: each device receives its slab plus r halo planes from the
    // neighbouring slabs (or the global frozen halo at the ends) — the
    // host-mediated halo exchange.
    for (int d = 0; d < n; ++d) {
      const int z0 = d * slab_nz;
      slab_in[static_cast<std::size_t>(d)].fill_with_halo(
          [&](int i, int j, int k) { return cur->at(i, j, z0 + k); });
    }
    // Compute: every device sweeps its slab independently.
    for (int d = 0; d < n; ++d) {
      kernels::run_kernel(*kernel_, slab_in[static_cast<std::size_t>(d)],
                          slab_out[static_cast<std::size_t>(d)], device);
    }
    // Gather: slab interiors back into the global "next" grid.
    for (int d = 0; d < n; ++d) {
      const int z0 = d * slab_nz;
      const Grid3<T>& s = slab_out[static_cast<std::size_t>(d)];
      for (int k = 0; k < slab_nz; ++k) {
        for (int j = 0; j < a.ny(); ++j) {
          for (int i = 0; i < a.nx(); ++i) {
            nxt->at(i, j, z0 + k) = s.at(i, j, k);
          }
        }
      }
    }
    std::swap(cur, nxt);
  }
  if (cur != &a) {
    // An odd number of steps left the result in b; copy back so the
    // caller's `a` always holds the final state.
    a.fill_with_halo([&](int i, int j, int k) { return cur->at(i, j, k); });
  }
}

template <typename T>
MultiGpuTiming MultiGpuStencil<T>::estimate(const gpusim::DeviceSpec& device,
                                            const Extent3& extent) const {
  MultiGpuTiming t;
  if (auto err = validate(device, extent)) {
    t.invalid_reason = *err;
    return t;
  }
  const int n = options_.n_devices;
  const Extent3 slab{extent.nx, extent.ny, extent.nz / n};
  const gpusim::KernelTiming slab_t = kernels::time_kernel(*kernel_, device, slab);
  if (!slab_t.valid) {
    t.invalid_reason = slab_t.invalid_reason;
    return t;
  }
  t.compute_seconds = slab_t.seconds;

  // Halo exchange per sweep: r planes up and r planes down, each a
  // device-to-host plus host-to-device transfer.
  if (n > 1) {
    const double plane_bytes =
        static_cast<double>(extent.nx) * extent.ny * sizeof(T);
    const double dir_bytes = static_cast<double>(radius()) * plane_bytes;
    const double per_transfer =
        options_.pcie_latency_us * 1e-6 + dir_bytes / (options_.pcie_bw_gbs * 1e9);
    t.exchange_seconds = 2.0 /*directions*/ * 2.0 /*D2H + H2D*/ * per_transfer;
  }
  t.total_seconds = options_.overlap_exchange
                        ? std::max(t.compute_seconds, t.exchange_seconds)
                        : t.compute_seconds + t.exchange_seconds;
  t.mpoints_per_s = static_cast<double>(extent.volume()) / t.total_seconds / 1e6;

  const gpusim::KernelTiming single = kernels::time_kernel(*kernel_, device, extent);
  if (single.valid) {
    t.scaling_speedup = single.seconds / t.total_seconds;
    t.parallel_efficiency = t.scaling_speedup / n;
  }
  t.valid = true;
  return t;
}

template class MultiGpuStencil<float>;
template class MultiGpuStencil<double>;

}  // namespace inplane::multigpu
