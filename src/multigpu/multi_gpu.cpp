#include "multigpu/multi_gpu.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>

#include "core/cancel.hpp"
#include "core/status.hpp"
#include "kernels/runner.hpp"

namespace inplane::multigpu {

template <typename T>
MultiGpuStencil<T>::MultiGpuStencil(kernels::Method method, StencilCoeffs coeffs,
                                    kernels::LaunchConfig config,
                                    MultiGpuOptions options)
    : kernel_(kernels::make_kernel<T>(method, std::move(coeffs), config)),
      options_(options) {
  if (options_.n_devices < 1) {
    throw InvalidConfigError("MultiGpuStencil: need at least one device");
  }
  if (options_.pcie_bw_gbs <= 0.0) {
    throw InvalidConfigError("MultiGpuStencil: interconnect bandwidth must be > 0");
  }
  if (options_.nodes < 1 || options_.n_devices % options_.nodes != 0) {
    throw InvalidConfigError(
        "MultiGpuStencil: nodes must be >= 1 and divide the device count");
  }
  if (options_.internode_bw_gbs <= 0.0) {
    throw InvalidConfigError("MultiGpuStencil: inter-node bandwidth must be > 0");
  }
}

template <typename T>
int MultiGpuStencil<T>::radius() const {
  return kernel_->radius();
}

template <typename T>
std::optional<std::string> MultiGpuStencil<T>::validate(
    const gpusim::DeviceSpec& device, const Extent3& extent) const {
  extent.validate();
  if (extent.nz % options_.n_devices != 0) {
    return "nz not divisible by the device count";
  }
  const int slab = extent.nz / options_.n_devices;
  if (slab < kernel_->radius()) {
    return "slabs shallower than the stencil radius";
  }
  return kernel_->validate(device, {extent.nx, extent.ny, slab});
}

namespace {

/// Removes @p device from the rotation, recording its death.
void drop_device(std::vector<int>& alive, int device, MultiGpuRunStats* stats) {
  alive.erase(std::remove(alive.begin(), alive.end(), device), alive.end());
  if (stats != nullptr) {
    stats->devices_lost += 1;
    stats->lost_devices.push_back(device);
  }
}

}  // namespace

template <typename T>
void MultiGpuStencil<T>::run(Grid3<T>& a, Grid3<T>& b,
                             const gpusim::DeviceSpec& device, int steps,
                             MultiGpuRunStats* stats) const {
  if (a.extent() != b.extent()) {
    throw InvalidConfigError("MultiGpuStencil::run: grids must share extent");
  }
  if (auto err = validate(device, a.extent())) {
    throw InvalidConfigError("MultiGpuStencil::run: " + *err);
  }
  if (a.halo() < kernel_->radius() || b.halo() < kernel_->radius()) {
    throw InvalidConfigError("MultiGpuStencil::run: halo narrower than radius");
  }
  const int r = kernel_->radius();
  const int n = options_.n_devices;
  const gpusim::FaultInjector* faults = options_.faults;
  // Devices still in the rotation; slab d is owned by alive[d % alive.size()],
  // so surviving devices absorb a dead one's slabs round-robin while the
  // slab partition itself (and therefore the numerics) stays fixed.
  std::vector<int> alive(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) alive[static_cast<std::size_t>(d)] = d;
  const int slab_nz = a.nz() / n;
  const Extent3 slab_extent{a.nx(), a.ny(), slab_nz};

  Grid3<T>* cur = &a;
  Grid3<T>* nxt = &b;
  // Per-device slab buffer pairs, gated by the run's memory budget: one
  // pair per device when the budget covers it, fewer pairs cycled across
  // the slabs in chunks when it does not (floor: one pair — the run
  // degrades, it never aborts on a tight budget).  Chunking only
  // re-orders the scatter/compute/gather walk; every slab still reads
  // `cur` and writes `nxt`, so the numerics are bit-identical.
  int nbuf = n;
  std::optional<MemReservation> slab_hold;
  if (options_.mem_budget != nullptr && options_.mem_budget->limit_bytes() != 0) {
    const GridLayout slab_layout(slab_extent, r, sizeof(T), 32,
                                 kernel_->preferred_align_offset());
    const std::uint64_t pair_bytes = 2 * slab_layout.allocated_bytes();
    for (; nbuf > 1; --nbuf) {
      slab_hold.emplace(options_.mem_budget,
                        static_cast<std::uint64_t>(nbuf) * pair_bytes);
      if (slab_hold->ok()) break;
    }
    if (nbuf == 1 && (!slab_hold || !slab_hold->ok())) {
      slab_hold.emplace(options_.mem_budget, pair_bytes);
    }
  }
  if (stats != nullptr) stats->slab_buffer_pairs = nbuf;
  std::vector<Grid3<T>> slab_in;
  std::vector<Grid3<T>> slab_out;
  for (int d = 0; d < nbuf; ++d) {
    slab_in.emplace_back(slab_extent, r, 32, kernel_->preferred_align_offset());
    slab_out.emplace_back(slab_extent, r, 32, kernel_->preferred_align_offset());
  }
  const bool guarded = faults != nullptr || options_.abft.enabled;

  for (int step = 0; step < steps; ++step) {
    for (int c0 = 0; c0 < n; c0 += nbuf) {
      const int c1 = std::min(n, c0 + nbuf);
      // Scatter: each device receives its slab plus r halo planes from the
      // neighbouring slabs (or the global frozen halo at the ends) — the
      // host-mediated halo exchange.
      for (int d = c0; d < c1; ++d) {
        const int z0 = d * slab_nz;
        slab_in[static_cast<std::size_t>(d - c0)].fill_with_halo(
            [&](int i, int j, int k) { return cur->at(i, j, z0 + k); });
      }
      // Compute: every slab sweeps on its owning device.  A device found
      // dead (scatter-time check or DeviceLostError out of its sweep) is
      // dropped and the slab retried on the next survivor in the rotation.
      for (int d = c0; d < c1; ++d) {
        // Cooperative cancellation fires between slab sweeps, so an open
        // checkpoint or a caller's partial state is never torn mid-slab.
        check_cancelled(options_.cancel);
        Grid3<T>& s_in = slab_in[static_cast<std::size_t>(d - c0)];
        Grid3<T>& s_out = slab_out[static_cast<std::size_t>(d - c0)];
        for (;;) {
          if (alive.empty()) {
            throw DeviceLostError("MultiGpuStencil::run: all " + std::to_string(n) +
                                  " devices lost at sweep " + std::to_string(step));
          }
          const int owner = alive[static_cast<std::size_t>(d) % alive.size()];
          if (faults != nullptr && faults->device_lost(owner, step)) {
            faults->mark_device_lost(owner);
            drop_device(alive, owner, stats);
            continue;
          }
          if (!guarded) {
            kernels::run_kernel(*kernel_, s_in, s_out, device);
            break;
          }
          kernels::RunOptions ro;
          ro.faults = faults;
          ro.device_index = owner;
          ro.abft = options_.abft;
          ro.mem_budget = options_.mem_budget;
          const kernels::RunReport report =
              kernels::run_kernel_guarded(*kernel_, s_in, s_out, device, ro);
          if (stats != nullptr) {
            stats->sdc_planes_flagged += report.abft.planes_flagged;
            stats->sdc_blocks_repaired += report.abft.blocks_repaired;
          }
          if (report.status.ok()) break;
          if (report.status.code == ErrorCode::DeviceLost && faults != nullptr) {
            faults->mark_device_lost(owner);
            drop_device(alive, owner, stats);
            if (stats != nullptr) stats->slab_retries += 1;
            continue;
          }
          raise(report.status);
        }
      }
      // Gather: slab interiors back into the global "next" grid.
      for (int d = c0; d < c1; ++d) {
        const int z0 = d * slab_nz;
        const Grid3<T>& s = slab_out[static_cast<std::size_t>(d - c0)];
        for (int k = 0; k < slab_nz; ++k) {
          for (int j = 0; j < a.ny(); ++j) {
            for (int i = 0; i < a.nx(); ++i) {
              nxt->at(i, j, z0 + k) = s.at(i, j, k);
            }
          }
        }
      }
    }
    std::swap(cur, nxt);
  }
  if (cur != &a) {
    // An odd number of steps left the result in b; copy back so the
    // caller's `a` always holds the final state.
    a.fill_with_halo([&](int i, int j, int k) { return cur->at(i, j, k); });
  }
}

template <typename T>
MultiGpuTiming MultiGpuStencil<T>::estimate(const gpusim::DeviceSpec& device,
                                            const Extent3& extent) const {
  MultiGpuTiming t;
  if (auto err = validate(device, extent)) {
    t.invalid_reason = *err;
    return t;
  }
  const int n = options_.n_devices;
  const Extent3 slab{extent.nx, extent.ny, extent.nz / n};
  const gpusim::KernelTiming slab_t = kernels::time_kernel(*kernel_, device, slab);
  if (!slab_t.valid) {
    t.invalid_reason = slab_t.invalid_reason;
    return t;
  }
  t.compute_seconds = slab_t.seconds;

  // Halo exchange per sweep: r planes up and r planes down, each a
  // device-to-host plus host-to-device transfer.  Exchanges across every
  // boundary proceed in parallel, so the per-sweep cost is governed by
  // the slowest boundary kind: a PCIe-only intra-node one, or — when the
  // devices span several nodes — one that also crosses the network link.
  if (n > 1) {
    const double plane_bytes =
        static_cast<double>(extent.nx) * extent.ny * sizeof(T);
    const double dir_bytes = static_cast<double>(radius()) * plane_bytes;
    const double per_transfer =
        options_.pcie_latency_us * 1e-6 + dir_bytes / (options_.pcie_bw_gbs * 1e9);
    t.exchange_seconds = 2.0 /*directions*/ * 2.0 /*D2H + H2D*/ * per_transfer;
    if (options_.nodes > 1) {
      t.exchange_seconds =
          std::max(t.exchange_seconds,
                   internode_exchange_seconds(extent, radius(), sizeof(T),
                                              options_.nodes, options_));
    }
  }
  t.total_seconds = options_.overlap_exchange
                        ? std::max(t.compute_seconds, t.exchange_seconds)
                        : t.compute_seconds + t.exchange_seconds;
  t.mpoints_per_s = static_cast<double>(extent.volume()) / t.total_seconds / 1e6;

  const gpusim::KernelTiming single = kernels::time_kernel(*kernel_, device, extent);
  if (single.valid) {
    t.scaling_speedup = single.seconds / t.total_seconds;
    t.parallel_efficiency = t.scaling_speedup / n;
  }
  t.valid = true;
  return t;
}

template class MultiGpuStencil<float>;
template class MultiGpuStencil<double>;

double internode_exchange_seconds(const Extent3& full, int radius,
                                  std::size_t elem_size, int nodes,
                                  const MultiGpuOptions& options) {
  if (nodes <= 1 || radius <= 0) return 0.0;
  if (options.internode_bw_gbs <= 0.0 || options.pcie_bw_gbs <= 0.0) {
    throw InvalidConfigError(
        "internode_exchange_seconds: link bandwidths must be > 0");
  }
  // One direction moves r halo planes of the shared xy face: GPU → host
  // over PCIe, host → host over the network, host → GPU over PCIe on the
  // receiving node.  Both directions of a boundary are serialised per
  // NIC; different boundaries overlap, so one boundary's round trip is
  // the per-sweep term.
  const double dir_bytes = static_cast<double>(radius) * full.nx * full.ny *
                           static_cast<double>(elem_size);
  const double pcie =
      options.pcie_latency_us * 1e-6 + dir_bytes / (options.pcie_bw_gbs * 1e9);
  const double net = options.internode_latency_us * 1e-6 +
                     dir_bytes / (options.internode_bw_gbs * 1e9);
  return 2.0 /*directions*/ * (2.0 * pcie + net);
}

}  // namespace inplane::multigpu
