#pragma once

#include <cstdint>
#include <vector>

#include "core/cancel.hpp"
#include "core/coefficients.hpp"
#include "core/grid3.hpp"
#include "core/mem_budget.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/timing.hpp"
#include "kernels/abft.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::multigpu {

/// Interconnect / decomposition parameters for a multi-GPU run.
struct MultiGpuOptions {
  int n_devices = 2;
  /// Effective per-direction host-mediated transfer bandwidth (PCIe 2.0
  /// x16 era, matching the paper's cards): ~6 GB/s.
  double pcie_bw_gbs = 6.0;
  /// Per-transfer setup latency (driver + DMA start).
  double pcie_latency_us = 10.0;
  /// Overlap halo exchange with interior compute (streams) — the standard
  /// optimisation; without it exchange time adds serially.
  bool overlap_exchange = true;
  /// Cluster topology: the devices are spread over this many nodes as
  /// contiguous groups (n_devices must be divisible by it).  Slab
  /// boundaries inside a node exchange halos over PCIe; boundaries
  /// *between* nodes additionally cross the network link below.  1 (the
  /// default) reproduces the historical single-node model exactly.
  int nodes = 1;
  /// Effective per-direction inter-node link bandwidth (10 GbE / early
  /// IB era, matching the paper's hardware generation): ~1 GB/s.
  double internode_bw_gbs = 1.0;
  /// Per-message inter-node latency (NIC + switch + software stack).
  double internode_latency_us = 50.0;
  /// Optional fault injector: device-loss rules kill simulated devices
  /// mid-run and the remaining slabs are re-sharded onto the survivors.
  const gpusim::FaultInjector* faults = nullptr;
  /// Cooperative cancel/deadline token, polled once per (sweep, slab); a
  /// fired token raises ResourceExhaustedError between slab sweeps, never
  /// mid-slab.
  const CancelToken* cancel = nullptr;
  /// Memory budget for the per-device slab buffer pairs.  When it cannot
  /// cover one pair per device the run degrades to fewer pairs cycled
  /// across the slabs in chunks (floor: one pair) — numerics unchanged.
  /// nullptr = unlimited.
  MemBudget* mem_budget = nullptr;
  /// Online ABFT checksum detection + surgical repair on every slab sweep
  /// (see kernels/abft.hpp); forces the hardened runner per slab.
  kernels::AbftOptions abft = {};
};

/// What the fault-tolerant scheduler observed during one run().
struct MultiGpuRunStats {
  int devices_lost = 0;           ///< devices that died during the run
  std::vector<int> lost_devices;  ///< their indices, in order of death
  int slab_retries = 0;           ///< slab sweeps redone on a survivor
  int slab_buffer_pairs = 0;      ///< slab buffer pairs the budget allowed
  std::uint64_t sdc_planes_flagged = 0;  ///< ABFT checksum mismatches
  int sdc_blocks_repaired = 0;           ///< blocks surgically recomputed
};

/// Per-sweep timing breakdown of a decomposed run.
struct MultiGpuTiming {
  bool valid = false;
  std::string invalid_reason;
  double compute_seconds = 0.0;   ///< slowest device's kernel sweep
  double exchange_seconds = 0.0;  ///< halo exchange per sweep
  double total_seconds = 0.0;     ///< per sweep, after overlap policy
  double mpoints_per_s = 0.0;     ///< whole-grid points per second
  /// Speedup over the same kernel on one device of the same type.
  double scaling_speedup = 0.0;
  /// scaling_speedup / n_devices.
  double parallel_efficiency = 0.0;
};

/// Z-slab domain decomposition of an iterative stencil over multiple
/// simulated GPUs of the same type — the direction Physis [26] and the
/// multi-GPU solvers in the paper's introduction take.  The grid is split
/// into nz / n slabs; every Jacobi sweep each device runs the configured
/// kernel over its slab, then neighbours exchange r boundary planes
/// through host memory before the next sweep.
template <typename T>
class MultiGpuStencil {
 public:
  /// @param kernel the per-device stencil kernel (shared configuration)
  MultiGpuStencil(kernels::Method method, StencilCoeffs coeffs,
                  kernels::LaunchConfig config, MultiGpuOptions options);

  [[nodiscard]] const MultiGpuOptions& options() const { return options_; }
  [[nodiscard]] int radius() const;

  /// Checks the decomposition (nz divisible by n_devices, slabs at least
  /// r deep, per-device kernel valid on the slab extent).
  [[nodiscard]] std::optional<std::string> validate(const gpusim::DeviceSpec& device,
                                                    const Extent3& extent) const;

  /// Functionally executes @p steps Jacobi sweeps of the decomposed grid,
  /// with halo exchange between sweeps.  Equivalent to @p steps reference
  /// sweeps of the whole grid (same frozen outer halo semantics).
  /// On return @p a holds the final state.
  ///
  /// Fault tolerance: when MultiGpuOptions::faults is set, each slab
  /// sweep runs under the hardened runner bound to its owning device.  A
  /// device that dies (a device-loss rule, or DeviceLostError out of its
  /// sweep) is dropped from the rotation and its slabs are re-sharded
  /// round-robin onto the survivors — the slab partition itself never
  /// changes, so the output is bitwise identical to the fault-free run.
  /// Throws DeviceLostError only when every device is gone.  @p stats
  /// (optional) reports what the scheduler observed.
  void run(Grid3<T>& a, Grid3<T>& b, const gpusim::DeviceSpec& device, int steps,
           MultiGpuRunStats* stats = nullptr) const;

  /// Per-sweep timing with the interconnect model.
  [[nodiscard]] MultiGpuTiming estimate(const gpusim::DeviceSpec& device,
                                        const Extent3& extent) const;

 private:
  std::unique_ptr<kernels::IStencilKernel<T>> kernel_;
  MultiGpuOptions options_;
};

extern template class MultiGpuStencil<float>;
extern template class MultiGpuStencil<double>;

/// Per-sweep halo-exchange cost across one *inter-node* z-slab boundary
/// of @p full: r planes in each direction, each paying GPU→host PCIe,
/// the network hop, and host→GPU PCIe on the far side.  This is the
/// timing-model term the distributed sweep engine's grid-slab mode adds
/// on top of each worker's per-slab kernel time — worker processes stand
/// in for cluster nodes, so every slab boundary is an inter-node one.
/// Returns 0 for a single node.
[[nodiscard]] double internode_exchange_seconds(const Extent3& full, int radius,
                                                std::size_t elem_size, int nodes,
                                                const MultiGpuOptions& options = {});

}  // namespace inplane::multigpu
