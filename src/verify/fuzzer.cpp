#include "verify/fuzzer.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "kernels/runner.hpp"
#include "verify/metamorphic.hpp"
#include "verify/reference_oracle.hpp"
#include "verify/trace_audit.hpp"

namespace inplane::verify {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A tiny keyed stream: a pure function of (seed, iteration), so the
/// sample sequence never depends on host, thread count or prior draws.
struct Stream {
  std::uint64_t state;
  std::uint64_t next() { return state = splitmix64(state); }
  int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
  template <std::size_t N>
  int choose(const int (&options)[N]) {
    return options[next() % N];
  }
};

const char* method_token(kernels::Method m) {
  switch (m) {
    case kernels::Method::ForwardPlane: return "forward";
    case kernels::Method::InPlaneClassical: return "classical";
    case kernels::Method::InPlaneVertical: return "vertical";
    case kernels::Method::InPlaneHorizontal: return "horizontal";
    case kernels::Method::InPlaneFullSlice: return "fullslice";
  }
  return "forward";
}

std::optional<kernels::Method> method_from_token(const std::string& s) {
  if (s == "forward") return kernels::Method::ForwardPlane;
  if (s == "classical") return kernels::Method::InPlaneClassical;
  if (s == "vertical") return kernels::Method::InPlaneVertical;
  if (s == "horizontal") return kernels::Method::InPlaneHorizontal;
  if (s == "fullslice") return kernels::Method::InPlaneFullSlice;
  return std::nullopt;
}

/// Runs every pillar for one precision.  Any thrown std::invalid_argument
/// outside the sanctioned rejection paths is itself a failure.
template <typename T>
FuzzVerdict run_sample_impl(const FuzzSample& s, const gpusim::DeviceSpec& device,
                            const ExecPolicy& policy) {
  FuzzVerdict verdict;
  const auto fail = [&](const std::string& check, const std::string& detail) {
    verdict.pass = false;
    verdict.detail = check + ": " + detail;
  };

  const StencilCoeffs coeffs = StencilCoeffs::diffusion(s.order / 2);
  const Extent3 extent{s.nx, s.ny, s.nz};

  std::unique_ptr<kernels::IStencilKernel<T>> kernel;
  try {
    kernel = kernels::make_kernel<T>(s.method, coeffs, s.config);
  } catch (const std::invalid_argument&) {
    verdict.rejected = true;  // loud construction-time rejection: fine
    return verdict;
  }

  // Pillar 0 — loud rejection.  A config validate() refuses must also be
  // refused by run_kernel; executing anyway is the silent-misconfig bug
  // class the fuzzer exists to catch.
  if (kernel->validate(device, extent)) {
    try {
      Grid3<T> in = kernels::make_grid_for(*kernel, extent);
      Grid3<T> out = kernels::make_grid_for(*kernel, extent);
      kernels::run_kernel(*kernel, in, out, device, gpusim::ExecMode::Functional,
                          policy);
      fail("loud-rejection", "validate() rejects but run_kernel executed");
    } catch (const InvalidConfigError&) {
      verdict.rejected = true;
    } catch (const std::invalid_argument& e) {
      fail("loud-rejection", std::string("wrong rejection type: ") + e.what());
    }
    return verdict;
  }

  try {
    const UlpBudget budget = UlpBudget::for_radius(coeffs.radius(), sizeof(T));
    const auto field = [&](int i, int j, int k) {
      return static_cast<T>(verification_field_value(s.data_seed, i, j, k));
    };

    // Pillar 1 — CPU-reference oracle.  Under HaloOffByOne sabotage the
    // kernel consumes the field shifted one cell in x while the oracle
    // (and the differential baseline) see the honest field — exactly the
    // observable of an off-by-one halo load.
    Grid3<T> in = kernels::make_grid_for(*kernel, extent);
    Grid3<T> out = kernels::make_grid_for(*kernel, extent);
    in.fill_with_halo(field);
    out.fill(static_cast<T>(-999));
    if (s.sabotage == Sabotage::HaloOffByOne) {
      Grid3<T> in_sab = kernels::make_grid_for(*kernel, extent);
      in_sab.fill_with_halo([&](int i, int j, int k) { return field(i + 1, j, k); });
      kernels::run_kernel(*kernel, in_sab, out, device, gpusim::ExecMode::Functional,
                          policy);
    } else {
      kernels::run_kernel(*kernel, in, out, device, gpusim::ExecMode::Functional,
                          policy);
    }
    // A degree-N temporal kernel advances N steps per sweep; the oracle
    // applies the frozen-halo reference N times with a matching budget.
    const int steps = std::max(1, kernel->time_steps());
    if (const Status ref = reference_status_n(
            coeffs, in, out, steps, budget.scaled(static_cast<double>(steps)));
        !ref.ok()) {
      fail("reference", ref.context);
      return verdict;
    }

    // Pillar 2 — differential against the forward-plane baseline at the
    // same blocking (vector width dropped to 1 so the baseline is always
    // constructible; temporal degree dropped to 1 and the baseline
    // chained time_steps() times with the halo frozen at t=0, matching
    // the degree-N boundary contract).
    if (s.method != kernels::Method::ForwardPlane) {
      kernels::LaunchConfig base_cfg = s.config;
      base_cfg.vec = 1;
      base_cfg.tb = 1;
      const auto baseline = kernels::make_kernel<T>(kernels::Method::ForwardPlane,
                                                    coeffs, base_cfg);
      if (!baseline->validate(device, extent)) {
        Grid3<T> base_in = kernels::make_grid_for(*baseline, extent);
        Grid3<T> base_out = kernels::make_grid_for(*baseline, extent);
        base_in.fill_with_halo(field);
        kernels::run_kernel(*baseline, base_in, base_out, device,
                            gpusim::ExecMode::Functional, policy);
        for (int t = 1; t < steps; ++t) {
          const auto interior = [&](int i, int j, int k) {
            return i >= 0 && i < extent.nx && j >= 0 && j < extent.ny && k >= 0 &&
                   k < extent.nz;
          };
          base_in.fill_with_halo([&](int i, int j, int k) {
            return interior(i, j, k) ? base_out.at(i, j, k) : field(i, j, k);
          });
          kernels::run_kernel(*baseline, base_in, base_out, device,
                              gpusim::ExecMode::Functional, policy);
        }
        const UlpGridDiff d =
            ulp_compare_grids(out, base_out, budget.scaled(2.0 * steps));
        if (!d.pass) {
          fail("differential-vs-forward", d.describe());
          return verdict;
        }
      }
    }

    // Pillar 3 — metamorphic relations.
    OracleOptions oracle_options;
    oracle_options.device = device;
    oracle_options.policy = policy;
    oracle_options.data_seed = s.data_seed;
    const VerifyReport meta = metamorphic_checks(*kernel, extent, oracle_options);
    for (const CheckResult& c : meta.checks) {
      if (!c.pass) {
        fail("metamorphic/" + c.name, c.detail);
        return verdict;
      }
    }

    // Pillar 4 — trace audit of one steady-state plane.
    const AuditReport audit = audit_kernel(*kernel, device, extent);
    if (!audit.pass()) {
      fail("trace-audit", audit.summary());
      return verdict;
    }
  } catch (const std::exception& e) {
    fail("unexpected-throw", e.what());
  }
  return verdict;
}

}  // namespace

const char* to_string(Sabotage s) {
  return s == Sabotage::HaloOffByOne ? "halo" : "none";
}

std::string FuzzSample::to_line() const {
  std::ostringstream os;
  os << "method=" << method_token(method) << " order=" << order << " nx=" << nx
     << " ny=" << ny << " nz=" << nz << " tx=" << config.tx << " ty=" << config.ty
     << " rx=" << config.rx << " ry=" << config.ry << " vec=" << config.vec
     << " tb=" << config.tb
     << " prec=" << (double_precision ? "dp" : "sp") << " data=0x" << std::hex
     << data_seed << std::dec << " sabotage=" << to_string(sabotage);
  return os.str();
}

std::optional<FuzzSample> FuzzSample::parse(const std::string& line,
                                            std::string* error) {
  const auto bail = [&](const std::string& why) -> std::optional<FuzzSample> {
    if (error) *error = why;
    return std::nullopt;
  };
  FuzzSample s;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return bail("expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "method") {
        const auto m = method_from_token(value);
        if (!m) return bail("unknown method '" + value + "'");
        s.method = *m;
      } else if (key == "order") {
        s.order = std::stoi(value);
      } else if (key == "nx") {
        s.nx = std::stoi(value);
      } else if (key == "ny") {
        s.ny = std::stoi(value);
      } else if (key == "nz") {
        s.nz = std::stoi(value);
      } else if (key == "tx") {
        s.config.tx = std::stoi(value);
      } else if (key == "ty") {
        s.config.ty = std::stoi(value);
      } else if (key == "rx") {
        s.config.rx = std::stoi(value);
      } else if (key == "ry") {
        s.config.ry = std::stoi(value);
      } else if (key == "vec") {
        s.config.vec = std::stoi(value);
      } else if (key == "tb") {
        // Optional for corpus compatibility: pre-degree lines parse as
        // tb=1.  Out-of-range degrees reach the kernel factory, whose
        // loud rejection is itself a fuzzed pillar.
        s.config.tb = std::stoi(value);
      } else if (key == "prec") {
        if (value != "sp" && value != "dp") return bail("prec must be sp or dp");
        s.double_precision = value == "dp";
      } else if (key == "data") {
        s.data_seed = std::stoull(value, nullptr, 0);
      } else if (key == "sabotage") {
        if (value == "none") {
          s.sabotage = Sabotage::None;
        } else if (value == "halo") {
          s.sabotage = Sabotage::HaloOffByOne;
        } else {
          return bail("unknown sabotage '" + value + "'");
        }
      } else {
        return bail("unknown key '" + key + "'");
      }
    } catch (const std::exception&) {
      return bail("bad value for '" + key + "': '" + value + "'");
    }
  }
  if (s.order < 2 || s.order % 2 != 0) return bail("order must be even and >= 2");
  if (s.nx < 1 || s.ny < 1 || s.nz < 1) return bail("grid extents must be >= 1");
  return s;
}

FuzzSample draw_sample(std::uint64_t seed, int iteration, Sabotage sabotage,
                       int max_temporal_degree) {
  constexpr std::uint64_t kIterMix = 0x632be59bd9b4e019ull;
  Stream rng{splitmix64(seed) ^ (kIterMix * static_cast<std::uint64_t>(iteration + 1))};
  FuzzSample s;
  const kernels::Method methods[] = {
      kernels::Method::ForwardPlane, kernels::Method::InPlaneClassical,
      kernels::Method::InPlaneVertical, kernels::Method::InPlaneHorizontal,
      kernels::Method::InPlaneFullSlice};
  s.method = methods[rng.pick(5)];
  s.order = rng.choose({2, 4, 6, 8, 10, 12});
  s.double_precision = rng.pick(3) == 0;
  s.config.tx = rng.choose({4, 8, 16, 32, 64});
  s.config.ty = rng.choose({1, 2, 4, 8, 16});
  s.config.rx = rng.choose({1, 1, 2, 4});
  s.config.ry = rng.choose({1, 1, 2});
  s.config.vec = rng.choose({1, 1, 2, 4});

  // Grid shapes: mostly tile-aligned, sometimes off by a few cells
  // (non-divisible tiles must be rejected loudly), sometimes exactly one
  // tile (halo dominates the footprint), z down to a single plane.
  const int r = s.order / 2;
  s.nx = s.config.tile_w() * (1 + rng.pick(3));
  s.ny = s.config.tile_h() * (1 + rng.pick(2));
  if (rng.pick(4) == 0) s.nx += 1 + rng.pick(3);
  if (rng.pick(4) == 0) s.ny += 1 + rng.pick(3);
  s.nz = rng.choose({1, 2, 4, 8});
  if (rng.pick(2) == 0) s.nz = 2 * r + rng.pick(3);
  s.nz = std::max(s.nz, 1);

  // The temporal axis is opt-in and gated so the historical stream stays
  // bit-identical at the default degree.  Only full-slice kernels accept
  // tb > 1; half the deep draws get a grid that actually fits the
  // degree-tb pipeline (nz > tb*r), the rest exercise the loud-reject
  // paths (pipeline too shallow, ring over shared memory).
  if (max_temporal_degree > 1 && s.method == kernels::Method::InPlaneFullSlice) {
    s.config.tb = 1 + rng.pick(max_temporal_degree);
    if (s.config.tb > 1 && rng.pick(2) == 0) {
      s.nz = s.config.tb * r + 1 + rng.pick(4);
    }
  }

  s.data_seed = rng.next() | 1;
  s.sabotage = sabotage;
  return s;
}

FuzzVerdict run_sample(const FuzzSample& sample, const gpusim::DeviceSpec& device,
                       const ExecPolicy& policy) {
  return sample.double_precision ? run_sample_impl<double>(sample, device, policy)
                                 : run_sample_impl<float>(sample, device, policy);
}

FuzzFailure shrink_failure(const FuzzSample& sample, const FuzzVerdict& verdict,
                           const gpusim::DeviceSpec& device,
                           const ExecPolicy& policy) {
  FuzzFailure failure{sample, sample, verdict.detail, 0};
  int budget = 256;  // total candidate executions

  // Candidate values (ascending) for one axis, given the current value.
  const auto lower_values = [](int current, std::initializer_list<int> ladder) {
    std::vector<int> out;
    for (int v : ladder) {
      if (v < current) out.push_back(v);
    }
    return out;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    // Each entry: (apply candidate value to a copy, ladder of candidates).
    struct Axis {
      std::vector<int> candidates;
      void (*apply)(FuzzSample&, int);
    };
    const FuzzSample& cur = failure.shrunk;
    const Axis axes[] = {
        {lower_values(cur.config.tb, {1, 2, 4}),
         [](FuzzSample& s, int v) { s.config.tb = v; }},
        {lower_values(cur.order, {2, 4, 6, 8, 10}),
         [](FuzzSample& s, int v) { s.order = v; }},
        {lower_values(cur.config.vec, {1, 2}),
         [](FuzzSample& s, int v) { s.config.vec = v; }},
        {lower_values(cur.config.rx, {1, 2}),
         [](FuzzSample& s, int v) { s.config.rx = v; }},
        {lower_values(cur.config.ry, {1}),
         [](FuzzSample& s, int v) { s.config.ry = v; }},
        {lower_values(cur.config.tx, {4, 8, 16, 32}),
         [](FuzzSample& s, int v) { s.config.tx = v; }},
        {lower_values(cur.config.ty, {1, 2, 4, 8}),
         [](FuzzSample& s, int v) { s.config.ty = v; }},
        {lower_values(cur.nz, {1, 2, 4}), [](FuzzSample& s, int v) { s.nz = v; }},
        {lower_values(cur.nx, {cur.config.tile_w(), 2 * cur.config.tile_w()}),
         [](FuzzSample& s, int v) { s.nx = v; }},
        {lower_values(cur.ny, {cur.config.tile_h(), 2 * cur.config.tile_h()}),
         [](FuzzSample& s, int v) { s.ny = v; }},
    };
    for (const Axis& axis : axes) {
      for (int value : axis.candidates) {
        if (budget <= 0) break;
        FuzzSample candidate = failure.shrunk;
        axis.apply(candidate, value);
        // Shrinking the launch config can strand the grid on a
        // no-longer-divisible extent; snap tile-aligned dims along.
        if (failure.shrunk.nx % failure.shrunk.config.tile_w() == 0) {
          candidate.nx = std::max(1, candidate.nx - candidate.nx %
                                                        candidate.config.tile_w());
        }
        if (failure.shrunk.ny % failure.shrunk.config.tile_h() == 0) {
          candidate.ny = std::max(1, candidate.ny - candidate.ny %
                                                        candidate.config.tile_h());
        }
        if (candidate == failure.shrunk) continue;
        --budget;
        const FuzzVerdict v = run_sample(candidate, device, policy);
        if (!v.pass) {
          failure.shrunk = candidate;
          failure.detail = v.detail;
          ++failure.shrink_steps;
          progress = true;
          break;  // restart the axis sweep from the new minimum
        }
      }
      if (progress) break;
    }
  }
  return failure;
}

FuzzResult run_fuzz(const FuzzOptions& options) {
  FuzzResult result;
  for (int i = 0; i < options.iters; ++i) {
    const FuzzSample sample =
        draw_sample(options.seed, i, options.sabotage, options.max_temporal_degree);
    const FuzzVerdict verdict = run_sample(sample, options.device, options.policy);
    ++result.iters;
    if (verdict.rejected) ++result.rejected;
    if (!verdict.pass) {
      result.failures.push_back(
          options.shrink ? shrink_failure(sample, verdict, options.device,
                                          options.policy)
                         : FuzzFailure{sample, sample, verdict.detail, 0});
    }
  }
  return result;
}

}  // namespace inplane::verify
