#pragma once

#include <optional>
#include <string>

#include "verify/oracle.hpp"

namespace inplane::verify {

/// Pillar 2 — metamorphic relations for linear stencils.  No fixed oracle
/// value is consulted; instead the checks exploit identities every linear,
/// translation-invariant operator K satisfies:
///
///   superposition:  K(a + b) == K(a) + K(b)
///   scaling:        K(s * a) == s * K(a)
///   translation:    shifting the input field by one cell in x/y shifts
///                   the output by one cell on interior points
///
/// These catch bug classes a fixed input/output pair cannot: a kernel
/// that special-cases some region, clamps, drops a term only for certain
/// values, or mixes up neighbouring columns in a way that happens to
/// cancel on one test field.
template <typename T>
[[nodiscard]] VerifyReport metamorphic_checks(const kernels::IStencilKernel<T>& kernel,
                                              const Extent3& extent,
                                              const OracleOptions& options = {});

/// The comparison core of the superposition check, exposed so tests and
/// the fuzzer can probe it directly: returns the violation description if
/// k_sum differs from k_a + k_b (pointwise) beyond the budget, or
/// std::nullopt when the relation holds.
template <typename T>
[[nodiscard]] std::optional<std::string> superposition_violation(
    const Grid3<T>& k_sum, const Grid3<T>& k_a, const Grid3<T>& k_b,
    const UlpBudget& budget);

extern template VerifyReport metamorphic_checks<float>(
    const kernels::IStencilKernel<float>&, const Extent3&, const OracleOptions&);
extern template VerifyReport metamorphic_checks<double>(
    const kernels::IStencilKernel<double>&, const Extent3&, const OracleOptions&);
extern template std::optional<std::string> superposition_violation<float>(
    const Grid3<float>&, const Grid3<float>&, const Grid3<float>&, const UlpBudget&);
extern template std::optional<std::string> superposition_violation<double>(
    const Grid3<double>&, const Grid3<double>&, const Grid3<double>&,
    const UlpBudget&);

}  // namespace inplane::verify
