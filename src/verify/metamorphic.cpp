#include "verify/metamorphic.hpp"

#include <algorithm>

#include "kernels/runner.hpp"

namespace inplane::verify {

namespace {

/// Runs @p kernel functionally over an input grid filled (interior and
/// halo) by @p fill(i, j, k).
template <typename T, typename Fill>
Grid3<T> run_on_field(const kernels::IStencilKernel<T>& kernel, const Extent3& extent,
                      const OracleOptions& options, Fill&& fill) {
  Grid3<T> in = kernels::make_grid_for(kernel, extent);
  Grid3<T> out = kernels::make_grid_for(kernel, extent);
  in.fill_with_halo(fill);
  kernels::run_kernel(kernel, in, out, options.device, gpusim::ExecMode::Functional,
                      options.policy);
  return out;
}

std::string site(int i, int j, int k) {
  return "(" + std::to_string(i) + ", " + std::to_string(j) + ", " +
         std::to_string(k) + ")";
}

}  // namespace

template <typename T>
std::optional<std::string> superposition_violation(const Grid3<T>& k_sum,
                                                   const Grid3<T>& k_a,
                                                   const Grid3<T>& k_b,
                                                   const UlpBudget& budget) {
  for (int k = 0; k < k_sum.nz(); ++k) {
    for (int j = 0; j < k_sum.ny(); ++j) {
      for (int i = 0; i < k_sum.nx(); ++i) {
        const T want = k_a.at(i, j, k) + k_b.at(i, j, k);
        const UlpCheck<T> c = ulp_check(k_sum.at(i, j, k), want, budget);
        if (!c.pass) {
          return "K(a+b) != K(a)+K(b) at " + site(i, j, k) + ": " +
                 std::to_string(static_cast<double>(k_sum.at(i, j, k))) + " vs " +
                 std::to_string(static_cast<double>(want)) + " (" +
                 std::to_string(c.ulps) + " ulps)";
        }
      }
    }
  }
  return std::nullopt;
}

template <typename T>
VerifyReport metamorphic_checks(const kernels::IStencilKernel<T>& kernel,
                                const Extent3& extent, const OracleOptions& options) {
  VerifyReport report;
  if (auto err = kernel.validate(options.device, extent)) {
    report.checks.push_back({"metamorphic skipped (invalid config)", true, *err});
    return report;
  }
  // A degree-N temporal kernel advances N steps per sweep; its rounding
  // error (and so the relation slack) grows with the step count.
  const int steps = std::max(1, kernel.time_steps());
  const UlpBudget base =
      options.budget ? *options.budget
                     : UlpBudget::for_radius(kernel.coeffs().radius(), sizeof(T))
                           .scaled(static_cast<double>(steps));
  const std::uint64_t seed = options.data_seed;

  // Two independent deterministic fields a and b, as pure functions of
  // the logical coordinate — defined beyond any halo, so shifted inputs
  // never run off the storage.
  const auto fa = [seed](int i, int j, int k) {
    return static_cast<T>(verification_field_value(seed, i, j, k));
  };
  const auto fb = [seed](int i, int j, int k) {
    return static_cast<T>(
        verification_field_value(seed ^ 0x517cc1b727220a95ull, i, j, k));
  };

  const Grid3<T> out_a = run_on_field(kernel, extent, options, fa);
  const Grid3<T> out_b = run_on_field(kernel, extent, options, fb);

  // Superposition.  The sum input cancels, so allow extra slack.
  {
    const Grid3<T> out_sum =
        run_on_field(kernel, extent, options, [&](int i, int j, int k) {
          return fa(i, j, k) + fb(i, j, k);
        });
    const auto violation =
        superposition_violation(out_sum, out_a, out_b, base.scaled(4.0));
    report.checks.push_back(
        {"superposition", !violation.has_value(), violation.value_or("")});
  }

  // Scaling by an exactly-representable factor: K(s*a) == s*K(a).
  {
    const T s = static_cast<T>(-2.5);
    const Grid3<T> out_scaled = run_on_field(
        kernel, extent, options, [&](int i, int j, int k) { return s * fa(i, j, k); });
    CheckResult check{"scaling", true, ""};
    const UlpBudget budget = base.scaled(2.0);
    for (int k = 0; check.pass && k < extent.nz; ++k) {
      for (int j = 0; check.pass && j < extent.ny; ++j) {
        for (int i = 0; check.pass && i < extent.nx; ++i) {
          const T want = s * out_a.at(i, j, k);
          const UlpCheck<T> c = ulp_check(out_scaled.at(i, j, k), want, budget);
          if (!c.pass) {
            check.pass = false;
            check.detail = "K(s*a) != s*K(a) at " + site(i, j, k) + " (" +
                           std::to_string(c.ulps) + " ulps)";
          }
        }
      }
    }
    report.checks.push_back(check);
  }

  // Translation invariance: feeding the field shifted by one cell in x
  // must shift the output by one cell on interior points (and likewise
  // y).  A kernel that treats some tile column or halo strip specially
  // breaks this even if it happens to match the reference field used
  // elsewhere.
  const auto translation_check = [&](int di, int dj, const char* name) {
    const Grid3<T> out_shift =
        run_on_field(kernel, extent, options, [&](int i, int j, int k) {
          return fa(i - di, j - dj, k);
        });
    CheckResult check{name, true, ""};
    const UlpBudget budget = base.scaled(2.0);
    // A multi-step kernel freezes the t=0 halo, so points whose N-step
    // dependency cone touches a face along the shifted axis see frozen
    // values in one run and computed values in the other; compare the
    // translated core only.  Single-step kernels keep the full-range
    // check.
    const int guard = steps > 1 ? kernel.required_halo() : 0;
    const int gi = di != 0 ? guard : 0;
    const int gj = dj != 0 ? guard : 0;
    for (int k = 0; check.pass && k < extent.nz; ++k) {
      for (int j = std::max(dj, 0) + gj; check.pass && j < extent.ny - gj; ++j) {
        for (int i = std::max(di, 0) + gi; check.pass && i < extent.nx - gi; ++i) {
          const T want = out_a.at(i - di, j - dj, k);
          const UlpCheck<T> c = ulp_check(out_shift.at(i, j, k), want, budget);
          if (!c.pass) {
            check.pass = false;
            check.detail = "shifted output disagrees at " + site(i, j, k) + " (" +
                           std::to_string(c.ulps) + " ulps)";
          }
        }
      }
    }
    report.checks.push_back(check);
  };
  translation_check(1, 0, "translation-x");
  translation_check(0, 1, "translation-y");

  return report;
}

template VerifyReport metamorphic_checks<float>(const kernels::IStencilKernel<float>&,
                                                const Extent3&, const OracleOptions&);
template VerifyReport metamorphic_checks<double>(const kernels::IStencilKernel<double>&,
                                                 const Extent3&, const OracleOptions&);
template std::optional<std::string> superposition_violation<float>(const Grid3<float>&,
                                                                   const Grid3<float>&,
                                                                   const Grid3<float>&,
                                                                   const UlpBudget&);
template std::optional<std::string> superposition_violation<double>(
    const Grid3<double>&, const Grid3<double>&, const Grid3<double>&, const UlpBudget&);

}  // namespace inplane::verify
