#include "verify/oracle.hpp"

#include <memory>

#include "autotune/search_space.hpp"
#include "kernels/runner.hpp"
#include "verify/reference_oracle.hpp"

namespace inplane::verify {

namespace {

/// splitmix64: the same schedule-independent hash the fault injector uses
/// to key sites; here it keys (seed, coordinate) -> field value.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

UlpBudget budget_for(const OracleOptions& options, const StencilCoeffs& coeffs,
                     std::size_t elem_size) {
  return options.budget ? *options.budget
                        : UlpBudget::for_radius(coeffs.radius(), elem_size);
}

}  // namespace

std::string VerifyReport::summary() const {
  std::string s = std::to_string(checks.size()) + " check(s), " +
                  std::to_string(failures()) + " failure(s)";
  for (const CheckResult& c : checks) {
    if (!c.pass) s += "; " + c.name + ": " + c.detail;
  }
  return s;
}

void VerifyReport::absorb(const VerifyReport& other, const std::string& prefix) {
  for (const CheckResult& c : other.checks) {
    checks.push_back({prefix + "/" + c.name, c.pass, c.detail});
  }
}

std::vector<VariantSpec> all_method_variants(const kernels::LaunchConfig& config,
                                             std::size_t elem_size) {
  std::vector<VariantSpec> variants;
  for (kernels::Method m :
       {kernels::Method::ForwardPlane, kernels::Method::InPlaneClassical,
        kernels::Method::InPlaneVertical, kernels::Method::InPlaneHorizontal,
        kernels::Method::InPlaneFullSlice}) {
    kernels::LaunchConfig cfg = config;
    cfg.vec = autotune::default_vec(m, elem_size);
    variants.push_back({m, cfg});
  }
  return variants;
}

double verification_field_value(std::uint64_t seed, int i, int j, int k) {
  const std::uint64_t key =
      splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(i + 4096) ^
                                   (static_cast<std::uint64_t>(j + 4096) << 16) ^
                                   (static_cast<std::uint64_t>(k + 4096) << 32)));
  // Map the top 53 bits to [-1, 1); bounded values keep long
  // accumulations stable.
  return static_cast<double>(key >> 11) * 0x1p-53 * 2.0 - 1.0;
}

template <typename T>
void fill_verification_field(Grid3<T>& grid, std::uint64_t seed) {
  grid.fill_with_halo([seed](int i, int j, int k) {
    return static_cast<T>(verification_field_value(seed, i, j, k));
  });
}

template <typename T>
VerifyReport verify_kernel_output(const kernels::IStencilKernel<T>& kernel,
                                  const Extent3& extent,
                                  const OracleOptions& options) {
  VerifyReport report;
  const StencilCoeffs& coeffs = kernel.coeffs();
  const UlpBudget budget = budget_for(options, coeffs, sizeof(T));
  const std::string name = std::string(kernel.name()) + " " +
                           kernel.config().to_string();
  if (auto err = kernel.validate(options.device, extent)) {
    report.checks.push_back({name + " rejected", true, *err});
    return report;
  }
  Grid3<T> in = kernels::make_grid_for(kernel, extent);
  Grid3<T> out = kernels::make_grid_for(kernel, extent);
  fill_verification_field(in, options.data_seed);
  out.fill(static_cast<T>(-999));  // poison: unwritten interiors must show
  kernels::run_kernel(kernel, in, out, options.device, gpusim::ExecMode::Functional,
                      options.policy);
  const Status verdict = reference_status(coeffs, in, out, budget);
  report.checks.push_back(
      {name + " vs reference", verdict.ok(), verdict.ok() ? "" : verdict.context});
  return report;
}

template <typename T>
VerifyReport differential_oracle(const StencilCoeffs& coeffs,
                                 const std::vector<VariantSpec>& variants,
                                 const Extent3& extent, const OracleOptions& options) {
  VerifyReport report;
  const UlpBudget budget = budget_for(options, coeffs, sizeof(T));

  struct Ran {
    std::string name;
    Grid3<T> out;
  };
  std::vector<Ran> ran;
  for (const VariantSpec& v : variants) {
    std::unique_ptr<kernels::IStencilKernel<T>> kernel;
    try {
      kernel = kernels::make_kernel<T>(v.method, coeffs, v.config);
    } catch (const std::invalid_argument& e) {
      // Nonsensical parameters (vec * sizeof(T) > 16, ...) rejected at
      // construction — loud, so the check passes.
      report.checks.push_back({std::string(to_string(v.method)) + " " +
                                   v.config.to_string() + " rejected",
                               true, e.what()});
      continue;
    }
    const std::string name = std::string(kernel->name()) + " " + v.config.to_string();
    if (auto err = kernel->validate(options.device, extent)) {
      // Rejection path: run_kernel must refuse it too — a variant that
      // fails validate() but executes anyway is a silent-misconfig bug.
      bool rejected_loudly = false;
      std::string detail = *err;
      try {
        Grid3<T> in = kernels::make_grid_for(*kernel, extent);
        Grid3<T> out = kernels::make_grid_for(*kernel, extent);
        kernels::run_kernel(*kernel, in, out, options.device,
                            gpusim::ExecMode::Functional, options.policy);
        detail = "validate() rejects but run_kernel executed: " + detail;
      } catch (const InvalidConfigError&) {
        rejected_loudly = true;
      }
      report.checks.push_back({name + " rejected", rejected_loudly, detail});
      continue;
    }
    Grid3<T> in = kernels::make_grid_for(*kernel, extent);
    Grid3<T> out = kernels::make_grid_for(*kernel, extent);
    fill_verification_field(in, options.data_seed);
    out.fill(static_cast<T>(-999));
    kernels::run_kernel(*kernel, in, out, options.device, gpusim::ExecMode::Functional,
                        options.policy);
    const Status verdict = reference_status(coeffs, in, out, budget);
    report.checks.push_back(
        {name + " vs reference", verdict.ok(), verdict.ok() ? "" : verdict.context});
    ran.push_back({name, std::move(out)});
  }

  // Pairwise: every executed pair must agree within twice the per-kernel
  // budget (each side may drift up to one budget from the reference).
  const UlpBudget pair_budget = budget.scaled(2.0);
  for (std::size_t a = 0; a < ran.size(); ++a) {
    for (std::size_t b = a + 1; b < ran.size(); ++b) {
      const UlpGridDiff d = ulp_compare_grids(ran[a].out, ran[b].out, pair_budget);
      report.checks.push_back({ran[a].name + " vs " + ran[b].name, d.pass,
                               d.pass ? "" : d.describe()});
    }
  }
  return report;
}

template VerifyReport differential_oracle<float>(const StencilCoeffs&,
                                                 const std::vector<VariantSpec>&,
                                                 const Extent3&, const OracleOptions&);
template VerifyReport differential_oracle<double>(const StencilCoeffs&,
                                                  const std::vector<VariantSpec>&,
                                                  const Extent3&, const OracleOptions&);
template VerifyReport verify_kernel_output<float>(const kernels::IStencilKernel<float>&,
                                                  const Extent3&, const OracleOptions&);
template VerifyReport verify_kernel_output<double>(
    const kernels::IStencilKernel<double>&, const Extent3&, const OracleOptions&);
template void fill_verification_field<float>(Grid3<float>&, std::uint64_t);
template void fill_verification_field<double>(Grid3<double>&, std::uint64_t);

}  // namespace inplane::verify
