#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::verify {

/// One violated trace invariant.
struct AuditViolation {
  std::string invariant;
  std::string detail;
};

/// Verdict of a trace audit.
struct AuditReport {
  std::vector<AuditViolation> violations;

  [[nodiscard]] bool pass() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Pillar 3 — the trace auditor.  Checks one steady-state per-plane block
/// trace against the closed forms the paper derives:
///
///  * flops/element: 7r+1 forward-plane, 8r+1 in-plane queue updates
///    (Tables I and II);
///  * loaded region per plane: the star region (W+2r)W strips for the
///    merged-row variants, plus the 4r^2 corners for classical /
///    full-slice / nvstencil (section III-C1) — and in every case fewer
///    refs per element than the naive 6r+2 of Table I;
///  * exactly one store per output point per plane;
///  * coalescing: transactions at least ceil(requested / segment) for the
///    device's segment sizes, and load efficiency in (0, 1];
///  * shared memory: replays bounded by 31 per warp instruction;
///  * two barriers per plane (stage + compute).
///
/// When config.tb > 1 (degree-N temporal blocking, full-slice only) the
/// closed forms change shape and the auditor follows: stage 1 does 8r+1
/// flops/point over the (W+2(N-1)r)(H+2(N-1)r) ghost-extended region and
/// stages 2..N do 7r+1 over their shrinking rings; the plane loads the
/// (W+2Nr)(H+2Nr) t=0 slice exactly once; barriers are N+1 per plane.
/// The per-plane naive-refs bound is intentionally not enforced there —
/// redundant ghost-zone traffic is the temporal trade, and the amortized
/// comparison belongs to the perf model.
///
/// A kernel whose trace passes the functional tests but violates these
/// counts is silently skewing every derived number in EXPERIMENTS.md —
/// the auditor turns that into a named failure.
[[nodiscard]] AuditReport audit_plane_trace(kernels::Method method, int order,
                                            const kernels::LaunchConfig& config,
                                            std::size_t elem_size,
                                            const gpusim::TraceStats& plane,
                                            const gpusim::DeviceSpec& device);

/// Convenience: traces one steady-state plane of @p kernel and audits it.
template <typename T>
[[nodiscard]] AuditReport audit_kernel(const kernels::IStencilKernel<T>& kernel,
                                       const gpusim::DeviceSpec& device,
                                       const Extent3& extent);

/// CRC-32 over every TraceStats counter (little-endian, declaration
/// order) — the frame of the golden-trace snapshots: a one-word identity
/// for the full instruction-level shape of a traced plane.
[[nodiscard]] std::uint32_t trace_crc(const gpusim::TraceStats& t);

extern template AuditReport audit_kernel<float>(const kernels::IStencilKernel<float>&,
                                                const gpusim::DeviceSpec&,
                                                const Extent3&);
extern template AuditReport audit_kernel<double>(const kernels::IStencilKernel<double>&,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&);

}  // namespace inplane::verify
