#include "verify/trace_audit.hpp"

#include <algorithm>

#include "core/crc32.hpp"
#include "core/stencil_spec.hpp"

namespace inplane::verify {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

std::string eq_detail(const char* what, std::uint64_t got, std::uint64_t want) {
  return std::string(what) + ": got " + std::to_string(got) + ", expected " +
         std::to_string(want);
}

}  // namespace

std::string AuditReport::summary() const {
  if (pass()) return "trace audit: all invariants hold";
  std::string s = "trace audit: " + std::to_string(violations.size()) + " violation(s)";
  for (const AuditViolation& v : violations) {
    s += "; " + v.invariant + " (" + v.detail + ")";
  }
  return s;
}

AuditReport audit_plane_trace(kernels::Method method, int order,
                              const kernels::LaunchConfig& config,
                              std::size_t elem_size, const gpusim::TraceStats& plane,
                              const gpusim::DeviceSpec& device) {
  AuditReport report;
  const auto fail = [&](const std::string& invariant, const std::string& detail) {
    report.violations.push_back({invariant, detail});
  };

  const StencilSpec spec{order};
  const auto r = static_cast<std::uint64_t>(spec.radius());
  const auto w = static_cast<std::uint64_t>(config.tile_w());
  const auto h = static_cast<std::uint64_t>(config.tile_h());
  const std::uint64_t elems = w * h;
  const auto tb = static_cast<std::uint64_t>(config.tb > 1 ? config.tb : 1);

  if (tb > 1) {
    // Degree-N temporal staging (full-slice only): stage 1 runs the
    // in-plane update at 8r+1 flops/point over the ghost-extended region
    // (W + 2(N-1)r)(H + 2(N-1)r), stages 2..N-1 run the forward-plane
    // 7r+1 update over their shrinking rings, and the final stage emits
    // the tile proper at 7r+1.
    const auto region_of = [&](std::uint64_t s) {
      const std::uint64_t e = (tb - s) * r;
      return (w + 2 * e) * (h + 2 * e);
    };
    std::uint64_t staged_flops =
        region_of(1) * static_cast<std::uint64_t>(spec.flops_inplane()) +
        elems * static_cast<std::uint64_t>(spec.flops_forward());
    for (std::uint64_t s = 2; s < tb; ++s) {
      staged_flops += region_of(s) * static_cast<std::uint64_t>(spec.flops_forward());
    }
    if (plane.flops != staged_flops) {
      fail("flops-temporal-staged", eq_detail("flops", plane.flops, staged_flops));
    }

    // Global traffic per plane is one t=0 slice including the full ghost
    // zone: (W + 2Nr)(H + 2Nr) elements, exactly once.  Redundant
    // ghost-zone loads are the temporal trade (section on overlapped
    // tiling); the per-plane naive-refs bound deliberately does not apply
    // — the amortized comparison lives in the perf model and the
    // crossover benchmark.
    const std::uint64_t slice = (w + 2 * tb * r) * (h + 2 * tb * r);
    const std::uint64_t requested_elems = plane.bytes_requested_ld / elem_size;
    if (requested_elems != slice) {
      fail("refs-region-exact", eq_detail("loaded elements", requested_elems, slice));
    }
  } else {
    // Flops per element: 7r+1 forward-plane (Table I), 8r+1 in-plane queue
    // updates (Table II / Eqns. (3)-(5)).
    const std::uint64_t flops_per_elem =
        static_cast<std::uint64_t>(method == kernels::Method::ForwardPlane
                                       ? spec.flops_forward()
                                       : spec.flops_inplane());
    if (plane.flops != flops_per_elem * elems) {
      fail(method == kernels::Method::ForwardPlane ? "flops-forward-7r+1"
                                                   : "flops-inplane-8r+1",
           eq_detail("flops", plane.flops, flops_per_elem * elems));
    }

    // Loaded region per plane: the star region for the merged-row variants,
    // plus the 4r^2 corners (section III-C1) for the others.  Exactly once —
    // any duplicate or missing element skews the Fig. 9 load-efficiency
    // numbers silently.
    const std::uint64_t star = elems + 2 * r * w + 2 * r * h;
    const std::uint64_t full = star + static_cast<std::uint64_t>(
                                          spec.fullslice_corner_elems());
    const bool star_only = method == kernels::Method::InPlaneVertical ||
                           method == kernels::Method::InPlaneHorizontal;
    const std::uint64_t region = star_only ? star : full;
    const std::uint64_t requested_elems = plane.bytes_requested_ld / elem_size;
    if (requested_elems != region) {
      fail("refs-region-exact", eq_detail("loaded elements", requested_elems, region));
    }

    // Every tiled variant must beat the naive 6r+2 refs/element of Table I
    // (6r+1 loads + 1 store); that reduction is the whole point of plane
    // staging.
    const std::uint64_t naive_refs = static_cast<std::uint64_t>(spec.memory_refs());
    const std::uint64_t traced_refs_num =
        plane.bytes_requested_ld + plane.bytes_requested_st;
    if (traced_refs_num >= naive_refs * elems * elem_size) {
      fail("refs-beat-naive-6r+2",
           "traced " + std::to_string(traced_refs_num / elem_size) +
               " refs/plane >= naive " + std::to_string(naive_refs * elems));
    }
  }

  // Exactly one store per output point per plane.
  if (plane.bytes_requested_st != elems * elem_size) {
    fail("store-once",
         eq_detail("stored bytes", plane.bytes_requested_st, elems * elem_size));
  }

  // Coalescing lower bounds: a warp cannot move N requested bytes in
  // fewer than ceil(N / segment) transactions, and transferred bytes are
  // transactions * segment exactly (the coalescer's contract).
  const auto ld_seg = static_cast<std::uint64_t>(device.coalesce_bytes);
  const auto st_seg = static_cast<std::uint64_t>(device.store_segment_bytes);
  if (plane.load_transactions < ceil_div(plane.bytes_requested_ld, ld_seg)) {
    fail("coalesce-load-lower-bound",
         eq_detail("load transactions", plane.load_transactions,
                   ceil_div(plane.bytes_requested_ld, ld_seg)));
  }
  if (plane.store_transactions < ceil_div(plane.bytes_requested_st, st_seg)) {
    fail("coalesce-store-lower-bound",
         eq_detail("store transactions", plane.store_transactions,
                   ceil_div(plane.bytes_requested_st, st_seg)));
  }
  if (plane.bytes_transferred_ld != plane.load_transactions * ld_seg) {
    fail("transferred-is-transactions-times-segment",
         eq_detail("transferred load bytes", plane.bytes_transferred_ld,
                   plane.load_transactions * ld_seg));
  }

  // gld_efficiency in (0, 1] (Fig. 9's counter cannot exceed perfect).
  if (plane.bytes_transferred_ld != 0 &&
      plane.bytes_requested_ld > plane.bytes_transferred_ld) {
    fail("load-efficiency-at-most-one",
         eq_detail("requested bytes", plane.bytes_requested_ld,
                   plane.bytes_transferred_ld));
  }
  if (plane.bytes_requested_ld == 0) {
    fail("load-efficiency-positive", "plane trace requested no load bytes");
  }

  // Bank conflicts: a 32-lane warp access replays at most 31 times.
  if (plane.smem_replays > 31 * plane.smem_instrs) {
    fail("bank-replay-recount",
         eq_detail("smem replays", plane.smem_replays, 31 * plane.smem_instrs));
  }

  // Barriers per plane: one after staging, one before re-staging — plus,
  // at temporal degree N, one after each of the N-1 ring handoffs.
  const std::uint64_t want_syncs = tb > 1 ? tb + 1 : 2;
  if (plane.syncs != want_syncs) {
    fail("syncs-per-plane", eq_detail("barriers", plane.syncs, want_syncs));
  }

  return report;
}

template <typename T>
AuditReport audit_kernel(const kernels::IStencilKernel<T>& kernel,
                         const gpusim::DeviceSpec& device, const Extent3& extent) {
  // The invariants describe a *steady-state* plane; trace_plane picks
  // plane min(nz-1, tb*r+1), which on a shallow grid is still filling the
  // in-plane pipeline (nothing stored yet).  Deepen the traced extent so
  // a steady-state plane exists — per-plane counts do not depend on nz.
  // A degree-N kernel's pipeline is N*r deep, so its steady state starts
  // later.
  Extent3 traced = extent;
  traced.nz = std::max({traced.nz, 2 * kernel.radius() + 2,
                        kernel.time_steps() * kernel.radius() + 2});
  const gpusim::TraceStats plane = kernel.trace_plane(device, traced);
  return audit_plane_trace(kernel.method(), kernel.coeffs().order(), kernel.config(),
                           sizeof(T), plane, device);
}

std::uint32_t trace_crc(const gpusim::TraceStats& t) {
  const std::uint64_t fields[] = {
      t.load_instrs,        t.store_instrs,      t.load_transactions,
      t.store_transactions, t.bytes_requested_ld, t.bytes_transferred_ld,
      t.bytes_requested_st, t.bytes_transferred_st, t.smem_instrs,
      t.smem_replays,       t.compute_instrs,    t.flops,
      t.syncs};
  unsigned char bytes[sizeof(fields)];
  std::size_t n = 0;
  for (const std::uint64_t f : fields) {
    for (int b = 0; b < 8; ++b) bytes[n++] = static_cast<unsigned char>(f >> (8 * b));
  }
  return crc32(bytes, n);
}

template AuditReport audit_kernel<float>(const kernels::IStencilKernel<float>&,
                                         const gpusim::DeviceSpec&, const Extent3&);
template AuditReport audit_kernel<double>(const kernels::IStencilKernel<double>&,
                                          const gpusim::DeviceSpec&, const Extent3&);

}  // namespace inplane::verify
