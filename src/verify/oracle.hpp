#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/coefficients.hpp"
#include "core/thread_pool.hpp"
#include "core/ulp_compare.hpp"
#include "gpusim/device.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::verify {

/// One named verification check and its verdict.
struct CheckResult {
  std::string name;
  bool pass = true;
  std::string detail;
};

/// Aggregated verdict of an oracle / metamorphic run.
struct VerifyReport {
  std::vector<CheckResult> checks;

  [[nodiscard]] bool pass() const {
    for (const CheckResult& c : checks) {
      if (!c.pass) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t failures() const {
    std::size_t n = 0;
    for (const CheckResult& c : checks) {
      if (!c.pass) ++n;
    }
    return n;
  }

  /// "5 check(s), 1 failure: <name>: <detail>; ..." one-line rendering.
  [[nodiscard]] std::string summary() const;

  /// Appends @p other's checks, prefixing their names with "@p prefix/".
  void absorb(const VerifyReport& other, const std::string& prefix);
};

/// One kernel variant of the differential set.
struct VariantSpec {
  kernels::Method method;
  kernels::LaunchConfig config;
};

/// Knobs shared by the differential oracle and the metamorphic checks.
struct OracleOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::geforce_gtx580();
  ExecPolicy policy = {};
  /// Comparison budget; unset derives UlpBudget::for_radius from the
  /// coefficients and element size.
  std::optional<UlpBudget> budget;
  /// Seed of the deterministic input field.
  std::uint64_t data_seed = 1;
};

/// Pillar 1 — the differential oracle.  Runs every valid variant of
/// @p variants over an identical input field, checks each output against
/// the CPU reference (reference_status) and all outputs pairwise under
/// the ULP budget.  Invalid variants (tile does not divide the grid,
/// block over device limits, ...) are reported as passing "rejected"
/// checks: a configuration the kernel *accepts* must compute the right
/// answer, and one it rejects must be rejected loudly, never silently
/// skewed (the Lappi et al. failure mode).
template <typename T>
[[nodiscard]] VerifyReport differential_oracle(const StencilCoeffs& coeffs,
                                               const std::vector<VariantSpec>& variants,
                                               const Extent3& extent,
                                               const OracleOptions& options = {});

/// Verifies one already-built kernel against the CPU reference on a
/// deterministic input field.  The lowest-level entry point the CLI's
/// --verify mode and the fuzzer share.
template <typename T>
[[nodiscard]] VerifyReport verify_kernel_output(const kernels::IStencilKernel<T>& kernel,
                                                const Extent3& extent,
                                                const OracleOptions& options = {});

/// The default differential set: all five loading methods at @p config
/// (vector width adjusted per method/precision so every variant is
/// constructible).
[[nodiscard]] std::vector<VariantSpec> all_method_variants(
    const kernels::LaunchConfig& config, std::size_t elem_size);

/// The deterministic pseudo-random field in [-1, 1) every verification
/// pillar uses: a pure function of (seed, logical coordinate), defined on
/// all of Z^3 — so shifted/scaled variants of the same field can be
/// materialised into grids of any layout or halo width.
[[nodiscard]] double verification_field_value(std::uint64_t seed, int i, int j, int k);

/// Fills @p grid (interior and halo) with verification_field_value.
template <typename T>
void fill_verification_field(Grid3<T>& grid, std::uint64_t seed);

extern template VerifyReport differential_oracle<float>(const StencilCoeffs&,
                                                        const std::vector<VariantSpec>&,
                                                        const Extent3&,
                                                        const OracleOptions&);
extern template VerifyReport differential_oracle<double>(const StencilCoeffs&,
                                                         const std::vector<VariantSpec>&,
                                                         const Extent3&,
                                                         const OracleOptions&);
extern template VerifyReport verify_kernel_output<float>(
    const kernels::IStencilKernel<float>&, const Extent3&, const OracleOptions&);
extern template VerifyReport verify_kernel_output<double>(
    const kernels::IStencilKernel<double>&, const Extent3&, const OracleOptions&);
extern template void fill_verification_field<float>(Grid3<float>&, std::uint64_t);
extern template void fill_verification_field<double>(Grid3<double>&, std::uint64_t);

}  // namespace inplane::verify
