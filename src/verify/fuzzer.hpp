#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/oracle.hpp"

namespace inplane::verify {

/// Deliberate defect classes the fuzzer can arm to prove it still has
/// teeth (a fuzzer that never fails a broken kernel is just a space
/// heater).
enum class Sabotage {
  None,
  /// The kernel under test consumes an input field silently shifted by
  /// one cell in x relative to what the oracle believes it fed — the
  /// observable signature of an off-by-one halo bug.
  HaloOffByOne,
};

[[nodiscard]] const char* to_string(Sabotage s);

/// One point of the (method x order x precision x grid shape x launch
/// config) space.  Serialises to a single replayable line, the currency
/// of repro reports:
///
///   method=vertical order=6 nx=64 ny=32 nz=9 tx=16 ty=8 rx=2 ry=1
///       vec=2 tb=1 prec=sp data=0x1 sabotage=none
///
/// tb is the temporal-blocking degree (config.tb); lines without it
/// parse as tb=1, so pre-degree corpus lines replay unchanged.
struct FuzzSample {
  kernels::Method method = kernels::Method::ForwardPlane;
  int order = 2;
  int nx = 32, ny = 16, nz = 4;
  kernels::LaunchConfig config;
  bool double_precision = false;
  std::uint64_t data_seed = 1;
  Sabotage sabotage = Sabotage::None;

  [[nodiscard]] std::string to_line() const;

  /// Parses a to_line()-format line.  On failure returns nullopt and, if
  /// @p error is non-null, stores the reason.
  [[nodiscard]] static std::optional<FuzzSample> parse(const std::string& line,
                                                       std::string* error = nullptr);

  [[nodiscard]] bool operator==(const FuzzSample&) const = default;
};

/// Verdict of running every verification pillar on one sample.
struct FuzzVerdict {
  bool pass = true;
  /// The sample was (loudly) refused — counts as passing, but is
  /// tallied separately so a seed that only draws rejects is visible.
  bool rejected = false;
  /// Name + detail of the first failing check ("" when passing).
  std::string detail;
};

/// One failure, shrunk to its minimal reproduction.
struct FuzzFailure {
  FuzzSample original;   ///< the sample as drawn
  FuzzSample shrunk;     ///< minimal sample that still fails
  std::string detail;    ///< failing check of the shrunk sample
  int shrink_steps = 0;  ///< accepted shrink moves
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iters = 50;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::geforce_gtx580();
  ExecPolicy policy = {};
  bool shrink = true;
  /// Injected into every drawn sample (replay lines carry their own).
  Sabotage sabotage = Sabotage::None;
  /// > 1: full-slice samples also draw a temporal-blocking degree from
  /// {1..max_temporal_degree}.  1 (the default) keeps the historical
  /// sample stream bit-identical.
  int max_temporal_degree = 1;
};

struct FuzzResult {
  int iters = 0;              ///< samples drawn
  int rejected = 0;           ///< samples the kernels (loudly) refused
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool pass() const { return failures.empty(); }
};

/// Draws the i-th sample of the stream keyed by @p seed — a pure
/// function, so the stream is identical across hosts, thread counts and
/// reruns.
[[nodiscard]] FuzzSample draw_sample(std::uint64_t seed, int iteration,
                                     Sabotage sabotage = Sabotage::None,
                                     int max_temporal_degree = 1);

/// Runs every pillar on one sample: loud-rejection (invalid configs must
/// throw, not execute), CPU-reference oracle, differential check against
/// the forward-plane baseline, metamorphic relations, trace audit.
[[nodiscard]] FuzzVerdict run_sample(const FuzzSample& sample,
                                     const gpusim::DeviceSpec& device,
                                     const ExecPolicy& policy = {});

/// Greedy one-axis-at-a-time shrink: repeatedly tries to lower one axis
/// (order, vec, rx, ry, tx, ty, then the grid dims) while the sample
/// keeps failing, until no single-axis move still reproduces.
[[nodiscard]] FuzzFailure shrink_failure(const FuzzSample& sample,
                                         const FuzzVerdict& verdict,
                                         const gpusim::DeviceSpec& device,
                                         const ExecPolicy& policy = {});

/// The fuzz loop: draw, run, shrink failures.  Deterministic in
/// (seed, iters, sabotage) — the policy's thread count changes wall time
/// only, never samples or verdicts.
[[nodiscard]] FuzzResult run_fuzz(const FuzzOptions& options);

}  // namespace inplane::verify
