#pragma once

#include <string>
#include <utility>

#include "core/coefficients.hpp"
#include "core/grid3.hpp"
#include "core/reference.hpp"
#include "core/status.hpp"
#include "core/ulp_compare.hpp"

namespace inplane::verify {

/// The star stencil of Eqn. (1) applied directly at one point — the
/// definitional value every kernel variant must reproduce.
template <typename T>
[[nodiscard]] T reference_point(const Grid3<T>& in, const StencilCoeffs& coeffs,
                                int i, int j, int k) {
  T ref = static_cast<T>(coeffs.c0()) * in.at(i, j, k);
  for (int m = 1; m <= coeffs.radius(); ++m) {
    const T cm = static_cast<T>(coeffs.c(m));
    ref += cm * (in.at(i - m, j, k) + in.at(i + m, j, k) + in.at(i, j - m, k) +
                 in.at(i, j + m, k) + in.at(i, j, k - m) + in.at(i, j, k + m));
  }
  return ref;
}

/// The shared CPU-reference oracle: checks every interior point of
/// @p out against the definitional stencil applied to @p in, under the
/// centralized ULP budget.  Returns Ok, or DataCorruption naming the
/// first offending site.  This is the single comparator behind the
/// guarded runner's verification pass, the differential oracle, the
/// CLI's --verify mode and the configuration fuzzer — a bug flagged by
/// one path is flagged identically by all of them.
///
/// Header-only on purpose: the kernels library calls it from
/// run_kernel_guarded while the verify library (which runs kernels)
/// links against kernels, so the comparator must not live in either
/// compiled archive.
template <typename T>
[[nodiscard]] Status reference_status(const StencilCoeffs& coeffs, const Grid3<T>& in,
                                      const Grid3<T>& out, const UlpBudget& budget) {
  for (int k = 0; k < in.nz(); ++k) {
    for (int j = 0; j < in.ny(); ++j) {
      for (int i = 0; i < in.nx(); ++i) {
        const T want = reference_point(in, coeffs, i, j, k);
        const T got = out.at(i, j, k);
        const UlpCheck<T> c = ulp_check(got, want, budget);
        if (!c.pass) {
          return {ErrorCode::DataCorruption,
                  "output mismatch at (" + std::to_string(i) + ", " +
                      std::to_string(j) + ", " + std::to_string(k) + "): got " +
                      std::to_string(static_cast<double>(got)) + ", reference " +
                      std::to_string(static_cast<double>(want)) + " (" +
                      std::to_string(c.ulps) + " ulps)"};
        }
      }
    }
  }
  return Status::okay();
}

/// N-step variant of reference_status for temporally blocked kernels: the
/// first steps - 1 sweeps are materialized with apply_reference under the
/// same frozen-halo semantics the degree-N kernels implement (halo cells
/// are never rewritten, so every sweep reads the t=0 halo), and the final
/// sweep is checked point-by-point through reference_status — the one
/// comparator, whatever the degree.
template <typename T>
[[nodiscard]] Status reference_status_n(const StencilCoeffs& coeffs, const Grid3<T>& in,
                                        const Grid3<T>& out, int steps,
                                        const UlpBudget& budget) {
  if (steps <= 1) return reference_status(coeffs, in, out, budget);
  Grid3<T> a = in;
  Grid3<T> b = in;  // full copies, so the frozen t=0 halo rides along
  for (int s = 1; s < steps; ++s) {
    apply_reference(a, b, coeffs);
    std::swap(a, b);
  }
  return reference_status(coeffs, a, out, budget);
}

}  // namespace inplane::verify
