#include "autotune/search_space.hpp"

namespace inplane::autotune {

std::vector<kernels::LaunchConfig> SearchSpace::enumerate(
    const gpusim::DeviceSpec& device, const Extent3& extent, kernels::Method method,
    int radius, std::size_t elem_size, int vec) const {
  std::vector<kernels::LaunchConfig> configs;
  for (int tx : tx_values) {
    if (tx % 16 != 0) continue;  // constraint (i)
    // The SDK FDTD3d kernel hard-codes its block width, and its entire
    // x-axis logic (warp-aligned interior loads, tix<r halo conditionals,
    // the tile row stride) is built around it.  The paper's
    // register-blocked nvstencil variant (Fig. 10 case (i)) keeps the SDK
    // loading structure, so only TY and RY are tunable for it — register
    // blocking along x would be the rewrite that the in-plane method *is*.
    if (method == kernels::Method::ForwardPlane && tx != 32) continue;
    for (int ty : ty_values) {
      if (tx * ty > device.max_threads_per_block) continue;  // constraint (ii)
      for (int rx : rx_values) {
        if (method == kernels::Method::ForwardPlane && rx != 1) continue;
        if (extent.nx % (tx * rx) != 0) continue;  // constraint (iv), x
        for (int ry : ry_values) {
          if (extent.ny % (ty * ry) != 0) continue;  // constraint (iv), y
          for (int tb : tb_values) {
            if (tb < 1) continue;
            // Temporal blocking builds on full-slice loading only, and the
            // degree-TB pipeline needs nz planes to drain into.
            if (tb > 1 && method != kernels::Method::InPlaneFullSlice) continue;
            if (tb > 1 && extent.nz <= tb * radius) continue;  // constraint (v)
            const kernels::LaunchConfig cfg{tx, ty, rx, ry, vec, tb};
            const gpusim::KernelResources res =
                kernels::estimate_resources(method, cfg, radius, elem_size);
            if (res.smem_bytes > static_cast<std::size_t>(device.smem_per_sm)) {
              continue;  // constraint (iii)
            }
            // The staged pipeline cannot spill its queue/history state; a
            // config past the encoding limit would only waste a measure
            // slot on a validate() rejection.
            if (tb > 1 && res.regs_per_thread > 255) continue;  // constraint (v)
            configs.push_back(cfg);
          }
        }
      }
    }
  }
  return configs;
}

int default_vec(kernels::Method method, std::size_t elem_size) {
  switch (method) {
    case kernels::Method::ForwardPlane:
    case kernels::Method::InPlaneClassical:
      return 1;
    case kernels::Method::InPlaneVertical:
    case kernels::Method::InPlaneHorizontal:
    case kernels::Method::InPlaneFullSlice:
      return elem_size == 8 ? 2 : 4;
  }
  return 1;
}

}  // namespace inplane::autotune
