#pragma once

// The one fingerprint vocabulary shared by every layer that keys
// persistent state to a tuning problem: checkpoint journals
// (CheckpointKey), distributed shard journals (sweep_spec) and the
// service wisdom cache all hash the same fields with the same FNV-1a
// primitives defined here.  Before this header existed the hash lived in
// checkpoint.cpp and every caller re-built the key fields by hand; one
// divergent copy would silently split the caches, so the primitives are
// public and pinned by a cross-implementation equality test
// (tests/test_service.cpp, FingerprintCrossImpl).

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/extent.hpp"

namespace inplane::gpusim {
struct DeviceSpec;
}

namespace inplane::autotune {

/// FNV-1a offset basis — the seed every fingerprint chain starts from.
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

/// One FNV-1a step over @p n raw bytes.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n);

/// FNV-1a over the bytes of @p s (no terminator, no length prefix — chain
/// an explicit separator between fields that could otherwise collide).
[[nodiscard]] std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s);

/// The canonical identity hash of one tuning problem: (method name,
/// device name, grid extent, element size, tuner kind).  This is the
/// value CheckpointKey::fingerprint() stores in every IPTJ3 journal
/// header; anything that must agree with a journal on disk must derive
/// its fingerprint through this function.
[[nodiscard]] std::uint64_t problem_fingerprint(const std::string& method,
                                                const std::string& device,
                                                const Extent3& extent,
                                                std::size_t elem_size,
                                                const std::string& kind);

/// Identity hash of a *device description*: every numeric field the
/// timing model consumes, not just the name.  Two .device files that
/// share a name but differ in (say) achieved bandwidth tune to different
/// optima, so the wisdom cache keys on this, never on the name alone.
[[nodiscard]] std::uint64_t device_fingerprint(const gpusim::DeviceSpec& device);

}  // namespace inplane::autotune
