#include "autotune/fingerprint.hpp"

#include "gpusim/device.hpp"

namespace inplane::autotune {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

std::uint64_t problem_fingerprint(const std::string& method, const std::string& device,
                                  const Extent3& extent, std::size_t elem_size,
                                  const std::string& kind) {
  std::uint64_t h = kFingerprintSeed;
  h = fnv1a_str(h, method);
  h = fnv1a_str(h, "\x1f");
  h = fnv1a_str(h, device);
  h = fnv1a_str(h, "\x1f");
  h = fnv1a_str(h, kind);
  const std::int64_t dims[4] = {extent.nx, extent.ny, extent.nz,
                                static_cast<std::int64_t>(elem_size)};
  h = fnv1a(h, dims, sizeof(dims));
  return h;
}

std::uint64_t device_fingerprint(const gpusim::DeviceSpec& d) {
  std::uint64_t h = kFingerprintSeed;
  h = fnv1a_str(h, d.name);
  h = fnv1a_str(h, "\x1f");
  const std::int64_t ints[] = {
      static_cast<std::int64_t>(d.arch), d.sm_count, d.cores_per_sm,
      d.coalesce_bytes, d.store_segment_bytes, d.regs_per_sm, d.smem_per_sm,
      d.max_warps_per_sm, d.max_blocks_per_sm, d.max_threads_per_block,
      d.max_regs_per_thread, d.warp_size, d.ldst_units_per_sm, d.shared_banks};
  h = fnv1a(h, ints, sizeof(ints));
  const double reals[] = {d.clock_ghz,
                          d.peak_bw_gbs,
                          d.achieved_bw_gbs,
                          d.mem_latency_cycles,
                          d.dp_throughput_ratio,
                          d.latency_hiding_warps,
                          d.max_outstanding_loads_per_warp};
  h = fnv1a(h, reals, sizeof(reals));
  return h;
}

}  // namespace inplane::autotune
