#include "autotune/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "autotune/fingerprint.hpp"
#include "core/crc32.hpp"
#include "core/status.hpp"
#include "metrics/metrics.hpp"

namespace inplane::autotune {

namespace {

/// Checkpoint-I/O instruments (scope "autotune.checkpoint").
struct CkptMetrics {
  metrics::Counter& records_written;
  metrics::Counter& bytes_written;
  metrics::Counter& records_recovered;
  metrics::Counter& journals_opened;
  metrics::Counter& fingerprint_discards;

  static CkptMetrics& get() {
    auto& reg = metrics::Registry::global();
    static CkptMetrics m{
        reg.counter("autotune.checkpoint.records_written"),
        reg.counter("autotune.checkpoint.bytes_written"),
        reg.counter("autotune.checkpoint.records_recovered"),
        reg.counter("autotune.checkpoint.journals_opened"),
        reg.counter("autotune.checkpoint.fingerprint_discards"),
    };
    return m;
  }
};

// Format history: "IPTJ1\n" had no sdc_events field; "IPTJ2\n" appended it
// at the end of every payload; "IPTJ3\n" inserts the temporal-blocking
// degree (config.tb) after config.vec.  Old journals fail the magic check
// and are re-initialised as a fresh sweep — decode never sees an old
// payload.
constexpr char kMagic[6] = {'I', 'P', 'T', 'J', '3', '\n'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint64_t);

// --- payload serialization (little-endian, fixed widths) -----------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xffu));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  const std::string& buf;
  std::size_t pos = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return false;
    }
    std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return true;
  }

  std::uint32_t u32() {
    unsigned char b[4] = {};
    take(b, 4);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    unsigned char b[8] = {};
    take(b, 8);
    std::uint64_t bits = 0;
    for (int i = 7; i >= 0; --i) bits = (bits << 8) | b[i];
    return std::bit_cast<double>(bits);
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || pos + n > buf.size()) {
      ok = false;
      return {};
    }
    std::string s(buf.data() + pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

std::string encode_tune_entry(const TuneEntry& e) {
  std::string p;
  put_i32(p, e.config.tx);
  put_i32(p, e.config.ty);
  put_i32(p, e.config.rx);
  put_i32(p, e.config.ry);
  put_i32(p, e.config.vec);
  put_i32(p, e.config.tb);
  const std::uint32_t flags = (e.executed ? 1u : 0u) | (e.failed ? 2u : 0u) |
                              (e.timing.valid ? 4u : 0u);
  put_u32(p, flags);
  put_i32(p, static_cast<std::int32_t>(e.failure.code));
  put_str(p, e.failure.context);
  put_i32(p, e.attempts);
  put_f64(p, e.model_mpoints);
  put_str(p, e.timing.invalid_reason);
  put_f64(p, e.timing.seconds);
  put_f64(p, e.timing.mpoints_per_s);
  put_f64(p, e.timing.gflops);
  put_f64(p, e.timing.load_efficiency);
  put_f64(p, e.timing.bw_utilisation);
  put_i32(p, e.timing.occupancy.active_blocks);
  put_i32(p, e.timing.occupancy.warps_per_block);
  put_i32(p, static_cast<std::int32_t>(e.timing.occupancy.limiter));
  put_str(p, e.timing.occupancy.invalid_reason);
  put_f64(p, e.timing.per_plane_sm.mem);
  put_f64(p, e.timing.per_plane_sm.ldst);
  put_f64(p, e.timing.per_plane_sm.compute);
  put_f64(p, e.timing.per_plane_sm.latency);
  put_f64(p, e.timing.per_plane_sm.sync);
  put_str(p, e.timing.bottleneck);
  put_i32(p, e.timing.stages);
  put_i32(p, e.timing.rem_blocks);
  put_i32(p, e.sdc_events);
  return p;
}

namespace {

bool decode_entry_payload(const std::string& payload, TuneEntry& e, bool has_tb) {
  Reader r{payload};
  e.config.tx = r.i32();
  e.config.ty = r.i32();
  e.config.rx = r.i32();
  e.config.ry = r.i32();
  e.config.vec = r.i32();
  e.config.tb = has_tb ? r.i32() : 1;
  const std::uint32_t flags = r.u32();
  e.executed = (flags & 1u) != 0;
  e.failed = (flags & 2u) != 0;
  e.timing.valid = (flags & 4u) != 0;
  e.failure.code = static_cast<ErrorCode>(r.i32());
  e.failure.context = r.str();
  e.attempts = r.i32();
  e.model_mpoints = r.f64();
  e.timing.invalid_reason = r.str();
  e.timing.seconds = r.f64();
  e.timing.mpoints_per_s = r.f64();
  e.timing.gflops = r.f64();
  e.timing.load_efficiency = r.f64();
  e.timing.bw_utilisation = r.f64();
  e.timing.occupancy.active_blocks = r.i32();
  e.timing.occupancy.warps_per_block = r.i32();
  e.timing.occupancy.limiter = static_cast<gpusim::OccupancyLimiter>(r.i32());
  e.timing.occupancy.invalid_reason = r.str();
  e.timing.per_plane_sm.mem = r.f64();
  e.timing.per_plane_sm.ldst = r.f64();
  e.timing.per_plane_sm.compute = r.f64();
  e.timing.per_plane_sm.latency = r.f64();
  e.timing.per_plane_sm.sync = r.f64();
  e.timing.bottleneck = r.str();
  e.timing.stages = r.i32();
  e.timing.rem_blocks = r.i32();
  e.sdc_events = r.i32();
  return r.ok && r.pos == payload.size();
}

}  // namespace

bool decode_tune_entry(const std::string& payload, TuneEntry& e) {
  return decode_entry_payload(payload, e, true);
}

bool decode_tune_entry_pre_degree(const std::string& payload, TuneEntry& e) {
  return decode_entry_payload(payload, e, false);
}

namespace {

std::string config_key(const kernels::LaunchConfig& c) {
  return std::to_string(c.tx) + "," + std::to_string(c.ty) + "," +
         std::to_string(c.rx) + "," + std::to_string(c.ry) + "," +
         std::to_string(c.vec) + "," + std::to_string(c.tb);
}

/// Shared read-only scanner behind read_journal() and open(): recovers
/// the valid record prefix and reports where it ends (@p valid_end, for
/// open()'s torn-tail truncation).
JournalContents scan_journal(const std::string& path, std::uint64_t want,
                             std::size_t* valid_end) {
  JournalContents out;
  std::size_t end = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char magic[sizeof(kMagic)] = {};
  std::uint64_t fp = 0;
  if (std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
      std::fread(&fp, 1, sizeof(fp), f) == sizeof(fp)) {
    out.header_ok = true;
    out.fingerprint = fp;
    out.fingerprint_match = fp == want;
    end = kHeaderBytes;
    if (out.fingerprint_match) {
      for (;;) {
        std::uint32_t len = 0;
        std::uint32_t crc = 0;
        if (std::fread(&len, 1, sizeof(len), f) != sizeof(len)) break;
        if (std::fread(&crc, 1, sizeof(crc), f) != sizeof(crc)) break;
        if (len > (1u << 24)) break;  // absurd length => torn record
        std::string payload(len, '\0');
        if (len != 0 && std::fread(payload.data(), 1, len, f) != len) break;
        if (crc32(payload.data(), payload.size()) != crc) break;
        TuneEntry entry;
        if (!decode_tune_entry(payload, entry)) break;
        out.entries.push_back(std::move(entry));
        end += sizeof(len) + sizeof(crc) + len;
      }
    }
  }
  std::fclose(f);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size > end) out.torn_bytes = static_cast<std::size_t>(size) - end;
  if (valid_end != nullptr) *valid_end = end;
  return out;
}

/// fsync one path (best effort; durability hints must never turn a
/// completed logical operation into a failure).
void sync_path(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
#else
  (void)path;
#endif
}

/// fsync the directory holding @p path so a freshly renamed-in file's
/// directory entry survives power loss — the second half of the
/// write-temp + rename + fsync durability recipe.
void sync_parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  sync_path(parent.empty() ? std::string(".") : parent.string());
}

}  // namespace

JournalContents read_journal(const std::string& path, const CheckpointKey& key) {
  return scan_journal(path, key.fingerprint(), nullptr);
}

std::vector<TuneEntry> merge_journals(std::vector<std::string> paths,
                                      const CheckpointKey& key, MergeStats* stats) {
  MergeStats local;
  MergeStats& s = stats != nullptr ? *stats : local;
  s = MergeStats{};
  // Sorted path order makes the merge (and therefore which duplicate
  // record "wins") deterministic regardless of directory iteration order.
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  std::vector<TuneEntry> merged;
  std::set<std::string> seen;
  for (const std::string& path : paths) {
    const JournalContents c = read_journal(path, key);
    if (!c.header_ok) {
      s.missing_files += 1;
      continue;
    }
    if (!c.fingerprint_match) {
      s.mismatched_files += 1;
      continue;
    }
    s.files += 1;
    if (c.torn_bytes != 0) s.torn_tails += 1;
    for (const TuneEntry& e : c.entries) {
      s.records += 1;
      if (seen.insert(config_key(e.config)).second) {
        merged.push_back(e);
      } else {
        s.duplicates += 1;
      }
    }
  }
  return merged;
}

std::uint64_t CheckpointKey::fingerprint() const {
  return problem_fingerprint(method, device, extent, elem_size, kind);
}

CheckpointKey make_checkpoint_key(kernels::Method method,
                                  const gpusim::DeviceSpec& device,
                                  const Extent3& extent, std::size_t elem_size,
                                  const std::string& kind) {
  CheckpointKey key;
  key.method = kernels::to_string(method);
  key.device = device.name;
  key.extent = extent;
  key.elem_size = elem_size;
  key.kind = kind;
  return key;
}

CheckpointJournal::~CheckpointJournal() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void CheckpointJournal::open(const std::string& path, const CheckpointKey& key) {
  const std::uint64_t want = key.fingerprint();

  // Recover whatever valid prefix an existing journal holds.
  std::size_t valid_end = 0;
  const JournalContents contents = scan_journal(path, want, &valid_end);
  const bool reuse = contents.header_ok && contents.fingerprint_match;
  std::vector<std::pair<std::string, TuneEntry>> records;
  records.reserve(contents.entries.size());
  for (const TuneEntry& e : contents.entries) {
    TuneEntry entry = e;
    entry.resumed = true;
    records.emplace_back(config_key(entry.config), std::move(entry));
  }

  if (contents.header_ok && !contents.fingerprint_match) {
    // The stored journal belongs to a *different* sweep.  Silently
    // overwriting it would destroy someone else's resumable progress, so
    // preserve it alongside and warn loudly; the `.orphan` file is plain
    // IPTJ3 and can be merged/inspected later.
    const std::string orphan = path + ".orphan";
    std::error_code ec;
    std::filesystem::rename(path, orphan, ec);
    if (ec) {
      throw IoError("checkpoint: cannot preserve mismatched journal " + path +
                    " as " + orphan);
    }
    std::fprintf(stderr,
                 "checkpoint: WARNING: %s was written for a different sweep "
                 "(fingerprint %016llx, wanted %016llx); preserved as %s and "
                 "starting fresh\n",
                 path.c_str(), static_cast<unsigned long long>(contents.fingerprint),
                 static_cast<unsigned long long>(want), orphan.c_str());
    CkptMetrics::get().fingerprint_discards.add();
  }

  if (reuse) {
    // Drop any torn/corrupt tail so appends continue from a clean edge.
    std::error_code ec;
    if (std::filesystem::file_size(path, ec) != valid_end && !ec) {
      std::filesystem::resize_file(path, valid_end, ec);
      if (ec) {
        throw IoError("checkpoint: cannot truncate torn tail of " + path,
                      static_cast<long long>(valid_end));
      }
    }
  } else {
    // Fresh journal (or one for a different sweep): write the header to a
    // temp file and rename it into place so a crash here never leaves a
    // half-written header behind.
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw IoError("checkpoint: cannot create " + tmp);
    }
    const bool wrote = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic) &&
                       std::fwrite(&want, 1, sizeof(want), f) == sizeof(want) &&
                       std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote) {
      throw IoError("checkpoint: short write creating " + tmp);
    }
    // Durability: the header bytes must be on stable storage *before* the
    // rename publishes them, and the rename itself must survive via the
    // parent directory — otherwise a power cut can resurrect a journal
    // whose header the crashed process believed was committed.
    sync_path(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw IoError("checkpoint: cannot rename " + tmp + " over " + path);
    }
    sync_path(path);
    sync_parent_dir(path);
  }

  // Last record wins per config, preserving first-seen order.
  std::map<std::string, std::size_t> index;
  std::vector<TuneEntry> merged;
  for (auto& [k, entry] : records) {
    if (auto it = index.find(k); it != index.end()) {
      merged[it->second] = std::move(entry);
    } else {
      index.emplace(k, merged.size());
      merged.push_back(std::move(entry));
    }
  }

  std::FILE* out = std::fopen(path.c_str(), "ab");
  if (out == nullptr) {
    throw IoError("checkpoint: cannot open " + path + " for appending");
  }
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = out;
  path_ = path;
  loaded_ = std::move(merged);
  CkptMetrics::get().journals_opened.add();
  CkptMetrics::get().records_recovered.add(loaded_.size());
}

std::optional<TuneEntry> CheckpointJournal::find(
    const kernels::LaunchConfig& config) const {
  for (const TuneEntry& e : loaded_) {
    if (e.config == config) return e;
  }
  return std::nullopt;
}

void CheckpointJournal::append(const TuneEntry& entry) {
  const std::string payload = encode_tune_entry(entry);
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    throw IoError("checkpoint: append on a journal that is not open");
  }
  auto* f = static_cast<std::FILE*>(file_);
  if (std::fwrite(&len, 1, sizeof(len), f) != sizeof(len) ||
      std::fwrite(&crc, 1, sizeof(crc), f) != sizeof(crc) ||
      (len != 0 && std::fwrite(payload.data(), 1, len, f) != len) ||
      std::fflush(f) != 0) {
    throw IoError("checkpoint: short write appending to " + path_);
  }
  CkptMetrics::get().records_written.add();
  CkptMetrics::get().bytes_written.add(sizeof(len) + sizeof(crc) + len);
}

}  // namespace inplane::autotune
