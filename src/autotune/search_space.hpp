#pragma once

#include <vector>

#include "core/extent.hpp"
#include "gpusim/device.hpp"
#include "kernels/launch_config.hpp"
#include "kernels/resources.hpp"

namespace inplane::autotune {

/// The global (TX, TY, RX, RY[, TB]) parameter space the auto-tuner of
/// section IV-C searches, together with the paper's pruning constraints:
///  (i)   TX is a multiple of a half-warp (16) for memory coalescing;
///  (ii)  TX*TY is within the device thread-per-block limit;
///  (iii) the shared tile fits the device's shared memory;
///  (iv)  TY*RY divides the vertical grid size (we also require TX*RX to
///        divide the horizontal size, which the paper's grids satisfy by
///        construction);
///  (v)   temporally blocked points (TB > 1, full-slice only) additionally
///        need the degree-TB pipeline to fit the grid depth
///        (nz > TB * r), the slice + ring hierarchy to fit shared memory
///        and the per-thread queue/history state to stay under the
///        255-register encoding limit.
struct SearchSpace {
  // Value ranges match the optima reported in Table IV (TX up to 256, TY
  // up to 16, RX up to 2 there but we keep 4, RY up to 8).  tb_values
  // defaults to {1} — the paper's single-step space — so temporal blocking
  // is an opt-in dimension.
  std::vector<int> tx_values = {16, 32, 64, 128, 256};
  std::vector<int> ty_values = {1, 2, 4, 8, 16};
  std::vector<int> rx_values = {1, 2, 4};
  std::vector<int> ry_values = {1, 2, 4, 8};
  std::vector<int> tb_values = {1};

  /// Number of raw points before constraint pruning (M in section VI).
  [[nodiscard]] std::size_t raw_size() const {
    return tx_values.size() * ty_values.size() * rx_values.size() *
           ry_values.size() * tb_values.size();
  }

  /// Convenience: widen the temporal dimension to degrees 1..max_degree.
  void set_max_temporal_degree(int max_degree) {
    tb_values.clear();
    for (int tb = 1; tb <= max_degree; ++tb) tb_values.push_back(tb);
    if (tb_values.empty()) tb_values.push_back(1);
  }

  /// Enumerates the configurations satisfying constraints (i)-(iv) for the
  /// given kernel family.  @p vec is the vector load width stamped on
  /// every returned configuration (the paper fixes it per method and
  /// precision rather than searching it; see default_vec()).
  [[nodiscard]] std::vector<kernels::LaunchConfig> enumerate(
      const gpusim::DeviceSpec& device, const Extent3& extent, kernels::Method method,
      int radius, std::size_t elem_size, int vec) const;
};

/// The vector width each method uses (section III-C2): the forward-plane
/// baseline and the classical pattern load scalars; the merged-row
/// patterns use the widest load that fits 16 bytes (4 floats / 2 doubles).
[[nodiscard]] int default_vec(kernels::Method method, std::size_t elem_size);

}  // namespace inplane::autotune
