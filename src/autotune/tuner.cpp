#include "autotune/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/runner.hpp"
#include "perfmodel/model.hpp"

namespace inplane::autotune {

namespace {

/// Sorts executed entries first (by measured MPoint/s descending), then
/// un-executed ones (by model prediction descending).
void sort_entries(std::vector<TuneEntry>& entries) {
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    if (a.executed != b.executed) return a.executed;
    if (a.executed) return a.timing.mpoints_per_s > b.timing.mpoints_per_s;
    return a.model_mpoints > b.model_mpoints;
  });
}

template <typename T>
TuneEntry execute(kernels::Method method, const StencilCoeffs& coeffs,
                  const gpusim::DeviceSpec& device, const Extent3& extent,
                  const kernels::LaunchConfig& cfg) {
  TuneEntry entry;
  entry.config = cfg;
  const auto kernel = kernels::make_kernel<T>(method, coeffs, cfg);
  entry.timing = kernels::time_kernel(*kernel, device, extent);
  entry.executed = true;
  return entry;
}

template <typename T>
double model_predict(kernels::Method method, int radius,
                     const gpusim::DeviceSpec& device, const Extent3& extent,
                     const kernels::LaunchConfig& cfg) {
  perfmodel::ModelInput in;
  in.grid = extent;
  in.radius = radius;
  in.method = method;
  in.config = cfg;
  in.is_double = sizeof(T) == 8;
  const perfmodel::ModelResult r = perfmodel::evaluate(device, in);
  return r.valid ? r.mpoints_per_s : 0.0;
}

TuneResult finalize(std::vector<TuneEntry> entries) {
  TuneResult result;
  result.candidates = entries.size();
  sort_entries(entries);
  for (const TuneEntry& e : entries) {
    if (e.executed) result.executed += 1;
  }
  for (const TuneEntry& e : entries) {
    if (e.executed && e.timing.valid) {
      result.best = e;
      break;
    }
  }
  result.entries = std::move(entries);
  return result;
}

}  // namespace

template <typename T>
TuneResult exhaustive_tune(kernels::Method method, const StencilCoeffs& coeffs,
                           const gpusim::DeviceSpec& device, const Extent3& extent,
                           const SearchSpace& space) {
  const int vec = default_vec(method, sizeof(T));
  std::vector<TuneEntry> entries;
  for (const kernels::LaunchConfig& cfg :
       space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec)) {
    TuneEntry entry = execute<T>(method, coeffs, device, extent, cfg);
    entry.model_mpoints = model_predict<T>(method, coeffs.radius(), device, extent, cfg);
    entries.push_back(std::move(entry));
  }
  return finalize(std::move(entries));
}

template <typename T>
TuneResult model_guided_tune(kernels::Method method, const StencilCoeffs& coeffs,
                             const gpusim::DeviceSpec& device, const Extent3& extent,
                             double beta, const SearchSpace& space) {
  const int vec = default_vec(method, sizeof(T));
  std::vector<TuneEntry> entries;
  for (const kernels::LaunchConfig& cfg :
       space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec)) {
    TuneEntry entry;
    entry.config = cfg;
    entry.model_mpoints =
        model_predict<T>(method, coeffs.radius(), device, extent, cfg);
    entries.push_back(entry);
  }
  // Rank by predicted performance and execute the top beta% of the global
  // parameter space (section VI).
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    return a.model_mpoints > b.model_mpoints;
  });
  const auto n_select = static_cast<std::size_t>(
      std::ceil(beta * static_cast<double>(space.raw_size())));
  for (std::size_t i = 0; i < entries.size() && i < n_select; ++i) {
    const kernels::LaunchConfig cfg = entries[i].config;
    const double predicted = entries[i].model_mpoints;
    entries[i] = execute<T>(method, coeffs, device, extent, cfg);
    entries[i].model_mpoints = predicted;
  }
  return finalize(std::move(entries));
}

template TuneResult exhaustive_tune<float>(kernels::Method, const StencilCoeffs&,
                                           const gpusim::DeviceSpec&, const Extent3&,
                                           const SearchSpace&);
template TuneResult exhaustive_tune<double>(kernels::Method, const StencilCoeffs&,
                                            const gpusim::DeviceSpec&, const Extent3&,
                                            const SearchSpace&);
template TuneResult model_guided_tune<float>(kernels::Method, const StencilCoeffs&,
                                             const gpusim::DeviceSpec&, const Extent3&,
                                             double, const SearchSpace&);
template TuneResult model_guided_tune<double>(kernels::Method, const StencilCoeffs&,
                                              const gpusim::DeviceSpec&, const Extent3&,
                                              double, const SearchSpace&);

}  // namespace inplane::autotune
