#include "autotune/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "core/thread_pool.hpp"
#include "kernels/runner.hpp"
#include "perfmodel/model.hpp"

namespace inplane::autotune {

namespace {

/// Sorts executed entries first (by measured MPoint/s descending), then
/// un-executed ones (by model prediction descending).
void sort_entries(std::vector<TuneEntry>& entries) {
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    if (a.executed != b.executed) return a.executed;
    if (a.executed) return a.timing.mpoints_per_s > b.timing.mpoints_per_s;
    return a.model_mpoints > b.model_mpoints;
  });
}

template <typename T>
TuneEntry execute(kernels::Method method, const StencilCoeffs& coeffs,
                  const gpusim::DeviceSpec& device, const Extent3& extent,
                  const kernels::LaunchConfig& cfg) {
  TuneEntry entry;
  entry.config = cfg;
  const auto kernel = kernels::make_kernel<T>(method, coeffs, cfg);
  entry.timing = kernels::time_kernel(*kernel, device, extent);
  entry.executed = true;
  return entry;
}

template <typename T>
double model_predict(kernels::Method method, int radius,
                     const gpusim::DeviceSpec& device, const Extent3& extent,
                     const kernels::LaunchConfig& cfg) {
  perfmodel::ModelInput in;
  in.grid = extent;
  in.radius = radius;
  in.method = method;
  in.config = cfg;
  in.is_double = sizeof(T) == 8;
  const perfmodel::ModelResult r = perfmodel::evaluate(device, in);
  return r.valid ? r.mpoints_per_s : 0.0;
}

TuneResult finalize(std::vector<TuneEntry> entries) {
  TuneResult result;
  result.candidates = entries.size();
  sort_entries(entries);
  for (const TuneEntry& e : entries) {
    if (e.executed) result.executed += 1;
  }
  for (const TuneEntry& e : entries) {
    if (e.executed && e.timing.valid) {
      result.best = e;
      break;
    }
  }
  result.entries = std::move(entries);
  return result;
}

}  // namespace

template <typename T>
TuneResult exhaustive_tune(kernels::Method method, const StencilCoeffs& coeffs,
                           const gpusim::DeviceSpec& device, const Extent3& extent,
                           const SearchSpace& space, const ExecPolicy& policy) {
  const int vec = default_vec(method, sizeof(T));
  const std::vector<kernels::LaunchConfig> configs =
      space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec);
  // Candidates are independent (each builds its own kernel and traces its
  // own plane); evaluate them concurrently into index-addressed slots so
  // the resulting entry list — and therefore the sort, the best pick and
  // every statistic — is identical for every thread count.
  std::vector<TuneEntry> entries(configs.size());
  parallel_for(policy, configs.size(), [&](std::size_t i) {
    entries[i] = execute<T>(method, coeffs, device, extent, configs[i]);
    entries[i].model_mpoints =
        model_predict<T>(method, coeffs.radius(), device, extent, configs[i]);
  });
  return finalize(std::move(entries));
}

template <typename T>
TuneResult model_guided_tune(kernels::Method method, const StencilCoeffs& coeffs,
                             const gpusim::DeviceSpec& device, const Extent3& extent,
                             double beta, const SearchSpace& space,
                             const ExecPolicy& policy) {
  const int vec = default_vec(method, sizeof(T));
  const std::vector<kernels::LaunchConfig> configs =
      space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec);
  std::vector<TuneEntry> entries(configs.size());
  parallel_for(policy, configs.size(), [&](std::size_t i) {
    entries[i].config = configs[i];
    entries[i].model_mpoints =
        model_predict<T>(method, coeffs.radius(), device, extent, configs[i]);
  });
  // Rank by predicted performance and execute only the top beta fraction
  // of the *ranked* (constraint-satisfying) candidates — the section-VI
  // cutoff.  Basing the budget on the unfiltered space would let a small
  // beta cover every survivor of constraint pruning, turning the pruning
  // into a no-op.  beta is a fraction in [0, 1], clamped; at least one
  // candidate always runs so a best config exists.
  const double frac = std::clamp(beta, 0.0, 1.0);
  const std::size_t n_select = std::min(
      entries.size(),
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(frac * static_cast<double>(entries.size())))));
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    return a.model_mpoints > b.model_mpoints;
  });
  parallel_for(policy, n_select, [&](std::size_t i) {
    const kernels::LaunchConfig cfg = entries[i].config;
    const double predicted = entries[i].model_mpoints;
    entries[i] = execute<T>(method, coeffs, device, extent, cfg);
    entries[i].model_mpoints = predicted;
  });
  return finalize(std::move(entries));
}

template TuneResult exhaustive_tune<float>(kernels::Method, const StencilCoeffs&,
                                           const gpusim::DeviceSpec&, const Extent3&,
                                           const SearchSpace&, const ExecPolicy&);
template TuneResult exhaustive_tune<double>(kernels::Method, const StencilCoeffs&,
                                            const gpusim::DeviceSpec&, const Extent3&,
                                            const SearchSpace&, const ExecPolicy&);
template TuneResult model_guided_tune<float>(kernels::Method, const StencilCoeffs&,
                                             const gpusim::DeviceSpec&, const Extent3&,
                                             double, const SearchSpace&,
                                             const ExecPolicy&);
template TuneResult model_guided_tune<double>(kernels::Method, const StencilCoeffs&,
                                              const gpusim::DeviceSpec&, const Extent3&,
                                              double, const SearchSpace&,
                                              const ExecPolicy&);

}  // namespace inplane::autotune
