#include "autotune/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "autotune/checkpoint.hpp"
#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "kernels/runner.hpp"
#include "metrics/metrics.hpp"
#include "perfmodel/model.hpp"

namespace inplane::autotune {

namespace {

/// Tuner instruments (scope "autotune"), flushed from finalize() so one
/// sweep costs a fixed handful of relaxed adds regardless of candidate
/// count.  model_error records |predicted - measured| / measured per
/// executed candidate — the distribution behind the paper's model-guided
/// pruning argument.
struct TuneMetrics {
  metrics::Counter& enumerated;
  metrics::Counter& executed;
  metrics::Counter& pruned;
  metrics::Counter& quarantined;
  metrics::Counter& resumed;
  metrics::Counter& faulted;
  metrics::Counter& sdc_contained;
  metrics::Counter& sweeps;
  metrics::Histogram& model_error;
  metrics::Timer& sweep_timer;

  static TuneMetrics& get() {
    auto& reg = metrics::Registry::global();
    static TuneMetrics m{
        reg.counter("autotune.candidates_enumerated"),
        reg.counter("autotune.candidates_executed"),
        reg.counter("autotune.candidates_pruned"),
        reg.counter("autotune.candidates_quarantined"),
        reg.counter("autotune.candidates_resumed"),
        reg.counter("autotune.candidates_faulted"),
        reg.counter("autotune.sdc_contained"),
        reg.counter("autotune.sweeps"),
        reg.histogram("autotune.model_rel_error"),
        reg.timer("autotune.sweep"),
    };
    return m;
  }
};

/// Sorts executed entries first (by measured MPoint/s descending), then
/// un-executed ones (by model prediction descending).  Quarantined
/// candidates have executed == false, so they sink below every survivor.
void sort_entries(std::vector<TuneEntry>& entries) {
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    if (a.executed != b.executed) return a.executed;
    if (a.executed) return a.timing.mpoints_per_s > b.timing.mpoints_per_s;
    return a.model_mpoints > b.model_mpoints;
  });
}

template <typename T>
double model_predict(kernels::Method method, int radius,
                     const gpusim::DeviceSpec& device, const Extent3& extent,
                     const kernels::LaunchConfig& cfg) {
  perfmodel::ModelInput in;
  in.grid = extent;
  in.radius = radius;
  in.method = method;
  in.config = cfg;
  in.is_double = sizeof(T) == 8;
  const perfmodel::ModelResult r = perfmodel::evaluate(device, in);
  return r.valid ? r.mpoints_per_s : 0.0;
}

/// Raises the typed error matching a candidate-level injected fault.
[[noreturn]] void raise_candidate_fault(gpusim::FaultKind kind,
                                        const kernels::LaunchConfig& cfg) {
  const std::string who = "candidate " + cfg.to_string();
  switch (kind) {
    case gpusim::FaultKind::TransientFault:
      throw TransientFaultError(who + ": measurement faulted");
    case gpusim::FaultKind::Hang:
      throw TimeoutError(who + ": measurement hung (watchdog)");
    case gpusim::FaultKind::DeviceLoss:
      throw DeviceLostError(who + ": device lost during measurement");
    case gpusim::FaultKind::BitFlip:
    case gpusim::FaultKind::StuckLoad:
      throw DataCorruptionError(who + ": measurement corrupted");
  }
  throw InternalError(who + ": unknown injected fault");
}

/// Measures one candidate with retry-with-backoff.  A candidate that
/// exhausts its attempts (or hits a non-retryable fault) comes back with
/// .failed set and .failure explaining why — it is quarantined, never
/// fatal to the sweep.
template <typename T>
TuneEntry measure_candidate(kernels::Method method, const StencilCoeffs& coeffs,
                            const gpusim::DeviceSpec& device, const Extent3& extent,
                            const kernels::LaunchConfig& cfg, std::int64_t ordinal,
                            const TuneOptions& opts) {
  TuneEntry entry;
  entry.config = cfg;
  const int max_attempts = std::max(1, opts.max_attempts);
  double backoff_ms = opts.backoff_initial_ms;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    entry.attempts = attempt + 1;
    if (attempt > 0 && backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= opts.backoff_multiplier;
    }
    try {
      if (opts.faults != nullptr) {
        if (const auto kind = opts.faults->on_candidate(ordinal, attempt)) {
          gpusim::FaultEvent ev;
          ev.kind = *kind;
          ev.attempt = attempt;
          ev.candidate = ordinal;
          opts.faults->record(ev);
          if (opts.abft && (*kind == gpusim::FaultKind::BitFlip ||
                            *kind == gpusim::FaultKind::StuckLoad)) {
            // Corruption-class fault under ABFT: the online checksum layer
            // detects and surgically contains it inside the measurement, so
            // the attempt completes instead of burning a retry.
            entry.sdc_events += 1;
          } else {
            raise_candidate_fault(*kind, cfg);
          }
        }
      }
      const auto kernel = kernels::make_kernel<T>(method, coeffs, cfg);
      entry.timing = kernels::time_kernel(*kernel, device, extent);
      entry.executed = true;
      entry.failed = false;
      entry.failure = Status::okay();
      return entry;
    } catch (const std::exception& e) {
      entry.failure = status_of(e);
      entry.failed = true;
      entry.executed = false;
      entry.timing = gpusim::KernelTiming{};
      if (!entry.failure.retryable()) break;
    }
  }
  return entry;
}

/// @p pruned is how many enumerated candidates the caller skipped (the
/// model-guided cutoff); exhaustive sweeps pass 0.
TuneResult finalize(std::vector<TuneEntry> entries, std::size_t pruned) {
  TuneResult result;
  result.candidates = entries.size();
  // The failure roster keeps search (enumeration) order, independent of
  // the performance sort below.
  for (const TuneEntry& e : entries) {
    if (e.executed) result.executed += 1;
    if (e.resumed) result.resumed += 1;
    if (e.failed || e.attempts > 1 || e.sdc_events > 0) result.faulted += 1;
    result.sdc_events += static_cast<std::size_t>(e.sdc_events);
    if (e.failed) {
      result.quarantined += 1;
      result.quarantine.push_back(
          QuarantineRecord{e.config, e.failure, e.attempts, e.sdc_events});
    }
  }
  if (metrics::enabled()) {
    TuneMetrics& m = TuneMetrics::get();
    m.sweeps.add();
    m.enumerated.add(result.candidates);
    m.executed.add(result.executed);
    m.pruned.add(pruned);
    m.quarantined.add(result.quarantined);
    m.resumed.add(result.resumed);
    m.faulted.add(result.faulted);
    m.sdc_contained.add(result.sdc_events);
    for (const TuneEntry& e : entries) {
      if (e.executed && e.timing.valid && e.timing.mpoints_per_s > 0.0 &&
          e.model_mpoints > 0.0) {
        m.model_error.record(std::abs(e.model_mpoints - e.timing.mpoints_per_s) /
                             e.timing.mpoints_per_s);
      }
    }
  }
  sort_entries(entries);
  for (const TuneEntry& e : entries) {
    if (e.executed && e.timing.valid) {
      result.best = e;
      break;
    }
  }
  result.entries = std::move(entries);
  return result;
}

/// TuneOptions::trace_best: full-grid trace of the winning config,
/// attached to the result.  One Trace-mode launch of the whole grid —
/// the runner's block-class memoization makes this cost O(position
/// classes) block traces instead of O(all blocks), which is what makes
/// attaching real whole-grid counters to a sweep affordable.  A winner
/// that fails to rebuild (it already measured, so it should not) leaves
/// best_traced unset rather than failing the sweep.
template <typename T>
void trace_best_config(kernels::Method method, const StencilCoeffs& coeffs,
                       const gpusim::DeviceSpec& device, const Extent3& extent,
                       const TuneOptions& opts, TuneResult& result) {
  if (!opts.trace_best || !result.found()) return;
  try {
    const auto kernel = kernels::make_kernel<T>(method, coeffs, result.best.config);
    const Grid3<T> in = kernels::make_grid_for(*kernel, extent);
    Grid3<T> out = kernels::make_grid_for(*kernel, extent);
    result.best_trace = kernels::run_kernel(*kernel, in, out, device,
                                            gpusim::ExecMode::Trace, opts.policy);
    result.best_traced = true;
  } catch (const std::exception&) {
    result.best_traced = false;
  }
}

/// Journal state shared by one sweep: opened lazily when a checkpoint
/// path is configured, counts *new* (non-resumed) measurements for the
/// crash-simulation hook.
struct JournalCtx {
  CheckpointJournal journal;
  std::atomic<std::size_t> fresh{0};
  bool active = false;

  void open(const TuneOptions& opts, const char* kind, kernels::Method method,
            const gpusim::DeviceSpec& device, const Extent3& extent,
            std::size_t elem_size) {
    if (opts.checkpoint_path.empty()) return;
    journal.open(opts.checkpoint_path,
                 make_checkpoint_key(method, device, extent, elem_size, kind));
    active = true;
  }
};

/// Measures (or resumes) one candidate, journals fresh measurements and
/// fires the simulated crash once abort_after new records are on disk.
template <typename T>
TuneEntry measure_or_resume(JournalCtx& jc, kernels::Method method,
                            const StencilCoeffs& coeffs,
                            const gpusim::DeviceSpec& device, const Extent3& extent,
                            const kernels::LaunchConfig& cfg, std::int64_t ordinal,
                            const TuneOptions& opts) {
  if (jc.active && opts.resume) {
    if (auto hit = jc.journal.find(cfg)) {
      hit->resumed = true;
      return *hit;
    }
  }
  TuneEntry entry =
      measure_candidate<T>(method, coeffs, device, extent, cfg, ordinal, opts);
  if (jc.active) {
    jc.journal.append(entry);
    const std::size_t fresh = jc.fresh.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (opts.abort_after != 0 && fresh >= opts.abort_after) {
      throw InternalError("tuner: simulated crash after " + std::to_string(fresh) +
                          " new measurements");
    }
    if (opts.on_journal_append) opts.on_journal_append(fresh);
  }
  return entry;
}

/// Bytes one candidate measurement is budgeted at: the timing trace works
/// one padded xy-plane at a time, so a plane of the full grid (generous)
/// plus the entry bookkeeping bounds its working set.
std::size_t measure_cost_bytes(const Extent3& extent, int radius,
                               std::size_t elem_size) {
  const auto nx =
      static_cast<std::size_t>(extent.nx) + 2 * static_cast<std::size_t>(radius);
  const auto ny =
      static_cast<std::size_t>(extent.ny) + 2 * static_cast<std::size_t>(radius);
  return nx * ny * elem_size + sizeof(TuneEntry);
}

/// How many of @p n candidates the sweep's memory budget covers, holding
/// that many measurement workspaces in @p hold for the sweep's lifetime.
/// At least one candidate always runs — an over-committed budget degrades
/// the sweep, it never empties it.
std::size_t reserve_measure_slots(MemBudget* budget, std::size_t n,
                                  std::size_t cost,
                                  std::optional<MemReservation>& hold) {
  if (budget == nullptr || budget->limit_bytes() == 0 || n == 0) return n;
  const std::uint64_t limit = budget->limit_bytes();
  const std::uint64_t used = budget->used_bytes();
  const std::uint64_t free = limit > used ? limit - used : 0;
  auto slots = static_cast<std::size_t>(std::min<std::uint64_t>(
      n, std::max<std::uint64_t>(1, free / static_cast<std::uint64_t>(cost))));
  hold.emplace(budget, static_cast<std::uint64_t>(slots) * cost);
  while (!hold->ok() && slots > 1) {
    slots /= 2;
    hold.emplace(budget, static_cast<std::uint64_t>(slots) * cost);
  }
  return slots;
}

}  // namespace

template <typename T>
TuneEntry measure_single_candidate(kernels::Method method, const StencilCoeffs& coeffs,
                                   const gpusim::DeviceSpec& device,
                                   const Extent3& extent,
                                   const kernels::LaunchConfig& config,
                                   std::int64_t ordinal, const TuneOptions& options) {
  return measure_candidate<T>(method, coeffs, device, extent, config, ordinal,
                              options);
}

template <typename T>
double predict_candidate(kernels::Method method, int radius,
                         const gpusim::DeviceSpec& device, const Extent3& extent,
                         const kernels::LaunchConfig& config) {
  return model_predict<T>(method, radius, device, extent, config);
}

TuneResult assemble_result(std::vector<TuneEntry> entries, std::size_t pruned) {
  return finalize(std::move(entries), pruned);
}

template <typename T>
TuneResult exhaustive_tune(kernels::Method method, const StencilCoeffs& coeffs,
                           const gpusim::DeviceSpec& device, const Extent3& extent,
                           const SearchSpace& space, const TuneOptions& options) {
  const int vec = default_vec(method, sizeof(T));
  const std::vector<kernels::LaunchConfig> configs =
      space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec);
  JournalCtx jc;
  jc.open(options, "exhaustive", method, device, extent, sizeof(T));
  metrics::ScopedTimer sweep_timer(TuneMetrics::get().sweep_timer);
  // Candidates are independent (each builds its own kernel and traces its
  // own plane); evaluate them concurrently into index-addressed slots so
  // the resulting entry list — and therefore the sort, the best pick and
  // every statistic — is identical for every thread count.  Fault sites
  // are keyed by the candidate's ordinal, so injection is equally
  // schedule-independent.  A cancel token on options.policy is polled
  // once per candidate by parallel_for; a fired token raises
  // ResourceExhaustedError with every journaled measurement already
  // flushed, so the sweep is resumable.
  std::vector<TuneEntry> entries(configs.size());
  parallel_for(options.policy, configs.size(), [&](std::size_t i) {
    entries[i].config = configs[i];
    entries[i].model_mpoints =
        model_predict<T>(method, coeffs.radius(), device, extent, configs[i]);
  });
  std::optional<MemReservation> workspace;
  const std::size_t n_measure = reserve_measure_slots(
      options.mem_budget, entries.size(),
      measure_cost_bytes(extent, coeffs.radius(), sizeof(T)), workspace);
  if (n_measure < entries.size()) {
    // Budget-degraded sweep: measure only the best-predicted prefix (the
    // section-VI cutoff with the budget picking K), leaving the rest
    // un-executed with their predictions attached.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TuneEntry& a, const TuneEntry& b) {
                       return a.model_mpoints > b.model_mpoints;
                     });
  }
  parallel_for(options.policy, n_measure, [&](std::size_t i) {
    const kernels::LaunchConfig cfg = entries[i].config;
    const double predicted = entries[i].model_mpoints;
    entries[i] = measure_or_resume<T>(jc, method, coeffs, device, extent, cfg,
                                      static_cast<std::int64_t>(i), options);
    entries[i].model_mpoints = predicted;
  });
  const std::size_t pruned = entries.size() - n_measure;
  TuneResult result = finalize(std::move(entries), pruned);
  trace_best_config<T>(method, coeffs, device, extent, options, result);
  return result;
}

template <typename T>
TuneResult exhaustive_tune(kernels::Method method, const StencilCoeffs& coeffs,
                           const gpusim::DeviceSpec& device, const Extent3& extent,
                           const SearchSpace& space, const ExecPolicy& policy) {
  TuneOptions options;
  options.policy = policy;
  return exhaustive_tune<T>(method, coeffs, device, extent, space, options);
}

template <typename T>
TuneResult model_guided_tune(kernels::Method method, const StencilCoeffs& coeffs,
                             const gpusim::DeviceSpec& device, const Extent3& extent,
                             double beta, const SearchSpace& space,
                             const TuneOptions& options) {
  const int vec = default_vec(method, sizeof(T));
  const std::vector<kernels::LaunchConfig> configs =
      space.enumerate(device, extent, method, coeffs.radius(), sizeof(T), vec);
  JournalCtx jc;
  jc.open(options, "model", method, device, extent, sizeof(T));
  metrics::ScopedTimer sweep_timer(TuneMetrics::get().sweep_timer);
  std::vector<TuneEntry> entries(configs.size());
  parallel_for(options.policy, configs.size(), [&](std::size_t i) {
    entries[i].config = configs[i];
    entries[i].model_mpoints =
        model_predict<T>(method, coeffs.radius(), device, extent, configs[i]);
  });
  // Rank by predicted performance and execute only the top beta fraction
  // of the *ranked* (constraint-satisfying) candidates — the section-VI
  // cutoff.  Basing the budget on the unfiltered space would let a small
  // beta cover every survivor of constraint pruning, turning the pruning
  // into a no-op.  beta is a fraction in [0, 1], clamped; at least one
  // candidate always runs so a best config exists.
  const double frac = std::clamp(beta, 0.0, 1.0);
  const std::size_t n_select = std::min(
      entries.size(),
      std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(frac * static_cast<double>(entries.size())))));
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    return a.model_mpoints > b.model_mpoints;
  });
  // The sweep memory budget can tighten the beta cutoff further (never
  // widen it); at least one candidate always runs.
  std::optional<MemReservation> workspace;
  const std::size_t n_measure = reserve_measure_slots(
      options.mem_budget, n_select,
      measure_cost_bytes(extent, coeffs.radius(), sizeof(T)), workspace);
  parallel_for(options.policy, n_measure, [&](std::size_t i) {
    const kernels::LaunchConfig cfg = entries[i].config;
    const double predicted = entries[i].model_mpoints;
    entries[i] = measure_or_resume<T>(jc, method, coeffs, device, extent, cfg,
                                      static_cast<std::int64_t>(i), options);
    entries[i].model_mpoints = predicted;
  });
  const std::size_t pruned = entries.size() - n_measure;
  TuneResult result = finalize(std::move(entries), pruned);
  trace_best_config<T>(method, coeffs, device, extent, options, result);
  return result;
}

template <typename T>
TuneResult model_guided_tune(kernels::Method method, const StencilCoeffs& coeffs,
                             const gpusim::DeviceSpec& device, const Extent3& extent,
                             double beta, const SearchSpace& space,
                             const ExecPolicy& policy) {
  TuneOptions options;
  options.policy = policy;
  return model_guided_tune<T>(method, coeffs, device, extent, beta, space, options);
}

template TuneResult exhaustive_tune<float>(kernels::Method, const StencilCoeffs&,
                                           const gpusim::DeviceSpec&, const Extent3&,
                                           const SearchSpace&, const ExecPolicy&);
template TuneResult exhaustive_tune<double>(kernels::Method, const StencilCoeffs&,
                                            const gpusim::DeviceSpec&, const Extent3&,
                                            const SearchSpace&, const ExecPolicy&);
template TuneResult exhaustive_tune<float>(kernels::Method, const StencilCoeffs&,
                                           const gpusim::DeviceSpec&, const Extent3&,
                                           const SearchSpace&, const TuneOptions&);
template TuneResult exhaustive_tune<double>(kernels::Method, const StencilCoeffs&,
                                            const gpusim::DeviceSpec&, const Extent3&,
                                            const SearchSpace&, const TuneOptions&);
template TuneResult model_guided_tune<float>(kernels::Method, const StencilCoeffs&,
                                             const gpusim::DeviceSpec&, const Extent3&,
                                             double, const SearchSpace&,
                                             const ExecPolicy&);
template TuneResult model_guided_tune<double>(kernels::Method, const StencilCoeffs&,
                                              const gpusim::DeviceSpec&, const Extent3&,
                                              double, const SearchSpace&,
                                              const ExecPolicy&);
template TuneResult model_guided_tune<float>(kernels::Method, const StencilCoeffs&,
                                             const gpusim::DeviceSpec&, const Extent3&,
                                             double, const SearchSpace&,
                                             const TuneOptions&);
template TuneResult model_guided_tune<double>(kernels::Method, const StencilCoeffs&,
                                              const gpusim::DeviceSpec&, const Extent3&,
                                              double, const SearchSpace&,
                                              const TuneOptions&);
template TuneEntry measure_single_candidate<float>(
    kernels::Method, const StencilCoeffs&, const gpusim::DeviceSpec&, const Extent3&,
    const kernels::LaunchConfig&, std::int64_t, const TuneOptions&);
template TuneEntry measure_single_candidate<double>(
    kernels::Method, const StencilCoeffs&, const gpusim::DeviceSpec&, const Extent3&,
    const kernels::LaunchConfig&, std::int64_t, const TuneOptions&);
template double predict_candidate<float>(kernels::Method, int,
                                         const gpusim::DeviceSpec&, const Extent3&,
                                         const kernels::LaunchConfig&);
template double predict_candidate<double>(kernels::Method, int,
                                          const gpusim::DeviceSpec&, const Extent3&,
                                          const kernels::LaunchConfig&);

}  // namespace inplane::autotune
