#pragma once

#include <cstdint>

#include "autotune/tuner.hpp"

namespace inplane::autotune {

/// Options for the stochastic tuner.
struct StochasticOptions {
  int max_evaluations = 24;    ///< execution budget (compare: beta * M)
  int restarts = 3;            ///< independent hill-climbing starts
  std::uint64_t seed = 1;      ///< deterministic PRNG seed
};

/// Stochastic (random-restart hill-climbing) auto-tuner — the alternative
/// the paper's related work mentions for search spaces too large to
/// exhaust ("methods like dynamic programming or stochastic search can be
/// used [17]", section II).
///
/// Each restart draws a random constraint-satisfying configuration, then
/// repeatedly evaluates all single-step neighbours (one blocking factor
/// moved one notch up or down in the value lists) and moves to the best
/// improving one until a local optimum or the evaluation budget is hit.
/// Because the space is small and well-behaved (performance is mostly
/// monotone until a resource cliff), a handful of restarts typically finds
/// the global optimum with far fewer executions than the exhaustive
/// search, without needing the section-VI model at all.
template <typename T>
[[nodiscard]] TuneResult stochastic_tune(kernels::Method method,
                                         const StencilCoeffs& coeffs,
                                         const gpusim::DeviceSpec& device,
                                         const Extent3& extent,
                                         const StochasticOptions& options = {},
                                         const SearchSpace& space = {});

extern template TuneResult stochastic_tune<float>(kernels::Method,
                                                  const StencilCoeffs&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&,
                                                  const StochasticOptions&,
                                                  const SearchSpace&);
extern template TuneResult stochastic_tune<double>(kernels::Method,
                                                   const StencilCoeffs&,
                                                   const gpusim::DeviceSpec&,
                                                   const Extent3&,
                                                   const StochasticOptions&,
                                                   const SearchSpace&);

}  // namespace inplane::autotune
