#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "autotune/search_space.hpp"
#include "core/coefficients.hpp"
#include "core/mem_budget.hpp"
#include "core/status.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/timing.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::autotune {

/// One evaluated point of the search space.
struct TuneEntry {
  kernels::LaunchConfig config;
  gpusim::KernelTiming timing;        ///< "measured" (simulator) result
  double model_mpoints = 0.0;         ///< section-VI model prediction
  bool executed = false;              ///< false => pruned before execution
  bool failed = false;                ///< true => quarantined after faults
  Status failure;                     ///< why the candidate was quarantined
  int attempts = 0;                   ///< measurement attempts consumed
  bool resumed = false;               ///< recovered from a checkpoint journal
  int sdc_events = 0;                 ///< corruptions contained online (ABFT)
};

/// One quarantined candidate of the failure roster.
struct QuarantineRecord {
  kernels::LaunchConfig config;
  Status reason;
  int attempts = 0;
  int sdc_events = 0;  ///< corruptions contained before quarantine
};

/// Outcome of a tuning run.
struct TuneResult {
  TuneEntry best;                     ///< highest measured MPoint/s
  std::vector<TuneEntry> entries;     ///< all constraint-satisfying configs,
                                      ///< sorted by measured MPoint/s desc
                                      ///< (un-executed entries at the end)
  std::size_t candidates = 0;         ///< configs satisfying constraints
  std::size_t executed = 0;           ///< configs actually run
  std::size_t faulted = 0;            ///< configs that faulted at least once
  std::size_t quarantined = 0;        ///< configs that exhausted their retries
  std::size_t resumed = 0;            ///< configs recovered from a checkpoint
  std::size_t sdc_events = 0;         ///< total corruptions contained online
  std::vector<QuarantineRecord> quarantine;  ///< failure roster, search order
  /// Aggregate full-grid trace of the winning config (TuneOptions::
  /// trace_best); meaningful only when best_traced is set.
  gpusim::TraceStats best_trace;
  bool best_traced = false;

  [[nodiscard]] bool found() const { return best.timing.valid; }
};

/// Robustness knobs shared by both tuners.  The defaults reproduce the
/// historical behaviour exactly: no fault injection, no journal, each
/// candidate measured once.
struct TuneOptions {
  ExecPolicy policy = {};
  /// Fault injector consulted per (candidate, attempt); nullptr = clean.
  const gpusim::FaultInjector* faults = nullptr;
  /// Measurement attempts per candidate before it is quarantined.
  int max_attempts = 3;
  double backoff_initial_ms = 0.0;  ///< sleep before the first retry
  double backoff_multiplier = 2.0;  ///< exponential growth per retry
  /// Path of the crash-safe measurement journal; empty disables it.
  std::string checkpoint_path;
  /// Skip candidates already present in the journal (their stored
  /// measurements are used verbatim and marked .resumed).
  bool resume = false;
  /// Crash simulation for tests: abort the sweep (by throwing) once this
  /// many *new* measurements have been journaled.  0 = never.
  std::size_t abort_after = 0;
  /// Called after each *fresh* (non-resumed) measurement is journaled,
  /// with the running count of fresh records.  Used by the distributed
  /// workers for heartbeats/fault plans and by the CLI's signal-handling
  /// self-test; ignored when no checkpoint journal is configured.  Must
  /// be thread-safe — candidates are measured concurrently.
  std::function<void(std::size_t)> on_journal_append;
  /// Online ABFT containment: an injected BitFlip/StuckLoad during a
  /// measurement is detected by the checksum layer and contained — the
  /// attempt completes, the event is counted on the entry's .sdc_events —
  /// instead of failing the attempt and burning a retry.
  bool abft = false;
  /// Sweep memory budget; when set, the measured candidate set is capped
  /// to what the budget covers (model-ranked, best predictions first) and
  /// the remainder is left un-executed with predictions attached.
  /// nullptr = unlimited.  Cancellation rides on policy.cancel.
  MemBudget* mem_budget = nullptr;
  /// After the sweep, trace the winning config over the *full* grid (not
  /// just the single steady-state plane the per-candidate measurement
  /// uses) and attach the aggregate TraceStats to TuneResult::best_trace.
  /// Affordable because the runner memoizes block traces by position
  /// class (see kernels/runner.hpp: trace_memo_enabled).
  bool trace_best = false;
};

/// Measures one candidate exactly as the hardened sweeps do — same
/// retry-with-backoff, fault-injection keying (by @p ordinal) and ABFT
/// containment — without opening a journal.  This is the unit of work
/// the distributed sweep engine ships to worker processes: a worker
/// measuring ordinal k produces the bit-identical TuneEntry the
/// single-process sweep would have produced for it.
template <typename T>
[[nodiscard]] TuneEntry measure_single_candidate(kernels::Method method,
                                                 const StencilCoeffs& coeffs,
                                                 const gpusim::DeviceSpec& device,
                                                 const Extent3& extent,
                                                 const kernels::LaunchConfig& config,
                                                 std::int64_t ordinal,
                                                 const TuneOptions& options);

/// The section-VI model prediction both tuners rank candidates by,
/// public so the distributed supervisor reproduces the exact ranking.
/// Returns 0 for configurations the model rejects.
template <typename T>
[[nodiscard]] double predict_candidate(kernels::Method method, int radius,
                                       const gpusim::DeviceSpec& device,
                                       const Extent3& extent,
                                       const kernels::LaunchConfig& config);

/// Assembles a TuneResult from per-candidate entries with the exact
/// sort / best-pick / statistics logic of the in-process sweeps.
/// @p pruned is how many enumerated candidates were never measured by
/// design (the model-guided cutoff); it only feeds metrics.  Passing
/// the entries a distributed sweep merged from its worker journals
/// yields the same best config, bit for bit, as the single-process
/// sweep over the same candidates.
[[nodiscard]] TuneResult assemble_result(std::vector<TuneEntry> entries,
                                         std::size_t pruned = 0);

/// Exhaustively executes every constraint-satisfying configuration on the
/// simulated device and returns the best (section IV-C).
///
/// Candidates are evaluated concurrently on the shared host thread pool
/// under @p policy (default: all hardware threads; ExecPolicy{1} restores
/// the serial sweep).  Results are deterministic: the entry list, the
/// selected best config and all statistics are identical for every thread
/// count.
template <typename T>
[[nodiscard]] TuneResult exhaustive_tune(kernels::Method method,
                                         const StencilCoeffs& coeffs,
                                         const gpusim::DeviceSpec& device,
                                         const Extent3& extent,
                                         const SearchSpace& space = {},
                                         const ExecPolicy& policy = {});

/// Hardened overload: retries faulted measurements with exponential
/// backoff, quarantines candidates that exhaust their attempts (the sweep
/// degrades to best-of-survivors and reports the failure roster), and —
/// when TuneOptions::checkpoint_path is set — journals every measurement
/// so a killed sweep resumes without re-measuring.
template <typename T>
[[nodiscard]] TuneResult exhaustive_tune(kernels::Method method,
                                         const StencilCoeffs& coeffs,
                                         const gpusim::DeviceSpec& device,
                                         const Extent3& extent,
                                         const SearchSpace& space,
                                         const TuneOptions& options);

/// The model-based tuning procedure of section VI: ranks every
/// constraint-satisfying candidate by the Eqns. (6)-(14) prediction,
/// executes only the top ceil(beta * N) of that ranking (N = number of
/// ranked candidates; @p beta is a *fraction* in [0, 1], clamped, and at
/// least one candidate always runs), and returns the best of those by
/// measured performance.  Same concurrency and determinism contract as
/// exhaustive_tune().
template <typename T>
[[nodiscard]] TuneResult model_guided_tune(kernels::Method method,
                                           const StencilCoeffs& coeffs,
                                           const gpusim::DeviceSpec& device,
                                           const Extent3& extent, double beta = 0.05,
                                           const SearchSpace& space = {},
                                           const ExecPolicy& policy = {});

/// Hardened overload of model_guided_tune — same semantics as the
/// hardened exhaustive_tune, applied to the top-beta measured set.
template <typename T>
[[nodiscard]] TuneResult model_guided_tune(kernels::Method method,
                                           const StencilCoeffs& coeffs,
                                           const gpusim::DeviceSpec& device,
                                           const Extent3& extent, double beta,
                                           const SearchSpace& space,
                                           const TuneOptions& options);

extern template TuneResult exhaustive_tune<float>(kernels::Method,
                                                  const StencilCoeffs&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&, const SearchSpace&,
                                                  const ExecPolicy&);
extern template TuneResult exhaustive_tune<double>(kernels::Method,
                                                   const StencilCoeffs&,
                                                   const gpusim::DeviceSpec&,
                                                   const Extent3&, const SearchSpace&,
                                                   const ExecPolicy&);
extern template TuneResult exhaustive_tune<float>(kernels::Method,
                                                  const StencilCoeffs&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&, const SearchSpace&,
                                                  const TuneOptions&);
extern template TuneResult exhaustive_tune<double>(kernels::Method,
                                                   const StencilCoeffs&,
                                                   const gpusim::DeviceSpec&,
                                                   const Extent3&, const SearchSpace&,
                                                   const TuneOptions&);
extern template TuneResult model_guided_tune<float>(kernels::Method,
                                                    const StencilCoeffs&,
                                                    const gpusim::DeviceSpec&,
                                                    const Extent3&, double,
                                                    const SearchSpace&,
                                                    const ExecPolicy&);
extern template TuneResult model_guided_tune<double>(kernels::Method,
                                                     const StencilCoeffs&,
                                                     const gpusim::DeviceSpec&,
                                                     const Extent3&, double,
                                                     const SearchSpace&,
                                                     const ExecPolicy&);
extern template TuneResult model_guided_tune<float>(kernels::Method,
                                                    const StencilCoeffs&,
                                                    const gpusim::DeviceSpec&,
                                                    const Extent3&, double,
                                                    const SearchSpace&,
                                                    const TuneOptions&);
extern template TuneResult model_guided_tune<double>(kernels::Method,
                                                     const StencilCoeffs&,
                                                     const gpusim::DeviceSpec&,
                                                     const Extent3&, double,
                                                     const SearchSpace&,
                                                     const TuneOptions&);
extern template TuneEntry measure_single_candidate<float>(
    kernels::Method, const StencilCoeffs&, const gpusim::DeviceSpec&, const Extent3&,
    const kernels::LaunchConfig&, std::int64_t, const TuneOptions&);
extern template TuneEntry measure_single_candidate<double>(
    kernels::Method, const StencilCoeffs&, const gpusim::DeviceSpec&, const Extent3&,
    const kernels::LaunchConfig&, std::int64_t, const TuneOptions&);
extern template double predict_candidate<float>(kernels::Method, int,
                                                const gpusim::DeviceSpec&,
                                                const Extent3&,
                                                const kernels::LaunchConfig&);
extern template double predict_candidate<double>(kernels::Method, int,
                                                 const gpusim::DeviceSpec&,
                                                 const Extent3&,
                                                 const kernels::LaunchConfig&);

}  // namespace inplane::autotune
