#pragma once

#include <vector>

#include "autotune/search_space.hpp"
#include "core/coefficients.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/timing.hpp"
#include "kernels/stencil_kernel.hpp"

namespace inplane::autotune {

/// One evaluated point of the search space.
struct TuneEntry {
  kernels::LaunchConfig config;
  gpusim::KernelTiming timing;        ///< "measured" (simulator) result
  double model_mpoints = 0.0;         ///< section-VI model prediction
  bool executed = false;              ///< false => pruned before execution
};

/// Outcome of a tuning run.
struct TuneResult {
  TuneEntry best;                     ///< highest measured MPoint/s
  std::vector<TuneEntry> entries;     ///< all constraint-satisfying configs,
                                      ///< sorted by measured MPoint/s desc
                                      ///< (un-executed entries at the end)
  std::size_t candidates = 0;         ///< configs satisfying constraints
  std::size_t executed = 0;           ///< configs actually run

  [[nodiscard]] bool found() const { return best.timing.valid; }
};

/// Exhaustively executes every constraint-satisfying configuration on the
/// simulated device and returns the best (section IV-C).
///
/// Candidates are evaluated concurrently on the shared host thread pool
/// under @p policy (default: all hardware threads; ExecPolicy{1} restores
/// the serial sweep).  Results are deterministic: the entry list, the
/// selected best config and all statistics are identical for every thread
/// count.
template <typename T>
[[nodiscard]] TuneResult exhaustive_tune(kernels::Method method,
                                         const StencilCoeffs& coeffs,
                                         const gpusim::DeviceSpec& device,
                                         const Extent3& extent,
                                         const SearchSpace& space = {},
                                         const ExecPolicy& policy = {});

/// The model-based tuning procedure of section VI: ranks every
/// constraint-satisfying candidate by the Eqns. (6)-(14) prediction,
/// executes only the top ceil(beta * N) of that ranking (N = number of
/// ranked candidates; @p beta is a *fraction* in [0, 1], clamped, and at
/// least one candidate always runs), and returns the best of those by
/// measured performance.  Same concurrency and determinism contract as
/// exhaustive_tune().
template <typename T>
[[nodiscard]] TuneResult model_guided_tune(kernels::Method method,
                                           const StencilCoeffs& coeffs,
                                           const gpusim::DeviceSpec& device,
                                           const Extent3& extent, double beta = 0.05,
                                           const SearchSpace& space = {},
                                           const ExecPolicy& policy = {});

extern template TuneResult exhaustive_tune<float>(kernels::Method,
                                                  const StencilCoeffs&,
                                                  const gpusim::DeviceSpec&,
                                                  const Extent3&, const SearchSpace&,
                                                  const ExecPolicy&);
extern template TuneResult exhaustive_tune<double>(kernels::Method,
                                                   const StencilCoeffs&,
                                                   const gpusim::DeviceSpec&,
                                                   const Extent3&, const SearchSpace&,
                                                   const ExecPolicy&);
extern template TuneResult model_guided_tune<float>(kernels::Method,
                                                    const StencilCoeffs&,
                                                    const gpusim::DeviceSpec&,
                                                    const Extent3&, double,
                                                    const SearchSpace&,
                                                    const ExecPolicy&);
extern template TuneResult model_guided_tune<double>(kernels::Method,
                                                     const StencilCoeffs&,
                                                     const gpusim::DeviceSpec&,
                                                     const Extent3&, double,
                                                     const SearchSpace&,
                                                     const ExecPolicy&);

}  // namespace inplane::autotune
