#include "autotune/stochastic.hpp"

#include <algorithm>
#include <map>
#include <random>

#include "kernels/runner.hpp"

namespace inplane::autotune {

namespace {

/// A configuration as indices into the search-space value lists, so
/// "neighbour" means one index moved by one.
struct Point {
  std::size_t tx = 0, ty = 0, rx = 0, ry = 0;
  [[nodiscard]] bool operator<(const Point& o) const {
    return std::tie(tx, ty, rx, ry) < std::tie(o.tx, o.ty, o.rx, o.ry);
  }
};

struct Space {
  const SearchSpace& lists;
  kernels::Method method;
  int radius;
  std::size_t elem_size;
  int vec;
  const gpusim::DeviceSpec& device;
  const Extent3& extent;

  [[nodiscard]] kernels::LaunchConfig config(const Point& p) const {
    return kernels::LaunchConfig{lists.tx_values[p.tx], lists.ty_values[p.ty],
                                 lists.rx_values[p.rx], lists.ry_values[p.ry], vec};
  }

  /// The same feasibility rules as SearchSpace::enumerate.
  [[nodiscard]] bool feasible(const Point& p) const {
    const kernels::LaunchConfig cfg = config(p);
    if (cfg.tx % 16 != 0) return false;
    if (method == kernels::Method::ForwardPlane && (cfg.tx != 32 || cfg.rx != 1)) {
      return false;
    }
    if (cfg.threads() > device.max_threads_per_block) return false;
    if (extent.nx % cfg.tile_w() != 0 || extent.ny % cfg.tile_h() != 0) return false;
    const auto res = kernels::estimate_resources(method, cfg, radius, elem_size);
    return res.smem_bytes <= static_cast<std::size_t>(device.smem_per_sm);
  }

  [[nodiscard]] std::vector<Point> neighbours(const Point& p) const {
    std::vector<Point> out;
    auto push = [&](Point q) {
      if (feasible(q)) out.push_back(q);
    };
    if (p.tx > 0) push({p.tx - 1, p.ty, p.rx, p.ry});
    if (p.tx + 1 < lists.tx_values.size()) push({p.tx + 1, p.ty, p.rx, p.ry});
    if (p.ty > 0) push({p.tx, p.ty - 1, p.rx, p.ry});
    if (p.ty + 1 < lists.ty_values.size()) push({p.tx, p.ty + 1, p.rx, p.ry});
    if (p.rx > 0) push({p.tx, p.ty, p.rx - 1, p.ry});
    if (p.rx + 1 < lists.rx_values.size()) push({p.tx, p.ty, p.rx + 1, p.ry});
    if (p.ry > 0) push({p.tx, p.ty, p.rx, p.ry - 1});
    if (p.ry + 1 < lists.ry_values.size()) push({p.tx, p.ty, p.rx, p.ry + 1});
    return out;
  }
};

}  // namespace

template <typename T>
TuneResult stochastic_tune(kernels::Method method, const StencilCoeffs& coeffs,
                           const gpusim::DeviceSpec& device, const Extent3& extent,
                           const StochasticOptions& options, const SearchSpace& lists) {
  const Space space{lists, method, coeffs.radius(), sizeof(T),
                    default_vec(method, sizeof(T)), device, extent};
  std::mt19937_64 rng(options.seed);

  // Memoised evaluation: each distinct configuration is executed once and
  // counts once against the budget.
  std::map<Point, double> cache;
  std::vector<TuneEntry> entries;
  int evaluations = 0;
  auto evaluate = [&](const Point& p) -> double {
    if (const auto it = cache.find(p); it != cache.end()) return it->second;
    if (evaluations >= options.max_evaluations) return -1.0;
    ++evaluations;
    TuneEntry entry;
    entry.config = space.config(p);
    const auto kernel = kernels::make_kernel<T>(method, coeffs, entry.config);
    entry.timing = kernels::time_kernel(*kernel, device, extent);
    entry.executed = true;
    const double score = entry.timing.valid ? entry.timing.mpoints_per_s : 0.0;
    entries.push_back(std::move(entry));
    cache[p] = score;
    return score;
  };

  // Collect the feasible points once so restarts can sample uniformly.
  std::vector<Point> feasible;
  for (std::size_t a = 0; a < lists.tx_values.size(); ++a) {
    for (std::size_t b = 0; b < lists.ty_values.size(); ++b) {
      for (std::size_t c = 0; c < lists.rx_values.size(); ++c) {
        for (std::size_t d = 0; d < lists.ry_values.size(); ++d) {
          const Point p{a, b, c, d};
          if (space.feasible(p)) feasible.push_back(p);
        }
      }
    }
  }

  TuneResult result;
  result.candidates = feasible.size();
  if (feasible.empty()) return result;

  for (int restart = 0; restart < options.restarts; ++restart) {
    if (evaluations >= options.max_evaluations) break;
    std::uniform_int_distribution<std::size_t> pick(0, feasible.size() - 1);
    Point current = feasible[pick(rng)];
    double current_score = evaluate(current);
    bool improved = true;
    while (improved && evaluations < options.max_evaluations) {
      improved = false;
      Point best_neighbour = current;
      double best_score = current_score;
      for (const Point& n : space.neighbours(current)) {
        const double s = evaluate(n);
        if (s > best_score) {
          best_score = s;
          best_neighbour = n;
        }
      }
      if (best_score > current_score) {
        current = best_neighbour;
        current_score = best_score;
        improved = true;
      }
    }
  }

  result.executed = entries.size();
  std::sort(entries.begin(), entries.end(), [](const TuneEntry& a, const TuneEntry& b) {
    return a.timing.mpoints_per_s > b.timing.mpoints_per_s;
  });
  if (!entries.empty() && entries.front().timing.valid) result.best = entries.front();
  result.entries = std::move(entries);
  return result;
}

template TuneResult stochastic_tune<float>(kernels::Method, const StencilCoeffs&,
                                           const gpusim::DeviceSpec&, const Extent3&,
                                           const StochasticOptions&, const SearchSpace&);
template TuneResult stochastic_tune<double>(kernels::Method, const StencilCoeffs&,
                                            const gpusim::DeviceSpec&, const Extent3&,
                                            const StochasticOptions&,
                                            const SearchSpace&);

}  // namespace inplane::autotune
