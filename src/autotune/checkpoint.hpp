#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "core/extent.hpp"

namespace inplane::autotune {

/// Serializes one TuneEntry into the little-endian IPTJ3 record payload
/// (the bytes a journal CRC-frames).  Public because payload equality is
/// the repo's definition of "bit-identical results": the wisdom cache
/// stores these payloads verbatim and the service tests compare them.
[[nodiscard]] std::string encode_tune_entry(const TuneEntry& entry);

/// Inverse of encode_tune_entry().  Returns false (leaving @p entry in an
/// unspecified state) when the payload is short, long or malformed.
[[nodiscard]] bool decode_tune_entry(const std::string& payload, TuneEntry& entry);

/// Decodes the pre-degree entry layout (the IPTJ2-era payload, which had
/// no temporal-blocking field after the vector width).  The decoded
/// config gets tb = 1; a caller that knows what degree the record was
/// measured at overrides it — the wisdom cache's legacy reload stamps 2,
/// the degree the temporal kernel was hard-wired to before tb became a
/// tuner dimension.
[[nodiscard]] bool decode_tune_entry_pre_degree(const std::string& payload,
                                                TuneEntry& entry);

/// Identity of one tuning problem.  Journals are keyed by a fingerprint
/// of these fields so a checkpoint written for one (method, device,
/// extent, element size, tuner kind) can never poison the resumption of
/// a different sweep.
struct CheckpointKey {
  std::string method;
  std::string device;
  Extent3 extent;
  std::size_t elem_size = 4;
  std::string kind;  ///< "exhaustive" | "model"

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// The one CheckpointKey construction rule (method -> CLI name, device ->
/// spec name) shared by the in-process tuners, the distributed sweep spec
/// and the service.  Hand-rolled copies of this mapping used to live in
/// tuner.cpp and sweep_spec.cpp; a drift between them would quietly stop
/// journals from being adopted across layers.
[[nodiscard]] CheckpointKey make_checkpoint_key(kernels::Method method,
                                                const gpusim::DeviceSpec& device,
                                                const Extent3& extent,
                                                std::size_t elem_size,
                                                const std::string& kind);

/// Everything one journal file yields to a read-only scan: the valid
/// record prefix (file order, no dedup), plus what the scan had to
/// tolerate.  Never modifies the file — safe to run on journals another
/// process is still appending to (the torn tail is simply whatever that
/// process has not finished flushing yet).
struct JournalContents {
  bool header_ok = false;          ///< magic + fingerprint were readable
  bool fingerprint_match = false;  ///< header fingerprint == key fingerprint
  std::uint64_t fingerprint = 0;   ///< header fingerprint when header_ok
  std::vector<TuneEntry> entries;  ///< valid records, in append order
  std::size_t torn_bytes = 0;      ///< bytes discarded after the valid prefix
};

/// Read-only scan of the journal at @p path against @p key.  A missing
/// file yields an empty JournalContents (header_ok == false).
[[nodiscard]] JournalContents read_journal(const std::string& path,
                                           const CheckpointKey& key);

/// What merge_journals() observed across one set of shard journals.
struct MergeStats {
  std::size_t files = 0;             ///< journals that existed and matched
  std::size_t records = 0;           ///< valid records across matching files
  std::size_t duplicates = 0;        ///< records dropped as re-measurements
  std::size_t torn_tails = 0;        ///< files with a discarded torn tail
  std::size_t mismatched_files = 0;  ///< files skipped (wrong fingerprint)
  std::size_t missing_files = 0;     ///< paths with no journal at all
};

/// Merges the per-worker shard journals of one distributed sweep into a
/// single deduplicated entry list.  Paths are scanned in sorted order and
/// within each file in append order; the *first* record seen for a
/// config wins, so the result is deterministic regardless of which
/// worker re-measured a candidate during failover.  Measurements are
/// deterministic on the simulated device, so dropped duplicates are
/// bit-identical to the kept record — dedup only prevents double
/// counting.  Files whose fingerprint does not match @p key are skipped
/// (counted in stats), never trusted.
[[nodiscard]] std::vector<TuneEntry> merge_journals(std::vector<std::string> paths,
                                                    const CheckpointKey& key,
                                                    MergeStats* stats = nullptr);

/// Crash-safe, append-only journal of measured tuning candidates.
///
/// Layout: a fixed header (magic "IPTJ3\n" + the key fingerprint), then a
/// sequence of records, each `u32 payload_len | u32 crc32 | payload`.
/// Records are appended and flushed one measurement at a time, so a
/// process killed mid-sweep loses at most the record being written.  On
/// open, the loader verifies every record's CRC and truncates the file at
/// the first bad/torn one — the journal is always left in a state that
/// appends cleanly.  The header is created via write-to-temp + atomic
/// rename so a crash during creation never leaves a half-written header.
///
/// Thread safety: append() serialises on an internal mutex; loading
/// happens in open() before any appends.
class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Opens (creating if absent) the journal at @p path for @p key.  An
  /// existing journal with a different fingerprint describes a different
  /// sweep: it is preserved as `<path>.orphan` (with a loud stderr
  /// warning and a bump of the `autotune.checkpoint.fingerprint_discards`
  /// counter) and a fresh journal is initialised in its place.  The
  /// fresh header is written to a temp file, fsync'd, atomically renamed
  /// into place, and the parent directory is fsync'd — a crash at any
  /// point leaves either the old state or the complete new header, never
  /// a torn one.  Throws IoError if the path cannot be created or opened.
  void open(const std::string& path, const CheckpointKey& key);

  [[nodiscard]] bool is_open() const { return !path_.empty(); }

  /// Entries recovered from disk (last record wins per launch config).
  [[nodiscard]] const std::vector<TuneEntry>& loaded() const { return loaded_; }

  /// Looks up a recovered measurement for @p config.
  [[nodiscard]] std::optional<TuneEntry> find(const kernels::LaunchConfig& config) const;

  /// Appends one measured entry and flushes it to disk.
  void append(const TuneEntry& entry);

 private:
  std::string path_;
  std::vector<TuneEntry> loaded_;
  std::mutex mutex_;
  void* file_ = nullptr;  ///< FILE*, opened in append mode
};

}  // namespace inplane::autotune
