#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "autotune/tuner.hpp"
#include "core/extent.hpp"

namespace inplane::autotune {

/// Identity of one tuning problem.  Journals are keyed by a fingerprint
/// of these fields so a checkpoint written for one (method, device,
/// extent, element size, tuner kind) can never poison the resumption of
/// a different sweep.
struct CheckpointKey {
  std::string method;
  std::string device;
  Extent3 extent;
  std::size_t elem_size = 4;
  std::string kind;  ///< "exhaustive" | "model"

  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Crash-safe, append-only journal of measured tuning candidates.
///
/// Layout: a fixed header (magic "IPTJ2\n" + the key fingerprint), then a
/// sequence of records, each `u32 payload_len | u32 crc32 | payload`.
/// Records are appended and flushed one measurement at a time, so a
/// process killed mid-sweep loses at most the record being written.  On
/// open, the loader verifies every record's CRC and truncates the file at
/// the first bad/torn one — the journal is always left in a state that
/// appends cleanly.  The header is created via write-to-temp + atomic
/// rename so a crash during creation never leaves a half-written header.
///
/// Thread safety: append() serialises on an internal mutex; loading
/// happens in open() before any appends.
class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  ~CheckpointJournal();
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Opens (creating if absent) the journal at @p path for @p key.  An
  /// existing journal with a different fingerprint is discarded and
  /// re-initialised — it describes a different sweep.  Throws IoError if
  /// the path cannot be created or opened.
  void open(const std::string& path, const CheckpointKey& key);

  [[nodiscard]] bool is_open() const { return !path_.empty(); }

  /// Entries recovered from disk (last record wins per launch config).
  [[nodiscard]] const std::vector<TuneEntry>& loaded() const { return loaded_; }

  /// Looks up a recovered measurement for @p config.
  [[nodiscard]] std::optional<TuneEntry> find(const kernels::LaunchConfig& config) const;

  /// Appends one measured entry and flushes it to disk.
  void append(const TuneEntry& entry);

 private:
  std::string path_;
  std::vector<TuneEntry> loaded_;
  std::mutex mutex_;
  void* file_ = nullptr;  ///< FILE*, opened in append mode
};

}  // namespace inplane::autotune
