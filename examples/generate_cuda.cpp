// Generates ready-to-compile CUDA sources for the paper's kernels: tunes
// the in-plane full-slice method for each requested order on a simulated
// device, then emits a .cu file per tuned configuration (plus the
// nvstencil baseline) under cuda_out/.  On a machine with a real GPU:
//
//   $ ./generate_cuda 2 8
//   $ nvcc -O3 cuda_out/inplane_fullslice_r1_*.cu -o fullslice && ./fullslice

#include <cstdio>
#include <cstdlib>

#include "autotune/tuner.hpp"
#include "codegen/cuda_codegen.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;

  std::vector<int> orders;
  for (int i = 1; i < argc; ++i) orders.push_back(std::atoi(argv[i]));
  if (orders.empty()) orders = {2, 8};

  const Extent3 grid{512, 512, 256};
  const auto device = gpusim::DeviceSpec::geforce_gtx580();

  for (int order : orders) {
    if (order < 2 || order % 2 != 0) {
      std::fprintf(stderr, "skipping invalid order %d\n", order);
      continue;
    }
    const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
    const autotune::TuneResult tuned = autotune::exhaustive_tune<float>(
        Method::InPlaneFullSlice, cs, device, grid);
    if (!tuned.found()) {
      std::fprintf(stderr, "no valid configuration for order %d\n", order);
      continue;
    }

    codegen::CudaKernelSpec inplane_spec;
    inplane_spec.method = Method::InPlaneFullSlice;
    inplane_spec.radius = order / 2;
    inplane_spec.config = tuned.best.config;

    codegen::CudaKernelSpec nv_spec;
    nv_spec.method = Method::ForwardPlane;
    nv_spec.radius = order / 2;
    nv_spec.config = LaunchConfig::nvstencil_default();

    // Degree-2 temporal blocking on a modest tile (the ring hierarchy
    // grows with order, so the tile is kept small enough for every
    // requested order's shared-memory budget).
    codegen::CudaKernelSpec temporal_spec;
    temporal_spec.method = Method::InPlaneFullSlice;
    temporal_spec.radius = order / 2;
    temporal_spec.config = LaunchConfig{32, 4, 1, 1, 1, 2};

    for (const auto& spec : {inplane_spec, nv_spec, temporal_spec}) {
      const std::string path = "cuda_out/" + spec.name() + ".cu";
      report::write_file(path, codegen::generate_file(spec, grid));
      std::printf("wrote %s\n", path.c_str());
    }
    std::printf("order %d: tuned config %s, simulated %.0f MPoint/s on %s\n", order,
                tuned.best.config.to_string().c_str(),
                tuned.best.timing.mpoints_per_s, device.name.c_str());
  }
  return 0;
}
