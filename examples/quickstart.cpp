// Quickstart: build a grid, run the paper's in-plane full-slice stencil
// kernel on a simulated GeForce GTX580, verify the result against the CPU
// reference, and print the estimated performance — the whole public API
// surface in ~60 lines.
//
//   $ ./quickstart

#include <cstdio>

#include "core/grid_compare.hpp"
#include "core/reference.hpp"
#include "kernels/runner.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::kernels;

  // An 8th-order (radius 4) diffusion stencil on a 128^2 x 32 grid.
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(/*radius=*/4);
  const Extent3 extent{128, 128, 32};

  // The in-plane full-slice kernel with thread block 64x4, register tile
  // 2x2, and 4-wide vector loads (sections III-C1..C3 of the paper).
  const auto kernel = make_kernel<float>(Method::InPlaneFullSlice, coeffs,
                                         LaunchConfig{64, 4, 2, 2, 4});

  // Grids laid out the way the kernel's loading pattern wants.
  Grid3<float> in = make_grid_for(*kernel, extent);
  Grid3<float> out = make_grid_for(*kernel, extent);
  in.fill_interior([](int i, int j, int k) {
    return 0.01f * static_cast<float>(i + 2 * j + 3 * k);
  });

  // Functional execution on the simulated device (bit-accurate data flow).
  const auto device = gpusim::DeviceSpec::geforce_gtx580();
  run_kernel(*kernel, in, out, device);

  // Verify against the CPU reference.
  Grid3<float> gold(extent, coeffs.radius());
  gold.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<float> gold_out(extent, coeffs.radius());
  apply_reference(gold, gold_out, coeffs);
  const GridDiff diff = compare_grids(out, gold_out);
  std::printf("max |simulated - reference| = %.3g\n", diff.max_abs);

  // Timing estimate on the paper's evaluation lattice.
  const auto timing = time_kernel(*kernel, device, Extent3{512, 512, 256});
  std::printf("%s on %s: %.0f MPoint/s (%.1f GFlop/s), load efficiency %.0f%%, "
              "bottleneck: %s\n",
              kernel->name().c_str(), device.name.c_str(), timing.mpoints_per_s,
              timing.gflops, timing.load_efficiency * 100.0,
              timing.bottleneck.c_str());
  return diff.max_abs < 1e-3 ? 0 : 1;
}
