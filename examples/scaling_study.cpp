// Scaling study: combines the two throughput extensions — 2-step temporal
// blocking and multi-GPU z-slab decomposition — into one planning table
// for a long-running diffusion simulation: point-updates per second for
// every (strategy, device count) pair, plus a functional spot-check that
// the temporal kernel really advances two steps.
//
//   $ ./scaling_study [order]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "autotune/tuner.hpp"
#include "core/grid_compare.hpp"
#include "core/reference.hpp"
#include "multigpu/multi_gpu.hpp"
#include "report/table.hpp"
#include "temporal/temporal_kernel.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;

  const int order = argc > 1 ? std::atoi(argv[1]) : 2;
  if (order < 2 || order % 2 != 0) {
    std::fprintf(stderr, "order must be a positive even number\n");
    return 2;
  }
  const StencilCoeffs cs = StencilCoeffs::diffusion(order / 2);
  const Extent3 grid{512, 512, 256};
  const auto dev = gpusim::DeviceSpec::geforce_gtx580();

  // Tune the single-step kernel once; reuse its configuration everywhere.
  const autotune::TuneResult tuned =
      autotune::exhaustive_tune<float>(Method::InPlaneFullSlice, cs, dev, grid);
  if (!tuned.found()) {
    std::fprintf(stderr, "no valid configuration for order %d\n", order);
    return 1;
  }
  const LaunchConfig cfg = tuned.best.config;
  std::printf("order %d on %s, tuned config %s\n\n", order, dev.name.c_str(),
              cfg.to_string().c_str());

  report::Table table({"Strategy", "Devices", "MUpdates/s", "Notes"});
  table.add_row({"in-plane", "1", report::fmt(tuned.best.timing.mpoints_per_s, 0),
                 "baseline (1 step per sweep)"});

  // Temporal blocking: tune separately (its shared ring changes the
  // feasible space).  time_temporal_kernel already reports point-updates
  // per second (2 per sweep at degree 2), directly comparable above.
  {
    autotune::SearchSpace space;
    space.tb_values = {2};
    double best = 0.0;
    for (const auto& c : space.enumerate(dev, grid, Method::InPlaneFullSlice,
                                         cs.radius(), sizeof(float), 4)) {
      const temporal::TemporalInPlaneKernel<float> k(cs, c);
      const auto t = temporal::time_temporal_kernel(k, dev, grid);
      if (t.valid) best = std::max(best, t.mpoints_per_s);
    }
    table.add_row({"in-plane + temporal t=2", "1",
                   best > 0 ? report::fmt(best, 0) : "no valid config",
                   "2 steps per sweep, shared t=1 ring"});
  }

  // Multi-GPU slabs with the tuned single-step kernel.
  for (int n : {2, 4}) {
    multigpu::MultiGpuOptions opt;
    opt.n_devices = n;
    const multigpu::MultiGpuStencil<float> mg(Method::InPlaneFullSlice, cs, cfg, opt);
    const auto t = mg.estimate(dev, grid);
    table.add_row({"in-plane + z-slabs", std::to_string(n),
                   t.valid ? report::fmt(t.mpoints_per_s, 0) : t.invalid_reason,
                   t.valid ? report::fmt(t.parallel_efficiency * 100.0, 0) +
                                 "% efficiency, exchange " +
                                 report::fmt(t.exchange_seconds * 1e3, 2) + " ms"
                           : "-"});
  }
  std::fputs(table.render("throughput planning table").c_str(), stdout);

  // Functional spot check: temporal kernel == two reference sweeps.
  const Extent3 small{64, 32, 12};
  const temporal::TemporalInPlaneKernel<double> tk(cs,
                                                   LaunchConfig{16, 4, 1, 1, 2, 2});
  Grid3<double> in(small, 2 * cs.radius(), 32, tk.preferred_align_offset());
  in.fill_with_halo([](int i, int j, int k) {
    return std::sin(0.1 * i) + 0.02 * j * k;
  });
  Grid3<double> out(small, 2 * cs.radius(), 32, tk.preferred_align_offset());
  temporal::run_temporal_kernel(tk, in, out, dev);
  Grid3<double> t0(small, 2 * cs.radius());
  t0.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  Grid3<double> t1(small, 2 * cs.radius());
  t1.fill_with_halo([&](int i, int j, int k) { return in.at(i, j, k); });
  apply_reference(t0, t1, cs);
  Grid3<double> t2(small, 2 * cs.radius());
  apply_reference(t1, t2, cs);
  const double err = compare_grids(out, t2).max_abs;
  std::printf("\ntemporal kernel vs two reference sweeps: max |diff| = %.3g\n", err);
  return err < 1e-11 ? 0 : 1;
}
