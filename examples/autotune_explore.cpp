// Auto-tuner exploration: tune the in-plane full-slice kernel for a chosen
// stencil order / precision / device, compare the exhaustive search with
// the model-guided search of section VI, and print the top of the ranking.
//
//   $ ./autotune_explore [order] [sp|dp] [gtx580|gtx680|c2070] [threads]
//
// `threads` caps the host threads the tuning sweep uses (0 = all hardware
// threads, 1 = serial); the chosen best config and every number printed
// are identical for any value.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "autotune/tuner.hpp"
#include "report/table.hpp"

namespace {

using namespace inplane;

gpusim::DeviceSpec pick_device(const char* name) {
  if (std::strcmp(name, "gtx680") == 0) return gpusim::DeviceSpec::geforce_gtx680();
  if (std::strcmp(name, "c2070") == 0) return gpusim::DeviceSpec::tesla_c2070();
  return gpusim::DeviceSpec::geforce_gtx580();
}

template <typename T>
int explore(int order, const gpusim::DeviceSpec& device, const ExecPolicy& policy) {
  const Extent3 grid{512, 512, 256};
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(order / 2);

  const autotune::TuneResult exh = autotune::exhaustive_tune<T>(
      kernels::Method::InPlaneFullSlice, coeffs, device, grid, {}, policy);
  const autotune::TuneResult mod = autotune::model_guided_tune<T>(
      kernels::Method::InPlaneFullSlice, coeffs, device, grid, /*beta=*/0.05, {},
      policy);

  std::printf("order %d (%s) on %s: %zu candidate configurations\n", order,
              sizeof(T) == 8 ? "DP" : "SP", device.name.c_str(), exh.candidates);
  report::Table top({"Rank", "Config", "MPoint/s", "Model MPt/s", "Bottleneck",
                     "ActBlks", "Limiter"});
  for (std::size_t i = 0; i < exh.entries.size() && i < 10; ++i) {
    const autotune::TuneEntry& e = exh.entries[i];
    if (!e.timing.valid) continue;
    top.add_row({std::to_string(i + 1), e.config.to_string(),
                 report::fmt(e.timing.mpoints_per_s, 1),
                 report::fmt(e.model_mpoints, 1), e.timing.bottleneck,
                 std::to_string(e.timing.occupancy.active_blocks),
                 gpusim::to_string(e.timing.occupancy.limiter)});
  }
  std::fputs(top.render("top configurations (exhaustive)").c_str(), stdout);
  std::printf(
      "\nexhaustive best: %s at %.1f MPoint/s after %zu runs\n"
      "model-guided (beta=5%%): %s at %.1f MPoint/s after only %zu runs\n",
      exh.best.config.to_string().c_str(), exh.best.timing.mpoints_per_s,
      exh.executed, mod.best.config.to_string().c_str(),
      mod.best.timing.mpoints_per_s, mod.executed);
  return exh.found() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int order = argc > 1 ? std::atoi(argv[1]) : 8;
  const bool dp = argc > 2 && std::strcmp(argv[2], "dp") == 0;
  const gpusim::DeviceSpec device = pick_device(argc > 3 ? argv[3] : "gtx580");
  const ExecPolicy policy{argc > 4 ? std::atoi(argv[4]) : 0};
  if (order < 2 || order % 2 != 0) {
    std::fprintf(stderr, "order must be a positive even number\n");
    return 2;
  }
  return dp ? explore<double>(order, device, policy)
            : explore<float>(order, device, policy);
}
