// Auto-tuner exploration: tune the in-plane full-slice kernel for a chosen
// stencil order / precision / device, compare the exhaustive search with
// the model-guided search of section VI, and print the top of the ranking.
//
//   $ ./autotune_explore [--verify] [order] [sp|dp] [gtx580|gtx680|c2070]
//                        [threads] [fault-plan]
//
// `threads` caps the host threads the tuning sweep uses (0 = all hardware
// threads, 1 = serial); the chosen best config and every number printed
// are identical for any value.  An optional fault-plan string (see
// docs/robustness.md) injects measurement faults: faulted candidates are
// retried and, if they keep failing, quarantined — the sweep degrades to
// best-of-survivors and the roster is printed.
//
// Exit codes (shared exit_code() scheme, see core/status.hpp): 0 success,
// 1 no valid configuration / internal, 2 bad arguments or configuration,
// 3 execution fault, 4 I/O failure, 5 deadline/budget exhaustion.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "autotune/tuner.hpp"
#include "core/status.hpp"
#include "gpusim/fault_injector.hpp"
#include "report/table.hpp"
#include "verify/fuzzer.hpp"

namespace {

using namespace inplane;

gpusim::DeviceSpec pick_device(const char* name) {
  if (std::strcmp(name, "gtx680") == 0) return gpusim::DeviceSpec::geforce_gtx680();
  if (std::strcmp(name, "c2070") == 0) return gpusim::DeviceSpec::tesla_c2070();
  return gpusim::DeviceSpec::geforce_gtx580();
}

/// --verify: gates a tuning winner through every verification pillar
/// (CPU-reference oracle, differential vs forward-plane, metamorphic
/// relations, trace audit) on a reduced grid.  Returns false — and prints
/// the replayable sample line — on any mismatch.
template <typename T>
bool verify_winner(const char* label, int order, const kernels::LaunchConfig& cfg,
                   const gpusim::DeviceSpec& device, const ExecPolicy& policy) {
  verify::FuzzSample sample;
  sample.method = kernels::Method::InPlaneFullSlice;
  sample.order = order;
  sample.config = cfg;
  sample.double_precision = sizeof(T) == 8;
  sample.nx = cfg.tile_w() * 2;
  sample.ny = cfg.tile_h() * 2;
  sample.nz = order + 2 > 8 ? order + 2 : 8;
  const verify::FuzzVerdict v = verify::run_sample(sample, device, policy);
  if (!v.pass) {
    std::printf("verify (%s winner): FAILED %s\n  %s\n", label,
                sample.to_line().c_str(), v.detail.c_str());
    return false;
  }
  std::printf("verify (%s winner): ok (%s)\n", label, sample.to_line().c_str());
  return true;
}

template <typename T>
int explore(int order, const gpusim::DeviceSpec& device,
            const autotune::TuneOptions& options, bool verify_winners) {
  const Extent3 grid{512, 512, 256};
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(order / 2);

  const autotune::TuneResult exh = autotune::exhaustive_tune<T>(
      kernels::Method::InPlaneFullSlice, coeffs, device, grid, {}, options);
  const autotune::TuneResult mod = autotune::model_guided_tune<T>(
      kernels::Method::InPlaneFullSlice, coeffs, device, grid, /*beta=*/0.05, {},
      options);

  std::printf("order %d (%s) on %s: %zu candidate configurations\n", order,
              sizeof(T) == 8 ? "DP" : "SP", device.name.c_str(), exh.candidates);
  report::Table top({"Rank", "Config", "MPoint/s", "Model MPt/s", "Bottleneck",
                     "ActBlks", "Limiter"});
  for (std::size_t i = 0; i < exh.entries.size() && i < 10; ++i) {
    const autotune::TuneEntry& e = exh.entries[i];
    if (!e.timing.valid) continue;
    top.add_row({std::to_string(i + 1), e.config.to_string(),
                 report::fmt(e.timing.mpoints_per_s, 1),
                 report::fmt(e.model_mpoints, 1), e.timing.bottleneck,
                 std::to_string(e.timing.occupancy.active_blocks),
                 gpusim::to_string(e.timing.occupancy.limiter)});
  }
  std::fputs(top.render("top configurations (exhaustive)").c_str(), stdout);
  if (exh.faulted != 0 || exh.quarantined != 0) {
    std::printf("\nfault report: %zu candidate(s) faulted, %zu quarantined\n",
                exh.faulted, exh.quarantined);
    for (const autotune::QuarantineRecord& q : exh.quarantine) {
      std::printf("  quarantined %s after %d attempt(s): %s\n",
                  q.config.to_string().c_str(), q.attempts,
                  q.reason.to_string().c_str());
    }
  }
  std::printf(
      "\nexhaustive best: %s at %.1f MPoint/s after %zu runs\n"
      "model-guided (beta=5%%): %s at %.1f MPoint/s after only %zu runs\n",
      exh.best.config.to_string().c_str(), exh.best.timing.mpoints_per_s,
      exh.executed, mod.best.config.to_string().c_str(),
      mod.best.timing.mpoints_per_s, mod.executed);
  if (!exh.found()) return 1;
  if (verify_winners) {
    // Winners are verified before this process vouches for them; a tuner
    // that crowned a wrong-answer kernel exits 3 (execution fault).
    const bool ok = verify_winner<T>("exhaustive", order, exh.best.config, device,
                                     options.policy) &&
                    verify_winner<T>("model-guided", order, mod.best.config, device,
                                     options.policy);
    if (!ok) return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --verify may appear anywhere; the remaining arguments stay positional.
  bool verify_winners = false;
  int n = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify_winners = true;
    } else {
      argv[n++] = argv[i];
    }
  }
  argc = n;
  const int order = argc > 1 ? std::atoi(argv[1]) : 8;
  const bool dp = argc > 2 && std::strcmp(argv[2], "dp") == 0;
  const gpusim::DeviceSpec device = pick_device(argc > 3 ? argv[3] : "gtx580");
  if (order < 2 || order % 2 != 0) {
    std::fprintf(stderr, "order must be a positive even number\n");
    return 2;
  }
  try {
    autotune::TuneOptions options;
    options.policy = ExecPolicy{argc > 4 ? std::atoi(argv[4]) : 0};
    std::optional<gpusim::FaultInjector> injector;
    if (argc > 5) {
      injector.emplace(gpusim::FaultPlan::parse(argv[5]));
      options.faults = &*injector;
    }
    return dp ? explore<double>(order, device, options, verify_winners)
              : explore<float>(order, device, options, verify_winners);
  } catch (const std::exception& e) {
    // Exit codes by failure class, same scheme as the inplane CLI.
    const Status st = status_of(e);
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return exit_code(st);
  }
}
