// Heat diffusion: the iterative stencil loop of Fig. 1 driven end-to-end
// with the simulated in-plane kernel as its ComputeKernel.  A hot plate on
// one face diffuses into a cold block; the loop runs until the per-sweep
// change drops below a tolerance, then reports the temperature profile.
//
//   $ ./heat_diffusion [steps]

#include <cstdio>
#include <cstdlib>

#include "core/iteration.hpp"
#include "kernels/runner.hpp"

int main(int argc, char** argv) {
  using namespace inplane;
  using namespace inplane::kernels;

  const int max_steps = argc > 1 ? std::atoi(argv[1]) : 200;
  const Extent3 extent{64, 64, 16};
  const StencilCoeffs coeffs = StencilCoeffs::diffusion(/*radius=*/1);

  const auto kernel = make_kernel<double>(Method::InPlaneFullSlice, coeffs,
                                          LaunchConfig{32, 4, 2, 2, 2});
  const auto device = gpusim::DeviceSpec::tesla_c2070();

  Grid3<double> a = make_grid_for(*kernel, extent);
  Grid3<double> b = make_grid_for(*kernel, extent);
  // Hot plate at x = 0 (held in the halo so it acts as a boundary
  // condition), cold interior.
  auto plate = [&](Grid3<double>& g) {
    g.fill_with_halo([](int i, int, int) { return i < 0 ? 100.0 : 0.0; });
  };
  plate(a);
  plate(b);

  // The simulated GPU kernel as the loop's ComputeKernel.
  ComputeKernelFn<double> compute = [&](const Grid3<double>& in, Grid3<double>& out) {
    run_kernel(*kernel, in, out, device);
  };

  const StopCriteria stop{max_steps, 1e-4};
  const IterationOutcome<double> outcome = run_iterative_stencil(a, b, compute, stop);
  std::printf("ran %d sweeps, last max change %.2e (%s)\n",
              outcome.stats.steps_taken, outcome.stats.last_delta,
              outcome.stats.converged ? "converged" : "step limit");

  // Temperature along x through the centre of the block.
  const Grid3<double>& result = *outcome.result;
  std::printf("T(x) at y = %d, z = %d:\n", extent.ny / 2, extent.nz / 2);
  for (int i = 0; i < extent.nx; i += 8) {
    const double t = result.at(i, extent.ny / 2, extent.nz / 2);
    const int bar = static_cast<int>(t / 2.0);
    std::printf("x=%3d %7.3f |%.*s\n", i, t, bar,
                "##################################################");
  }
  return 0;
}
