// Application-stencil example: compute the divergence of an analytic
// vector field with the multi-grid AppKernel framework (section V) and
// check it against the closed-form answer.
//
// Field: u = sin(ax), v = sin(by), w = sin(cz)
//   =>   div = a cos(ax) + b cos(by) + c cos(cz)
//
//   $ ./divergence_field

#include <cmath>
#include <cstdio>

#include "apps/app_kernel.hpp"
#include "autotune/search_space.hpp"

int main() {
  using namespace inplane;
  using namespace inplane::apps;

  const Extent3 extent{64, 64, 32};
  const double h = 0.05;  // grid spacing
  const double a = 1.3, b = 0.7, c = 2.1;

  const AppKernel<double> kernel(divergence(h), AppMethod::InPlaneFullSlice,
                                 kernels::LaunchConfig{32, 4, 2, 2, 2});

  std::vector<Grid3<double>> inputs = make_input_grids_for(kernel, extent);
  std::vector<Grid3<double>> outputs = make_output_grids_for(kernel, extent);
  inputs[0].fill_with_halo([&](int i, int, int) { return std::sin(a * h * i); });
  inputs[1].fill_with_halo([&](int, int j, int) { return std::sin(b * h * j); });
  inputs[2].fill_with_halo([&](int, int, int k) { return std::sin(c * h * k); });

  std::vector<const Grid3<double>*> in_ptrs{&inputs[0], &inputs[1], &inputs[2]};
  std::vector<Grid3<double>*> out_ptrs{&outputs[0]};
  run_app_kernel<double>(kernel, in_ptrs, out_ptrs,
                         gpusim::DeviceSpec::geforce_gtx680());

  // Compare with the analytic divergence; central differences are 2nd
  // order accurate, so the error should scale like h^2.
  double max_err = 0.0;
  for (int k = 0; k < extent.nz; ++k) {
    for (int j = 0; j < extent.ny; ++j) {
      for (int i = 0; i < extent.nx; ++i) {
        const double exact = a * std::cos(a * h * i) + b * std::cos(b * h * j) +
                             c * std::cos(c * h * k);
        max_err = std::max(max_err, std::abs(outputs[0].at(i, j, k) - exact));
      }
    }
  }
  std::printf("max |div_h - div_exact| = %.3e (expect O(h^2) ~ %.1e)\n", max_err,
              h * h);

  // And the Fig. 11 comparison for this stencil: in-plane tuned over the
  // paper's search space against the nvstencil baseline.
  const auto dev = gpusim::DeviceSpec::geforce_gtx680();
  const Extent3 big{512, 512, 256};
  const AppKernel<double> nv(divergence(h), AppMethod::ForwardPlane,
                             kernels::LaunchConfig::nvstencil_default());
  const auto t_nv = time_app_kernel(nv, dev, big);
  autotune::SearchSpace space;
  double best = 0.0;
  for (const auto& cfg :
       space.enumerate(dev, big, kernels::Method::InPlaneFullSlice, 1, sizeof(double),
                       2)) {
    const AppKernel<double> k(divergence(h), AppMethod::InPlaneFullSlice, cfg);
    const auto t = time_app_kernel(k, dev, big);
    if (t.valid) best = std::max(best, t.mpoints_per_s);
  }
  std::printf("Div on GTX680: nvstencil %.0f MPt/s, tuned in-plane %.0f MPt/s "
              "(%.2fx)\n",
              t_nv.mpoints_per_s, best, best / t_nv.mpoints_per_s);
  return max_err < 0.02 ? 0 : 1;
}
