// bench_diff: compares two trees of BENCH_<name>.json reports and fails
// on performance regressions.
//
//   $ bench_diff <old-dir> <new-dir> [--threshold PCT] [--include-noisy]
//                [--warn-only]
//
// Every headline metric present in both trees is gated at the threshold
// (default 10%) in the direction the metric declares; wall-clock-derived
// metrics (noisy: true) are reported but not gated unless --include-noisy.
// Exit codes: 0 = no regression, 1 = at least one regression, 2 = usage /
// unreadable input.  --warn-only reports regressions but still exits 0
// (the CI mode for a freshly landed baseline).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "report/bench_json.hpp"
#include "report/table.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <old-dir> <new-dir> [--threshold PCT] "
               "[--include-noisy] [--warn-only]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace inplane::report;

  std::string old_dir;
  std::string new_dir;
  BenchDiffOptions options;
  bool warn_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      options.threshold = std::atof(argv[++i]) / 100.0;
      if (options.threshold <= 0.0) return usage();
    } else if (std::strcmp(argv[i], "--include-noisy") == 0) {
      options.include_noisy = true;
    } else if (std::strcmp(argv[i], "--warn-only") == 0) {
      warn_only = true;
    } else if (old_dir.empty()) {
      old_dir = argv[i];
    } else if (new_dir.empty()) {
      new_dir = argv[i];
    } else {
      return usage();
    }
  }
  if (old_dir.empty() || new_dir.empty()) return usage();

  BenchDiffResult result;
  try {
    result = diff_bench_trees(old_dir, new_dir, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }

  for (const std::string& w : result.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }

  Table table({"Bench", "Metric", "Old", "New", "Change", "Verdict"});
  for (const BenchDelta& d : result.deltas) {
    table.add_row({d.bench, d.metric, fmt(d.old_value, 3), fmt(d.new_value, 3),
                   fmt(d.change * 100.0, 2) + "%",
                   d.skipped_noisy ? "skipped (noisy)"
                                   : (d.regression ? "REGRESSION" : "ok")});
  }
  std::fputs(table
                 .render("bench_diff: " + old_dir + " -> " + new_dir + " (threshold " +
                         fmt(options.threshold * 100.0, 0) + "%)")
                 .c_str(),
             stdout);

  const auto regressions = result.regressions();
  std::printf("\n%zu bench file(s) compared, %zu metric(s), %zu regression(s)\n",
              result.compared_files, result.deltas.size(), regressions.size());
  if (!regressions.empty() && warn_only) {
    std::printf("--warn-only: reporting regressions without failing\n");
    return 0;
  }
  return regressions.empty() ? 0 : 1;
}
