// bench_smoke_check: the bench-smoke ctest driver.  Runs one bench binary
// in smoke mode and validates the BENCH json it emits.
//
//   $ bench_smoke_check <bench-binary> <bench-name> <results-dir>
//
// Fails (non-zero) when the bench exits non-zero, does not write
// BENCH_<bench-name>.json into the results dir, or writes a file that
// violates the pinned schema (wrong version, missing/unknown keys,
// fingerprint mismatch, smoke flag not set).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "report/bench_json.hpp"

int main(int argc, char** argv) {
  using namespace inplane::report;
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: bench_smoke_check <bench-binary> <bench-name> "
                 "<results-dir>\n");
    return 2;
  }
  const std::string binary = argv[1];
  const std::string name = argv[2];
  const std::string dir = argv[3];

  const std::string command =
      "\"" + binary + "\" --smoke --results-dir \"" + dir + "\"";
  std::printf("running: %s\n", command.c_str());
  std::fflush(stdout);
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "bench exited with status %d\n", rc);
    return 1;
  }

  const std::string path = dir + "/" + bench_report_filename(name);
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench did not write %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: not valid JSON: %s\n", path.c_str(), e.what());
    return 1;
  }
  const std::vector<std::string> errors = validate_bench_json(doc);
  if (!errors.empty()) {
    for (const std::string& e : errors) {
      std::fprintf(stderr, "%s: schema violation: %s\n", path.c_str(), e.c_str());
    }
    return 1;
  }
  const BenchReport report = BenchReport::from_json(doc);
  if (!report.smoke) {
    std::fprintf(stderr, "%s: smoke flag not set on a --smoke run\n", path.c_str());
    return 1;
  }
  if (report.bench != name) {
    std::fprintf(stderr, "%s: bench name is '%s', expected '%s'\n", path.c_str(),
                 report.bench.c_str(), name.c_str());
    return 1;
  }
  std::printf("%s: schema valid (%zu headline, %zu metric samples)\n", path.c_str(),
              report.headline.size(), report.metrics.size());
  return 0;
}
