#!/bin/bash
# Overload / drain / fan-out-failure drill for the tuner daemon.
#
#   cli_service_overload.sh <inplane_tuned-binary> <sweep_supervisor-binary>
#
# 0. Admission control, deterministically: a --max-inflight 1 daemon
#    whose sweeps are stretched by the --sweep-delay-ms drill hook.  A
#    background "holder" tune occupies the only slot (confirmed via the
#    STATS requests counter, not a sleep); a probe fired while it holds
#    must be shed with a typed `ERR code=overloaded retry_after_ms=...`
#    line, while a cache hit of the warm key is still served instantly.
# 1. A daemon squeezed to --max-inflight 1, whose fan-out fleet is
#    /bin/false, must trip the circuit breaker on the first fleet
#    failure, still answer from the bit-identical local fallback, and
#    survive the built-in chaos fleet (64 adversarial clients: garbage,
#    oversized frames, slow writers, mid-sweep disconnects) with zero
#    invariant violations.
# 2. SIGTERM must drain: exit 0, log the drain, and leave a wisdom file
#    a fresh daemon answers from bit-identically with no torn bytes.
# 3. A daemon fanning out to the *real* supervisor with a worker-kill
#    fault plan must still sweep cleanly (worker respawn covers the
#    kill) and shut down with exit 0.
set -eu

tuned=$1
supervisor=$2
[ -x "$tuned" ] || { echo "cli_service_overload: $tuned not executable" >&2; exit 2; }
[ -x "$supervisor" ] || { echo "cli_service_overload: $supervisor not executable" >&2; exit 2; }

dir=$(mktemp -d /tmp/tuned_overload.XXXXXX)
trap 'kill $daemon_pid 2>/dev/null || true; rm -rf "$dir"' EXIT
sock=$dir/s
wisdom=$dir/wisdom.bin
key_a="method=fullslice device=gtx580 order=4 prec=sp nx=64 ny=32 nz=8 kind=model beta=0.05"

wait_for_daemon() {
  for _ in $(seq 1 100); do
    if "$tuned" ping --socket "$sock" >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "cli_service_overload: daemon never became reachable" >&2
  return 1
}

# --- Phase 0: deterministic shed on a slot held by a slow sweep ------------
"$tuned" serve --socket "$sock" --max-inflight 1 --sweep-delay-ms 8000 \
  >"$dir/daemon0.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

# Warm key A (one slow sweep; everything after hits it instantly).
"$tuned" tune --socket "$sock" --key "$key_a" >"$dir/warm0.out"
grep -q "source=swept" "$dir/warm0.out" || {
  echo "cli_service_overload: warm-up tune of key A should sweep" >&2
  cat "$dir/warm0.out" >&2; exit 1; }

# The holder occupies the only sweep slot for 8 s.  Wait until STATS
# shows its request *inside* the service (requests=2) rather than
# sleeping — that makes the following probes deterministic, not racy.
"$tuned" tune --socket "$sock" --retries 0 --no-cache \
  --key "method=classical device=gtx580 order=2 prec=sp nx=64 ny=32 nz=8 kind=model beta=0.05" \
  >"$dir/holder.out" 2>&1 &
holder_pid=$!
holder_seen=0
for _ in $(seq 1 100); do
  "$tuned" stats --socket "$sock" >"$dir/stats0.out" 2>&1 || true
  if grep -q "requests=2 " "$dir/stats0.out"; then holder_seen=1; break; fi
  sleep 0.05
done
[ "$holder_seen" -eq 1 ] || {
  echo "cli_service_overload: holder tune never entered the service" >&2
  cat "$dir/stats0.out" >&2; exit 1; }

# A sweep probe must now be shed with the typed overloaded line...
"$tuned" tune --socket "$sock" --retries 0 --no-cache \
  --key "method=classical device=gtx580 order=4 prec=sp nx=64 ny=32 nz=12 kind=model beta=0.05" \
  >"$dir/probe.out" 2>&1 && {
  echo "cli_service_overload: probe should have been shed (exit 5)" >&2
  cat "$dir/probe.out" >&2; exit 1; }
grep -q "code=overloaded" "$dir/probe.out" || {
  echo "cli_service_overload: shed probe lacks the typed overloaded code" >&2
  cat "$dir/probe.out" >&2; exit 1; }
grep -q "retry_after_ms=" "$dir/probe.out" || {
  echo "cli_service_overload: overloaded shed carries no retry_after_ms hint" >&2
  cat "$dir/probe.out" >&2; exit 1; }

# ...while the warm key and PING dodge admission control entirely.
"$tuned" tune --socket "$sock" --retries 0 --key "$key_a" >"$dir/hit_under_load.out"
grep -q "source=hit" "$dir/hit_under_load.out" || {
  echo "cli_service_overload: cache hit was not served during overload" >&2
  cat "$dir/hit_under_load.out" >&2; exit 1; }
"$tuned" ping --socket "$sock" >/dev/null || {
  echo "cli_service_overload: PING was not served during overload" >&2; exit 1; }

"$tuned" stats --socket "$sock" >"$dir/stats0.out"
grep -Eq "shed_requests=[1-9]" "$dir/stats0.out" || {
  echo "cli_service_overload: STATS shows no shed requests" >&2
  cat "$dir/stats0.out" >&2; exit 1; }

# This instance holds no wisdom file; a hard kill is fine.
{ kill -9 $daemon_pid 2>/dev/null || true; wait $daemon_pid 2>/dev/null; } || true
wait $holder_pid 2>/dev/null || true
rm -f "$sock"

# --- Phase 1: single-slot daemon with a dead fleet -------------------------
"$tuned" serve --socket "$sock" --wisdom "$wisdom" \
  --max-inflight 1 \
  --fan-out 1 --fan-out-dir "$dir/fan" --worker-exe /bin/false \
  --breaker-threshold 1 --breaker-probe-ms 600000 \
  >"$dir/daemon1.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

# Fleet of /bin/false fails instantly; breaker threshold 1 trips it, and
# the answer must come from the local fallback anyway.
"$tuned" tune --socket "$sock" --key "$key_a" >"$dir/a1.out"
grep -q "source=swept" "$dir/a1.out" || {
  echo "cli_service_overload: first tune of key A should sweep locally" >&2
  cat "$dir/a1.out" >&2; exit 1; }

# Adversarial fleet: garbage, oversized frames, slow writers, mid-sweep
# disconnects, plus honest clients checking answers bit-for-bit.
"$tuned" chaos --socket "$sock" --clients 64 --ops 2 --seed 3 >"$dir/chaos.out" || {
  echo "cli_service_overload: chaos drill reported invariant violations" >&2
  cat "$dir/chaos.out" >&2; exit 1; }

"$tuned" stats --socket "$sock" >"$dir/stats1.out"
grep -q "breaker_state=open" "$dir/stats1.out" || {
  echo "cli_service_overload: breaker should be open after fleet failures" >&2
  cat "$dir/stats1.out" >&2; exit 1; }
grep -Eq "breaker_trips=[1-9]" "$dir/stats1.out" || {
  echo "cli_service_overload: breaker never recorded a trip" >&2
  cat "$dir/stats1.out" >&2; exit 1; }

# --- Phase 2: SIGTERM drains, wisdom survives ------------------------------
kill -TERM $daemon_pid
rc=0
wait $daemon_pid || rc=$?
[ "$rc" -eq 0 ] || {
  echo "cli_service_overload: SIGTERM drain should exit 0, got $rc" >&2
  cat "$dir/daemon1.log" >&2; exit 1; }
grep -q "draining" "$dir/daemon1.log" || {
  echo "cli_service_overload: daemon log never mentioned draining" >&2
  cat "$dir/daemon1.log" >&2; exit 1; }
[ -s "$wisdom" ] || { echo "cli_service_overload: wisdom file missing" >&2; exit 1; }

"$tuned" serve --socket "$sock" --wisdom "$wisdom" >"$dir/daemon2.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

grep -q "torn byte" "$dir/daemon2.log" && {
  echo "cli_service_overload: drained wisdom file should have no torn tail" >&2
  cat "$dir/daemon2.log" >&2; exit 1; }

"$tuned" tune --socket "$sock" --key "$key_a" >"$dir/a2.out"
grep -q "source=hit" "$dir/a2.out" || {
  echo "cli_service_overload: key A should be a hit after drain+restart" >&2
  cat "$dir/a2.out" >&2; exit 1; }
entry1=$(grep -o "entry=[0-9a-f]*" "$dir/a1.out")
entry2=$(grep -o "entry=[0-9a-f]*" "$dir/a2.out")
[ -n "$entry1" ] && [ "$entry1" = "$entry2" ] || {
  echo "cli_service_overload: post-drain entry differs from the original" >&2; exit 1; }

"$tuned" shutdown --socket "$sock" >/dev/null
rc=0
wait $daemon_pid || rc=$?
[ "$rc" -eq 0 ] || {
  echo "cli_service_overload: clean SHUTDOWN should exit 0, got $rc" >&2; exit 1; }

# --- Phase 3: real fleet with a worker-kill fault plan ---------------------
"$tuned" serve --socket "$sock" --wisdom "$wisdom" \
  --fan-out 2 --fan-out-dir "$dir/fan3" --worker-exe "$supervisor" \
  --fan-out-fault-plan "kill@1:w0" \
  >"$dir/daemon3.log" 2>&1 &
daemon_pid=$!
wait_for_daemon

key_c="method=fullslice device=gtx580 order=2 prec=sp nx=96 ny=48 nz=16 kind=model beta=0.05"
"$tuned" tune --socket "$sock" --key "$key_c" >"$dir/c1.out"
grep -q "source=swept" "$dir/c1.out" || {
  echo "cli_service_overload: fan-out sweep with worker kill should still succeed" >&2
  cat "$dir/c1.out" >&2; exit 1; }

"$tuned" shutdown --socket "$sock" >/dev/null
rc=0
wait $daemon_pid || rc=$?
[ "$rc" -eq 0 ] || {
  echo "cli_service_overload: fan-out daemon SHUTDOWN should exit 0, got $rc" >&2; exit 1; }

echo "cli_service_overload: typed sheds, open breaker, clean drain, worker-kill survived"
