// Tuning-as-a-service daemon and client.
//
// Daemon:
//   inplane_tuned serve --socket /tmp/tuned.sock [--wisdom wisdom.bin]
//                 [--capacity N] [--threads N]
//                 [--fan-out N --fan-out-dir DIR --worker-exe sweep_supervisor]
//                 [--torn-kill-after N]
//
// The daemon accepts concurrent TUNE / RUN / PING / STATS / SHUTDOWN
// requests (one line each — see src/service/protocol.hpp) on a local
// AF_UNIX socket.  Cache hits answer without sweeping; concurrent
// identical requests dedup onto one sweep; a SHUTDOWN request drains and
// exits 0.  --torn-kill-after N arms the wisdom cache's crash hook: the
// N-th wisdom append after startup is torn mid-record and the daemon
// hard-exits 70 (tools/cli_service_crash.sh uses this to prove the next
// daemon recovers the valid prefix).
//
// Client:
//   inplane_tuned tune --socket S --key "method=... device=... order=..."
//                 [--deadline-ms MS] [--mem-budget BYTES] [--no-cache]
//   inplane_tuned ping|stats|shutdown --socket S
//
// Client exit codes follow the repo taxonomy: 0 on an OK response, the
// daemon's ERR code (2 invalid config, 3 execution fault, 4 I/O,
// 5 deadline/budget, 1 other) otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/status.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace {

using namespace inplane;

int usage() {
  std::fputs(
      "usage: inplane_tuned serve --socket PATH [--wisdom FILE] [--capacity N]\n"
      "                     [--threads N] [--fan-out N --fan-out-dir DIR\n"
      "                     --worker-exe BIN] [--torn-kill-after N]\n"
      "       inplane_tuned tune --socket PATH --key \"method=... device=...\"\n"
      "                     [--deadline-ms MS] [--mem-budget BYTES] [--no-cache]\n"
      "       inplane_tuned ping|stats|shutdown --socket PATH\n",
      stderr);
  return 2;
}

struct Args {
  std::string verb;
  std::string socket;
  std::string wisdom;
  std::string key_line;
  std::string fan_out_dir;
  std::string worker_exe;
  std::size_t capacity = 256;
  int threads = 0;
  int fan_out = 0;
  long torn_kill_after = -1;
  double deadline_ms = 0.0;
  std::uint64_t mem_budget = 0;
  bool no_cache = false;
};

int serve(const Args& args) {
  service::ServiceOptions opts;
  opts.wisdom_path = args.wisdom;
  opts.cache_capacity = args.capacity;
  opts.sweep_policy = ExecPolicy{args.threads};
  opts.fan_out_workers = args.fan_out;
  opts.fan_out_dir = args.fan_out_dir;
  opts.fan_out_worker_exe = args.worker_exe;
  service::TuningService svc(opts);
  if (args.torn_kill_after >= 0) {
    svc.cache().simulate_torn_write_after(
        static_cast<std::size_t>(args.torn_kill_after), 70);
  }
  service::SocketServer server(svc, args.socket);
  server.start();
  std::printf("inplane_tuned: listening on %s (wisdom: %s, capacity %zu)\n",
              args.socket.c_str(), args.wisdom.empty() ? "in-memory" : args.wisdom.c_str(),
              args.capacity);
  std::fflush(stdout);
  server.wait();
  std::printf("inplane_tuned: shutdown requested, draining\n");
  return 0;  // clean SHUTDOWN => exit 0 (see README exit-code table)
}

int client_request(const Args& args, const std::string& line) {
  service::Client client(args.socket);
  client.connect();
  const std::string response = client.roundtrip(line);
  std::printf("%s\n", response.c_str());
  std::string error;
  const auto parsed = service::parse_response(response, &error);
  if (!parsed) {
    std::fprintf(stderr, "inplane_tuned: unparseable response: %s\n", error.c_str());
    return 1;
  }
  return parsed->ok ? 0 : parsed->err_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.verb = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--socket") {
      args.socket = value();
    } else if (key == "--wisdom") {
      args.wisdom = value();
    } else if (key == "--capacity") {
      args.capacity = static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    } else if (key == "--threads") {
      args.threads = std::atoi(value());
    } else if (key == "--fan-out") {
      args.fan_out = std::atoi(value());
    } else if (key == "--fan-out-dir") {
      args.fan_out_dir = value();
    } else if (key == "--worker-exe") {
      args.worker_exe = value();
    } else if (key == "--torn-kill-after") {
      args.torn_kill_after = std::atol(value());
    } else if (key == "--key") {
      args.key_line = value();
    } else if (key == "--deadline-ms") {
      args.deadline_ms = std::atof(value());
    } else if (key == "--mem-budget") {
      args.mem_budget = std::strtoull(value(), nullptr, 0);
    } else if (key == "--no-cache") {
      args.no_cache = true;
    } else {
      return usage();
    }
  }
  if (args.socket.empty()) return usage();

  try {
    if (args.verb == "serve") return serve(args);
    if (args.verb == "ping") return client_request(args, "PING");
    if (args.verb == "stats") return client_request(args, "STATS");
    if (args.verb == "shutdown") return client_request(args, "SHUTDOWN");
    if (args.verb == "tune") {
      if (args.key_line.empty()) return usage();
      std::string line = "TUNE " + args.key_line;
      if (args.deadline_ms > 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " deadline_ms=%.17g", args.deadline_ms);
        line += buf;
      }
      if (args.mem_budget > 0) line += " mem_budget=" + std::to_string(args.mem_budget);
      if (args.no_cache) line += " no_cache=1";
      return client_request(args, line);
    }
    return usage();
  } catch (const std::exception& e) {
    const Status st = status_of(e);
    std::fprintf(stderr, "inplane_tuned: %s\n", st.context.c_str());
    return exit_code(st);
  }
}
