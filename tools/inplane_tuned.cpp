// Tuning-as-a-service daemon and client.
//
// Daemon:
//   inplane_tuned serve --socket /tmp/tuned.sock [--wisdom wisdom.bin]
//                 [--capacity N] [--threads N]
//                 [--fan-out N --fan-out-dir DIR --worker-exe sweep_supervisor]
//                 [--fan-out-fault-plan SPEC] [--no-fanout-breaker]
//                 [--breaker-threshold N] [--breaker-probe-ms MS]
//                 [--max-inflight N] [--max-connections N]
//                 [--read-deadline-ms MS] [--write-deadline-ms MS]
//                 [--max-frame-bytes N] [--drain-ms MS]
//                 [--torn-kill-after N] [--disk-full-after N]
//
// The daemon accepts concurrent TUNE / RUN / PING / STATS / SHUTDOWN
// requests (one line each — see src/service/protocol.hpp) on a local
// AF_UNIX socket.  Cache hits answer without sweeping; concurrent
// identical requests dedup onto one sweep; a SHUTDOWN request drains and
// exits 0.  SIGTERM/SIGINT drain gracefully: accepting stops, new sweep
// requests are shed with `ERR code=draining`, in-flight sweeps get
// --drain-ms to finish (then a typed cancel), the wisdom cache is
// flushed, and the daemon exits 0 — a rolling restart loses no wisdom.
// Past --max-inflight concurrent sweeps the daemon sheds with
// `ERR code=overloaded retry_after_ms=<jittered>`; cache hits and
// PING/STATS always answer.  --torn-kill-after N arms the wisdom cache's
// crash hook: the N-th wisdom append after startup is torn mid-record
// and the daemon hard-exits 70 (tools/cli_service_crash.sh uses this to
// prove the next daemon recovers the valid prefix).  --disk-full-after N
// arms the ENOSPC injection hook: the N-th append fails, the cache
// degrades to serve-from-memory, the daemon keeps answering.
//
// Client:
//   inplane_tuned tune --socket S --key "method=... device=... order=..."
//                 [--deadline-ms MS] [--mem-budget BYTES] [--no-cache]
//                 [--retries N] [--retry-base-ms MS]
//   inplane_tuned ping|stats|shutdown --socket S [--retries N]
//
// tune/ping/stats retry with jittered exponential backoff on connection
// refusal and on `overloaded` sheds (honouring the daemon's
// retry_after_ms hint) up to --retries times.  Client exit codes follow
// the repo taxonomy: 0 on an OK response, the daemon's ERR code
// (2 invalid config, 3 execution fault, 4 I/O, 5 deadline/budget/
// overloaded/draining, 1 other) otherwise.
//
// Chaos drill (tools/cli_service_overload.sh):
//   inplane_tuned chaos --socket S [--clients N] [--ops N] [--seed X]
//                 [--drill-timeout-ms MS]
// spawns N concurrent adversarial clients mixing valid tunes (answers
// checked bit-identical against an in-process direct_tune oracle),
// garbage bytes, oversized frames, slow writers and mid-sweep
// disconnects; exits 0 iff the daemon stayed live and no protocol
// invariant was violated.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/status.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "autotune/checkpoint.hpp"
#endif

namespace {

using namespace inplane;

int usage() {
  std::fputs(
      "usage: inplane_tuned serve --socket PATH [--wisdom FILE] [--capacity N]\n"
      "                     [--threads N] [--fan-out N --fan-out-dir DIR\n"
      "                     --worker-exe BIN] [--fan-out-fault-plan SPEC]\n"
      "                     [--no-fanout-breaker] [--breaker-threshold N]\n"
      "                     [--breaker-probe-ms MS] [--max-inflight N]\n"
      "                     [--max-connections N] [--read-deadline-ms MS]\n"
      "                     [--write-deadline-ms MS] [--max-frame-bytes N]\n"
      "                     [--drain-ms MS] [--torn-kill-after N]\n"
      "                     [--disk-full-after N] [--sweep-delay-ms MS]\n"
      "       inplane_tuned tune --socket PATH --key \"method=... device=...\"\n"
      "                     [--deadline-ms MS] [--mem-budget BYTES] [--no-cache]\n"
      "                     [--retries N] [--retry-base-ms MS]\n"
      "       inplane_tuned ping|stats|shutdown --socket PATH [--retries N]\n"
      "       inplane_tuned chaos --socket PATH [--clients N] [--ops N]\n"
      "                     [--seed X] [--drill-timeout-ms MS]\n",
      stderr);
  return 2;
}

struct Args {
  std::string verb;
  std::string socket;
  std::string wisdom;
  std::string key_line;
  std::string fan_out_dir;
  std::string worker_exe;
  std::string fan_out_fault_plan;
  std::size_t capacity = 256;
  int threads = 0;
  int fan_out = 0;
  bool no_fanout_breaker = false;
  int breaker_threshold = 3;
  double breaker_probe_ms = 1000.0;
  int max_inflight = 16;
  std::size_t max_connections = 256;
  double read_deadline_ms = 30000.0;
  double write_deadline_ms = 30000.0;
  std::size_t max_frame_bytes = 65536;
  double drain_ms = 5000.0;
  long torn_kill_after = -1;
  long disk_full_after = -1;
  double sweep_delay_ms = 0.0;
  double deadline_ms = 0.0;
  std::uint64_t mem_budget = 0;
  bool no_cache = false;
  int retries = 2;
  double retry_base_ms = 50.0;
  int clients = 64;
  int ops = 3;
  std::uint64_t seed = 1;
  double drill_timeout_ms = 120000.0;
};

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

int serve(const Args& args) {
  service::ServiceOptions opts;
  opts.wisdom_path = args.wisdom;
  opts.cache_capacity = args.capacity;
  opts.sweep_policy = ExecPolicy{args.threads};
  opts.fan_out_workers = args.fan_out;
  opts.fan_out_dir = args.fan_out_dir;
  opts.fan_out_worker_exe = args.worker_exe;
  opts.fan_out_fault_spec = args.fan_out_fault_plan;
  opts.fan_out_breaker = !args.no_fanout_breaker;
  opts.breaker_threshold = args.breaker_threshold;
  opts.breaker_probe_after_ms = args.breaker_probe_ms;
  if (args.sweep_delay_ms > 0.0) {
    // Drill hook: stretch every sweep so a shell script can *hold* an
    // admission slot deterministically (cli_service_overload.sh).  Cache
    // hits never sweep, so they stay instant — exactly the asymmetry the
    // overload drill asserts on.
    const auto delay = std::chrono::duration<double, std::milli>(args.sweep_delay_ms);
    opts.on_sweep_start = [delay](const service::WisdomKey&) {
      std::this_thread::sleep_for(delay);
    };
  }
  service::TuningService svc(opts);
  if (args.torn_kill_after >= 0) {
    svc.cache().simulate_torn_write_after(
        static_cast<std::size_t>(args.torn_kill_after), 70);
  }
  if (args.disk_full_after >= 0) {
    svc.cache().simulate_write_error_after(
        static_cast<std::size_t>(args.disk_full_after));
  }
  service::ServerOptions sopts;
  sopts.max_inflight = args.max_inflight;
  sopts.max_connections = args.max_connections;
  sopts.read_deadline_ms = args.read_deadline_ms;
  sopts.write_deadline_ms = args.write_deadline_ms;
  sopts.max_frame_bytes = args.max_frame_bytes;
  sopts.drain_deadline_ms = args.drain_ms;
  service::SocketServer server(svc, args.socket, sopts);
  server.start();
  std::printf("inplane_tuned: listening on %s (wisdom: %s, capacity %zu, "
              "max-inflight %d)\n",
              args.socket.c_str(), args.wisdom.empty() ? "in-memory" : args.wisdom.c_str(),
              args.capacity, args.max_inflight);
  std::fflush(stdout);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (server.running() && g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (g_signal != 0 && server.running()) {
    std::printf("inplane_tuned: signal %d: draining (deadline %.0f ms)\n",
                static_cast<int>(g_signal), args.drain_ms);
    std::fflush(stdout);
    server.drain();
  }
  // Whatever wisdom the drain preserved reaches the disk before exit 0 —
  // a rolling restart's successor reloads it torn-tail-free.
  svc.cache().flush();
  std::printf("inplane_tuned: %s\n",
              g_signal != 0 ? "drained, exiting" : "shutdown requested, draining");
  return 0;  // clean SHUTDOWN/drain => exit 0 (see README exit-code table)
}

int client_request_echo(const Args& args, const std::string& line) {
  service::RetryOptions retry;
  retry.budget = args.retries;
  retry.base_backoff_ms = args.retry_base_ms;
  service::ParsedResponse parsed;
  {
    // request_with_retry parses but does not keep the raw response line;
    // do the roundtrip here so the raw line can be echoed, with the same
    // retry policy.
    std::uint64_t rng = retry.jitter_seed;
    const auto backoff_ms = [&](int attempt) {
      double ms = retry.base_backoff_ms;
      for (int i = 0; i < attempt && ms < retry.max_backoff_ms; ++i) ms *= 2.0;
      if (ms > retry.max_backoff_ms) ms = retry.max_backoff_ms;
      std::uint64_t z = (rng += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      ms *= 0.5 + static_cast<double>(z % 1024) / 1024.0;
      return ms < 1.0 ? 1.0 : ms;
    };
    const int budget = retry.budget < 0 ? 0 : retry.budget;
    for (int attempt = 0;; ++attempt) {
      bool sent = false;
      try {
        service::Client client(args.socket);
        client.connect();
        sent = true;
        const std::string response = client.roundtrip(line);
        std::string error;
        const auto p = service::parse_response(response, &error);
        if (!p) {
          std::fprintf(stderr, "inplane_tuned: unparseable response: %s\n",
                       error.c_str());
          return 1;
        }
        if (!p->overloaded() || attempt >= budget) {
          std::printf("%s\n", response.c_str());
          parsed = *p;
          break;
        }
        const double wait =
            p->retry_after_ms > 0.0 ? p->retry_after_ms : backoff_ms(attempt);
        std::fprintf(stderr,
                     "inplane_tuned: overloaded, retrying in %.0f ms "
                     "(attempt %d/%d)\n",
                     wait, attempt + 1, budget + 1);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait));
      } catch (const IoError&) {
        if (sent || attempt >= budget) throw;
        const double wait = backoff_ms(attempt);
        std::fprintf(stderr,
                     "inplane_tuned: cannot connect, retrying in %.0f ms "
                     "(attempt %d/%d)\n",
                     wait, attempt + 1, budget + 1);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait));
      }
    }
  }
  return parsed.ok ? 0 : parsed.err_code;
}

#ifndef _WIN32

// ---------------------------------------------------------------------------
// chaos: in-process adversarial client swarm (the overload drill's engine).

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
#ifdef MSG_NOSIGNAL
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
#else
    const ssize_t r = ::send(fd, data + sent, n - sent, 0);
#endif
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

/// Reads until the server closes the connection (or sends at least
/// @p min_bytes) or @p timeout_ms passes.  Returns true when the server
/// reacted (bytes or close) — false means it sat silent the whole time.
bool raw_await_reaction(int fd, int timeout_ms, std::size_t min_bytes = 1) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t got = 0;
  char buf[4096];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) return false;
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now).count());
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, remaining > 50 ? 50 : remaining);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return true;  // error counts as a reaction (connection is dead)
    }
    if (pr == 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return true;  // close is a reaction
    got += static_cast<std::size_t>(n);
    if (got >= min_bytes) return true;
  }
}

struct ChaosTally {
  std::atomic<int> violations{0};
  std::atomic<int> served{0};
  std::atomic<int> hits_or_sweeps_checked{0};
  std::atomic<int> shed{0};
  std::atomic<int> cancelled{0};
  std::atomic<int> conn_errors{0};
  std::atomic<int> garbage_sent{0};

  void violation(const char* what, const std::string& detail) {
    violations.fetch_add(1);
    std::fprintf(stderr, "chaos: VIOLATION (%s): %s\n", what, detail.c_str());
  }
};

int chaos(const Args& args) {
  std::signal(SIGPIPE, SIG_IGN);

  // Small-sweep key pool with in-process oracles: every served answer
  // must be bit-identical to direct_tune of the same key.
  std::vector<service::WisdomKey> pool;
  for (int i = 0; i < 3; ++i) {
    service::WisdomKey key;
    key.method = i % 2 == 0 ? "fullslice" : "classical";
    key.device = "gtx580";
    key.order = i % 2 == 0 ? 2 : 4;
    key.double_precision = false;
    key.extent = Extent3{64, 32, 8 + 4 * i};
    key.kind = "model";
    key.beta = 0.05;
    pool.push_back(key);
  }
  std::vector<std::string> oracle;
  oracle.reserve(pool.size());
  for (const auto& key : pool) {
    oracle.push_back(autotune::encode_tune_entry(service::direct_tune(key)));
  }

  ChaosTally tally;
  std::atomic<bool> done{false};
  // Hang watchdog: a wedged daemon (or a client stuck on a dead socket)
  // must fail the drill, not hang CI.
  std::thread watchdog([&] {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               args.drill_timeout_ms));
    while (!done.load()) {
      if (std::chrono::steady_clock::now() >= until) {
        std::fprintf(stderr,
                     "chaos: TIMEOUT after %.0f ms — daemon or a client hung\n",
                     args.drill_timeout_ms);
        std::_Exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  const auto worker = [&](int client_idx) {
    std::uint64_t rng =
        (args.seed * 0x9e3779b97f4a7c15ull + 0xc0ffee) ^
        (static_cast<std::uint64_t>(client_idx) * std::uint64_t{0x100000001b3ull});
    for (int op = 0; op < args.ops; ++op) {
      const std::uint64_t r = splitmix64(rng);
      const int scenario = static_cast<int>(r % 10);
      const std::size_t key_idx = static_cast<std::size_t>((r >> 8) % pool.size());
      switch (scenario) {
        case 0:
        case 1:
        case 2:
        case 3: {
          // Valid tune (mix of cache hits, misses, no_cache re-sweeps)
          // with the shed-aware retry client.
          const bool no_cache = (r >> 16) % 8 == 0;
          const std::string line =
              service::format_tune_request(pool[key_idx], 0.0, 0, no_cache);
          service::RetryOptions retry;
          retry.budget = 2;
          retry.base_backoff_ms = 20.0;
          retry.jitter_seed = r | 1;
          try {
            const auto resp = service::request_with_retry(args.socket, line, retry);
            if (resp.ok) {
              tally.served.fetch_add(1);
              if (resp.degraded) break;  // budgeted/incomplete: not oracle-comparable
              if (resp.entry_payload != oracle[key_idx]) {
                tally.violation("bit-identity",
                                "served entry differs from direct_tune for key " +
                                    pool[key_idx].to_line() + " (source=" +
                                    resp.source + ")");
              } else {
                tally.hits_or_sweeps_checked.fetch_add(1);
              }
            } else if (resp.overloaded()) {
              tally.shed.fetch_add(1);
              if (!(resp.retry_after_ms > 0.0)) {
                tally.violation("shed-without-retry-hint",
                                "overloaded response carried no retry_after_ms");
              }
            } else if (resp.draining() || resp.err_code == 5) {
              tally.cancelled.fetch_add(1);  // drain/cancel is a typed, legal answer
            } else {
              tally.violation("unexpected-error",
                              "valid TUNE answered ERR code=" +
                                  std::to_string(resp.err_code) + " " + resp.message);
            }
          } catch (const std::exception&) {
            // Connection-level failure: legal while the daemon sheds
            // connections or drains; the final liveness gate catches a
            // dead daemon.
            tally.conn_errors.fetch_add(1);
          }
          break;
        }
        case 4: {
          // PING must always answer, even under full sweep load.
          try {
            service::Client client(args.socket);
            client.connect();
            if (client.roundtrip("PING") != "OK pong") {
              tally.violation("ping", "PING did not answer OK pong");
            }
          } catch (const std::exception&) {
            tally.conn_errors.fetch_add(1);
          }
          break;
        }
        case 5: {
          // STATS must stay parseable.
          try {
            service::Client client(args.socket);
            client.connect();
            const std::string response = client.roundtrip("STATS");
            std::string error;
            if (!service::parse_response(response, &error)) {
              tally.violation("stats", "unparseable STATS response: " + error);
            }
          } catch (const std::exception&) {
            tally.conn_errors.fetch_add(1);
          }
          break;
        }
        case 6: {
          // Garbage bytes (sometimes newline-terminated, sometimes
          // binary): the server must answer a typed error or close —
          // and must never crash.  Bounded wait; no response required
          // for an unterminated frame (the read deadline reaps it).
          const int fd = raw_connect(args.socket);
          if (fd < 0) {
            tally.conn_errors.fetch_add(1);
            break;
          }
          std::uint64_t grng = r;
          std::string junk;
          const std::size_t len = 16 + splitmix64(grng) % 240;
          for (std::size_t i = 0; i < len; ++i) {
            junk.push_back(static_cast<char>(splitmix64(grng) & 0xff));
          }
          if (splitmix64(grng) % 2 == 0) junk.push_back('\n');
          (void)raw_send(fd, junk.data(), junk.size());
          tally.garbage_sent.fetch_add(1);
          (void)raw_await_reaction(fd, 3000);
          ::close(fd);
          break;
        }
        case 7: {
          // Oversized frame: stream well past any sane max-frame-bytes
          // without a newline; the server must reject+close in bounded
          // time, never buffer it forever.
          const int fd = raw_connect(args.socket);
          if (fd < 0) {
            tally.conn_errors.fetch_add(1);
            break;
          }
          const std::string block(8192, 'A');
          bool alive = true;
          for (int i = 0; i < 32 && alive; ++i) {
            alive = raw_send(fd, block.data(), block.size());
          }
          if (alive && !raw_await_reaction(fd, 10000)) {
            tally.violation("oversized-frame",
                            "server neither answered nor closed after 256 KiB "
                            "unterminated line");
          }
          ::close(fd);
          break;
        }
        case 8: {
          // Slow writer (slow loris): dribble a request one byte at a
          // time; the server must either answer (fast enough write) or
          // cut us off at its read deadline — never hang.
          const int fd = raw_connect(args.socket);
          if (fd < 0) {
            tally.conn_errors.fetch_add(1);
            break;
          }
          const std::string line = "PING\n";
          bool alive = true;
          for (const char c : line) {
            if (!raw_send(fd, &c, 1)) {
              alive = false;  // server already cut us off: legal
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<int>(20 + splitmix64(rng) % 60)));
          }
          if (alive) (void)raw_await_reaction(fd, 5000);
          ::close(fd);
          break;
        }
        case 9: {
          // Mid-sweep disconnect: fire a fresh-sweep request and vanish.
          // The daemon must absorb the orphaned sweep without wedging.
          const int fd = raw_connect(args.socket);
          if (fd < 0) {
            tally.conn_errors.fetch_add(1);
            break;
          }
          const std::string line =
              service::format_tune_request(pool[key_idx], 0.0, 0, true) + "\n";
          (void)raw_send(fd, line.data(), line.size());
          ::close(fd);
          break;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(args.clients));
  for (int i = 0; i < args.clients; ++i) threads.emplace_back(worker, i);
  for (auto& t : threads) t.join();

  // Final liveness gate: after the whole storm the daemon must still
  // answer a fresh PING and serve a bit-identical cached answer.
  try {
    service::Client client(args.socket);
    client.connect();
    if (client.roundtrip("PING") != "OK pong") {
      tally.violation("liveness", "daemon does not answer PING after the storm");
    }
    const auto resp = service::tune_over_socket(args.socket, pool[0]);
    if (!resp.ok || resp.entry_payload != oracle[0]) {
      tally.violation("liveness",
                      "daemon does not serve a bit-identical answer after the storm");
    }
  } catch (const std::exception& e) {
    tally.violation("liveness", std::string("daemon unreachable: ") + e.what());
  }

  done.store(true);
  watchdog.join();
  std::printf(
      "chaos: clients=%d ops=%d served=%d checked=%d shed=%d cancelled=%d "
      "conn_errors=%d garbage=%d violations=%d\n",
      args.clients, args.ops, tally.served.load(),
      tally.hits_or_sweeps_checked.load(), tally.shed.load(),
      tally.cancelled.load(), tally.conn_errors.load(), tally.garbage_sent.load(),
      tally.violations.load());
  return tally.violations.load() == 0 ? 0 : 1;
}

#else

int chaos(const Args&) {
  std::fputs("inplane_tuned: chaos drill is POSIX-only\n", stderr);
  return 1;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  args.verb = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--socket") {
      args.socket = value();
    } else if (key == "--wisdom") {
      args.wisdom = value();
    } else if (key == "--capacity") {
      args.capacity = static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    } else if (key == "--threads") {
      args.threads = std::atoi(value());
    } else if (key == "--fan-out") {
      args.fan_out = std::atoi(value());
    } else if (key == "--fan-out-dir") {
      args.fan_out_dir = value();
    } else if (key == "--worker-exe") {
      args.worker_exe = value();
    } else if (key == "--fan-out-fault-plan") {
      args.fan_out_fault_plan = value();
    } else if (key == "--no-fanout-breaker") {
      args.no_fanout_breaker = true;
    } else if (key == "--breaker-threshold") {
      args.breaker_threshold = std::atoi(value());
    } else if (key == "--breaker-probe-ms") {
      args.breaker_probe_ms = std::atof(value());
    } else if (key == "--max-inflight") {
      args.max_inflight = std::atoi(value());
    } else if (key == "--max-connections") {
      args.max_connections = static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    } else if (key == "--read-deadline-ms") {
      args.read_deadline_ms = std::atof(value());
    } else if (key == "--write-deadline-ms") {
      args.write_deadline_ms = std::atof(value());
    } else if (key == "--max-frame-bytes") {
      args.max_frame_bytes = static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    } else if (key == "--drain-ms") {
      args.drain_ms = std::atof(value());
    } else if (key == "--torn-kill-after") {
      args.torn_kill_after = std::atol(value());
    } else if (key == "--disk-full-after") {
      args.disk_full_after = std::atol(value());
    } else if (key == "--sweep-delay-ms") {
      args.sweep_delay_ms = std::atof(value());
    } else if (key == "--key") {
      args.key_line = value();
    } else if (key == "--deadline-ms") {
      args.deadline_ms = std::atof(value());
    } else if (key == "--mem-budget") {
      args.mem_budget = std::strtoull(value(), nullptr, 0);
    } else if (key == "--no-cache") {
      args.no_cache = true;
    } else if (key == "--retries") {
      args.retries = std::atoi(value());
    } else if (key == "--retry-base-ms") {
      args.retry_base_ms = std::atof(value());
    } else if (key == "--clients") {
      args.clients = std::atoi(value());
    } else if (key == "--ops") {
      args.ops = std::atoi(value());
    } else if (key == "--seed") {
      args.seed = std::strtoull(value(), nullptr, 0);
    } else if (key == "--drill-timeout-ms") {
      args.drill_timeout_ms = std::atof(value());
    } else {
      return usage();
    }
  }
  if (args.socket.empty()) return usage();

  try {
    if (args.verb == "serve") return serve(args);
    if (args.verb == "chaos") return chaos(args);
    if (args.verb == "ping") return client_request_echo(args, "PING");
    if (args.verb == "stats") return client_request_echo(args, "STATS");
    if (args.verb == "shutdown") {
      // SHUTDOWN is deliberately one-shot: retrying it against a daemon
      // that is already exiting only produces noise.
      service::Client client(args.socket);
      client.connect();
      const std::string response = client.roundtrip("SHUTDOWN");
      std::printf("%s\n", response.c_str());
      std::string error;
      const auto parsed = service::parse_response(response, &error);
      if (!parsed) {
        std::fprintf(stderr, "inplane_tuned: unparseable response: %s\n",
                     error.c_str());
        return 1;
      }
      return parsed->ok ? 0 : parsed->err_code;
    }
    if (args.verb == "tune") {
      if (args.key_line.empty()) return usage();
      std::string line = "TUNE " + args.key_line;
      if (args.deadline_ms > 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), " deadline_ms=%.17g", args.deadline_ms);
        line += buf;
      }
      if (args.mem_budget > 0) line += " mem_budget=" + std::to_string(args.mem_budget);
      if (args.no_cache) line += " no_cache=1";
      return client_request_echo(args, line);
    }
    return usage();
  } catch (const std::exception& e) {
    const Status st = status_of(e);
    std::fprintf(stderr, "inplane_tuned: %s\n", st.context.c_str());
    return exit_code(st);
  }
}
